//! # LLM.265 — Video Codecs are Secretly Tensor Codecs
//!
//! Facade crate for the LLM.265 reproduction. It re-exports the public API
//! of every workspace crate so examples and downstream users can depend on
//! a single crate:
//!
//! - [`tensor`] — tensor substrate, synthetic LLM-tensor generators, metrics
//! - [`bitstream`] — bit I/O and entropy coders (CABAC, Huffman, LZ, Deflate)
//! - [`videocodec`] — the intra-only software video codec (H.264/H.265/AV1
//!   profiles), including the per-stage ablation pipeline
//! - [`core`] — the LLM.265 tensor codec built on the video codec
//! - [`quant`] — baseline compressors (RTN, GPTQ-/AWQ-/rotation-style, MXFP,
//!   1-bit Adam/LAMB, chained codec pipelines)
//! - [`model`] — small transformer substrate with hand-written backprop
//! - [`distrib`] — pipeline-/data-parallel training simulator
//! - [`hardware`] — analytical silicon and cluster cost models
//!
//! # Quickstart
//!
//! ```
//! use llm265::core::{TensorCodec, Llm265Codec, RateTarget};
//! use llm265::tensor::{synthetic, rng::Pcg32, stats};
//!
//! let mut rng = Pcg32::seed_from(42);
//! let w = synthetic::llm_weight(64, 64, &synthetic::WeightProfile::default(), &mut rng);
//!
//! let codec = Llm265Codec::new();
//! let encoded = codec.encode(&w, RateTarget::BitsPerValue(3.0)).unwrap();
//! let decoded = codec.decode(&encoded).unwrap();
//!
//! assert!(encoded.bits_per_value() <= 3.2);
//! let scale = stats::std_dev(w.data()).max(1e-9);
//! let nmse = stats::tensor_mse(&w, &decoded) / (scale * scale);
//! assert!(nmse < 0.1);
//! ```

#![forbid(unsafe_code)]

pub use llm265_bitstream as bitstream;
pub use llm265_core as core;
pub use llm265_distrib as distrib;
pub use llm265_hardware as hardware;
pub use llm265_model as model;
pub use llm265_quant as quant;
pub use llm265_tensor as tensor;
pub use llm265_videocodec as videocodec;
