//! Quickstart: compress a tensor with LLM.265 and inspect the trade-offs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use llm265::core::{Llm265Codec, RateTarget, TensorCodec};
use llm265::tensor::rng::Pcg32;
use llm265::tensor::stats;
use llm265::tensor::synthetic::{llm_weight, WeightProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic LLM weight matrix: bell-shaped body, channel structure,
    // rare outliers — the statistics that make video codecs work on
    // tensors (paper §3.1).
    let mut rng = Pcg32::seed_from(42);
    let weights = llm_weight(256, 256, &WeightProfile::default(), &mut rng);
    println!(
        "tensor: {}x{}, std {:.4}, peak/sigma {:.1}",
        weights.rows(),
        weights.cols(),
        stats::std_dev(weights.data()),
        stats::peak_to_sigma(weights.data())
    );

    let codec = Llm265Codec::new();

    // Sweep fractional bits/value budgets — the codec's headline feature.
    println!(
        "\n{:>10}  {:>12}  {:>10}  {:>8}",
        "target", "measured b/v", "NMSE", "ratio"
    );
    for budget in [1.5, 2.0, 2.5, 2.9, 3.5, 4.5] {
        let encoded = codec.encode(&weights, RateTarget::BitsPerValue(budget))?;
        let decoded = codec.decode(&encoded)?;
        let nmse = stats::tensor_mse(&weights, &decoded) / stats::variance(weights.data());
        println!(
            "{:>10.1}  {:>12.2}  {:>10.5}  {:>7.1}x",
            budget,
            encoded.bits_per_value(),
            nmse,
            16.0 / encoded.bits_per_value()
        );
    }

    // Or target a quality level and let the codec find the rate.
    let encoded = codec.encode(&weights, RateTarget::MaxNormalizedMse(0.01))?;
    println!(
        "\nquality-targeted encode (NMSE <= 0.01): {:.2} bits/value",
        encoded.bits_per_value()
    );
    Ok(())
}
