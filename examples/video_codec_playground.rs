//! Video-codec playground: drive the software codec directly — encode
//! frames under different profiles and pipeline configurations, and watch
//! where the bits go. Useful for understanding why the tensor codec
//! behaves the way it does.
//!
//! ```sh
//! cargo run --release --example video_codec_playground
//! ```

use llm265::tensor::rng::Pcg32;
use llm265::videocodec::{
    decode_video, encode_video, rate, CodecConfig, Frame, PipelineConfig, Profile,
};

/// A synthetic "weight image": channel bands + smooth field + noise.
fn weight_frame(seed: u64, n: usize) -> Frame {
    let mut rng = Pcg32::seed_from(seed);
    let bands: Vec<f64> = (0..n)
        .map(|x| 40.0 * ((x / 6) as f64 * 0.8).sin())
        .collect();
    let mut row_field = 0.0f64;
    let rows: Vec<f64> = (0..n)
        .map(|_| {
            row_field = 0.95 * row_field + 3.0 * rng.normal();
            row_field
        })
        .collect();
    Frame::from_fn(n, n, |x, y| {
        (128.0 + bands[x] + rows[y] + 9.0 * rng.normal()).clamp(0.0, 255.0) as u8
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frame = weight_frame(7, 128);

    // Sweep QP: rate-distortion curve of the default (H.265-like) profile.
    println!("QP sweep (H.265-like profile):");
    println!("{:>6} {:>12} {:>10}", "QP", "bits/pixel", "MSE(px^2)");
    for qp in [12.0, 20.0, 28.0, 36.0, 44.0] {
        let cfg = CodecConfig::default().with_qp(qp);
        let enc = encode_video(std::slice::from_ref(&frame), &cfg);
        let dec = decode_video(&enc.bytes)?;
        println!(
            "{qp:>6.0} {:>12.3} {:>10.2}",
            enc.bits_per_pixel(),
            frame.mse(&dec[0])
        );
    }

    // Compare profiles at a fixed bitrate target.
    println!("\nProfiles at 2.0 bits/pixel:");
    for profile in [Profile::h264(), Profile::h265(), Profile::av1()] {
        let name = profile.kind().name();
        let cfg = CodecConfig::default().with_profile(profile);
        let res = rate::encode_to_bitrate(std::slice::from_ref(&frame), &cfg, 2.0);
        println!(
            "  {name:6} qp {:>5.1}: {:.3} bits/pixel, MSE {:.2}",
            res.qp,
            res.bits_per_pixel(),
            rate::mse_of(std::slice::from_ref(&frame), &res.encoded)
        );
    }

    // Toggle pipeline stages at a fixed QP (the Fig 2b machinery).
    println!("\nPipeline stages at QP 32:");
    for (label, pipeline) in [
        ("full intra pipeline", PipelineConfig::default()),
        (
            "no intra prediction",
            PipelineConfig {
                intra: false,
                ..PipelineConfig::default()
            },
        ),
        (
            "no transform (spatial)",
            PipelineConfig {
                transform: false,
                ..PipelineConfig::default()
            },
        ),
        (
            "fixed 8x8 grid",
            PipelineConfig {
                adaptive_partition: false,
                ..PipelineConfig::default()
            },
        ),
    ] {
        let cfg = CodecConfig::default().with_pipeline(pipeline).with_qp(32.0);
        let enc = encode_video(std::slice::from_ref(&frame), &cfg);
        let dec = decode_video(&enc.bytes)?;
        println!(
            "  {label:22}: {:.3} bits/pixel, MSE {:.2}",
            enc.bits_per_pixel(),
            frame.mse(&dec[0])
        );
    }
    Ok(())
}
