//! Compressed inference end to end: train a small LM, then compress its
//! weights, KV cache and inter-stage activations — the paper's §4
//! deployment recipe — and report quality plus memory/communication
//! savings.
//!
//! ```sh
//! cargo run --release --example compressed_inference
//! ```

use llm265::core::Llm265Channel;
use llm265::model::data::{LangConfig, SyntheticLang};
use llm265::model::optimizer::Adam;
use llm265::model::tasks::{probe_suite, suite_accuracy};
use llm265::model::transformer::{EvalHooks, TransformerConfig, TransformerLm};
use llm265::tensor::rng::Pcg32;

fn main() {
    // 1. Train a small language model on the synthetic grammar.
    let lang = SyntheticLang::new(&LangConfig::tiny());
    let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(7));
    let mut opt = Adam::new(3e-3);
    let mut rng = Pcg32::seed_from(8);
    for step in 0..250 {
        if step == 170 {
            opt.set_lr(1e-3);
        }
        let batch = lang.sample_batch(4, 48, &mut rng).expect("training data");
        model.train_step(&batch, &mut opt);
    }
    let eval = lang
        .sample_batch(16, 48, &mut Pcg32::seed_from(9))
        .expect("training data");
    let tasks = probe_suite(&lang, 25, 10).expect("probe tasks");
    println!(
        "trained model:      ppl {:.3}, probe accuracy {:.1}%",
        model.eval_perplexity(&eval),
        suite_accuracy(&model, &tasks) * 100.0
    );

    // 2. Compress the weights to ~3 bits/value.
    let (bits, values) = model.compress_weights(&mut Llm265Channel::at_bits(3.0));
    println!(
        "weights compressed: {:.2} bits/value ({:.1}x smaller), ppl {:.3}, accuracy {:.1}%",
        bits as f64 / values as f64,
        16.0 * values as f64 / bits as f64,
        model.eval_perplexity(&eval),
        suite_accuracy(&model, &tasks) * 100.0
    );

    // 3. Run inference with a compressed KV cache and compressed
    //    pipeline-stage activations.
    let boundaries = [model.n_blocks() / 2 - 1];
    let mut kv = Llm265Channel::at_bits(2.9);
    let mut act = Llm265Channel::at_bits(3.5);
    let mut hooks = EvalHooks {
        kv: Some(&mut kv),
        hidden: Some((&mut act, &boundaries)),
    };
    let res = model.eval_with_hooks(&eval, &mut hooks);
    println!(
        "KV @{:.2}b + activations @{:.2}b: ppl {:.3}",
        res.kv_bits as f64 / res.kv_values as f64,
        res.hidden_bits as f64 / res.hidden_values as f64,
        res.perplexity
    );
    println!(
        "KV memory saved {:.1}x, inter-stage traffic saved {:.1}x",
        16.0 * res.kv_values as f64 / res.kv_bits as f64,
        16.0 * res.hidden_values as f64 / res.hidden_bits as f64
    );
}
