//! Communication-compressed distributed training (the paper's §5):
//! pipeline-parallel stages exchange LLM.265-compressed activations and
//! residual-compensated gradients; data-parallel replicas exchange
//! LLM.265-compressed weight gradients.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use llm265::core::gradient::ResidualCompensator;
use llm265::core::Llm265Channel;
use llm265::distrib::data_parallel::DataParallelTrainer;
use llm265::distrib::pipeline::PipelineTrainer;
use llm265::model::data::{LangConfig, SyntheticLang};
use llm265::model::optimizer::Adam;
use llm265::model::transformer::{Batch, TransformerConfig, TransformerLm};
use llm265::tensor::rng::Pcg32;

fn main() {
    let lang = SyntheticLang::new(&LangConfig::tiny());
    let val = lang
        .sample_batch(8, 40, &mut Pcg32::seed_from(1))
        .expect("training data");

    // --- Pipeline parallelism with compressed inter-stage traffic.
    println!("== pipeline parallelism (2 stages) ==");
    let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(2));
    let mut opt = Adam::new(3e-3);
    let mut rng = Pcg32::seed_from(3);
    {
        let mut pp = PipelineTrainer::new(&mut model, 2)
            .with_act_compressor(Box::new(Llm265Channel::at_bits(3.5)))
            .with_grad_compressor(Box::new(ResidualCompensator::new()));
        for step in 0..100 {
            let batch = lang.sample_batch(4, 40, &mut rng).expect("training data");
            let loss = pp.train_step(&batch, &mut opt);
            if (step + 1) % 25 == 0 {
                println!("  step {:>3}: loss {loss:.3}", step + 1);
            }
        }
        println!(
            "  activations: {:.2} bits/value ({:.1}x), gradients: {:.2} bits/value ({:.1}x)",
            pp.act_stats().bits_per_value(),
            pp.act_stats().ratio(),
            pp.grad_stats().bits_per_value(),
            pp.grad_stats().ratio()
        );
    }
    println!("  final val ppl: {:.3}", model.eval_perplexity(&val));

    // --- Data parallelism with compressed gradient exchange.
    println!("\n== data parallelism (4 replicas) ==");
    let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(4));
    let mut opt = Adam::new(3e-3);
    let mut rng = Pcg32::seed_from(5);
    {
        let mut dp = DataParallelTrainer::new(&mut model, 4).with_compressors(
            (0..4)
                .map(|_| Box::new(Llm265Channel::at_bits(2.6)) as _)
                .collect(),
        );
        for step in 0..60 {
            let shards: Vec<Batch> = (0..4)
                .map(|_| lang.sample_batch(1, 40, &mut rng).expect("training data"))
                .collect();
            let loss = dp.train_step(&shards, &mut opt);
            if (step + 1) % 15 == 0 {
                println!("  step {:>3}: loss {loss:.3}", step + 1);
            }
        }
        println!(
            "  gradient exchange: {:.2} bits/value ({:.1}x less traffic)",
            dp.stats().bits_per_value(),
            dp.stats().ratio()
        );
    }
    println!("  final val ppl: {:.3}", model.eval_perplexity(&val));
}
