//! Cross-crate consistency tests for the distributed-training simulator:
//! the parallelism machinery must be a *refactoring* of plain training
//! when compression is off, and its accounting must be exact.

use llm265::distrib::data_parallel::DataParallelTrainer;
use llm265::distrib::pipeline::PipelineTrainer;
use llm265::model::data::{LangConfig, SyntheticLang};
use llm265::model::optimizer::Adam;
use llm265::model::transformer::{Batch, TransformerConfig, TransformerLm};
use llm265::tensor::rng::Pcg32;

#[test]
fn pp_and_dp_uncompressed_match_plain_training_exactly() {
    let lang = SyntheticLang::new(&LangConfig::tiny());
    let mut rng = Pcg32::seed_from(1);
    let batches: Vec<Batch> = (0..4)
        .map(|_| lang.sample_batch(2, 24, &mut rng).expect("training data"))
        .collect();
    let eval = lang
        .sample_batch(4, 24, &mut Pcg32::seed_from(2))
        .expect("training data");

    let mut plain = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(9));
    let mut opt = Adam::new(1e-3);
    for b in &batches {
        plain.train_step(b, &mut opt);
    }
    let ppl_plain = plain.eval_perplexity(&eval);

    let mut pp_model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(9));
    {
        let mut opt = Adam::new(1e-3);
        let mut pp = PipelineTrainer::new(&mut pp_model, 2);
        for b in &batches {
            pp.train_step(b, &mut opt);
        }
    }
    assert!((pp_model.eval_perplexity(&eval) - ppl_plain).abs() < 1e-6);

    let mut dp_model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(9));
    {
        let mut opt = Adam::new(1e-3);
        let mut dp = DataParallelTrainer::new(&mut dp_model, 1);
        for b in &batches {
            dp.train_step(std::slice::from_ref(b), &mut opt);
        }
    }
    assert!((dp_model.eval_perplexity(&eval) - ppl_plain).abs() < 1e-6);
}

#[test]
fn wire_accounting_matches_tensor_sizes_exactly() {
    let lang = SyntheticLang::new(&LangConfig::tiny());
    let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(3));
    let dim = model.config().dim;
    let mut opt = Adam::new(1e-3);
    let seq_len = 24usize;
    let batch = lang
        .sample_batch(3, seq_len, &mut Pcg32::seed_from(4))
        .expect("training data");
    let mut pp = PipelineTrainer::new(&mut model, 2);
    pp.train_step(&batch, &mut opt);
    // One boundary, 3 sequences, (seq_len - 1) tokens × dim values, both
    // directions, at 16 bits uncompressed.
    let expected_values = 3 * (seq_len - 1) * dim;
    assert_eq!(pp.act_stats().values as usize, expected_values);
    assert_eq!(pp.grad_stats().values as usize, expected_values);
    assert_eq!(
        pp.act_stats().compressed_bits as usize,
        expected_values * 16
    );
}

#[test]
fn dp_with_lossless_compressor_is_equivalent_to_uncompressed() {
    use llm265::tensor::channel::LossyCompressor;
    use llm265::tensor::Tensor;
    struct Lossless;
    impl LossyCompressor for Lossless {
        fn name(&self) -> String {
            "lossless".into()
        }
        fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
            (t.clone(), t.len() as u64 * 16)
        }
    }
    let lang = SyntheticLang::new(&LangConfig::tiny());
    let mut rng = Pcg32::seed_from(5);
    let shards: Vec<Vec<Batch>> = (0..3)
        .map(|_| {
            (0..2)
                .map(|_| lang.sample_batch(1, 20, &mut rng).expect("training data"))
                .collect()
        })
        .collect();
    let eval = lang
        .sample_batch(4, 20, &mut Pcg32::seed_from(6))
        .expect("training data");

    let run = |lossless: bool| -> f64 {
        let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(8));
        let mut opt = Adam::new(1e-3);
        let mut dp = DataParallelTrainer::new(&mut model, 2);
        if lossless {
            dp = dp.with_compressors(vec![Box::new(Lossless), Box::new(Lossless)]);
        }
        for step in &shards {
            dp.train_step(step, &mut opt);
        }
        dp.model().eval_perplexity(&eval)
    };
    assert!((run(false) - run(true)).abs() < 1e-6);
}
