//! Cross-crate integration tests: the full LLM.265 story exercised end to
//! end through the facade crate.

use llm265::core::{Llm265Channel, Llm265Codec, RateTarget, TensorCodec};
use llm265::model::data::{LangConfig, SyntheticLang};
use llm265::model::optimizer::Adam;
use llm265::model::tasks::{probe_suite, suite_accuracy};
use llm265::model::transformer::{EvalHooks, TransformerConfig, TransformerLm};
use llm265::quant::rtn::{GroupScheme, RtnQuantizer};
use llm265::tensor::channel::LossyCompressor;
use llm265::tensor::rng::Pcg32;
use llm265::tensor::stats;
use llm265::tensor::synthetic::{llm_weight, WeightProfile};

fn trained_model(seed: u64, steps: usize) -> (TransformerLm, SyntheticLang) {
    let lang = SyntheticLang::new(&LangConfig::tiny());
    let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(seed));
    let mut opt = Adam::new(3e-3);
    let mut rng = Pcg32::seed_from(seed ^ 0xA);
    for _ in 0..steps {
        let batch = lang.sample_batch(4, 40, &mut rng).expect("training data");
        model.train_step(&batch, &mut opt);
    }
    (model, lang)
}

#[test]
fn codec_is_general_purpose_across_tensor_classes() {
    // The paper's core claim: one codec object, no calibration, works on
    // weights, activations, gradients and KV slabs.
    use llm265::tensor::synthetic::{
        kv_cache_slab, llm_activation, llm_gradient, ActivationProfile, GradientProfile,
    };
    let mut rng = Pcg32::seed_from(1);
    let codec = Llm265Codec::new();
    let tensors = vec![
        (
            "weight",
            llm_weight(96, 96, &WeightProfile::default(), &mut rng),
        ),
        (
            "activation",
            llm_activation(96, 96, &ActivationProfile::default(), &mut rng),
        ),
        (
            "gradient",
            llm_gradient(96, 96, &GradientProfile::default(), &mut rng),
        ),
        ("kv", kv_cache_slab(96, 96, &mut rng)),
    ];
    for (name, t) in tensors {
        let enc = codec
            .encode(&t, RateTarget::BitsPerValue(3.5))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            enc.bits_per_value() <= 3.55,
            "{name}: {}",
            enc.bits_per_value()
        );
        let dec = codec.decode(&enc).unwrap();
        let nmse = stats::tensor_mse(&t, &dec) / stats::variance(t.data()).max(1e-30);
        assert!(nmse < 0.12, "{name}: nmse {nmse}");
    }
}

#[test]
fn fractional_bitrates_are_monotone_in_quality() {
    let mut rng = Pcg32::seed_from(2);
    let w = llm_weight(128, 128, &WeightProfile::default(), &mut rng);
    let codec = Llm265Codec::new();
    let mut last_err = f64::INFINITY;
    for budget in [1.6, 2.1, 2.6, 3.1, 3.6, 4.1] {
        let enc = codec.encode(&w, RateTarget::BitsPerValue(budget)).unwrap();
        let dec = codec.decode(&enc).unwrap();
        let err = stats::tensor_mse(&w, &dec);
        assert!(
            err <= last_err * 1.02,
            "error must fall as bits grow: {err} after {last_err}"
        );
        last_err = err;
    }
}

#[test]
fn weight_compression_preserves_model_quality_at_3_bits() {
    let (model, lang) = trained_model(3, 250);
    let tasks = probe_suite(&lang, 20, 5).expect("probe tasks");
    let clean = suite_accuracy(&model, &tasks);

    let mut compressed = model.clone();
    let (bits, values) = compressed.compress_weights(&mut Llm265Channel::at_bits(4.0));
    let acc = suite_accuracy(&compressed, &tasks);
    assert!(bits as f64 / values as f64 <= 4.2);
    assert!(
        acc >= clean - 0.1,
        "4-bit weights lost too much: {acc} vs {clean}"
    );

    // A destructive rate must actually hurt — the probes are sensitive.
    let mut destroyed = model.clone();
    destroyed.compress_weights(&mut Llm265Channel::at_bits(0.6));
    let acc_destroyed = suite_accuracy(&destroyed, &tasks);
    assert!(
        acc_destroyed < clean - 0.1,
        "0.6-bit weights should visibly hurt: {acc_destroyed} vs {clean}"
    );
}

#[test]
fn kv_and_activation_hooks_account_bits() {
    let (model, lang) = trained_model(4, 120);
    let eval = lang
        .sample_batch(4, 32, &mut Pcg32::seed_from(6))
        .expect("training data");
    let boundaries = [0usize];
    let mut kv = Llm265Channel::at_bits(2.9);
    let mut act = Llm265Channel::at_bits(3.5);
    let mut hooks = EvalHooks {
        kv: Some(&mut kv),
        hidden: Some((&mut act, &boundaries)),
    };
    let res = model.eval_with_hooks(&eval, &mut hooks);
    assert!(res.perplexity.is_finite() && res.perplexity > 1.0);
    let kv_bpv = res.kv_bits as f64 / res.kv_values as f64;
    let act_bpv = res.hidden_bits as f64 / res.hidden_values as f64;
    assert!(kv_bpv <= 3.2, "kv {kv_bpv}");
    assert!(act_bpv <= 3.8, "act {act_bpv}");
}

#[test]
fn codec_beats_rtn_at_equal_measured_bits_on_structured_weights() {
    // The Fig 5 headline reduced to a single assertion: on structured
    // weights, LLM.265 at RTN's measured rate has lower error.
    let mut rng = Pcg32::seed_from(7);
    let w = llm_weight(128, 128, &WeightProfile::default(), &mut rng);
    let mut rtn = RtnQuantizer::symmetric(3, GroupScheme::PerRow);
    let (rtn_out, rtn_bits) = rtn.transcode(&w);
    let rtn_bpv = rtn_bits as f64 / w.len() as f64;

    let codec = Llm265Codec::new();
    let enc = codec.encode(&w, RateTarget::BitsPerValue(rtn_bpv)).unwrap();
    let dec = codec.decode(&enc).unwrap();
    let e_codec = stats::tensor_mse(&w, &dec);
    let e_rtn = stats::mse(w.data(), rtn_out.data());
    assert!(
        e_codec < e_rtn,
        "codec {e_codec} should beat rtn {e_rtn} at {rtn_bpv:.2} bits"
    );
}

#[test]
fn gradient_residual_compensation_outperforms_direct_at_same_total_bits() {
    use llm265::core::gradient::ResidualCompensator;
    use llm265::tensor::synthetic::{llm_gradient, GradientProfile};
    let mut rng = Pcg32::seed_from(8);
    let g = llm_gradient(96, 96, &GradientProfile::at_progress(0.5), &mut rng);

    let comp = ResidualCompensator::new();
    let (two_stage, bits2) = comp.compress(&g);

    let codec = Llm265Codec::new();
    let budget = bits2 as f64 / g.len() as f64;
    let enc = codec.encode(&g, RateTarget::BitsPerValue(budget)).unwrap();
    let one_stage = codec.decode(&enc).unwrap();

    let e2 = stats::tensor_mse(&g, &two_stage);
    let e1 = stats::tensor_mse(&g, &one_stage);
    // Two-stage must at least be competitive (within 10%) at equal bits —
    // its value is robustness late in training, not raw RD.
    assert!(e2 <= e1 * 1.1, "two-stage {e2} vs one-stage {e1}");
}

#[test]
fn hardware_model_is_consistent_with_measured_compressors() {
    // The §7.3 energy formula evaluated with the ratio our actual codec
    // achieves on gradients must land in the paper's 3-5x gain band.
    use llm265::hardware::energy::end_to_end_gain;
    use llm265::tensor::synthetic::{llm_gradient, GradientProfile};
    let mut rng = Pcg32::seed_from(9);
    let g = llm_gradient(128, 128, &GradientProfile::default(), &mut rng);
    let mut ch = Llm265Channel::at_bits(3.5);
    let (_, bits) = ch.transcode(&g);
    let ratio = g.len() as f64 * 16.0 / bits as f64;
    assert!(ratio > 4.0, "ratio {ratio}");
    let gain = end_to_end_gain(ratio, 97.8, 63.5);
    assert!(gain > 3.0 && gain < 6.0, "gain {gain}");
}
