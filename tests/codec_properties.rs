//! Property-based tests on the LLM.265 tensor codec's public contract.

use llm265::core::{Llm265Codec, Llm265Config, RateTarget, TensorCodec};
use llm265::tensor::rng::Pcg32;
use llm265::tensor::stats;
use llm265::tensor::synthetic::{llm_weight, WeightProfile};
use llm265::tensor::Tensor;
use proptest::prelude::*;

fn random_tensor(seed: u64, rows: usize, cols: usize, scale: f32) -> Tensor {
    let mut rng = Pcg32::seed_from(seed);
    Tensor::from_fn(rows, cols, |_, _| (rng.normal() as f32) * scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_roundtrip_preserves_shape_and_bounds_error(
        seed in 0u64..1_000_000,
        rows in 8usize..96,
        cols in 8usize..96,
        qp in 8u32..46,
    ) {
        let t = random_tensor(seed, rows, cols, 0.1);
        let codec = Llm265Codec::new();
        let enc = codec.encode(&t, RateTarget::Qp(qp as f64)).unwrap();
        let dec = codec.decode(&enc).unwrap();
        prop_assert_eq!(dec.shape(), (rows, cols));
        // Parseval bounds the *MSE* by the quantizer step (the DCT may
        // concentrate error on individual pixels, so only a loose
        // per-pixel bound holds).
        let (lo, hi) = t.min_max();
        let chunk_step = ((hi - lo).max(1e-9) / 255.0) as f64;
        let qstep = 2f64.powf((qp as f64 - 4.0) / 6.0);
        let mse = stats::tensor_mse(&t, &dec);
        // Dead-zone quantizer: per-coefficient error ≤ (2/3)·qstep, plus
        // the 8-bit chunk quantization floor; 1.5x slack for rounding.
        let mse_bound = chunk_step * chunk_step * (0.45 * qstep * qstep + 0.1) * 1.5 + 1e-12;
        prop_assert!(mse <= mse_bound, "mse {mse} bound {mse_bound}");
        let pixel_bound = chunk_step * (4.0 * qstep + 2.0) + 1e-6;
        for (a, b) in t.data().iter().zip(dec.data()) {
            prop_assert!(((a - b).abs() as f64) <= pixel_bound,
                "err {} bound {pixel_bound}", (a - b).abs());
        }
    }

    #[test]
    fn prop_bits_target_respected_for_feasible_budgets(
        seed in 0u64..1_000_000,
        budget_tenths in 15u32..60,
    ) {
        let budget = budget_tenths as f64 / 10.0;
        let t = random_tensor(seed, 64, 64, 0.05);
        let codec = Llm265Codec::new();
        let enc = codec.encode(&t, RateTarget::BitsPerValue(budget)).unwrap();
        prop_assert!(enc.bits_per_value() <= budget * 1.02 + 0.02,
            "target {budget} got {}", enc.bits_per_value());
    }

    #[test]
    fn prop_encoding_is_deterministic(seed in 0u64..1_000_000) {
        let t = random_tensor(seed, 48, 48, 0.2);
        let codec = Llm265Codec::new();
        let a = codec.encode(&t, RateTarget::Qp(26.0)).unwrap();
        let b = codec.encode(&t, RateTarget::Qp(26.0)).unwrap();
        prop_assert_eq!(a.bytes(), b.bytes());
    }

    #[test]
    fn prop_chunked_equals_shape_for_any_chunk_limit(
        seed in 0u64..1_000_000,
        rows in 16usize..80,
        chunk_rows in 4usize..32,
    ) {
        let t = random_tensor(seed, rows, 40, 0.1);
        let codec = Llm265Codec::with_config(Llm265Config {
            max_chunk_pixels: 40 * chunk_rows,
            ..Llm265Config::default()
        });
        let enc = codec.encode(&t, RateTarget::Qp(22.0)).unwrap();
        let dec = codec.decode(&enc).unwrap();
        prop_assert_eq!(dec.shape(), t.shape());
        let nmse = stats::tensor_mse(&t, &dec) / stats::variance(t.data()).max(1e-30);
        prop_assert!(nmse < 0.05, "nmse {nmse}");
    }
}

#[test]
fn structured_weights_compress_better_than_iid() {
    // The codec must exploit exactly the structure §3.1 describes.
    let mut rng = Pcg32::seed_from(77);
    let structured = llm_weight(96, 96, &WeightProfile::default(), &mut rng);
    let iid = llm_weight(96, 96, &WeightProfile::iid(), &mut rng);
    let codec = Llm265Codec::new();
    let nmse_at = |t: &Tensor, bits: f64| {
        let enc = codec.encode(t, RateTarget::BitsPerValue(bits)).unwrap();
        let dec = codec.decode(&enc).unwrap();
        stats::tensor_mse(t, &dec) / stats::variance(t.data())
    };
    let e_structured = nmse_at(&structured, 2.5);
    let e_iid = nmse_at(&iid, 2.5);
    assert!(
        e_structured < e_iid * 0.8,
        "structured {e_structured} vs iid {e_iid}"
    );
}

#[test]
fn stream_is_self_describing() {
    // Decoding requires nothing but the bytes: shape and chunk map travel
    // in-band.
    let t = random_tensor(5, 40, 72, 0.3);
    let codec = Llm265Codec::new();
    let enc = codec.encode(&t, RateTarget::BitsPerValue(3.0)).unwrap();
    // A fresh codec instance (different config defaults do not matter for
    // decode) recovers the tensor.
    let other = Llm265Codec::with_config(Llm265Config {
        max_chunk_pixels: 1 << 12,
        ..Llm265Config::default()
    });
    let dec = other.decode(&enc).unwrap();
    assert_eq!(dec.shape(), (40, 72));
}
