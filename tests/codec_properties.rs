//! Property-based tests on the LLM.265 tensor codec's public contract.

use llm265::core::{Llm265Codec, Llm265Config, RateTarget, TensorCodec};
use llm265::tensor::check::Checker;
use llm265::tensor::prop_ensure;
use llm265::tensor::rng::Pcg32;
use llm265::tensor::stats;
use llm265::tensor::synthetic::{llm_weight, WeightProfile};
use llm265::tensor::Tensor;

fn random_tensor(seed: u64, rows: usize, cols: usize, scale: f32) -> Tensor {
    let mut rng = Pcg32::seed_from(seed);
    Tensor::from_fn(rows, cols, |_, _| (rng.normal() as f32) * scale)
}

#[test]
fn prop_roundtrip_preserves_shape_and_bounds_error() {
    Checker::new(8).run("roundtrip preserves shape and bounds error", |rng| {
        let seed = rng.next_u64();
        let rows = 8 + rng.below_usize(88);
        let cols = 8 + rng.below_usize(88);
        let qp = 8 + rng.below(38);
        let t = random_tensor(seed, rows, cols, 0.1);
        let codec = Llm265Codec::new();
        let enc = codec
            .encode(&t, RateTarget::Qp(qp as f64))
            .map_err(|e| e.to_string())?;
        let dec = codec.decode(&enc).map_err(|e| e.to_string())?;
        prop_ensure!(dec.shape() == (rows, cols), "shape {:?}", dec.shape());
        // Parseval bounds the *MSE* by the quantizer step (the DCT may
        // concentrate error on individual pixels, so only a loose
        // per-pixel bound holds).
        let (lo, hi) = t.min_max();
        let chunk_step = ((hi - lo).max(1e-9) / 255.0) as f64;
        let qstep = 2f64.powf((qp as f64 - 4.0) / 6.0);
        let mse = stats::tensor_mse(&t, &dec);
        // Dead-zone quantizer: per-coefficient error ≤ (2/3)·qstep, plus
        // the 8-bit chunk quantization floor; 1.5x slack for rounding.
        let mse_bound = chunk_step * chunk_step * (0.45 * qstep * qstep + 0.1) * 1.5 + 1e-12;
        prop_ensure!(mse <= mse_bound, "mse {mse} bound {mse_bound}");
        let pixel_bound = chunk_step * (4.0 * qstep + 2.0) + 1e-6;
        for (a, b) in t.data().iter().zip(dec.data()) {
            prop_ensure!(
                ((a - b).abs() as f64) <= pixel_bound,
                "err {} bound {pixel_bound}",
                (a - b).abs()
            );
        }
        Ok(())
    });
}

#[test]
fn prop_bits_target_respected_for_feasible_budgets() {
    Checker::new(8).run("bits target respected", |rng| {
        let seed = rng.next_u64();
        let budget_tenths = 15 + rng.below(45);
        let budget = budget_tenths as f64 / 10.0;
        let t = random_tensor(seed, 64, 64, 0.05);
        let codec = Llm265Codec::new();
        let enc = codec
            .encode(&t, RateTarget::BitsPerValue(budget))
            .map_err(|e| e.to_string())?;
        prop_ensure!(
            enc.bits_per_value() <= budget * 1.02 + 0.02,
            "target {budget} got {}",
            enc.bits_per_value()
        );
        Ok(())
    });
}

#[test]
fn prop_encoding_is_deterministic() {
    Checker::new(8).run("encoding is deterministic", |rng| {
        let t = random_tensor(rng.next_u64(), 48, 48, 0.2);
        let codec = Llm265Codec::new();
        let a = codec
            .encode(&t, RateTarget::Qp(26.0))
            .map_err(|e| e.to_string())?;
        let b = codec
            .encode(&t, RateTarget::Qp(26.0))
            .map_err(|e| e.to_string())?;
        prop_ensure!(a.bytes() == b.bytes(), "same input, different bytes");
        Ok(())
    });
}

#[test]
fn prop_chunked_equals_shape_for_any_chunk_limit() {
    Checker::new(8).run("chunked equals shape for any chunk limit", |rng| {
        let seed = rng.next_u64();
        let rows = 16 + rng.below_usize(64);
        let chunk_rows = 4 + rng.below_usize(28);
        let t = random_tensor(seed, rows, 40, 0.1);
        let codec = Llm265Codec::with_config(Llm265Config {
            max_chunk_pixels: 40 * chunk_rows,
            ..Llm265Config::default()
        });
        let enc = codec
            .encode(&t, RateTarget::Qp(22.0))
            .map_err(|e| e.to_string())?;
        let dec = codec.decode(&enc).map_err(|e| e.to_string())?;
        prop_ensure!(dec.shape() == t.shape(), "shape {:?}", dec.shape());
        let nmse = stats::tensor_mse(&t, &dec) / stats::variance(t.data()).max(1e-30);
        prop_ensure!(nmse < 0.05, "nmse {nmse}");
        Ok(())
    });
}

#[test]
fn structured_weights_compress_better_than_iid() {
    // The codec must exploit exactly the structure §3.1 describes.
    let mut rng = Pcg32::seed_from(77);
    let structured = llm_weight(96, 96, &WeightProfile::default(), &mut rng);
    let iid = llm_weight(96, 96, &WeightProfile::iid(), &mut rng);
    let codec = Llm265Codec::new();
    let nmse_at = |t: &Tensor, bits: f64| {
        let enc = codec.encode(t, RateTarget::BitsPerValue(bits)).unwrap();
        let dec = codec.decode(&enc).unwrap();
        stats::tensor_mse(t, &dec) / stats::variance(t.data())
    };
    let e_structured = nmse_at(&structured, 2.5);
    let e_iid = nmse_at(&iid, 2.5);
    assert!(
        e_structured < e_iid * 0.8,
        "structured {e_structured} vs iid {e_iid}"
    );
}

#[test]
fn stream_is_self_describing() {
    // Decoding requires nothing but the bytes: shape and chunk map travel
    // in-band.
    let t = random_tensor(5, 40, 72, 0.3);
    let codec = Llm265Codec::new();
    let enc = codec.encode(&t, RateTarget::BitsPerValue(3.0)).unwrap();
    // A fresh codec instance (different config defaults do not matter for
    // decode) recovers the tensor.
    let other = Llm265Codec::with_config(Llm265Config {
        max_chunk_pixels: 1 << 12,
        ..Llm265Config::default()
    });
    let dec = other.decode(&enc).unwrap();
    assert_eq!(dec.shape(), (40, 72));
}
