//! The decoder-only transformer language model.
//!
//! Small GPT-style architecture: token + learned positional embeddings,
//! pre-norm blocks (attention + GELU MLP), final norm, output projection.
//! Forward/backward are hand-written; the model exposes three evaluation
//! paths the experiments use:
//!
//! - [`TransformerLm::train_step`] — full backprop + optimizer step;
//! - [`TransformerLm::eval_perplexity`] — clean evaluation;
//! - [`TransformerLm::eval_with_hooks`] — evaluation under KV-cache and/or
//!   inter-stage activation compression (§4.2 of the paper);
//!
//! plus [`TransformerLm::compress_weights`], which transcodes every weight
//! matrix through a compressor (§4.1 weight compression).

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;
use llm265_tensor::Tensor;

use crate::attention::MultiHeadAttention;
use crate::layers::{gelu, gelu_grad, Embedding, LayerNorm, Linear};
use crate::optimizer::Optimizer;
use crate::param::{Param, VisitParams};

/// Architecture hyperparameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub dim: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Maximum sequence length (positional table size).
    pub max_seq: usize,
}

impl TransformerConfig {
    /// A tiny model for unit tests (fast, still learns the synthetic
    /// language).
    pub fn tiny() -> Self {
        TransformerConfig {
            vocab: 32,
            dim: 32,
            layers: 2,
            heads: 2,
            max_seq: 64,
        }
    }

    /// A small model for the experiment binaries (the "Pythia-like" and
    /// "LLaMA-like" stand-in scale).
    pub fn small() -> Self {
        TransformerConfig {
            vocab: 64,
            dim: 64,
            layers: 4,
            heads: 4,
            max_seq: 128,
        }
    }
}

/// One pre-norm transformer block.
#[derive(Debug, Clone)]
struct Block {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    fc1: Linear,
    fc2: Linear,
    saved_mlp_pre: Option<Tensor>,
}

impl Block {
    fn new(name: &str, dim: usize, heads: usize, rng: &mut Pcg32) -> Self {
        Block {
            ln1: LayerNorm::new(&format!("{name}.ln1"), dim),
            attn: MultiHeadAttention::new(&format!("{name}.attn"), dim, heads, rng),
            ln2: LayerNorm::new(&format!("{name}.ln2"), dim),
            fc1: Linear::new(&format!("{name}.fc1"), dim, dim * 4, rng),
            fc2: Linear::new(&format!("{name}.fc2"), dim * 4, dim, rng),
            saved_mlp_pre: None,
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        let a = self.attn.forward(&self.ln1.forward(&h));
        h.add_assign(&a);
        let pre = self.fc1.forward(&self.ln2.forward(&h));
        let act = pre.map(gelu);
        let m = self.fc2.forward(&act);
        self.saved_mlp_pre = Some(pre);
        let mut out = h;
        out.add_assign(&m);
        out
    }

    fn forward_inference(
        &self,
        x: &Tensor,
        kv_hook: Option<&mut dyn LossyCompressor>,
        kv_bits: &mut u64,
    ) -> Tensor {
        let mut h = x.clone();
        let a = self
            .attn
            .forward_inference(&self.ln1.forward_inference(&h), kv_hook, kv_bits);
        h.add_assign(&a);
        let pre = self.fc1.forward_inference(&self.ln2.forward_inference(&h));
        let act = pre.map(gelu);
        let m = self.fc2.forward_inference(&act);
        let mut out = h;
        out.add_assign(&m);
        out
    }

    /// Incremental decode through the block for one position: attention
    /// uses (and grows) the provided per-block KV cache.
    fn forward_cached(&self, x_last: &Tensor, ck: &mut Tensor, cv: &mut Tensor) -> Tensor {
        let mut h = x_last.clone();
        let a = self
            .attn
            .forward_cached(&self.ln1.forward_inference(&h), ck, cv);
        h.add_assign(&a);
        let pre = self.fc1.forward_inference(&self.ln2.forward_inference(&h));
        let act = pre.map(gelu);
        let m = self.fc2.forward_inference(&act);
        let mut out = h;
        out.add_assign(&m);
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        // Residual 2: dy flows both into the MLP branch and straight
        // through.
        let pre = self
            .saved_mlp_pre
            .take()
            .expect("block backward before forward");
        let dact = self.fc2.backward(dy);
        let dpre = Tensor::from_fn(dact.rows(), dact.cols(), |r, c| {
            dact[(r, c)] * gelu_grad(pre[(r, c)])
        });
        let dln2_in = self.ln2.backward(&self.fc1.backward(&dpre));
        let mut dh = dy.clone();
        dh.add_assign(&dln2_in);

        // Residual 1.
        let dattn_in = self.ln1.backward(&self.attn.backward(&dh));
        let mut dx = dh;
        dx.add_assign(&dattn_in);
        dx
    }

    fn visit(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit(f);
        self.attn.visit(f);
        self.ln2.visit(f);
        self.fc1.visit(f);
        self.fc2.visit(f);
    }
}

/// A batch of training sequences (token ids).
pub type Batch = Vec<Vec<u16>>;

/// Compression hooks applied during [`TransformerLm::eval_with_hooks`].
pub struct EvalHooks<'a> {
    /// Applied to every block's projected K and V matrices (the KV cache).
    pub kv: Option<&'a mut dyn LossyCompressor>,
    /// Applied to hidden states after the listed block indices — the
    /// activations crossing pipeline-stage boundaries.
    pub hidden: Option<(&'a mut dyn LossyCompressor, &'a [usize])>,
}

impl<'a> EvalHooks<'a> {
    /// No hooks: plain evaluation.
    pub fn none() -> Self {
        EvalHooks {
            kv: None,
            hidden: None,
        }
    }
}

/// Result of a hooked evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HookedEval {
    /// Perplexity over the batch.
    pub perplexity: f64,
    /// Total bits the KV hook produced.
    pub kv_bits: u64,
    /// Total bits the hidden-state hook produced.
    pub hidden_bits: u64,
    /// Number of KV values compressed.
    pub kv_values: u64,
    /// Number of hidden values compressed.
    pub hidden_values: u64,
}

/// The decoder-only language model.
#[derive(Debug, Clone)]
pub struct TransformerLm {
    config: TransformerConfig,
    tok_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<Block>,
    ln_f: LayerNorm,
    head: Linear,
}

impl TransformerLm {
    /// Creates a model with randomly initialized parameters.
    pub fn new(config: &TransformerConfig, rng: &mut Pcg32) -> Self {
        let blocks = (0..config.layers)
            .map(|l| Block::new(&format!("block{l}"), config.dim, config.heads, rng))
            .collect();
        TransformerLm {
            tok_emb: Embedding::new("tok", config.vocab, config.dim, rng),
            pos_emb: Embedding::new("pos", config.max_seq, config.dim, rng),
            blocks,
            ln_f: LayerNorm::new("ln_f", config.dim),
            head: Linear::new("head", config.dim, config.vocab, rng),
            config: config.clone(),
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Number of transformer blocks (used by the pipeline-parallel
    /// simulator to place stage boundaries).
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn check_seq(&self, seq: &[u16]) {
        assert!(seq.len() >= 2, "sequence must have at least 2 tokens");
        assert!(
            seq.len() <= self.config.max_seq,
            "sequence longer than max_seq"
        );
    }

    /// Forward + backward over one sequence; returns `(sum nll, tokens)`.
    /// Gradients accumulate into the parameters.
    pub fn forward_backward(&mut self, seq: &[u16]) -> (f64, usize) {
        self.check_seq(seq);
        let t_len = seq.len() - 1;
        let ids: Vec<usize> = seq[..t_len].iter().map(|&t| t as usize).collect();
        let pos: Vec<usize> = (0..t_len).collect();

        let mut h = self.tok_emb.forward(&ids);
        h.add_assign(&self.pos_emb.forward(&pos));
        for b in &mut self.blocks {
            h = b.forward(&h);
        }
        let hn = self.ln_f.forward(&h);
        let mut logits = self.head.forward(&hn);

        // Softmax + cross entropy; dlogits = p − onehot.
        crate::layers::softmax_rows(&mut logits);
        let mut nll = 0.0f64;
        let mut dlogits = logits;
        for (r, &target) in seq[1..].iter().enumerate() {
            let target = target as usize;
            let p = dlogits[(r, target)].max(1e-12);
            nll += -(p as f64).ln();
            dlogits[(r, target)] -= 1.0;
        }

        let dhn = self.head.backward(&dlogits);
        let mut dh = self.ln_f.backward(&dhn);
        for b in self.blocks.iter_mut().rev() {
            dh = b.backward(&dh);
        }
        self.pos_emb.backward(&dh);
        self.tok_emb.backward(&dh);
        (nll, t_len)
    }

    /// One training step over a batch: zero grads, accumulate, scale by
    /// 1/tokens, optimizer step. Returns the mean per-token loss.
    pub fn train_step(&mut self, batch: &Batch, opt: &mut dyn Optimizer) -> f64 {
        self.zero_grads();
        let mut nll = 0.0;
        let mut tokens = 0usize;
        for seq in batch {
            let (n, t) = self.forward_backward(seq);
            nll += n;
            tokens += t;
        }
        let scale = 1.0 / tokens.max(1) as f32;
        self.visit_params(&mut |p| p.grad.scale(scale));
        opt.step(self);
        nll / tokens.max(1) as f64
    }

    /// As [`Self::train_step`] but lets the caller transform gradients
    /// before the optimizer step (gradient-compression experiments).
    pub fn train_step_with_grad_hook(
        &mut self,
        batch: &Batch,
        opt: &mut dyn Optimizer,
        hook: &mut dyn FnMut(&mut Param),
    ) -> f64 {
        self.zero_grads();
        let mut nll = 0.0;
        let mut tokens = 0usize;
        for seq in batch {
            let (n, t) = self.forward_backward(seq);
            nll += n;
            tokens += t;
        }
        let scale = 1.0 / tokens.max(1) as f32;
        self.visit_params(&mut |p| p.grad.scale(scale));
        self.visit_params(hook);
        opt.step(self);
        nll / tokens.max(1) as f64
    }

    /// Forward + backward with hooks at pipeline-stage boundaries: after
    /// each block index in `boundaries`, the hidden state passes through
    /// `fwd` on the way up and its gradient through `bwd` on the way
    /// down — exactly the tensors pipeline parallelism sends between
    /// stages (§5.1 of the paper). Returns `(sum nll, tokens)`.
    pub fn forward_backward_with_boundaries(
        &mut self,
        seq: &[u16],
        boundaries: &[usize],
        fwd: &mut dyn FnMut(&Tensor) -> Tensor,
        bwd: &mut dyn FnMut(&Tensor) -> Tensor,
    ) -> (f64, usize) {
        self.check_seq(seq);
        let t_len = seq.len() - 1;
        let ids: Vec<usize> = seq[..t_len].iter().map(|&t| t as usize).collect();
        let pos: Vec<usize> = (0..t_len).collect();

        let mut h = self.tok_emb.forward(&ids);
        h.add_assign(&self.pos_emb.forward(&pos));
        for (i, b) in self.blocks.iter_mut().enumerate() {
            h = b.forward(&h);
            if boundaries.contains(&i) {
                h = fwd(&h);
            }
        }
        let hn = self.ln_f.forward(&h);
        let mut logits = self.head.forward(&hn);

        crate::layers::softmax_rows(&mut logits);
        let mut nll = 0.0f64;
        let mut dlogits = logits;
        for (r, &target) in seq[1..].iter().enumerate() {
            let target = target as usize;
            let p = dlogits[(r, target)].max(1e-12);
            nll += -(p as f64).ln();
            dlogits[(r, target)] -= 1.0;
        }

        let dhn = self.head.backward(&dlogits);
        let mut dh = self.ln_f.backward(&dhn);
        let n_blocks = self.blocks.len();
        for (rev, b) in self.blocks.iter_mut().rev().enumerate() {
            let i = n_blocks - 1 - rev;
            if boundaries.contains(&i) {
                dh = bwd(&dh);
            }
            dh = b.backward(&dh);
        }
        self.pos_emb.backward(&dh);
        self.tok_emb.backward(&dh);
        (nll, t_len)
    }

    /// Per-token negative log likelihood of one sequence (no grads).
    pub fn sequence_nll(&self, seq: &[u16]) -> (f64, usize) {
        self.nll_with_hooks(seq, &mut EvalHooks::none(), &mut 0, &mut 0, &mut 0, &mut 0)
    }

    fn nll_with_hooks(
        &self,
        seq: &[u16],
        hooks: &mut EvalHooks<'_>,
        kv_bits: &mut u64,
        hidden_bits: &mut u64,
        kv_values: &mut u64,
        hidden_values: &mut u64,
    ) -> (f64, usize) {
        self.check_seq(seq);
        let t_len = seq.len() - 1;
        let ids: Vec<usize> = seq[..t_len].iter().map(|&t| t as usize).collect();
        let pos: Vec<usize> = (0..t_len).collect();

        let mut h = self.tok_emb.lookup(&ids);
        h.add_assign(&self.pos_emb.lookup(&pos));
        for (i, b) in self.blocks.iter().enumerate() {
            h = match hooks.kv {
                Some(ref mut hook) => {
                    *kv_values += 2 * (t_len * self.config.dim) as u64;
                    b.forward_inference(&h, Some(&mut **hook), kv_bits)
                }
                None => b.forward_inference(&h, None, kv_bits),
            };
            if let Some((hook, boundaries)) = hooks.hidden.as_mut() {
                if boundaries.contains(&i) {
                    let (h2, bits) = hook.transcode(&h);
                    *hidden_bits += bits;
                    *hidden_values += h.len() as u64;
                    h = h2;
                }
            }
        }
        let hn = self.ln_f.forward_inference(&h);
        let mut logits = self.head.forward_inference(&hn);
        crate::layers::softmax_rows(&mut logits);
        let mut nll = 0.0f64;
        for (r, &target) in seq[1..].iter().enumerate() {
            let p = logits[(r, target as usize)].max(1e-12);
            nll += -(p as f64).ln();
        }
        (nll, t_len)
    }

    /// Perplexity over a batch (no compression).
    pub fn eval_perplexity(&self, batch: &Batch) -> f64 {
        let mut nll = 0.0;
        let mut tokens = 0usize;
        for seq in batch {
            let (n, t) = self.sequence_nll(seq);
            nll += n;
            tokens += t;
        }
        (nll / tokens.max(1) as f64).exp()
    }

    /// Perplexity under compression hooks, with bits accounting.
    pub fn eval_with_hooks(&self, batch: &Batch, hooks: &mut EvalHooks<'_>) -> HookedEval {
        let mut nll = 0.0;
        let mut tokens = 0usize;
        let (mut kb, mut hb, mut kvv, mut hv) = (0u64, 0u64, 0u64, 0u64);
        for seq in batch {
            let (n, t) = self.nll_with_hooks(seq, hooks, &mut kb, &mut hb, &mut kvv, &mut hv);
            nll += n;
            tokens += t;
        }
        HookedEval {
            perplexity: (nll / tokens.max(1) as f64).exp(),
            kv_bits: kb,
            hidden_bits: hb,
            kv_values: kvv,
            hidden_values: hv,
        }
    }

    /// Next-token distribution after `context` (softmax of the final
    /// position's logits).
    ///
    /// # Panics
    ///
    /// Panics if `context` is empty or exceeds `max_seq`.
    pub fn next_token_distribution(&self, context: &[u16]) -> Vec<f32> {
        assert!(!context.is_empty(), "context must be non-empty");
        assert!(context.len() <= self.config.max_seq, "context too long");
        let ids: Vec<usize> = context.iter().map(|&t| t as usize).collect();
        let pos: Vec<usize> = (0..context.len()).collect();
        let mut h = self.tok_emb.lookup(&ids);
        h.add_assign(&self.pos_emb.lookup(&pos));
        let mut bits = 0u64;
        for b in &self.blocks {
            h = b.forward_inference(&h, None, &mut bits);
        }
        let hn = self.ln_f.forward_inference(&h);
        let mut logits = self.head.forward_inference(&hn);
        crate::layers::softmax_rows(&mut logits);
        logits.row(logits.rows() - 1).to_vec()
    }

    /// Incremental decode with a real KV cache: processes `prompt` one
    /// token at a time (filling the cache), then greedily decodes
    /// `n_tokens` more, reusing cached keys/values — the inference shape
    /// whose memory footprint §4.2 of the paper compresses. Produces
    /// exactly the same tokens as greedy [`TransformerLm::generate`].
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or the result would exceed `max_seq`.
    pub fn generate_cached(&self, prompt: &[u16], n_tokens: usize) -> Vec<u16> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(
            prompt.len() + n_tokens <= self.config.max_seq,
            "generation would exceed max_seq"
        );
        let dim = self.config.dim;
        let mut caches: Vec<(Tensor, Tensor)> = (0..self.blocks.len())
            .map(|_| (Tensor::zeros(0, dim), Tensor::zeros(0, dim)))
            .collect();
        let mut seq = prompt.to_vec();
        let mut last_probs: Option<Vec<f32>> = None;

        let total = prompt.len() + n_tokens;
        for pos in 0..total {
            // Decide the token at `pos`: prompt tokens are given; decoded
            // tokens come from the previous step's distribution.
            if pos >= prompt.len() {
                let probs = last_probs.take().expect("distribution from previous step");
                let tok = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0) as u16;
                seq.push(tok);
            }
            let tok = seq[pos] as usize;
            let mut h = self.tok_emb.lookup(&[tok]);
            h.add_assign(&self.pos_emb.lookup(&[pos]));
            for (b, (ck, cv)) in self.blocks.iter().zip(caches.iter_mut()) {
                h = b.forward_cached(&h, ck, cv);
            }
            let hn = self.ln_f.forward_inference(&h);
            let mut logits = self.head.forward_inference(&hn);
            crate::layers::softmax_rows(&mut logits);
            last_probs = Some(logits.row(0).to_vec());
        }
        seq
    }

    /// Samples `n_tokens` continuation tokens after `prompt` at the given
    /// softmax temperature (greedy when `temperature <= 0`).
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or the result would exceed `max_seq`.
    pub fn generate(
        &self,
        prompt: &[u16],
        n_tokens: usize,
        temperature: f64,
        rng: &mut Pcg32,
    ) -> Vec<u16> {
        assert!(
            prompt.len() + n_tokens <= self.config.max_seq,
            "generation would exceed max_seq"
        );
        let mut seq = prompt.to_vec();
        for _ in 0..n_tokens {
            let probs = self.next_token_distribution(&seq);
            let tok = if temperature <= 0.0 {
                probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0) as u16
            } else {
                // Temperature-scaled sampling.
                let scaled: Vec<f64> = probs
                    .iter()
                    .map(|&p| (p as f64).max(1e-12).powf(1.0 / temperature))
                    .collect();
                let total: f64 = scaled.iter().sum();
                let mut u = rng.f64() * total;
                let mut pick = scaled.len() - 1;
                for (i, &w) in scaled.iter().enumerate() {
                    if u < w {
                        pick = i;
                        break;
                    }
                    u -= w;
                }
                pick as u16
            };
            seq.push(tok);
        }
        seq
    }

    /// Log-probability the model assigns to `continuation` after
    /// `context` — the multiple-choice scoring rule of the probe tasks.
    pub fn continuation_logprob(&self, context: &[u16], continuation: &[u16]) -> f64 {
        let mut seq = context.to_vec();
        seq.extend_from_slice(continuation);
        let (nll_full, _) = self.sequence_nll(&seq);
        if context.len() >= 2 {
            let (nll_ctx, _) = self.sequence_nll(context);
            -(nll_full - nll_ctx)
        } else {
            -nll_full
        }
    }

    /// Transcodes every weight matrix through `compressor`, replacing the
    /// values with their reconstructions. Returns `(total bits, total
    /// values)` — the paper's §4.1 weight compression. Tensors smaller
    /// than [`MIN_COMPRESS_VALUES`] stay FP16 (counted at 16 bits/value):
    /// their fixed stream headers would exceed any sane budget, and real
    /// deployments leave such tensors uncompressed.
    pub fn compress_weights(&mut self, compressor: &mut dyn LossyCompressor) -> (u64, u64) {
        let mut bits = 0u64;
        let mut values = 0u64;
        self.visit_params(&mut |p| {
            if p.is_weight_matrix() {
                if p.value.len() >= MIN_COMPRESS_VALUES {
                    let (out, b) = compressor.transcode(&p.value);
                    p.value = out;
                    bits += b;
                } else {
                    bits += p.value.len() as u64 * 16;
                }
                values += p.value.len() as u64;
            }
        });
        (bits, values)
    }
}

/// Weight matrices below this element count are exempt from compression
/// (headers would dominate; see [`TransformerLm::compress_weights`]).
pub const MIN_COMPRESS_VALUES: usize = 512;

impl VisitParams for TransformerLm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok_emb.visit(f);
        self.pos_emb.visit(f);
        for b in &mut self.blocks {
            b.visit(f);
        }
        self.ln_f.visit(f);
        self.head.visit(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{LangConfig, SyntheticLang};
    use crate::optimizer::Adam;

    fn tiny_model(seed: u64) -> TransformerLm {
        TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(seed))
    }

    #[test]
    fn untrained_perplexity_near_vocab_size() {
        let model = tiny_model(1);
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let batch = lang
            .sample_batch(4, 32, &mut Pcg32::seed_from(2))
            .expect("grammar");
        let ppl = model.eval_perplexity(&batch);
        // Uniform predictions give ppl = vocab = 32; random init is close.
        assert!(ppl > 16.0 && ppl < 64.0, "ppl {ppl}");
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = tiny_model(3);
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut rng = Pcg32::seed_from(4);
        let mut opt = Adam::new(3e-3);
        let first = model.train_step(
            &lang.sample_batch(4, 32, &mut rng).expect("grammar"),
            &mut opt,
        );
        let mut last = first;
        for _ in 0..40 {
            last = model.train_step(
                &lang.sample_batch(4, 32, &mut rng).expect("grammar"),
                &mut opt,
            );
        }
        assert!(
            last < first * 0.8,
            "loss should fall: first {first} last {last}"
        );
    }

    #[test]
    fn whole_model_gradient_check() {
        // Finite-difference check through the full stack on one weight.
        let mut model = tiny_model(5);
        let seq: Vec<u16> = vec![1, 5, 9, 2, 7, 3];
        model.zero_grads();
        let (nll, _) = model.forward_backward(&seq);
        assert!(nll.is_finite());

        // Pick a mid-network weight.
        let mut names = Vec::new();
        model.visit_params(&mut |p| names.push(p.name.clone()));
        let target_name = "block1.fc1.w";
        assert!(names.iter().any(|n| n == target_name));

        let mut analytic = 0.0f32;
        model.visit_params(&mut |p| {
            if p.name == target_name {
                analytic = p.grad[(3, 7)];
            }
        });

        let eps = 1e-2f32;
        let loss_at = |delta: f32, model: &mut TransformerLm| -> f64 {
            model.visit_params(&mut |p| {
                if p.name == target_name {
                    p.value[(3, 7)] += delta;
                }
            });
            let (nll, _) = model.sequence_nll(&seq);
            model.visit_params(&mut |p| {
                if p.name == target_name {
                    p.value[(3, 7)] -= delta;
                }
            });
            nll
        };
        let lp = loss_at(eps, &mut model);
        let lm = loss_at(-eps, &mut model);
        let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
        assert!(
            (analytic - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn hooked_eval_counts_bits() {
        struct Noop;
        impl LossyCompressor for Noop {
            fn name(&self) -> String {
                "noop".into()
            }
            fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
                (t.clone(), t.len() as u64 * 16)
            }
        }
        let model = tiny_model(6);
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let batch = lang
            .sample_batch(2, 16, &mut Pcg32::seed_from(7))
            .expect("grammar");

        let clean = model.eval_perplexity(&batch);
        let mut kv = Noop;
        let mut hid = Noop;
        let boundaries = [0usize];
        let mut hooks = EvalHooks {
            kv: Some(&mut kv),
            hidden: Some((&mut hid, &boundaries)),
        };
        let res = model.eval_with_hooks(&batch, &mut hooks);
        // Noop hooks: identical perplexity, non-zero bits.
        assert!((res.perplexity - clean).abs() < 1e-9);
        assert!(res.kv_bits > 0);
        assert!(res.hidden_bits > 0);
        assert_eq!(res.kv_bits, res.kv_values * 16);
        assert_eq!(res.hidden_bits, res.hidden_values * 16);
    }

    #[test]
    fn continuation_scoring_prefers_likely_tokens() {
        // Train briefly, then the true successor should outscore a random
        // non-successor on average.
        let mut model = tiny_model(8);
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut rng = Pcg32::seed_from(9);
        let mut opt = Adam::new(3e-3);
        for _ in 0..60 {
            let batch = lang.sample_batch(4, 32, &mut rng).expect("grammar");
            model.train_step(&batch, &mut opt);
        }
        let mut correct = 0;
        let trials = 40;
        for _ in 0..trials {
            let (ctx, good, bad) = lang.choice_item(24, &mut rng).expect("grammar");
            let s_good = model.continuation_logprob(&ctx, &[good]);
            let s_bad = model.continuation_logprob(&ctx, &[bad]);
            if s_good > s_bad {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / trials as f64 > 0.7,
            "choice accuracy {correct}/{trials}"
        );
    }

    #[test]
    fn weight_compression_hits_weight_matrices_only() {
        struct Zero;
        impl LossyCompressor for Zero {
            fn name(&self) -> String {
                "zero".into()
            }
            fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
                (Tensor::zeros(t.rows(), t.cols()), t.len() as u64)
            }
        }
        let mut model = tiny_model(10);
        let (bits, values) = model.compress_weights(&mut Zero);
        assert_eq!(bits, values);
        // Weight matrices zeroed, norms untouched.
        model.visit_params(&mut |p| {
            if p.is_weight_matrix() {
                assert!(p.value.data().iter().all(|&v| v == 0.0), "{}", p.name);
            } else if p.name.contains("gamma") {
                assert!(p.value.data().iter().all(|&v| v == 1.0), "{}", p.name);
            }
        });
    }

    #[test]
    fn param_count_is_plausible() {
        let mut model = tiny_model(11);
        let n = model.param_count();
        // tiny: dim 32, 2 layers → roughly 60k params.
        assert!(n > 20_000 && n < 200_000, "param count {n}");
    }
}

#[cfg(test)]
mod generation_tests {
    use super::*;
    use crate::data::{LangConfig, SyntheticLang};
    use crate::optimizer::Adam;

    #[test]
    fn greedy_generation_is_deterministic_and_grammatical() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(1));
        let mut opt = Adam::new(3e-3);
        let mut rng = Pcg32::seed_from(2);
        for _ in 0..80 {
            let batch = lang.sample_batch(4, 32, &mut rng).expect("grammar");
            model.train_step(&batch, &mut opt);
        }
        let prompt = lang
            .sample_seq(8, &mut Pcg32::seed_from(3))
            .expect("grammar");
        let a = model.generate(&prompt, 16, 0.0, &mut Pcg32::seed_from(4));
        let b = model.generate(&prompt, 16, 0.0, &mut Pcg32::seed_from(99));
        assert_eq!(a, b, "greedy decode ignores the rng");
        assert_eq!(a.len(), 24);
        // A trained model's greedy continuations mostly follow the grammar.
        let mut legal = 0usize;
        let mut checked = 0usize;
        for w in a[8..].windows(2) {
            if w[0] != lang.marker() && w[1] != lang.marker() {
                checked += 1;
                if lang.successors(w[0]).contains(&w[1]) {
                    legal += 1;
                }
            }
        }
        assert!(
            legal * 3 >= checked * 2,
            "greedy decode should follow the grammar: {legal}/{checked}"
        );
    }

    #[test]
    fn sampled_generation_varies_with_seed() {
        let model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(5));
        let prompt = [1u16, 2, 3];
        let a = model.generate(&prompt, 20, 1.0, &mut Pcg32::seed_from(6));
        let b = model.generate(&prompt, 20, 1.0, &mut Pcg32::seed_from(7));
        assert_ne!(a, b, "sampling should vary across seeds");
        assert!(a.iter().all(|&t| (t as usize) < 32));
    }

    #[test]
    fn next_token_distribution_is_normalized() {
        let model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(8));
        let p = model.next_token_distribution(&[4, 9, 17]);
        assert_eq!(p.len(), 32);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "exceed max_seq")]
    fn generation_respects_max_seq() {
        let model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(9));
        let prompt = vec![1u16; 60];
        let _ = model.generate(&prompt, 10, 0.0, &mut Pcg32::seed_from(10));
    }
}

#[cfg(test)]
mod kv_cache_decode_tests {
    use super::*;
    use crate::data::{LangConfig, SyntheticLang};
    use crate::optimizer::Adam;

    #[test]
    fn cached_generation_matches_full_greedy_decode() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(30));
        let mut opt = Adam::new(3e-3);
        let mut rng = Pcg32::seed_from(31);
        for _ in 0..40 {
            let batch = lang.sample_batch(4, 32, &mut rng).expect("grammar");
            model.train_step(&batch, &mut opt);
        }
        let prompt = lang
            .sample_seq(6, &mut Pcg32::seed_from(32))
            .expect("grammar");
        let full = model.generate(&prompt, 18, 0.0, &mut Pcg32::seed_from(33));
        let cached = model.generate_cached(&prompt, 18);
        assert_eq!(full, cached, "KV-cached decode must equal full decode");
    }

    #[test]
    fn cached_generation_on_untrained_model() {
        let model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(34));
        let out = model.generate_cached(&[3, 7], 5);
        assert_eq!(out.len(), 7);
        assert_eq!(&out[..2], &[3, 7]);
    }

    #[test]
    #[should_panic(expected = "exceed max_seq")]
    fn cached_generation_respects_max_seq() {
        let model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(35));
        let _ = model.generate_cached(&[1u16; 60], 10);
    }
}
