//! Optimizers: Adam and LAMB.
//!
//! The data-parallel experiments (§5.2 of the paper) contrast LLM.265's
//! optimizer-agnostic gradient compression against 1-bit Adam / 1-bit
//! LAMB, which replace the optimizer itself. Both base optimizers are
//! implemented here so the comparison can hold the optimizer fixed.

use crate::param::{Param, VisitParams};

/// An optimizer over any model exposing [`VisitParams`].
pub trait Optimizer {
    /// Applies one update from the parameters' accumulated gradients.
    fn step(&mut self, model: &mut dyn VisitParams);
}

/// Per-parameter moment state.
#[derive(Debug, Clone, Default)]
struct Moments {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Adam with bias correction (Kingma & Ba).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    state: Vec<Moments>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Ensures the moment buffers for parameter `idx` exist and match `len`.
fn moments_for(state: &mut Vec<Moments>, idx: usize, len: usize) -> &mut Moments {
    if state.len() <= idx {
        state.resize_with(idx + 1, Moments::default);
    }
    let st = &mut state[idx];
    if st.m.len() != len {
        st.m = vec![0.0; len];
        st.v = vec![0.0; len];
    }
    st
}

/// Computes the bias-corrected Adam direction into `u`, updating moments.
#[allow(clippy::too_many_arguments)]
fn adam_direction(
    p: &Param,
    st: &mut Moments,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    u: &mut Vec<f32>,
) {
    let bc1 = 1.0 - beta1.powi(t as i32);
    let bc2 = 1.0 - beta2.powi(t as i32);
    let (b1, b2) = (beta1 as f32, beta2 as f32);
    u.clear();
    u.reserve(p.value.len());
    for (&g, (m, v)) in p
        .grad
        .data()
        .iter()
        .zip(st.m.iter_mut().zip(st.v.iter_mut()))
    {
        *m = b1 * *m + (1.0 - b1) * g;
        *v = b2 * *v + (1.0 - b2) * g * g;
        let mhat = *m as f64 / bc1;
        let vhat = *v as f64 / bc2;
        u.push((mhat / (vhat.sqrt() + eps)) as f32);
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn VisitParams) {
        self.t += 1;
        let (lr, beta1, beta2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let state = &mut self.state;
        let mut idx = 0;
        let mut u = Vec::new();
        model.visit_params(&mut |p| {
            let st = moments_for(state, idx, p.value.len());
            adam_direction(p, st, beta1, beta2, eps, t, &mut u);
            for (w, &ui) in p.value.data_mut().iter_mut().zip(&u) {
                *w -= (lr * ui as f64) as f32;
            }
            idx += 1;
        });
    }
}

/// LAMB: Adam update normalized per-parameter-tensor by the trust ratio
/// `‖w‖ / ‖u‖` (You et al.), as used by the 1-bit LAMB baseline.
#[derive(Debug, Clone)]
pub struct Lamb {
    inner: Adam,
}

impl Lamb {
    /// LAMB with standard betas.
    pub fn new(lr: f64) -> Self {
        Lamb {
            inner: Adam::new(lr),
        }
    }
}

impl Optimizer for Lamb {
    fn step(&mut self, model: &mut dyn VisitParams) {
        self.inner.t += 1;
        let (lr, beta1, beta2, eps, t) = (
            self.inner.lr,
            self.inner.beta1,
            self.inner.beta2,
            self.inner.eps,
            self.inner.t,
        );
        let state = &mut self.inner.state;
        let mut idx = 0;
        let mut u = Vec::new();
        model.visit_params(&mut |p| {
            let st = moments_for(state, idx, p.value.len());
            adam_direction(p, st, beta1, beta2, eps, t, &mut u);
            // Trust ratio: scale the Adam direction by ‖w‖/‖u‖.
            let w_norm = p.value.sq_norm().sqrt();
            let u_norm = u
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>()
                .sqrt();
            let trust = if w_norm > 0.0 && u_norm > 0.0 {
                (w_norm / u_norm).clamp(0.01, 10.0)
            } else {
                1.0
            };
            for (w, &ui) in p.value.data_mut().iter_mut().zip(&u) {
                *w -= (lr * trust * ui as f64) as f32;
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::Tensor;

    /// A one-parameter quadratic bowl: L(w) = Σ w².
    struct Bowl {
        p: Param,
    }

    impl Bowl {
        fn new(init: f32) -> Self {
            Bowl {
                p: Param {
                    name: "w".into(),
                    value: Tensor::full(4, 4, init),
                    grad: Tensor::zeros(4, 4),
                },
            }
        }

        fn set_grad(&mut self) {
            // dL/dw = 2w.
            let g: Vec<f32> = self.p.value.data().iter().map(|&w| 2.0 * w).collect();
            self.p.grad = Tensor::from_vec(4, 4, g);
        }

        fn loss(&self) -> f64 {
            self.p.value.sq_norm()
        }
    }

    impl VisitParams for Bowl {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut bowl = Bowl::new(1.0);
        let mut opt = Adam::new(0.05);
        let start = bowl.loss();
        for _ in 0..200 {
            bowl.set_grad();
            opt.step(&mut bowl);
        }
        assert!(bowl.loss() < start * 1e-3, "loss {}", bowl.loss());
    }

    #[test]
    fn lamb_minimizes_quadratic() {
        let mut bowl = Bowl::new(1.0);
        let mut opt = Lamb::new(0.05);
        let start = bowl.loss();
        for _ in 0..200 {
            bowl.set_grad();
            opt.step(&mut bowl);
        }
        assert!(bowl.loss() < start * 1e-2, "loss {}", bowl.loss());
    }

    #[test]
    fn adam_first_step_magnitude_close_to_lr() {
        // With bias correction, the first Adam step is ≈ lr per coordinate.
        let mut bowl = Bowl::new(1.0);
        let mut opt = Adam::new(0.1);
        bowl.set_grad();
        let before = bowl.p.value[(0, 0)];
        opt.step(&mut bowl);
        let delta = (before - bowl.p.value[(0, 0)]).abs();
        assert!((delta - 0.1).abs() < 0.01, "delta {delta}");
    }

    #[test]
    fn lr_setter_works() {
        let mut opt = Adam::new(0.1);
        opt.set_lr(0.5);
        assert_eq!(opt.lr(), 0.5);
    }
}
