//! Probe tasks: the accuracy metrics of the compression experiments.
//!
//! The paper scores compressed models on zero-shot multiple-choice suites
//! (PIQA, WinoGrande, …) and four non-LM tasks (Fig 7). We substitute:
//!
//! - [`probe_suite`] — eight multiple-choice task *families* over the
//!   synthetic language: each family conditions on a different slice of
//!   the grammar (token-class partitions plus a copy-recall family), so
//!   families differ in difficulty the way real task suites do.
//! - [`fig7_tasks`] — four synthetic feature-space tasks standing in for
//!   sentiment / retrieval / VQA / image classification, each scored on a
//!   trained [`MlpClassifier`].

use llm265_tensor::rng::Pcg32;
use llm265_tensor::Tensor;

use crate::data::{DataError, SyntheticLang};
use crate::mlp::MlpClassifier;
use crate::optimizer::Adam;
use crate::transformer::TransformerLm;

/// One multiple-choice item: context, candidates, index of the answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceItem {
    /// Context tokens.
    pub context: Vec<u16>,
    /// Candidate continuations (single tokens here).
    pub candidates: Vec<u16>,
    /// Index of the correct candidate.
    pub answer: usize,
}

/// A named set of multiple-choice items.
#[derive(Debug, Clone)]
pub struct ProbeTask {
    /// Task-family name.
    pub name: String,
    /// The items.
    pub items: Vec<ChoiceItem>,
}

impl ProbeTask {
    /// Scores a model on this task: fraction of items where the correct
    /// candidate gets the highest continuation log-probability.
    pub fn accuracy(&self, model: &TransformerLm) -> f64 {
        if self.items.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for item in &self.items {
            let mut best = (f64::NEG_INFINITY, 0usize);
            for (i, &cand) in item.candidates.iter().enumerate() {
                let s = model.continuation_logprob(&item.context, &[cand]);
                if s > best.0 {
                    best = (s, i);
                }
            }
            if best.1 == item.answer {
                correct += 1;
            }
        }
        correct as f64 / self.items.len() as f64
    }
}

/// Builds the eight-family probe suite: seven grammar-slice families
/// (items whose context ends in token class `id % 7`) plus one copy-recall
/// family that tests the long-range pattern.
///
/// # Errors
///
/// [`DataError::SamplingStuck`] if rejection sampling cannot fill every
/// grammar family within its attempt budget, plus any [`DataError`] the
/// underlying samplers report for a malformed grammar.
pub fn probe_suite(
    lang: &SyntheticLang,
    items_per_task: usize,
    seed: u64,
) -> Result<Vec<ProbeTask>, DataError> {
    let mut rng = Pcg32::seed_from(seed);
    let mut tasks: Vec<ProbeTask> = (0..7)
        .map(|class| ProbeTask {
            name: format!("grammar-{class}"),
            items: Vec::with_capacity(items_per_task),
        })
        .collect();

    // Fill the grammar families by rejection on the context's last token.
    // Hard items (top vs. second legal successor) keep the suite sensitive
    // to weight distortion — the measurement the compression experiments
    // depend on.
    let mut guard = 0usize;
    while tasks.iter().any(|t| t.items.len() < items_per_task) {
        guard += 1;
        if guard >= items_per_task * 2000 {
            return Err(DataError::SamplingStuck {
                family: "grammar",
                attempts: guard,
            });
        }
        let (ctx, good, bad) = lang.choice_item_hard(20, &mut rng)?;
        let class = (*ctx.last().ok_or(DataError::EmptyContext)? as usize) % 7;
        let task = &mut tasks[class];
        if task.items.len() >= items_per_task {
            continue;
        }
        // Shuffle the answer position deterministically.
        let answer_first = rng.chance(0.5);
        let (candidates, answer) = if answer_first {
            (vec![good, bad], 0)
        } else {
            (vec![bad, good], 1)
        };
        task.items.push(ChoiceItem {
            context: ctx,
            candidates,
            answer,
        });
    }

    // Copy-recall family: context ends in the marker; the answer is the
    // token copy_distance back, the distractor a random other token.
    let d = lang.config().copy_distance;
    let mut copy_items = Vec::with_capacity(items_per_task);
    while copy_items.len() < items_per_task {
        let mut ctx = lang.sample_seq(19, &mut rng)?;
        ctx.push(lang.marker());
        let good = ctx[ctx.len() - d];
        let bad = loop {
            let cand = rng.below((lang.config().vocab - 1) as u32) as u16;
            if cand != good {
                break cand;
            }
        };
        let answer_first = rng.chance(0.5);
        let (candidates, answer) = if answer_first {
            (vec![good, bad], 0)
        } else {
            (vec![bad, good], 1)
        };
        copy_items.push(ChoiceItem {
            context: ctx,
            candidates,
            answer,
        });
    }
    tasks.push(ProbeTask {
        name: "copy-recall".to_string(),
        items: copy_items,
    });
    Ok(tasks)
}

/// Mean accuracy across a task suite.
pub fn suite_accuracy(model: &TransformerLm, tasks: &[ProbeTask]) -> f64 {
    if tasks.is_empty() {
        return 0.0;
    }
    tasks.iter().map(|t| t.accuracy(model)).sum::<f64>() / tasks.len() as f64
}

/// A synthetic non-LM task: train/test features + labels and a display
/// name, stood in for the paper's Fig 7 workloads.
#[derive(Debug, Clone)]
pub struct FeatureTask {
    /// Task name ("sentiment", "retrieval", "vqa", "image").
    pub name: String,
    /// Training features.
    pub train_x: Tensor,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Held-out features.
    pub test_x: Tensor,
    /// Held-out labels.
    pub test_y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl FeatureTask {
    /// Trains a fresh MLP on the task and returns it.
    pub fn train_model(&self, hidden: usize, steps: usize, seed: u64) -> MlpClassifier {
        let mut rng = Pcg32::seed_from(seed);
        let mut model = MlpClassifier::new(self.train_x.cols(), hidden, self.classes, &mut rng);
        let mut opt = Adam::new(4e-3);
        for _ in 0..steps {
            model.train_step(&self.train_x, &self.train_y, &mut opt);
        }
        model
    }

    /// Held-out accuracy of a model on this task.
    pub fn accuracy(&self, model: &MlpClassifier) -> f64 {
        model.accuracy(&self.test_x, &self.test_y)
    }
}

fn class_prototype(dim: usize, class: usize, classes: usize, rng: &mut Pcg32) -> Vec<f32> {
    let _ = (class, classes);
    (0..dim).map(|_| rng.normal() as f32).collect()
}

fn prototype_task(
    name: &str,
    dim: usize,
    classes: usize,
    n_train: usize,
    n_test: usize,
    noise: f64,
    seed: u64,
) -> FeatureTask {
    let mut rng = Pcg32::seed_from(seed);
    let protos: Vec<Vec<f32>> = (0..classes)
        .map(|c| class_prototype(dim, c, classes, &mut rng))
        .collect();
    let sample = |n: usize, rng: &mut Pcg32| {
        let mut x = Tensor::zeros(n, dim);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let class = rng.below(classes as u32) as usize;
            for c in 0..dim {
                x[(r, c)] = protos[class][c] + (noise * rng.normal()) as f32;
            }
            y.push(class);
        }
        (x, y)
    };
    let (train_x, train_y) = sample(n_train, &mut rng);
    let (test_x, test_y) = sample(n_test, &mut rng);
    FeatureTask {
        name: name.to_string(),
        train_x,
        train_y,
        test_x,
        test_y,
        classes,
    }
}

/// Builds the four Fig-7 stand-in tasks. Each mirrors the shape of its
/// original: sentiment = 2-class over text-like features; retrieval =
/// many-class (match-the-prototype); VQA = fused two-modality features;
/// image = high-dimensional patch features with more noise.
pub fn fig7_tasks(seed: u64) -> Vec<FeatureTask> {
    // Noise levels are set so a healthy model scores well but not
    // perfectly — compression damage must register as accuracy loss.
    let mut tasks = vec![
        prototype_task("sentiment", 24, 2, 256, 256, 3.2, seed ^ 0x1),
        prototype_task("retrieval", 32, 8, 384, 256, 2.4, seed ^ 0x2),
        // VQA: concatenation of two modality blocks with different noise.
        {
            let mut t = prototype_task("vqa", 40, 4, 320, 256, 2.6, seed ^ 0x3);
            // Second "modality" half is noisier, as images are for VQA.
            let mut rng = Pcg32::seed_from(seed ^ 0x33);
            for x in [&mut t.train_x, &mut t.test_x] {
                for r in 0..x.rows() {
                    for c in 20..40 {
                        x[(r, c)] += (1.2 * rng.normal()) as f32;
                    }
                }
            }
            t
        },
        prototype_task("image", 48, 6, 384, 256, 3.0, seed ^ 0x4),
    ];
    // Keep name order stable for tables.
    tasks.sort_by(|a, b| a.name.cmp(&b.name));
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::LangConfig;
    use crate::transformer::TransformerConfig;

    #[test]
    fn probe_suite_has_eight_balanced_tasks() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let suite = probe_suite(&lang, 10, 42).expect("well-formed grammar");
        assert_eq!(suite.len(), 8);
        for t in &suite {
            assert_eq!(t.items.len(), 10, "{}", t.name);
            for item in &t.items {
                assert_eq!(item.candidates.len(), 2);
                assert!(item.answer < 2);
            }
        }
        assert!(suite.iter().any(|t| t.name == "copy-recall"));
    }

    #[test]
    fn probe_suite_is_deterministic() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let a = probe_suite(&lang, 5, 7).expect("well-formed grammar");
        let b = probe_suite(&lang, 5, 7).expect("well-formed grammar");
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.items, tb.items);
        }
    }

    #[test]
    fn untrained_model_scores_near_chance() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(1));
        let suite = probe_suite(&lang, 12, 9).expect("well-formed grammar");
        let acc = suite_accuracy(&model, &suite);
        assert!((0.2..=0.8).contains(&acc), "untrained accuracy {acc}");
    }

    #[test]
    fn fig7_tasks_are_learnable() {
        for task in fig7_tasks(11) {
            let model = task.train_model(24, 80, 3);
            let acc = task.accuracy(&model);
            let chance = 1.0 / task.classes as f64;
            assert!(
                acc > chance + 0.25,
                "{}: accuracy {acc} vs chance {chance}",
                task.name
            );
        }
    }

    #[test]
    fn fig7_has_expected_tasks() {
        let names: Vec<String> = fig7_tasks(1).into_iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["image", "retrieval", "sentiment", "vqa"]);
    }
}
