//! Basic neural layers with hand-written backprop.
//!
//! Each layer stores whatever the backward pass needs during forward;
//! `backward` consumes the upstream gradient, accumulates parameter
//! gradients and returns the input gradient. Every backward pass is
//! checked against finite differences in the test module.

use llm265_tensor::rng::Pcg32;
use llm265_tensor::Tensor;

use crate::param::Param;

/// Fully connected layer: `y = x Wᵀ + b` with `W: out × in`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix (`out × in`).
    pub w: Param,
    /// Bias (`1 × out`).
    pub b: Param,
    saved_x: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with scaled-normal weights and zero bias.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut Pcg32) -> Self {
        let std = 0.02_f64.min(1.0 / (in_dim as f64).sqrt());
        Linear {
            w: Param::randn(format!("{name}.w"), out_dim, in_dim, std, rng),
            b: Param::constant(format!("{name}.b"), 1, out_dim, 0.0),
            saved_x: None,
        }
    }

    /// Forward pass over a batch of rows (`n × in`).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = x.matmul(&self.w.value.transposed());
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, &bias) in row.iter_mut().zip(self.b.value.row(0)) {
                *v += bias;
            }
        }
        self.saved_x = Some(x.clone());
        y
    }

    /// Inference-only forward (does not save activations).
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        let mut y = x.matmul(&self.w.value.transposed());
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, &bias) in row.iter_mut().zip(self.b.value.row(0)) {
                *v += bias;
            }
        }
        y
    }

    /// Backward pass; returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .saved_x
            .take()
            .expect("Linear::backward before forward");
        // dW += dyᵀ x ; db += Σrows dy ; dx = dy W.
        let dw = dy.transposed().matmul(&x);
        self.w.grad.add_assign(&dw);
        for r in 0..dy.rows() {
            let db = self.b.grad.row_mut(0);
            for (g, &d) in db.iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
        dy.matmul(&self.w.value)
    }

    /// Visits this layer's parameters.
    pub fn visit(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// Layer normalization over each row, with learned gain and bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Gain (`1 × dim`).
    pub gamma: Param,
    /// Bias (`1 × dim`).
    pub beta: Param,
    eps: f32,
    saved: Option<(Tensor, Vec<f32>, Vec<f32>)>, // (normalized x̂, mean, inv_std)
}

impl LayerNorm {
    /// Creates a layer norm over `dim` features.
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: Param::constant(format!("{name}.gamma"), 1, dim, 1.0),
            beta: Param::constant(format!("{name}.beta"), 1, dim, 0.0),
            eps: 1e-5,
            saved: None,
        }
    }

    /// Forward pass (`n × dim`).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (y, xhat, mean, inv_std) = self.compute(x);
        self.saved = Some((xhat, mean, inv_std));
        y
    }

    /// Inference-only forward.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        self.compute(x).0
    }

    fn compute(&self, x: &Tensor) -> (Tensor, Tensor, Vec<f32>, Vec<f32>) {
        let d = x.cols();
        let mut y = Tensor::zeros(x.rows(), d);
        let mut xhat = Tensor::zeros(x.rows(), d);
        let mut means = Vec::with_capacity(x.rows());
        let mut inv_stds = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            for c in 0..d {
                let h = (row[c] - mean) * inv_std;
                xhat[(r, c)] = h;
                y[(r, c)] = h * self.gamma.value[(0, c)] + self.beta.value[(0, c)];
            }
            means.push(mean);
            inv_stds.push(inv_std);
        }
        (y, xhat, means, inv_stds)
    }

    /// Backward pass; returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (xhat, _means, inv_stds) = self
            .saved
            .take()
            .expect("LayerNorm::backward before forward");
        let d = dy.cols();
        let mut dx = Tensor::zeros(dy.rows(), d);
        for r in 0..dy.rows() {
            // Accumulate parameter grads.
            for c in 0..d {
                self.gamma.grad[(0, c)] += dy[(r, c)] * xhat[(r, c)];
                self.beta.grad[(0, c)] += dy[(r, c)];
            }
            // dx̂ = dy·γ; dx = (dx̂ − mean(dx̂) − x̂·mean(dx̂·x̂)) · inv_std.
            let mut dxhat = vec![0.0f32; d];
            for c in 0..d {
                dxhat[c] = dy[(r, c)] * self.gamma.value[(0, c)];
            }
            let m1 = dxhat.iter().sum::<f32>() / d as f32;
            let m2 = dxhat
                .iter()
                .enumerate()
                .map(|(c, &g)| g * xhat[(r, c)])
                .sum::<f32>()
                / d as f32;
            for c in 0..d {
                dx[(r, c)] = (dxhat[c] - m1 - xhat[(r, c)] * m2) * inv_stds[r];
            }
        }
        dx
    }

    /// Visits this layer's parameters.
    pub fn visit(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// Token embedding table (`vocab × dim`).
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table.
    pub table: Param,
    saved_ids: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates a table for `vocab` tokens of `dim` features.
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut Pcg32) -> Self {
        Embedding {
            table: Param::randn(format!("{name}.table"), vocab, dim, 0.02, rng),
            saved_ids: None,
        }
    }

    /// Looks up a sequence of token ids (`n × dim` output).
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn forward(&mut self, ids: &[usize]) -> Tensor {
        let out = self.lookup(ids);
        self.saved_ids = Some(ids.to_vec());
        out
    }

    /// Inference-only lookup.
    pub fn lookup(&self, ids: &[usize]) -> Tensor {
        let dim = self.table.value.cols();
        let mut out = Tensor::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.table.value.rows(), "token id {id} out of range");
            out.row_mut(r).copy_from_slice(self.table.value.row(id));
        }
        out
    }

    /// Backward pass (scatter-adds into the table's gradient).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) {
        let ids = self
            .saved_ids
            .take()
            .expect("Embedding::backward before forward");
        for (r, &id) in ids.iter().enumerate() {
            let grow = self.table.grad.row_mut(id);
            for (g, &d) in grow.iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
    }

    /// Visits this layer's parameters.
    pub fn visit(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

/// GELU activation (tanh approximation).
pub fn gelu(x: f32) -> f32 {
    let c = (2.0 / std::f32::consts::PI).sqrt();
    0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
pub fn gelu_grad(x: f32) -> f32 {
    let c = (2.0 / std::f32::consts::PI).sqrt();
    let inner = c * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let dinner = c * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

/// Row-wise softmax in place.
pub fn softmax_rows(t: &mut Tensor) {
    for r in 0..t.rows() {
        let row = t.row_mut(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks d loss/d x for a scalar loss `L = Σ y·coef`.
    fn grad_check_linear() -> (f32, f32) {
        let mut rng = Pcg32::seed_from(10);
        let mut layer = Linear::new("t", 5, 3, &mut rng);
        let x = Tensor::from_fn(4, 5, |_, _| rng.normal() as f32);
        let coef = Tensor::from_fn(4, 3, |_, _| rng.normal() as f32);

        let _y = layer.forward(&x);
        let dx = layer.backward(&coef);

        // Finite differences on one input element.
        let (r, c) = (2, 3);
        let eps = 1e-3f32;
        let mut xp = x.clone();
        xp[(r, c)] += eps;
        let mut xm = x.clone();
        xm[(r, c)] -= eps;
        let loss = |x: &Tensor, layer: &Linear| -> f32 {
            let y = layer.forward_inference(x);
            y.data().iter().zip(coef.data()).map(|(a, b)| a * b).sum()
        };
        let num = (loss(&xp, &layer) - loss(&xm, &layer)) / (2.0 * eps);
        (dx[(r, c)], num)
    }

    #[test]
    fn linear_input_gradient_matches_finite_difference() {
        let (analytic, numeric) = grad_check_linear();
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn linear_weight_gradient_matches_finite_difference() {
        let mut rng = Pcg32::seed_from(11);
        let mut layer = Linear::new("t", 4, 3, &mut rng);
        let x = Tensor::from_fn(6, 4, |_, _| rng.normal() as f32);
        let coef = Tensor::from_fn(6, 3, |_, _| rng.normal() as f32);
        let _ = layer.forward(&x);
        let _ = layer.backward(&coef);
        let analytic = layer.w.grad[(1, 2)];

        let eps = 1e-3f32;
        let base_w = layer.w.value.clone();
        let loss = |layer: &Linear| -> f32 {
            let y = layer.forward_inference(&x);
            y.data().iter().zip(coef.data()).map(|(a, b)| a * b).sum()
        };
        layer.w.value = base_w.clone();
        layer.w.value[(1, 2)] += eps;
        let lp = loss(&layer);
        layer.w.value = base_w.clone();
        layer.w.value[(1, 2)] -= eps;
        let lm = loss(&layer);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let mut ln = LayerNorm::new("t", 8);
        let x = Tensor::from_fn(3, 8, |r, c| (r * 8 + c) as f32 * 0.7 - 5.0);
        let y = ln.forward(&x);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn layernorm_gradient_matches_finite_difference() {
        let mut rng = Pcg32::seed_from(12);
        let mut ln = LayerNorm::new("t", 6);
        // Non-trivial gamma.
        for c in 0..6 {
            ln.gamma.value[(0, c)] = 0.5 + 0.2 * c as f32;
        }
        let x = Tensor::from_fn(2, 6, |_, _| rng.normal() as f32);
        let coef = Tensor::from_fn(2, 6, |_, _| rng.normal() as f32);
        let _ = ln.forward(&x);
        let dx = ln.backward(&coef);

        let loss = |x: &Tensor| -> f32 {
            let y = ln.forward_inference(x);
            y.data().iter().zip(coef.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-3f32;
        for &(r, c) in &[(0usize, 0usize), (1, 3), (0, 5)] {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (dx[(r, c)] - num).abs() < 2e-2,
                "at ({r},{c}): analytic {} vs numeric {num}",
                dx[(r, c)]
            );
        }
    }

    #[test]
    fn embedding_scatter_gradient() {
        let mut rng = Pcg32::seed_from(13);
        let mut emb = Embedding::new("t", 10, 4, &mut rng);
        let ids = [3usize, 7, 3];
        let y = emb.forward(&ids);
        assert_eq!(y.shape(), (3, 4));
        let dy = Tensor::full(3, 4, 1.0);
        emb.backward(&dy);
        // Token 3 appears twice: grad 2; token 7 once: grad 1; others 0.
        assert!(emb.table.grad.row(3).iter().all(|&g| g == 2.0));
        assert!(emb.table.grad.row(7).iter().all(|&g| g == 1.0));
        assert!(emb.table.grad.row(0).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn gelu_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0] {
            let eps = 1e-3;
            let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(x) - num).abs() < 1e-3,
                "x={x}: {} vs {num}",
                gelu_grad(x)
            );
        }
        // Known anchors.
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu(-10.0).abs() < 1e-4);
    }

    #[test]
    fn softmax_rows_is_a_distribution() {
        let mut t = Tensor::from_fn(2, 5, |r, c| (r + c) as f32 * 1.3 - 2.0);
        softmax_rows(&mut t);
        for r in 0..2 {
            let sum: f32 = t.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(t.row(r).iter().all(|&p| p >= 0.0));
        }
        // Monotone in logits.
        assert!(t[(0, 4)] > t[(0, 0)]);
    }
}
