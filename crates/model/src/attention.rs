//! Causal multi-head self-attention with hand-written backprop.
//!
//! The forward pass exposes the K/V matrices as a hook point: the KV-cache
//! compression experiments (§4.2 of the paper) intercept the keys and
//! values after projection and replace them with their compressed
//! reconstructions before the attention read, exactly like a compressed
//! cache would.

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

use crate::layers::{softmax_rows, Linear};
use crate::param::Param;

/// Causal multi-head self-attention block.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    n_heads: usize,
    head_dim: usize,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    saved: Option<Saved>,
}

#[derive(Debug, Clone)]
struct Saved {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attn: Vec<Tensor>, // per-head softmax matrices (T × T)
}

impl MultiHeadAttention {
    /// Creates an attention block over `dim` features with `n_heads`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `n_heads`.
    pub fn new(
        name: &str,
        dim: usize,
        n_heads: usize,
        rng: &mut llm265_tensor::rng::Pcg32,
    ) -> Self {
        assert_eq!(dim % n_heads, 0, "dim must divide into heads");
        MultiHeadAttention {
            n_heads,
            head_dim: dim / n_heads,
            wq: Linear::new(&format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new(&format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new(&format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new(&format!("{name}.wo"), dim, dim, rng),
            saved: None,
        }
    }

    fn head_slice(&self, t: &Tensor, head: usize) -> Tensor {
        let hd = self.head_dim;
        Tensor::from_fn(t.rows(), hd, |r, c| t[(r, head * hd + c)])
    }

    /// Core attention computation shared by train and inference paths.
    fn attend(&self, q: &Tensor, k: &Tensor, v: &Tensor) -> (Tensor, Vec<Tensor>) {
        let t_len = q.rows();
        let dim = self.n_heads * self.head_dim;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut out = Tensor::zeros(t_len, dim);
        let mut attns = Vec::with_capacity(self.n_heads);
        for h in 0..self.n_heads {
            let qh = self.head_slice(q, h);
            let kh = self.head_slice(k, h);
            let vh = self.head_slice(v, h);
            let mut scores = qh.matmul(&kh.transposed());
            scores.scale(scale);
            // Causal mask: queries cannot see future keys.
            for r in 0..t_len {
                for c in r + 1..t_len {
                    scores[(r, c)] = f32::NEG_INFINITY;
                }
            }
            softmax_rows(&mut scores);
            let oh = scores.matmul(&vh);
            for r in 0..t_len {
                for c in 0..self.head_dim {
                    out[(r, h * self.head_dim + c)] = oh[(r, c)];
                }
            }
            attns.push(scores);
        }
        (out, attns)
    }

    /// Training forward pass over a `T × dim` sequence.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let (concat, attn) = self.attend(&q, &k, &v);
        let y = self.wo.forward(&concat);
        self.saved = Some(Saved {
            x: x.clone(),
            q,
            k,
            v,
            attn,
        });
        y
    }

    /// Inference forward pass with an optional KV compression hook: the
    /// projected keys and values are transcoded through the hook before
    /// the attention read, and the compressed size is added to
    /// `kv_bits`.
    pub fn forward_inference(
        &self,
        x: &Tensor,
        kv_hook: Option<&mut dyn LossyCompressor>,
        kv_bits: &mut u64,
    ) -> Tensor {
        let q = self.wq.forward_inference(x);
        let mut k = self.wk.forward_inference(x);
        let mut v = self.wv.forward_inference(x);
        if let Some(hook) = kv_hook {
            let (k2, bits_k) = hook.transcode(&k);
            let (v2, bits_v) = hook.transcode(&v);
            k = k2;
            v = v2;
            *kv_bits += bits_k + bits_v;
        }
        let (concat, _) = self.attend(&q, &k, &v);
        self.wo.forward_inference(&concat)
    }

    /// Incremental decode step: computes attention for one new position
    /// given the cached keys/values of all previous positions, appending
    /// the new K/V rows to the cache. `x_last` is `1 × dim`; the caches
    /// are `t × dim` and grow by one row.
    ///
    /// # Panics
    ///
    /// Panics if `x_last` is not a single row or cache widths mismatch.
    pub fn forward_cached(
        &self,
        x_last: &Tensor,
        cache_k: &mut Tensor,
        cache_v: &mut Tensor,
    ) -> Tensor {
        let dim = self.n_heads * self.head_dim;
        assert_eq!(x_last.shape(), (1, dim), "x_last must be 1 × dim");
        assert_eq!(cache_k.cols(), dim, "cache width mismatch");
        let q = self.wq.forward_inference(x_last);
        let k_new = self.wk.forward_inference(x_last);
        let v_new = self.wv.forward_inference(x_last);

        // Append the new row to each cache.
        let append = |cache: &Tensor, row: &Tensor| -> Tensor {
            let mut out = Tensor::zeros(cache.rows() + 1, dim);
            for r in 0..cache.rows() {
                out.row_mut(r).copy_from_slice(cache.row(r));
            }
            out.row_mut(cache.rows()).copy_from_slice(row.row(0));
            out
        };
        *cache_k = append(cache_k, &k_new);
        *cache_v = append(cache_v, &v_new);

        let t_len = cache_k.rows();
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut concat = Tensor::zeros(1, dim);
        for h in 0..self.n_heads {
            let hd = self.head_dim;
            // Attention weights of the single query over all cached keys.
            let mut scores = vec![0.0f32; t_len];
            for (t, s) in scores.iter_mut().enumerate() {
                let mut dot = 0.0;
                for c in 0..hd {
                    dot += q[(0, h * hd + c)] * cache_k[(t, h * hd + c)];
                }
                *s = dot * scale;
            }
            let max = scores.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut denom = 0.0;
            for s in scores.iter_mut() {
                *s = (*s - max).exp();
                denom += *s;
            }
            for c in 0..hd {
                let mut acc = 0.0;
                for (t, &w) in scores.iter().enumerate() {
                    acc += w * cache_v[(t, h * hd + c)];
                }
                concat[(0, h * hd + c)] = acc / denom;
            }
        }
        self.wo.forward_inference(&concat)
    }

    /// Backward pass; returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let saved = self
            .saved
            .take()
            .expect("attention backward before forward");
        let t_len = dy.rows();
        let dim = self.n_heads * self.head_dim;
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let dconcat = self.wo.backward(dy);

        let mut dq = Tensor::zeros(t_len, dim);
        let mut dk = Tensor::zeros(t_len, dim);
        let mut dv = Tensor::zeros(t_len, dim);
        for h in 0..self.n_heads {
            let hd = self.head_dim;
            let doh = Tensor::from_fn(t_len, hd, |r, c| dconcat[(r, h * hd + c)]);
            let kh = self.head_slice(&saved.k, h);
            let vh = self.head_slice(&saved.v, h);
            let qh = self.head_slice(&saved.q, h);
            let attn = &saved.attn[h];

            // dV_h = Aᵀ dO ; dA = dO Vᵀ.
            let dvh = attn.transposed().matmul(&doh);
            let da = doh.matmul(&vh.transposed());
            // Softmax backward per row: ds = A ⊙ (dA − Σ dA·A).
            let mut dscores = Tensor::zeros(t_len, t_len);
            for r in 0..t_len {
                let dot: f32 = (0..=r).map(|c| da[(r, c)] * attn[(r, c)]).sum();
                for c in 0..=r {
                    dscores[(r, c)] = attn[(r, c)] * (da[(r, c)] - dot);
                }
            }
            dscores.scale(scale);
            // dQ_h = dS K ; dK_h = dSᵀ Q.
            let dqh = dscores.matmul(&kh);
            let dkh = dscores.transposed().matmul(&qh);
            for r in 0..t_len {
                for c in 0..hd {
                    dq[(r, h * hd + c)] += dqh[(r, c)];
                    dk[(r, h * hd + c)] += dkh[(r, c)];
                    dv[(r, h * hd + c)] += dvh[(r, c)];
                }
            }
        }
        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        let _ = saved.x;
        dx
    }

    /// Visits this block's parameters.
    pub fn visit(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit(f);
        self.wk.visit(f);
        self.wv.visit(f);
        self.wo.visit(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;

    #[test]
    fn causality_holds() {
        // Changing a future token must not change past outputs.
        let mut rng = Pcg32::seed_from(1);
        let attn = MultiHeadAttention::new("t", 8, 2, &mut rng);
        let x = Tensor::from_fn(6, 8, |_, _| rng.normal() as f32);
        let mut bits = 0;
        let y1 = attn.forward_inference(&x, None, &mut bits);
        let mut x2 = x.clone();
        for c in 0..8 {
            x2[(5, c)] += 3.0; // perturb only the last position
        }
        let y2 = attn.forward_inference(&x2, None, &mut bits);
        for r in 0..5 {
            for c in 0..8 {
                assert!(
                    (y1[(r, c)] - y2[(r, c)]).abs() < 1e-6,
                    "future leaked into position {r}"
                );
            }
        }
    }

    #[test]
    fn train_and_inference_paths_agree() {
        let mut rng = Pcg32::seed_from(2);
        let mut attn = MultiHeadAttention::new("t", 12, 3, &mut rng);
        let x = Tensor::from_fn(5, 12, |_, _| rng.normal() as f32);
        let y_train = attn.forward(&x);
        let mut bits = 0;
        let y_inf = attn.forward_inference(&x, None, &mut bits);
        for (a, b) in y_train.data().iter().zip(y_inf.data()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(bits, 0);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = Pcg32::seed_from(3);
        let mut attn = MultiHeadAttention::new("t", 8, 2, &mut rng);
        let x = Tensor::from_fn(4, 8, |_, _| rng.normal() as f32 * 0.5);
        let coef = Tensor::from_fn(4, 8, |_, _| rng.normal() as f32);

        let _ = attn.forward(&x);
        let dx = attn.backward(&coef);

        let loss = |x: &Tensor| -> f32 {
            let mut bits = 0;
            let y = attn.forward_inference(x, None, &mut bits);
            y.data().iter().zip(coef.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2f32;
        for &(r, c) in &[(0usize, 0usize), (2, 5), (3, 7), (1, 3)] {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (dx[(r, c)] - num).abs() < 0.05 * (1.0 + num.abs()),
                "at ({r},{c}): analytic {} vs numeric {num}",
                dx[(r, c)]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = Pcg32::seed_from(4);
        let mut attn = MultiHeadAttention::new("t", 8, 2, &mut rng);
        let x = Tensor::from_fn(4, 8, |_, _| rng.normal() as f32 * 0.5);
        let coef = Tensor::from_fn(4, 8, |_, _| rng.normal() as f32);
        let _ = attn.forward(&x);
        let _ = attn.backward(&coef);
        let analytic = attn.wk.w.grad[(2, 3)];

        let eps = 1e-2f32;
        let base = attn.wk.w.value.clone();
        let loss = |attn: &MultiHeadAttention| -> f32 {
            let mut bits = 0;
            let y = attn.forward_inference(&x, None, &mut bits);
            y.data().iter().zip(coef.data()).map(|(a, b)| a * b).sum()
        };
        attn.wk.w.value = base.clone();
        attn.wk.w.value[(2, 3)] += eps;
        let lp = loss(&attn);
        attn.wk.w.value = base.clone();
        attn.wk.w.value[(2, 3)] -= eps;
        let lm = loss(&attn);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn kv_hook_is_invoked_and_counted() {
        struct Half;
        impl LossyCompressor for Half {
            fn name(&self) -> String {
                "half".into()
            }
            fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
                (t.map(|v| v * 0.5), t.len() as u64 * 4)
            }
        }
        let mut rng = Pcg32::seed_from(5);
        let attn = MultiHeadAttention::new("t", 8, 2, &mut rng);
        let x = Tensor::from_fn(4, 8, |_, _| rng.normal() as f32);
        let mut bits = 0;
        let mut hook = Half;
        let y_hooked = attn.forward_inference(&x, Some(&mut hook), &mut bits);
        let mut bits2 = 0;
        let y_plain = attn.forward_inference(&x, None, &mut bits2);
        assert_eq!(bits, 2 * 4 * 8 * 4); // K and V, 32 values each, 4 bits
        assert_ne!(y_hooked, y_plain, "hook must affect the output");
    }
}

#[cfg(test)]
mod cached_tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;

    #[test]
    fn cached_decode_matches_full_forward() {
        // Feeding tokens one at a time through the cache must produce the
        // same last-position output as the full (non-cached) forward.
        let mut rng = Pcg32::seed_from(21);
        let attn = MultiHeadAttention::new("t", 12, 3, &mut rng);
        let t_len = 7usize;
        let x = Tensor::from_fn(t_len, 12, |_, _| rng.normal() as f32);

        let mut bits = 0;
        let full = attn.forward_inference(&x, None, &mut bits);

        let mut cache_k = Tensor::zeros(0, 12);
        let mut cache_v = Tensor::zeros(0, 12);
        for t in 0..t_len {
            let row = Tensor::from_fn(1, 12, |_, c| x[(t, c)]);
            let y = attn.forward_cached(&row, &mut cache_k, &mut cache_v);
            for c in 0..12 {
                assert!(
                    (y[(0, c)] - full[(t, c)]).abs() < 1e-4,
                    "position {t}, dim {c}: {} vs {}",
                    y[(0, c)],
                    full[(t, c)]
                );
            }
        }
        assert_eq!(cache_k.rows(), t_len);
        assert_eq!(cache_v.rows(), t_len);
    }

    #[test]
    #[should_panic(expected = "1 × dim")]
    fn cached_decode_rejects_multi_row_input() {
        let mut rng = Pcg32::seed_from(22);
        let attn = MultiHeadAttention::new("t", 8, 2, &mut rng);
        let x = Tensor::zeros(2, 8);
        let mut k = Tensor::zeros(0, 8);
        let mut v = Tensor::zeros(0, 8);
        let _ = attn.forward_cached(&x, &mut k, &mut v);
    }
}
