//! Transformer substrate for the LLM.265 reproduction.
//!
//! The paper's evaluation needs trainable language models (Pythia-style
//! runs for §5) and compressible inference models (LLaMA-style probes for
//! §4). We build that substrate from scratch: a decoder-only transformer
//! with hand-written backprop, Adam/LAMB optimizers, a deterministic
//! synthetic language with learnable structure, and probe tasks whose
//! accuracy degrades smoothly with weight distortion — the scalar every
//! compression experiment ultimately reports.
//!
//! - [`param`] — parameters with accumulated gradients.
//! - [`layers`] — Linear / LayerNorm / Embedding / GELU with forward and
//!   backward passes (gradient-checked against finite differences).
//! - [`attention`] — causal multi-head self-attention, with hook points
//!   for KV-cache compression.
//! - [`transformer`] — the decoder-only LM: training step, perplexity
//!   evaluation, and evaluation under compression hooks.
//! - [`mlp`] — a small MLP classifier for the paper's non-LM tasks
//!   (Fig 7).
//! - [`optimizer`] — Adam and LAMB.
//! - [`data`] — the synthetic language (sparse Markov transitions plus
//!   long-range copy structure).
//! - [`tasks`] — multiple-choice probe tasks and the four Fig-7 task
//!   generators.
//!
//! # Example
//!
//! ```
//! use llm265_model::data::{DataError, LangConfig, SyntheticLang};
//! use llm265_model::transformer::{TransformerConfig, TransformerLm};
//! use llm265_model::optimizer::Adam;
//! use llm265_tensor::rng::Pcg32;
//!
//! # fn main() -> Result<(), DataError> {
//! let lang = SyntheticLang::new(&LangConfig::tiny());
//! let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(0));
//! let mut opt = Adam::new(3e-3);
//! let mut rng = Pcg32::seed_from(1);
//! let before = model.eval_perplexity(&lang.sample_batch(4, 32, &mut rng)?);
//! for _ in 0..30 {
//!     let batch = lang.sample_batch(4, 32, &mut rng)?;
//!     model.train_step(&batch, &mut opt);
//! }
//! let after = model.eval_perplexity(&lang.sample_batch(4, 32, &mut rng)?);
//! assert!(after < before, "training must reduce perplexity");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod attention;
pub mod data;
pub mod layers;
pub mod mlp;
pub mod optimizer;
pub mod param;
pub mod tasks;
pub mod transformer;
