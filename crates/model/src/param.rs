//! Trainable parameters.

use llm265_tensor::rng::Pcg32;
use llm265_tensor::Tensor;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter name (used to select which tensors are compressed — the
    /// paper compresses weight matrices, not biases/norms).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (zeroed by [`Param::zero_grad`]).
    pub grad: Tensor,
}

impl Param {
    /// A parameter initialized from `N(0, std²)`.
    pub fn randn(
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        std: f64,
        rng: &mut Pcg32,
    ) -> Self {
        let value = Tensor::from_fn(rows, cols, |_, _| (std * rng.normal()) as f32);
        Param {
            name: name.into(),
            grad: Tensor::zeros(rows, cols),
            value,
        }
    }

    /// A parameter initialized to a constant.
    pub fn constant(name: impl Into<String>, rows: usize, cols: usize, v: f32) -> Self {
        Param {
            name: name.into(),
            value: Tensor::full(rows, cols, v),
            grad: Tensor::zeros(rows, cols),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Whether this parameter is a weight matrix (2-D, not a bias or norm
    /// vector) — the class of tensors the paper's weight compression
    /// targets.
    pub fn is_weight_matrix(&self) -> bool {
        self.value.rows() > 1 && self.value.cols() > 1
    }
}

/// Visitor over a model's parameters, used by optimizers, gradient
/// compression and weight compression alike.
pub trait VisitParams {
    /// Calls `f` on every parameter, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes every gradient.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_has_requested_scale() {
        let mut rng = Pcg32::seed_from(1);
        let p = Param::randn("w", 64, 64, 0.02, &mut rng);
        let std = llm265_tensor::stats::std_dev(p.value.data());
        assert!((std - 0.02).abs() < 0.005, "std {std}");
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn weight_matrix_detection() {
        let mut rng = Pcg32::seed_from(2);
        assert!(Param::randn("w", 8, 8, 0.1, &mut rng).is_weight_matrix());
        assert!(!Param::constant("b", 1, 8, 0.0).is_weight_matrix());
        assert!(!Param::constant("gamma", 8, 1, 1.0).is_weight_matrix());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::constant("b", 1, 4, 0.0);
        p.grad.data_mut().fill(3.0);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }
}
