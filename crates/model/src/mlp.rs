//! A small MLP classifier for the paper's non-LM tasks.
//!
//! Fig 7 applies LLM.265 to models beyond LLMs (sentiment, retrieval,
//! VQA, image classification). Our stand-ins for those models are small
//! trained MLPs over synthetic feature datasets (see
//! [`crate::tasks::fig7_tasks`]); this module provides the classifier and
//! its training loop.

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;
use llm265_tensor::Tensor;

use crate::layers::{gelu, gelu_grad, Linear};
use crate::optimizer::Optimizer;
use crate::param::{Param, VisitParams};

/// A two-hidden-layer GELU MLP classifier.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    fc1: Linear,
    fc2: Linear,
    fc3: Linear,
    saved: Option<(Tensor, Tensor)>, // pre-activations of fc1, fc2
}

impl MlpClassifier {
    /// Creates a classifier `in_dim → hidden → hidden → classes`.
    pub fn new(in_dim: usize, hidden: usize, classes: usize, rng: &mut Pcg32) -> Self {
        MlpClassifier {
            fc1: Linear::new("mlp.fc1", in_dim, hidden, rng),
            fc2: Linear::new("mlp.fc2", hidden, hidden, rng),
            fc3: Linear::new("mlp.fc3", hidden, classes, rng),
            saved: None,
        }
    }

    /// Class logits for a batch of feature rows.
    pub fn logits(&self, x: &Tensor) -> Tensor {
        let h1 = self.fc1.forward_inference(x).map(gelu);
        let h2 = self.fc2.forward_inference(&h1).map(gelu);
        self.fc3.forward_inference(&h2)
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let p1 = self.fc1.forward(x);
        let h1 = p1.map(gelu);
        let p2 = self.fc2.forward(&h1);
        let h2 = p2.map(gelu);
        let out = self.fc3.forward(&h2);
        self.saved = Some((p1, p2));
        out
    }

    /// One cross-entropy training step; returns the mean loss.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    pub fn train_step(&mut self, x: &Tensor, labels: &[usize], opt: &mut dyn Optimizer) -> f64 {
        assert_eq!(labels.len(), x.rows(), "label count mismatch");
        self.zero_grads();
        let mut logits = self.forward_train(x);
        crate::layers::softmax_rows(&mut logits);
        let mut loss = 0.0f64;
        let n = labels.len() as f32;
        let mut dlogits = logits;
        for (r, &y) in labels.iter().enumerate() {
            let p = dlogits[(r, y)].max(1e-12);
            loss += -(p as f64).ln();
            dlogits[(r, y)] -= 1.0;
        }
        dlogits.scale(1.0 / n);

        let (p1, p2) = self.saved.take().expect("saved activations");
        let dh2 = self.fc3.backward(&dlogits);
        let dp2 = Tensor::from_fn(dh2.rows(), dh2.cols(), |r, c| {
            dh2[(r, c)] * gelu_grad(p2[(r, c)])
        });
        let dh1 = self.fc2.backward(&dp2);
        let dp1 = Tensor::from_fn(dh1.rows(), dh1.cols(), |r, c| {
            dh1[(r, c)] * gelu_grad(p1[(r, c)])
        });
        let _ = self.fc1.backward(&dp1);
        opt.step(self);
        loss / labels.len() as f64
    }

    /// Classification accuracy on a labeled batch.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f64 {
        let logits = self.logits(x);
        let mut correct = 0usize;
        for (r, &y) in labels.iter().enumerate() {
            let row = logits.row(r);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == y {
                correct += 1;
            }
        }
        correct as f64 / labels.len().max(1) as f64
    }

    /// Embedding of the last hidden layer (used by the retrieval task).
    pub fn embed(&self, x: &Tensor) -> Tensor {
        let h1 = self.fc1.forward_inference(x).map(gelu);
        self.fc2.forward_inference(&h1).map(gelu)
    }

    /// Transcodes every weight matrix through `compressor`; returns
    /// `(bits, values)`. Tensors below
    /// [`crate::transformer::MIN_COMPRESS_VALUES`] stay FP16 (see the
    /// rationale there).
    pub fn compress_weights(&mut self, compressor: &mut dyn LossyCompressor) -> (u64, u64) {
        let mut bits = 0u64;
        let mut values = 0u64;
        self.visit_params(&mut |p| {
            if p.is_weight_matrix() {
                if p.value.len() >= crate::transformer::MIN_COMPRESS_VALUES {
                    let (out, b) = compressor.transcode(&p.value);
                    p.value = out;
                    bits += b;
                } else {
                    bits += p.value.len() as u64 * 16;
                }
                values += p.value.len() as u64;
            }
        });
        (bits, values)
    }
}

impl VisitParams for MlpClassifier {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit(f);
        self.fc2.visit(f);
        self.fc3.visit(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;

    /// Two Gaussian blobs, linearly separable.
    fn blobs(n: usize, dim: usize, rng: &mut Pcg32) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::zeros(n, dim);
        let mut labels = Vec::with_capacity(n);
        for r in 0..n {
            let class = (r % 2) as f64;
            for c in 0..dim {
                let center = if class == 0.0 { -1.0 } else { 1.0 };
                x[(r, c)] = (center * ((c % 3) as f64 * 0.4 + 0.4) + 0.5 * rng.normal()) as f32;
            }
            labels.push(class as usize);
        }
        (x, labels)
    }

    #[test]
    fn learns_separable_blobs() {
        let mut rng = Pcg32::seed_from(1);
        let mut model = MlpClassifier::new(8, 16, 2, &mut rng);
        let (x, y) = blobs(128, 8, &mut rng);
        let mut opt = Adam::new(5e-3);
        let before = model.accuracy(&x, &y);
        for _ in 0..60 {
            model.train_step(&x, &y, &mut opt);
        }
        let after = model.accuracy(&x, &y);
        assert!(after > 0.95, "accuracy {after} (before {before})");
        // Generalizes to fresh samples from the same blobs.
        let (xt, yt) = blobs(128, 8, &mut rng);
        assert!(model.accuracy(&xt, &yt) > 0.9);
    }

    #[test]
    fn loss_decreases() {
        let mut rng = Pcg32::seed_from(2);
        let mut model = MlpClassifier::new(6, 12, 3, &mut rng);
        let x = Tensor::from_fn(48, 6, |r, c| {
            ((r % 3) as f32 - 1.0) * (c as f32 + 1.0) * 0.3
        });
        let y: Vec<usize> = (0..48).map(|r| r % 3).collect();
        let mut opt = Adam::new(5e-3);
        let first = model.train_step(&x, &y, &mut opt);
        let mut last = first;
        for _ in 0..50 {
            last = model.train_step(&x, &y, &mut opt);
        }
        assert!(last < first * 0.5, "first {first} last {last}");
    }

    #[test]
    fn weight_compression_degrades_gracefully() {
        struct Coarse;
        impl LossyCompressor for Coarse {
            fn name(&self) -> String {
                "coarse".into()
            }
            fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
                // Heavy 1.5-level rounding.
                let m = t.max_abs().max(1e-6);
                (t.map(|v| (v / m).round() * m), t.len() as u64)
            }
        }
        // Hidden width 32 keeps every matrix above MIN_COMPRESS_VALUES so
        // the small-tensor FP16 exemption does not kick in here.
        let mut rng = Pcg32::seed_from(3);
        let mut model = MlpClassifier::new(16, 32, 2, &mut rng);
        let (x, y) = blobs(128, 16, &mut rng);
        let mut opt = Adam::new(5e-3);
        for _ in 0..60 {
            model.train_step(&x, &y, &mut opt);
        }
        let clean = model.accuracy(&x, &y);
        let (bits, values) = model.compress_weights(&mut Coarse);
        // fc1 (512) and fc2 (1024) compress at 1 bit/value; the 64-value
        // head stays FP16 at 16 bits/value.
        assert_eq!(bits, 512 + 1024 + 64 * 16);
        assert_eq!(values, 512 + 1024 + 64);
        let damaged = model.accuracy(&x, &y);
        assert!(damaged <= clean, "damage cannot improve training accuracy");
    }

    #[test]
    fn embed_has_hidden_width() {
        let mut rng = Pcg32::seed_from(4);
        let model = MlpClassifier::new(5, 11, 2, &mut rng);
        let x = Tensor::zeros(3, 5);
        assert_eq!(model.embed(&x).shape(), (3, 11));
    }
}
