//! The synthetic language: a stand-in for the Pile / WikiText corpora.
//!
//! We have no text corpus, so the training and evaluation experiments run
//! on a deterministic generated language with enough structure for a
//! small transformer to learn and for compression damage to show up as
//! accuracy loss:
//!
//! - a **sparse Markov backbone**: each token has a small set of legal
//!   successors with skewed probabilities (a learnable local syntax);
//! - **long-range copies**: a marker token announces that the token from
//!   `copy_distance` positions back repeats (exercises attention);
//! - a small **noise floor** so the task never saturates.

use llm265_tensor::rng::Pcg32;
use std::fmt;

/// Structural failures in synthetic-grammar sampling.
///
/// These were `.expect()` panics; surfacing them as values lets a long
/// training or benchmark run report *which* invariant broke instead of
/// aborting mid-epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A content token has no legal successors in the grammar table.
    NoSuccessors(u16),
    /// A sampled context came back empty (zero-length request).
    EmptyContext,
    /// Rejection sampling could not fill a task family within its budget.
    SamplingStuck {
        /// The task family that stalled.
        family: &'static str,
        /// Attempts spent before giving up.
        attempts: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::NoSuccessors(t) => {
                write!(f, "token {t} has no successors in the grammar table")
            }
            DataError::EmptyContext => write!(f, "sampled context is empty"),
            DataError::SamplingStuck { family, attempts } => {
                write!(f, "{family} task sampling stuck after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for DataError {}

/// Language parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangConfig {
    /// Vocabulary size (the last token id is the copy marker).
    pub vocab: usize,
    /// Legal successors per token.
    pub branch: usize,
    /// Distance of the long-range copy pattern.
    pub copy_distance: usize,
    /// Generator seed (defines the grammar itself).
    pub seed: u64,
}

impl LangConfig {
    /// A tiny grammar matching [`crate::transformer::TransformerConfig::tiny`].
    pub fn tiny() -> Self {
        LangConfig {
            vocab: 32,
            branch: 3,
            copy_distance: 8,
            seed: 1234,
        }
    }

    /// A small grammar matching `TransformerConfig::small`.
    pub fn small() -> Self {
        LangConfig {
            vocab: 64,
            branch: 3,
            copy_distance: 12,
            seed: 5678,
        }
    }
}

/// A generated language: grammar plus samplers.
#[derive(Debug, Clone)]
pub struct SyntheticLang {
    config: LangConfig,
    /// `successors[t]` = legal next tokens after `t`, most likely first.
    successors: Vec<Vec<u16>>,
}

/// Skewed branch probabilities (most likely successor first).
const BRANCH_WEIGHTS: [f64; 4] = [0.55, 0.30, 0.10, 0.05];
/// Probability that a step ignores the grammar entirely (noise floor).
const NOISE_PROB: f64 = 0.08;
/// Probability of emitting the copy pattern at an eligible position.
const COPY_PROB: f64 = 0.10;

impl SyntheticLang {
    /// Builds the grammar for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 8` or `branch` is 0 or exceeds 4.
    pub fn new(config: &LangConfig) -> Self {
        assert!(config.vocab >= 8, "vocab too small");
        assert!((1..=4).contains(&config.branch), "branch must be 1..=4");
        let mut rng = Pcg32::seed_from(config.seed);
        let content = config.vocab - 1; // last id reserved as copy marker
        let successors = (0..content)
            .map(|t| {
                let mut set = Vec::with_capacity(config.branch);
                while set.len() < config.branch {
                    let s = rng.below(content as u32) as u16;
                    if s as usize != t && !set.contains(&s) {
                        set.push(s);
                    }
                }
                set
            })
            .collect();
        SyntheticLang {
            config: config.clone(),
            successors,
        }
    }

    /// The configuration this grammar was built from.
    pub fn config(&self) -> &LangConfig {
        &self.config
    }

    /// The copy-marker token id.
    pub fn marker(&self) -> u16 {
        (self.config.vocab - 1) as u16
    }

    /// Legal successors of a content token.
    ///
    /// # Panics
    ///
    /// Panics if `t` is the marker or out of range.
    pub fn successors(&self, t: u16) -> &[u16] {
        &self.successors[t as usize]
    }

    /// Samples the next content token after `t` from the grammar.
    ///
    /// # Errors
    ///
    /// [`DataError::NoSuccessors`] if the grammar table has no entry for
    /// `t` — a malformed [`LangConfig`], not a sampling fluke.
    pub fn sample_successor(&self, t: u16, rng: &mut Pcg32) -> Result<u16, DataError> {
        let set = &self.successors[t as usize];
        let u = rng.f64();
        let mut acc = 0.0;
        for (i, &s) in set.iter().enumerate() {
            acc += BRANCH_WEIGHTS[i] / BRANCH_WEIGHTS[..set.len()].iter().sum::<f64>();
            if u < acc {
                return Ok(s);
            }
        }
        set.last().copied().ok_or(DataError::NoSuccessors(t))
    }

    /// Samples one sequence of `len` tokens.
    ///
    /// # Errors
    ///
    /// Propagates [`DataError::NoSuccessors`] from a malformed grammar.
    pub fn sample_seq(&self, len: usize, rng: &mut Pcg32) -> Result<Vec<u16>, DataError> {
        let content = (self.config.vocab - 1) as u32;
        let mut seq: Vec<u16> = Vec::with_capacity(len);
        seq.push(rng.below(content) as u16);
        while seq.len() < len {
            let pos = seq.len();
            // Copy pattern: marker then the token copy_distance back.
            if pos + 1 < len
                && pos + 1 >= self.config.copy_distance
                && rng.chance(COPY_PROB)
                && seq[pos - 1] != self.marker()
            {
                // Marker at `pos`; the copied token lands at `pos + 1` and
                // repeats the token `copy_distance` before itself.
                let copied = seq[pos + 1 - self.config.copy_distance];
                if copied != self.marker() {
                    seq.push(self.marker());
                    seq.push(copied);
                    continue;
                }
            }
            // `pos == seq.len() >= 1` here: the sequence was seeded above.
            let prev = seq[pos - 1];
            let next = if prev == self.marker() || rng.chance(NOISE_PROB) {
                rng.below(content) as u16
            } else {
                self.sample_successor(prev, rng)?
            };
            seq.push(next);
        }
        seq.truncate(len);
        Ok(seq)
    }

    /// Samples a batch of sequences.
    ///
    /// # Errors
    ///
    /// Propagates [`DataError::NoSuccessors`] from a malformed grammar.
    pub fn sample_batch(
        &self,
        n: usize,
        len: usize,
        rng: &mut Pcg32,
    ) -> Result<Vec<Vec<u16>>, DataError> {
        (0..n).map(|_| self.sample_seq(len, rng)).collect()
    }

    /// Builds a multiple-choice item: a context whose last token is a
    /// content token, the grammar's most likely continuation, and a
    /// distractor that is *not* a legal successor.
    ///
    /// # Errors
    ///
    /// [`DataError::EmptyContext`] when `ctx_len == 0`, and
    /// [`DataError::NoSuccessors`] for a malformed grammar.
    pub fn choice_item(
        &self,
        ctx_len: usize,
        rng: &mut Pcg32,
    ) -> Result<(Vec<u16>, u16, u16), DataError> {
        let content = (self.config.vocab - 1) as u32;
        loop {
            let ctx = self.sample_seq(ctx_len, rng)?;
            let last = *ctx.last().ok_or(DataError::EmptyContext)?;
            if last == self.marker() {
                continue;
            }
            let good = *self.successors[last as usize]
                .first()
                .ok_or(DataError::NoSuccessors(last))?;
            let bad = loop {
                let cand = rng.below(content) as u16;
                if !self.successors[last as usize].contains(&cand) && cand != last {
                    break cand;
                }
            };
            return Ok((ctx, good, bad));
        }
    }

    /// Builds a *hard* multiple-choice item: the top successor versus the
    /// second most likely successor. Both are legal; telling them apart
    /// needs well-calibrated logits, so this item class is sensitive to
    /// small weight distortion — the property the compression experiments
    /// measure.
    ///
    /// # Errors
    ///
    /// [`DataError::EmptyContext`] when `ctx_len == 0`, and
    /// [`DataError::NoSuccessors`] for a malformed grammar.
    pub fn choice_item_hard(
        &self,
        ctx_len: usize,
        rng: &mut Pcg32,
    ) -> Result<(Vec<u16>, u16, u16), DataError> {
        loop {
            let ctx = self.sample_seq(ctx_len, rng)?;
            let last = *ctx.last().ok_or(DataError::EmptyContext)?;
            if last == self.marker() {
                continue;
            }
            let set = &self.successors[last as usize];
            if set.len() < 2 {
                continue;
            }
            return Ok((ctx, set[0], set[1]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_is_deterministic_per_seed() {
        let a = SyntheticLang::new(&LangConfig::tiny());
        let b = SyntheticLang::new(&LangConfig::tiny());
        assert_eq!(a.successors, b.successors);
        let c = SyntheticLang::new(&LangConfig {
            seed: 999,
            ..LangConfig::tiny()
        });
        assert_ne!(a.successors, c.successors);
    }

    #[test]
    fn sequences_have_requested_length_and_range() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut rng = Pcg32::seed_from(1);
        for len in [2usize, 7, 33, 64] {
            let seq = lang.sample_seq(len, &mut rng).expect("well-formed grammar");
            assert_eq!(seq.len(), len);
            assert!(seq.iter().all(|&t| (t as usize) < 32));
        }
    }

    #[test]
    fn grammar_transitions_dominate() {
        // Most steps follow the Markov backbone.
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut rng = Pcg32::seed_from(2);
        let seq = lang
            .sample_seq(4000, &mut rng)
            .expect("well-formed grammar");
        let mut legal = 0usize;
        let mut checked = 0usize;
        for w in seq.windows(2) {
            if w[0] != lang.marker() && w[1] != lang.marker() {
                checked += 1;
                if lang.successors(w[0]).contains(&w[1]) {
                    legal += 1;
                }
            }
        }
        let frac = legal as f64 / checked as f64;
        assert!(frac > 0.8, "grammar-following fraction {frac}");
    }

    #[test]
    fn copy_pattern_present_and_correct() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut rng = Pcg32::seed_from(3);
        let seq = lang
            .sample_seq(4000, &mut rng)
            .expect("well-formed grammar");
        let d = lang.config().copy_distance;
        let mut copies = 0usize;
        for (i, &t) in seq.iter().enumerate() {
            if t == lang.marker() && i + 1 < seq.len() && i >= d {
                assert_eq!(seq[i + 1], seq[i + 1 - d], "copy at {i} broken");
                copies += 1;
            }
        }
        assert!(copies > 50, "too few copy events: {copies}");
    }

    #[test]
    fn choice_items_are_well_formed() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut rng = Pcg32::seed_from(4);
        for _ in 0..50 {
            let (ctx, good, bad) = lang.choice_item(16, &mut rng).expect("well-formed grammar");
            assert_eq!(ctx.len(), 16);
            let last = *ctx.last().unwrap();
            assert!(lang.successors(last).contains(&good));
            assert!(!lang.successors(last).contains(&bad));
            assert_ne!(good, bad);
        }
    }

    #[test]
    fn successor_sampling_matches_weights() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut rng = Pcg32::seed_from(5);
        let token = 3u16;
        let set: Vec<u16> = lang.successors(token).to_vec();
        let mut counts = vec![0usize; set.len()];
        for _ in 0..10_000 {
            let s = lang
                .sample_successor(token, &mut rng)
                .expect("well-formed grammar");
            let idx = set.iter().position(|&x| x == s).expect("legal successor");
            counts[idx] += 1;
        }
        // First successor should clearly dominate.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
    }
}
