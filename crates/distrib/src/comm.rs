//! Communication-volume accounting.
//!
//! Every simulated exchange records both the raw (uncompressed FP16) size
//! and the compressed wire size, so experiments can report compression
//! ratios and — combined with a link bandwidth — communication time.

/// Accumulated wire statistics for one traffic class (activations,
/// activation gradients, weight gradients, ...).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of tensor values transferred.
    pub values: u64,
    /// Bits that crossed the wire after compression.
    pub compressed_bits: u64,
    /// Bits the same values would have cost uncompressed (FP16).
    pub raw_bits: u64,
    /// Number of transfers.
    pub transfers: u64,
}

impl CommStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transfer of `values` values costing `compressed_bits`.
    pub fn record(&mut self, values: u64, compressed_bits: u64) {
        self.values += values;
        self.compressed_bits += compressed_bits;
        self.raw_bits += values * 16;
        self.transfers += 1;
    }

    /// Average compressed bits per value (16.0 when nothing was sent).
    pub fn bits_per_value(&self) -> f64 {
        if self.values == 0 {
            16.0
        } else {
            self.compressed_bits as f64 / self.values as f64
        }
    }

    /// Compression ratio raw/compressed (1.0 when nothing was sent).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bits == 0 {
            1.0
        } else {
            self.raw_bits as f64 / self.compressed_bits as f64
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.values += other.values;
        self.compressed_bits += other.compressed_bits;
        self.raw_bits += other.raw_bits;
        self.transfers += other.transfers;
    }

    /// Transfer time in seconds over a link of `gbps` gigabits/second.
    pub fn transfer_seconds(&self, gbps: f64) -> f64 {
        self.compressed_bits as f64 / (gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_is_exact() {
        let mut s = CommStats::new();
        s.record(1000, 3500);
        s.record(1000, 2500);
        assert_eq!(s.values, 2000);
        assert_eq!(s.compressed_bits, 6000);
        assert_eq!(s.raw_bits, 32_000);
        assert_eq!(s.transfers, 2);
        assert!((s.bits_per_value() - 3.0).abs() < 1e-12);
        assert!((s.ratio() - 32_000.0 / 6000.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = CommStats::new();
        assert_eq!(s.bits_per_value(), 16.0);
        assert_eq!(s.ratio(), 1.0);
        assert_eq!(s.transfer_seconds(100.0), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CommStats::new();
        a.record(10, 40);
        let mut b = CommStats::new();
        b.record(20, 60);
        a.merge(&b);
        assert_eq!(a.values, 30);
        assert_eq!(a.compressed_bits, 100);
        assert_eq!(a.transfers, 2);
    }

    #[test]
    fn transfer_time_scales_with_bandwidth() {
        let mut s = CommStats::new();
        s.record(1_000_000, 8_000_000_000);
        assert!((s.transfer_seconds(8.0) - 1.0).abs() < 1e-12);
        assert!((s.transfer_seconds(80.0) - 0.1).abs() < 1e-12);
    }
}
