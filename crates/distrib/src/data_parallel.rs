//! Data-parallel training simulation (§5.2 of the paper).
//!
//! Each replica computes gradients on its own data shard; the gradients
//! are then exchanged — each replica's contribution passing through its
//! *own* compressor instance, so stateful schemes (1-bit Adam's error
//! feedback) keep per-replica state exactly as in the real systems — and
//! averaged before one shared optimizer step. Parameters stay bit-exact
//! replicated because every replica applies the same averaged update.

use llm265_model::optimizer::Optimizer;
use llm265_model::param::VisitParams;
use llm265_model::transformer::{Batch, TransformerLm};
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

use crate::comm::CommStats;

/// Data-parallel trainer wrapping a single logical model.
pub struct DataParallelTrainer<'a> {
    model: &'a mut TransformerLm,
    /// One compressor per replica (None = uncompressed FP16 exchange).
    compressors: Vec<Option<Box<dyn LossyCompressor>>>,
    stats: CommStats,
}

impl<'a> DataParallelTrainer<'a> {
    /// Creates a trainer with `replicas` uncompressed replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is 0.
    pub fn new(model: &'a mut TransformerLm, replicas: usize) -> Self {
        assert!(replicas >= 1, "need at least one replica");
        DataParallelTrainer {
            model,
            compressors: (0..replicas).map(|_| None).collect(),
            stats: CommStats::new(),
        }
    }

    /// Installs per-replica gradient compressors (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the count differs from the replica count.
    #[must_use]
    pub fn with_compressors(mut self, cs: Vec<Box<dyn LossyCompressor>>) -> Self {
        assert_eq!(
            cs.len(),
            self.compressors.len(),
            "one compressor per replica"
        );
        self.compressors = cs.into_iter().map(Some).collect();
        self
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.compressors.len()
    }

    /// Gradient-exchange wire statistics.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Immutable access to the wrapped model.
    pub fn model(&self) -> &TransformerLm {
        self.model
    }

    /// One training step: `shards[r]` is replica r's micro-batch. Returns
    /// the mean per-token loss across replicas.
    ///
    /// # Panics
    ///
    /// Panics if the shard count differs from the replica count.
    pub fn train_step(&mut self, shards: &[Batch], opt: &mut dyn Optimizer) -> f64 {
        assert_eq!(shards.len(), self.replicas(), "one shard per replica");
        let r_count = self.replicas();

        // Accumulated (post-compression) gradient sum per parameter.
        let mut summed: Vec<Tensor> = Vec::new();
        let mut total_nll = 0.0;
        let mut total_tokens = 0usize;

        for (r, shard) in shards.iter().enumerate() {
            // Local gradient computation on this replica's shard.
            self.model.zero_grads();
            let mut nll = 0.0;
            let mut tokens = 0usize;
            for seq in shard {
                let (n, t) = self.model.forward_backward(seq);
                nll += n;
                tokens += t;
            }
            total_nll += nll;
            total_tokens += tokens;
            let scale = 1.0 / tokens.max(1) as f32;

            // Exchange: compress this replica's gradients.
            let comp = &mut self.compressors[r];
            let stats = &mut self.stats;
            let mut idx = 0usize;
            let summed_ref = &mut summed;
            self.model.visit_params(&mut |p| {
                let mut g = p.grad.clone();
                g.scale(scale);
                let sent = match comp {
                    Some(c) => {
                        let (out, bits) = c.transcode(&g);
                        stats.record(g.len() as u64, bits);
                        out
                    }
                    None => {
                        stats.record(g.len() as u64, g.len() as u64 * 16);
                        g
                    }
                };
                if summed_ref.len() <= idx {
                    summed_ref.push(Tensor::zeros(sent.rows(), sent.cols()));
                }
                summed_ref[idx].add_assign(&sent);
                idx += 1;
            });
        }

        // Average and install as the model's gradient, then step.
        let inv_r = 1.0 / r_count as f32;
        let mut idx = 0usize;
        self.model.visit_params(&mut |p| {
            let mut g = summed[idx].clone();
            g.scale(inv_r);
            p.grad = g;
            idx += 1;
        });
        opt.step(self.model);
        total_nll / total_tokens.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_model::data::{LangConfig, SyntheticLang};
    use llm265_model::optimizer::Adam;
    use llm265_model::transformer::TransformerConfig;
    use llm265_tensor::rng::Pcg32;

    #[test]
    fn one_replica_uncompressed_matches_plain_training() {
        let cfg = TransformerConfig::tiny();
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut rng = Pcg32::seed_from(1);
        let batches: Vec<_> = (0..3)
            .map(|_| lang.sample_batch(2, 20, &mut rng).expect("training data"))
            .collect();

        let mut m1 = TransformerLm::new(&cfg, &mut Pcg32::seed_from(7));
        let mut m2 = TransformerLm::new(&cfg, &mut Pcg32::seed_from(7));
        let mut o1 = Adam::new(1e-3);
        let mut o2 = Adam::new(1e-3);
        for b in &batches {
            m1.train_step(b, &mut o1);
        }
        {
            let mut dp = DataParallelTrainer::new(&mut m2, 1);
            for b in &batches {
                dp.train_step(std::slice::from_ref(b), &mut o2);
            }
        }
        let eval = lang
            .sample_batch(4, 20, &mut Pcg32::seed_from(8))
            .expect("training data");
        assert!((m1.eval_perplexity(&eval) - m2.eval_perplexity(&eval)).abs() < 1e-6);
    }

    #[test]
    fn multi_replica_sees_more_data_per_step() {
        // 4 replicas, equal total data as 1 replica over 4 steps: losses
        // must both fall; DP must account 4x the wire volume per step.
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(2));
        let mut opt = Adam::new(3e-3);
        let mut rng = Pcg32::seed_from(3);
        let eval = lang
            .sample_batch(4, 24, &mut Pcg32::seed_from(4))
            .expect("training data");
        let before = model.eval_perplexity(&eval);
        let steps = 12;
        let mut dp = DataParallelTrainer::new(&mut model, 4);
        for _ in 0..steps {
            let shards: Vec<Batch> = (0..4)
                .map(|_| lang.sample_batch(2, 24, &mut rng).expect("training data"))
                .collect();
            dp.train_step(&shards, &mut opt);
        }
        assert_eq!(
            dp.stats().transfers as usize,
            steps * 4 * count_params(dp.model())
        );
        let model = dp.model();
        let after = model.eval_perplexity(&eval);
        assert!(after < before * 0.9, "before {before} after {after}");
    }

    fn count_params(model: &TransformerLm) -> usize {
        let mut m = model.clone();
        let mut n = 0;
        m.visit_params(&mut |_| n += 1);
        n
    }

    #[test]
    fn per_replica_compressors_keep_separate_state() {
        struct Stateful {
            calls: u64,
        }
        impl LossyCompressor for Stateful {
            fn name(&self) -> String {
                "stateful".into()
            }
            fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
                self.calls += 1;
                (t.clone(), t.len() as u64 * 2)
            }
        }
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(5));
        let mut opt = Adam::new(1e-3);
        let mut rng = Pcg32::seed_from(6);
        let mut dp = DataParallelTrainer::new(&mut model, 2).with_compressors(vec![
            Box::new(Stateful { calls: 0 }),
            Box::new(Stateful { calls: 0 }),
        ]);
        let shards: Vec<Batch> = (0..2)
            .map(|_| lang.sample_batch(1, 16, &mut rng).expect("training data"))
            .collect();
        dp.train_step(&shards, &mut opt);
        assert_eq!(dp.stats().bits_per_value(), 2.0);
    }

    #[test]
    #[should_panic(expected = "one shard per replica")]
    fn shard_count_mismatch_panics() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(9));
        let mut opt = Adam::new(1e-3);
        let mut dp = DataParallelTrainer::new(&mut model, 2);
        let batch = lang
            .sample_batch(1, 16, &mut Pcg32::seed_from(10))
            .expect("training data");
        dp.train_step(&[batch], &mut opt);
    }
}
