//! Pipeline-parallel training simulation (§5.1 of the paper).
//!
//! The model's blocks are partitioned into `stages` contiguous stages.
//! On each training step the hidden activations that would cross a stage
//! boundary pass through the activation compressor on the forward pass,
//! and their gradients pass through the gradient compressor on the
//! backward pass — the two traffic classes the paper's LLM.265(A) and
//! LLM.265(A+G) configurations compress. Wire volume is accounted per
//! class.

use llm265_model::optimizer::Optimizer;
use llm265_model::param::VisitParams;
use llm265_model::transformer::{Batch, TransformerLm};
use llm265_tensor::channel::LossyCompressor;

use crate::comm::CommStats;

/// Pipeline-parallel trainer wrapping a model.
pub struct PipelineTrainer<'a> {
    model: &'a mut TransformerLm,
    boundaries: Vec<usize>,
    /// Compressor for forward activations (None = uncompressed FP16).
    pub act_compressor: Option<Box<dyn LossyCompressor>>,
    /// Compressor for backward activation gradients (None = FP16).
    pub grad_compressor: Option<Box<dyn LossyCompressor>>,
    act_stats: CommStats,
    grad_stats: CommStats,
}

/// Computes the block indices after which stage boundaries fall, for a
/// model of `n_blocks` split into `stages` contiguous stages.
///
/// # Panics
///
/// Panics if `stages` is 0 or exceeds `n_blocks`.
pub fn stage_boundaries(n_blocks: usize, stages: usize) -> Vec<usize> {
    assert!(stages >= 1 && stages <= n_blocks, "invalid stage count");
    // Boundary after block i means blocks 0..=i are in an earlier stage.
    (1..stages)
        .map(|s| (s * n_blocks).div_ceil(stages) - 1)
        .collect()
}

impl<'a> PipelineTrainer<'a> {
    /// Creates a trainer over `model` with `stages` pipeline stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is 0 or exceeds the block count.
    pub fn new(model: &'a mut TransformerLm, stages: usize) -> Self {
        let boundaries = stage_boundaries(model.n_blocks(), stages);
        PipelineTrainer {
            model,
            boundaries,
            act_compressor: None,
            grad_compressor: None,
            act_stats: CommStats::new(),
            grad_stats: CommStats::new(),
        }
    }

    /// Sets the activation compressor (builder style).
    #[must_use]
    pub fn with_act_compressor(mut self, c: Box<dyn LossyCompressor>) -> Self {
        self.act_compressor = Some(c);
        self
    }

    /// Sets the activation-gradient compressor (builder style).
    #[must_use]
    pub fn with_grad_compressor(mut self, c: Box<dyn LossyCompressor>) -> Self {
        self.grad_compressor = Some(c);
        self
    }

    /// The stage-boundary block indices.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Forward-activation wire statistics.
    pub fn act_stats(&self) -> &CommStats {
        &self.act_stats
    }

    /// Backward-gradient wire statistics.
    pub fn grad_stats(&self) -> &CommStats {
        &self.grad_stats
    }

    /// Runs one training step over `batch`; returns mean per-token loss.
    pub fn train_step(&mut self, batch: &Batch, opt: &mut dyn Optimizer) -> f64 {
        self.model.zero_grads();
        let mut nll = 0.0;
        let mut tokens = 0usize;
        for seq in batch {
            let act_c = &mut self.act_compressor;
            let grad_c = &mut self.grad_compressor;
            let act_stats = &mut self.act_stats;
            let grad_stats = &mut self.grad_stats;
            let (n, t) = self.model.forward_backward_with_boundaries(
                seq,
                &self.boundaries,
                &mut |h| match act_c {
                    Some(c) => {
                        let (out, bits) = c.transcode(h);
                        act_stats.record(h.len() as u64, bits);
                        out
                    }
                    None => {
                        act_stats.record(h.len() as u64, h.len() as u64 * 16);
                        h.clone()
                    }
                },
                &mut |g| match grad_c {
                    Some(c) => {
                        let (out, bits) = c.transcode(g);
                        grad_stats.record(g.len() as u64, bits);
                        out
                    }
                    None => {
                        grad_stats.record(g.len() as u64, g.len() as u64 * 16);
                        g.clone()
                    }
                },
            );
            nll += n;
            tokens += t;
        }
        let scale = 1.0 / tokens.max(1) as f32;
        self.model.visit_params(&mut |p| p.grad.scale(scale));
        opt.step(self.model);
        nll / tokens.max(1) as f64
    }

    /// Immutable access to the wrapped model (for evaluation).
    pub fn model(&self) -> &TransformerLm {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_model::data::{LangConfig, SyntheticLang};
    use llm265_model::optimizer::Adam;
    use llm265_model::transformer::TransformerConfig;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::Tensor;

    struct CountingNoop(u64);
    impl LossyCompressor for CountingNoop {
        fn name(&self) -> String {
            "noop".into()
        }
        fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
            self.0 += 1;
            (t.clone(), t.len() as u64 * 4)
        }
    }

    #[test]
    fn boundaries_partition_blocks_evenly() {
        assert_eq!(stage_boundaries(4, 4), vec![0, 1, 2]);
        assert_eq!(stage_boundaries(4, 2), vec![1]);
        assert_eq!(stage_boundaries(4, 1), Vec::<usize>::new());
        assert_eq!(stage_boundaries(6, 4), vec![1, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "invalid stage count")]
    fn too_many_stages_panics() {
        let _ = stage_boundaries(2, 3);
    }

    #[test]
    fn uncompressed_pp_matches_plain_training() {
        // With no compressors, PP training must produce exactly the same
        // parameters as plain training.
        let cfg = TransformerConfig::tiny();
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut rng = Pcg32::seed_from(1);
        let batches: Vec<_> = (0..4)
            .map(|_| lang.sample_batch(2, 24, &mut rng).expect("training data"))
            .collect();

        let mut m1 = TransformerLm::new(&cfg, &mut Pcg32::seed_from(5));
        let mut m2 = TransformerLm::new(&cfg, &mut Pcg32::seed_from(5));
        let mut o1 = Adam::new(1e-3);
        let mut o2 = Adam::new(1e-3);
        for b in &batches {
            m1.train_step(b, &mut o1);
        }
        {
            let mut pp = PipelineTrainer::new(&mut m2, 2);
            for b in &batches {
                pp.train_step(b, &mut o2);
            }
            assert!(pp.act_stats().values > 0);
            assert_eq!(pp.act_stats().bits_per_value(), 16.0);
        }
        let ppl_batch = lang
            .sample_batch(4, 24, &mut Pcg32::seed_from(9))
            .expect("training data");
        let p1 = m1.eval_perplexity(&ppl_batch);
        let p2 = m2.eval_perplexity(&ppl_batch);
        assert!((p1 - p2).abs() < 1e-6, "{p1} vs {p2}");
    }

    #[test]
    fn compressors_are_invoked_per_boundary_and_direction() {
        let cfg = TransformerConfig::tiny(); // 2 blocks
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut model = TransformerLm::new(&cfg, &mut Pcg32::seed_from(2));
        let mut opt = Adam::new(1e-3);
        let batch = lang
            .sample_batch(3, 16, &mut Pcg32::seed_from(3))
            .expect("training data");
        let mut pp = PipelineTrainer::new(&mut model, 2)
            .with_act_compressor(Box::new(CountingNoop(0)))
            .with_grad_compressor(Box::new(CountingNoop(0)));
        pp.train_step(&batch, &mut opt);
        // 1 boundary × 3 sequences, both directions.
        assert_eq!(pp.act_stats().transfers, 3);
        assert_eq!(pp.grad_stats().transfers, 3);
        assert_eq!(pp.act_stats().bits_per_value(), 4.0);
        assert!((pp.act_stats().ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lossy_activation_compression_still_trains() {
        struct Rtnish;
        impl LossyCompressor for Rtnish {
            fn name(&self) -> String {
                "rtn8ish".into()
            }
            fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
                let m = t.max_abs().max(1e-6) / 127.0;
                (t.map(|v| (v / m).round() * m), t.len() as u64 * 8)
            }
        }
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(4));
        let mut opt = Adam::new(3e-3);
        let mut rng = Pcg32::seed_from(5);
        let eval = lang
            .sample_batch(4, 24, &mut Pcg32::seed_from(6))
            .expect("training data");
        let before = model.eval_perplexity(&eval);
        {
            let mut pp = PipelineTrainer::new(&mut model, 2)
                .with_act_compressor(Box::new(Rtnish))
                .with_grad_compressor(Box::new(Rtnish));
            for _ in 0..30 {
                let b = lang.sample_batch(4, 24, &mut rng).expect("training data");
                pp.train_step(&b, &mut opt);
            }
        }
        let after = model.eval_perplexity(&eval);
        assert!(after < before * 0.9, "before {before} after {after}");
    }
}
