//! Distributed-training simulator for the LLM.265 reproduction.
//!
//! §5 of the paper evaluates communication compression in two parallelism
//! regimes. We have one machine, so both regimes are *simulated* in a way
//! that preserves exactly what the experiments measure — which tensors
//! cross device boundaries, how compression distorts them, and how many
//! bits they cost:
//!
//! - [`pipeline`] — pipeline parallelism: the model's blocks are assigned
//!   to stages; hidden activations cross stage boundaries on the forward
//!   pass and their gradients on the backward pass, each through a
//!   pluggable [`LossyCompressor`](llm265_tensor::channel::LossyCompressor).
//! - [`data_parallel`] — data parallelism: each replica computes gradients
//!   on its own shard; gradients pass through per-replica compressors
//!   (error-feedback state stays per-replica, as 1-bit Adam requires) and
//!   are averaged before the optimizer step.
//! - [`comm`] — wire-volume accounting shared by both.

#![forbid(unsafe_code)]

pub mod comm;
pub mod data_parallel;
pub mod hybrid;
pub mod pipeline;
