//! Hybrid parallelism: data-parallel replicas, each pipeline-sharded —
//! the deployment shape of the paper's Fig 1, with *both* traffic classes
//! compressed (inter-stage activations/gradients inside each replica,
//! weight gradients across replicas).

use llm265_model::optimizer::Optimizer;
use llm265_model::param::VisitParams;
use llm265_model::transformer::{Batch, TransformerLm};
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

use crate::comm::CommStats;
use crate::pipeline::stage_boundaries;

/// Factory for per-replica compressors (stateful schemes need one
/// instance per replica).
pub type CompressorFactory = Box<dyn Fn() -> Box<dyn LossyCompressor>>;

/// Hybrid trainer: `replicas` data-parallel copies, each split into
/// `stages` pipeline stages.
pub struct HybridTrainer<'a> {
    model: &'a mut TransformerLm,
    replicas: usize,
    boundaries: Vec<usize>,
    act_compressors: Vec<Option<Box<dyn LossyCompressor>>>,
    actgrad_compressors: Vec<Option<Box<dyn LossyCompressor>>>,
    grad_compressors: Vec<Option<Box<dyn LossyCompressor>>>,
    pp_stats: CommStats,
    dp_stats: CommStats,
}

impl<'a> HybridTrainer<'a> {
    /// Creates an uncompressed hybrid trainer.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is 0 or `stages` does not divide the model's
    /// blocks sensibly (see [`stage_boundaries`]).
    pub fn new(model: &'a mut TransformerLm, replicas: usize, stages: usize) -> Self {
        assert!(replicas >= 1, "need at least one replica");
        let boundaries = stage_boundaries(model.n_blocks(), stages);
        HybridTrainer {
            model,
            replicas,
            boundaries,
            act_compressors: (0..replicas).map(|_| None).collect(),
            actgrad_compressors: (0..replicas).map(|_| None).collect(),
            grad_compressors: (0..replicas).map(|_| None).collect(),
            pp_stats: CommStats::new(),
            dp_stats: CommStats::new(),
        }
    }

    /// Installs per-replica activation compressors for the PP boundaries.
    #[must_use]
    pub fn with_act_compressors(mut self, make: CompressorFactory) -> Self {
        self.act_compressors = (0..self.replicas).map(|_| Some(make())).collect();
        self
    }

    /// Installs per-replica activation-gradient compressors.
    #[must_use]
    pub fn with_actgrad_compressors(mut self, make: CompressorFactory) -> Self {
        self.actgrad_compressors = (0..self.replicas).map(|_| Some(make())).collect();
        self
    }

    /// Installs per-replica weight-gradient compressors for the DP
    /// exchange.
    #[must_use]
    pub fn with_grad_compressors(mut self, make: CompressorFactory) -> Self {
        self.grad_compressors = (0..self.replicas).map(|_| Some(make())).collect();
        self
    }

    /// Pipeline (inter-stage) wire statistics, both directions.
    pub fn pp_stats(&self) -> &CommStats {
        &self.pp_stats
    }

    /// Data-parallel (gradient all-reduce) wire statistics.
    pub fn dp_stats(&self) -> &CommStats {
        &self.dp_stats
    }

    /// Immutable access to the wrapped model.
    pub fn model(&self) -> &TransformerLm {
        self.model
    }

    /// One hybrid step: each replica runs its shard through the pipeline
    /// (compressing boundary crossings), then weight gradients are
    /// exchanged through the DP compressors and averaged. Returns the
    /// mean per-token loss.
    ///
    /// # Panics
    ///
    /// Panics if `shards.len() != replicas`.
    pub fn train_step(&mut self, shards: &[Batch], opt: &mut dyn Optimizer) -> f64 {
        assert_eq!(shards.len(), self.replicas, "one shard per replica");
        let mut summed: Vec<Tensor> = Vec::new();
        let mut total_nll = 0.0;
        let mut total_tokens = 0usize;

        for (r, shard) in shards.iter().enumerate() {
            self.model.zero_grads();
            let mut nll = 0.0;
            let mut tokens = 0usize;
            for seq in shard {
                let act_c = &mut self.act_compressors[r];
                let actgrad_c = &mut self.actgrad_compressors[r];
                // Separate accumulators per direction (the closures need
                // disjoint captures); merged below.
                let mut fwd_stats = CommStats::new();
                let mut bwd_stats = CommStats::new();
                let (n, t) = self.model.forward_backward_with_boundaries(
                    seq,
                    &self.boundaries,
                    &mut |h| transcode_or_clone(act_c, h, &mut fwd_stats),
                    &mut |g| transcode_or_clone(actgrad_c, g, &mut bwd_stats),
                );
                self.pp_stats.merge(&fwd_stats);
                self.pp_stats.merge(&bwd_stats);
                nll += n;
                tokens += t;
            }
            total_nll += nll;
            total_tokens += tokens;
            let scale = 1.0 / tokens.max(1) as f32;

            let comp = &mut self.grad_compressors[r];
            let dp_stats = &mut self.dp_stats;
            let summed_ref = &mut summed;
            let mut idx = 0usize;
            self.model.visit_params(&mut |p| {
                let mut g = p.grad.clone();
                g.scale(scale);
                let sent = transcode_or_clone(comp, &g, dp_stats);
                if summed_ref.len() <= idx {
                    summed_ref.push(Tensor::zeros(sent.rows(), sent.cols()));
                }
                summed_ref[idx].add_assign(&sent);
                idx += 1;
            });
        }

        let inv_r = 1.0 / self.replicas as f32;
        let mut idx = 0usize;
        self.model.visit_params(&mut |p| {
            let mut g = summed[idx].clone();
            g.scale(inv_r);
            p.grad = g;
            idx += 1;
        });
        opt.step(self.model);
        total_nll / total_tokens.max(1) as f64
    }
}

fn transcode_or_clone(
    comp: &mut Option<Box<dyn LossyCompressor>>,
    t: &Tensor,
    stats: &mut CommStats,
) -> Tensor {
    match comp {
        Some(c) => {
            let (out, bits) = c.transcode(t);
            stats.record(t.len() as u64, bits);
            out
        }
        None => {
            stats.record(t.len() as u64, t.len() as u64 * 16);
            t.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_model::data::{LangConfig, SyntheticLang};
    use llm265_model::optimizer::Adam;
    use llm265_model::transformer::TransformerConfig;
    use llm265_tensor::rng::Pcg32;

    struct Rtnish;
    impl LossyCompressor for Rtnish {
        fn name(&self) -> String {
            "rtn8ish".into()
        }
        fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
            let m = t.max_abs().max(1e-6) / 127.0;
            (t.map(|v| (v / m).round() * m), t.len() as u64 * 8)
        }
    }

    #[test]
    fn uncompressed_hybrid_matches_plain_training() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut rng = Pcg32::seed_from(1);
        let shards: Vec<Vec<Batch>> = (0..3)
            .map(|_| vec![lang.sample_batch(2, 20, &mut rng).expect("training data")])
            .collect();
        let eval = lang
            .sample_batch(4, 20, &mut Pcg32::seed_from(2))
            .expect("training data");

        let mut plain = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(5));
        let mut o1 = Adam::new(1e-3);
        for s in &shards {
            plain.train_step(&s[0], &mut o1);
        }

        let mut hybrid_model =
            TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(5));
        {
            let mut o2 = Adam::new(1e-3);
            let mut hy = HybridTrainer::new(&mut hybrid_model, 1, 2);
            for s in &shards {
                hy.train_step(s, &mut o2);
            }
            assert!(hy.pp_stats().values > 0);
            assert_eq!(hy.pp_stats().bits_per_value(), 16.0);
            assert_eq!(hy.dp_stats().bits_per_value(), 16.0);
        }
        let d = (plain.eval_perplexity(&eval) - hybrid_model.eval_perplexity(&eval)).abs();
        assert!(d < 1e-6, "hybrid must be a refactoring of plain: {d}");
    }

    #[test]
    fn fully_compressed_hybrid_still_trains() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(6));
        let mut opt = Adam::new(3e-3);
        let mut rng = Pcg32::seed_from(7);
        let eval = lang
            .sample_batch(4, 24, &mut Pcg32::seed_from(8))
            .expect("training data");
        let before = model.eval_perplexity(&eval);
        {
            let mut hy = HybridTrainer::new(&mut model, 2, 2)
                .with_act_compressors(Box::new(|| Box::new(Rtnish)))
                .with_actgrad_compressors(Box::new(|| Box::new(Rtnish)))
                .with_grad_compressors(Box::new(|| Box::new(Rtnish)));
            for _ in 0..25 {
                let shards: Vec<Batch> = (0..2)
                    .map(|_| lang.sample_batch(2, 24, &mut rng).expect("training data"))
                    .collect();
                hy.train_step(&shards, &mut opt);
            }
            assert_eq!(hy.pp_stats().bits_per_value(), 8.0);
            assert_eq!(hy.dp_stats().bits_per_value(), 8.0);
            assert!((hy.pp_stats().ratio() - 2.0).abs() < 1e-12);
        }
        let after = model.eval_perplexity(&eval);
        assert!(after < before * 0.9, "before {before} after {after}");
    }

    #[test]
    #[should_panic(expected = "one shard per replica")]
    fn shard_count_mismatch_panics() {
        let lang = SyntheticLang::new(&LangConfig::tiny());
        let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(9));
        let mut opt = Adam::new(1e-3);
        let mut hy = HybridTrainer::new(&mut model, 2, 2);
        let batch = lang
            .sample_batch(1, 16, &mut Pcg32::seed_from(10))
            .expect("training data");
        hy.train_step(&[batch], &mut opt);
    }
}
