//! Adversarial tensor-stream tests: corrupt or truncated streams handed to
//! the tensor codec and the archive must produce [`CodecError`]s, never
//! panics.

use llm265_core::archive::TensorArchive;
use llm265_core::{CodecError, EncodedTensor, Llm265Codec, RateTarget, TensorCodec};
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_weight, WeightProfile};
use llm265_tensor::Tensor;

fn sample_tensor() -> Tensor {
    let mut rng = Pcg32::seed_from(7);
    llm_weight(40, 40, &WeightProfile::default(), &mut rng)
}

fn sample_encoded() -> EncodedTensor {
    Llm265Codec::new()
        .encode(&sample_tensor(), RateTarget::Qp(32.0))
        .expect("sample encode")
}

#[test]
fn empty_stream_errors() {
    let codec = Llm265Codec::new();
    let empty = EncodedTensor::from_parts(Vec::new(), 40, 40);
    assert!(codec.decode(&empty).is_err());
}

#[test]
fn bad_magic_is_rejected() {
    let codec = Llm265Codec::new();
    let enc = sample_encoded();
    let mut bytes = enc.bytes().to_vec();
    bytes[0] ^= 0xff;
    let (rows, cols) = enc.shape();
    match codec.decode(&EncodedTensor::from_parts(bytes, rows, cols)) {
        Err(CodecError::Corrupt(_)) => {}
        other => panic!("expected Corrupt, got {:?}", other.map(|t| t.shape())),
    }
}

#[test]
fn every_truncation_point_errors_never_panics() {
    let codec = Llm265Codec::new();
    let enc = sample_encoded();
    let (rows, cols) = enc.shape();
    for cut in 0..enc.bytes().len() {
        let trimmed = EncodedTensor::from_parts(enc.bytes()[..cut].to_vec(), rows, cols);
        assert!(
            codec.decode(&trimmed).is_err(),
            "truncation to {cut}/{} bytes decoded",
            enc.bytes().len()
        );
    }
}

#[test]
fn every_single_byte_flip_never_panics() {
    let codec = Llm265Codec::new();
    let enc = sample_encoded();
    let (rows, cols) = enc.shape();
    for pos in 0..enc.bytes().len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut bytes = enc.bytes().to_vec();
            bytes[pos] ^= flip;
            // Entropy-coded payloads carry no checksum, so a flip may
            // still decode (to a distorted tensor) — but never panic, and
            // never to the wrong shape.
            if let Ok(t) = codec.decode(&EncodedTensor::from_parts(bytes, rows, cols)) {
                assert_eq!(t.shape(), (rows, cols));
            }
        }
    }
}

#[test]
fn hostile_declared_shape_is_limited() {
    // Stream layout starts: magic u32, rows u32, cols u32 (all LE).
    let codec = Llm265Codec::new();
    let enc = sample_encoded();
    let mut bytes = enc.bytes().to_vec();
    bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    match codec.decode(&EncodedTensor::from_parts(bytes, 40, 40)) {
        Err(CodecError::LimitExceeded(_)) => {}
        other => panic!("expected LimitExceeded, got {:?}", other.map(|t| t.shape())),
    }
}

#[test]
fn chunk_coverage_mismatch_is_detected() {
    // Shrinking the declared row count leaves the chunks covering more
    // rows than the tensor has; growing it leaves rows uncovered. Both
    // directions must be caught by the coverage checks, not trusted.
    let codec = Llm265Codec::new();
    let enc = sample_encoded();
    for declared_rows in [8u32, 160] {
        let mut bytes = enc.bytes().to_vec();
        bytes[4..8].copy_from_slice(&declared_rows.to_le_bytes());
        assert!(
            codec
                .decode(&EncodedTensor::from_parts(bytes, 40, 40))
                .is_err(),
            "declared rows {declared_rows} decoded"
        );
    }
}

#[test]
fn archive_rejects_garbage_and_truncations() {
    let codec = Llm265Codec::new();
    assert!(TensorArchive::decode(&codec, &[]).is_err());
    assert!(TensorArchive::decode(&codec, b"not an archive").is_err());

    let t = sample_tensor();
    let archive =
        TensorArchive::encode(&codec, &[("layer.0".to_string(), t)], RateTarget::Qp(32.0))
            .expect("archive encode");
    let bytes = archive.bytes();
    assert!(!TensorArchive::decode(&codec, bytes)
        .expect("clean archive decodes")
        .is_empty());
    for cut in 0..bytes.len() {
        assert!(
            TensorArchive::decode(&codec, &bytes[..cut]).is_err(),
            "archive truncated to {cut}/{} bytes decoded",
            bytes.len()
        );
    }
}

#[test]
fn archive_hostile_entry_count_is_limited() {
    let mut evil = Vec::new();
    // Real archive magic, then an absurd entry count.
    let codec = Llm265Codec::new();
    let archive = TensorArchive::encode(
        &codec,
        &[("w".to_string(), sample_tensor())],
        RateTarget::Qp(32.0),
    )
    .expect("archive encode");
    evil.extend_from_slice(&archive.bytes()[..4]);
    evil.extend_from_slice(&u32::MAX.to_le_bytes());
    match TensorArchive::decode(&codec, &evil) {
        Err(CodecError::LimitExceeded(_)) => {}
        other => panic!("expected LimitExceeded, got {:?}", other.map(|v| v.len())),
    }
}
