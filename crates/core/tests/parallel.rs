//! Determinism of the parallel chunk pipeline.
//!
//! The distributed-training simulator re-encodes the same tensor on every
//! rank and compares streams byte for byte, so parallel encode/decode must
//! be bit-identical at every thread count — and identical to what the
//! serial pre-pool encoder produced (pinned below by FNV-1a hashes
//! captured from the serial implementation).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use llm265_core::{pool, CodecError, Llm265Codec, Llm265Config, RateTarget, TensorCodec};
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_weight, WeightProfile};
use llm265_tensor::Tensor;

fn weight(seed: u64, n: usize) -> Tensor {
    let mut rng = Pcg32::seed_from(seed);
    llm_weight(n, n, &WeightProfile::default(), &mut rng)
}

fn codec(max_chunk_pixels: usize, threads: usize) -> Llm265Codec {
    Llm265Codec::with_config(Llm265Config {
        max_chunk_pixels,
        threads,
        ..Llm265Config::default()
    })
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Streams must match the serial pre-pool encoder exactly. These hashes
/// were captured from the implementation *before* the thread pool and the
/// probe/assemble split landed; any drift here is a format or determinism
/// regression, not a refactor detail.
#[test]
fn fixed_qp_streams_match_serial_golden_hashes() {
    let t = weight(42, 96);
    for threads in [1, 2, 8] {
        let enc = codec(96 * 24, threads)
            .encode(&t, RateTarget::Qp(24.0))
            .expect("encode");
        assert_eq!(enc.bytes().len(), 3580, "threads {threads}");
        assert_eq!(
            fnv1a(enc.bytes()),
            0x93ae_1250_d6b2_7829,
            "threads {threads}"
        );
    }

    let t = weight(7, 64);
    for threads in [1, 2, 8] {
        let enc = Llm265Codec::with_config(Llm265Config {
            threads,
            ..Llm265Config::default()
        })
        .encode(&t, RateTarget::Qp(30.0))
        .expect("encode");
        assert_eq!(enc.bytes().len(), 467, "threads {threads}");
        assert_eq!(
            fnv1a(enc.bytes()),
            0xafc3_c126_139d_2a09,
            "threads {threads}"
        );
    }
}

#[test]
fn rate_searches_are_identical_across_thread_counts_and_runs() {
    let t = weight(13, 96);
    for target in [
        RateTarget::BitsPerValue(3.0),
        RateTarget::MaxNormalizedMse(0.02),
    ] {
        let reference = codec(96 * 24, 1).encode(&t, target).expect("encode");
        for threads in [1, 2, 8] {
            let c = codec(96 * 24, threads);
            let a = c.encode(&t, target).expect("encode");
            let b = c.encode(&t, target).expect("encode");
            assert_eq!(a.bytes(), b.bytes(), "run-to-run, threads {threads}");
            assert_eq!(
                a.bytes(),
                reference.bytes(),
                "threads {threads} vs serial, target {target:?}"
            );
        }
    }
}

#[test]
fn parallel_decode_matches_serial_decode() {
    let t = weight(21, 128);
    let enc = codec(1 << 12, 1)
        .encode(&t, RateTarget::Qp(26.0))
        .expect("encode");
    let serial = codec(1 << 12, 1).decode(&enc).expect("decode");
    for threads in [2, 8] {
        let parallel = codec(1 << 12, threads).decode(&enc).expect("decode");
        assert_eq!(parallel, serial, "threads {threads}");
    }
}

#[test]
fn zero_threads_resolves_to_machine_parallelism_and_stays_exact() {
    let t = weight(42, 96);
    let auto = codec(96 * 24, 0)
        .encode(&t, RateTarget::Qp(24.0))
        .expect("encode");
    assert_eq!(fnv1a(auto.bytes()), 0x93ae_1250_d6b2_7829);
    let dec = codec(96 * 24, 0).decode(&auto).expect("decode");
    assert_eq!(dec.shape(), t.shape());
}

/// A worker panic must surface as [`CodecError::Internal`], never as a
/// process abort or a hung scope.
#[test]
fn pool_worker_panic_surfaces_as_codec_error() {
    let err = pool::run_ordered(8, 4, |i| {
        if i == 5 {
            panic!("worker bug");
        }
        i
    })
    .expect_err("panic must become an error");
    assert!(matches!(err, CodecError::Internal(_)), "{err:?}");
}

/// The incremental search must stay lazy: per rate-targeted encode it may
/// probe at most `search_iters + 1` QPs (the cheap QP-51 anchor plus the
/// capped loop), and typically far fewer. The eager bisection it replaced
/// spent `search_iters + 2` probes (both endpoints up front); the bound
/// here fails if endpoint probing ever becomes eager again AND documents
/// the observed budget.
#[test]
fn rate_search_encode_counts_stay_lazy() {
    let t = weight(3, 96);
    let n_chunks = 4; // 96 rows / 24-row bands
    for target in [
        RateTarget::BitsPerValue(3.0),
        RateTarget::MaxNormalizedMse(0.02),
    ] {
        let counter = Arc::new(AtomicU64::new(0));
        let mut c = codec(96 * 24, 1);
        c.set_chunk_encode_counter(Arc::clone(&counter));
        c.encode(&t, target).expect("encode");
        let probes = counter.load(Ordering::Relaxed) / n_chunks;
        assert!(
            probes <= u64::try_from(c.config().search_iters).unwrap() + 1,
            "{target:?}: {probes} probed QPs"
        );
        // The old eager search always burned 11 probes here; the
        // incremental one should do meaningfully better, not just tie.
        assert!(probes <= 8, "{target:?}: {probes} probed QPs");
    }
}

/// Fixed-QP encodes probe exactly once per chunk — no hidden re-encodes
/// in the assemble step.
#[test]
fn fixed_qp_encodes_once_per_chunk() {
    let t = weight(3, 96);
    let counter = Arc::new(AtomicU64::new(0));
    let mut c = codec(96 * 24, 1);
    c.set_chunk_encode_counter(Arc::clone(&counter));
    c.encode(&t, RateTarget::Qp(28.0)).expect("encode");
    assert_eq!(counter.load(Ordering::Relaxed), 4);
}
