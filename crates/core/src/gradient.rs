//! Residual-compensated gradient compression (§5.1 of the paper).
//!
//! Gradients are the hardest tensor class: directly compressing them to
//! ~3.5 bits makes training diverge after a few hundred steps. The paper's
//! fix is two-stage:
//!
//! 1. compress the gradient `G` to ~3.5 bits: `Comp(G)`;
//! 2. compress the residual `G − Comp(G)` with a schedule — LLM.265 at
//!    ~3.5 bits for the first `switch_step` steps, then 8-bit RTN
//!    afterwards, because late-training gradients develop 1→3 orders of
//!    magnitude of per-dimension range variance that a 3.5-bit residual
//!    can no longer carry.
//!
//! The transmitted payload is both stages; the receiver reconstructs
//! `Comp(G) + Comp(residual)`. The paper's realized average for an 8 000-
//! step run with `switch_step = 2500` is
//! `((3.5 + 3.5) · 2500 + (3.5 + 8) · 5500) / 8000 ≈ 10.1` bits/value,
//! reproduced by [`average_bits_per_value`].

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

use crate::{Llm265Codec, RateTarget, TensorCodec};

/// Configuration of the two-stage gradient compressor.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualCompensatorConfig {
    /// Bits/value for the primary pass `Comp(G)`.
    pub primary_bits: f64,
    /// Bits/value for the residual pass while in the early phase.
    pub early_residual_bits: f64,
    /// Step at which the residual pass switches to 8-bit RTN.
    pub switch_step: usize,
}

impl Default for ResidualCompensatorConfig {
    fn default() -> Self {
        ResidualCompensatorConfig {
            primary_bits: 3.5,
            early_residual_bits: 3.5,
            switch_step: 2500,
        }
    }
}

/// Two-stage gradient compressor with residual compensation.
#[derive(Debug, Clone)]
pub struct ResidualCompensator {
    codec: Llm265Codec,
    config: ResidualCompensatorConfig,
    step: usize,
}

impl ResidualCompensator {
    /// Creates a compensator with the paper's defaults (3.5 + 3.5/8 bits,
    /// switch at step 2500).
    pub fn new() -> Self {
        Self::with_config(ResidualCompensatorConfig::default())
    }

    /// Creates a compensator with an explicit configuration.
    #[must_use]
    pub fn with_config(config: ResidualCompensatorConfig) -> Self {
        ResidualCompensator {
            codec: Llm265Codec::new(),
            config,
            step: 0,
        }
    }

    /// Current training step (advanced once per [`LossyCompressor::transcode`]).
    pub fn step(&self) -> usize {
        self.step
    }

    /// Whether the residual stage has switched to 8-bit RTN.
    pub fn in_late_phase(&self) -> bool {
        self.step >= self.config.switch_step
    }

    /// Compresses one gradient, returning the reconstruction and the total
    /// transmitted bits. Does not advance the step counter.
    pub fn compress(&self, g: &Tensor) -> (Tensor, u64) {
        // Stage 1: Comp(G).
        let enc1 = self
            .codec
            .encode(g, RateTarget::BitsPerValue(self.config.primary_bits))
            .expect("primary gradient encode"); // lint:allow(panic): non-empty by contract
                                                // lint:allow(panic): decoding a stream produced two lines up
        let comp = self.codec.decode(&enc1).expect("primary decode");

        // Stage 2: compress the residual.
        let residual = g.sub(&comp);
        let (res_recon, res_bits) = if self.in_late_phase() {
            rtn8(&residual)
        } else {
            let enc2 = self
                .codec
                .encode(
                    &residual,
                    RateTarget::BitsPerValue(self.config.early_residual_bits),
                )
                .expect("residual encode"); // lint:allow(panic): same shape as g
                                            // lint:allow(panic): decoding a stream produced two lines up
            let dec = self.codec.decode(&enc2).expect("residual decode");
            (dec, enc2.bits())
        };

        let mut out = comp;
        out.add_assign(&res_recon);
        (out, enc1.bits() + res_bits)
    }
}

impl Default for ResidualCompensator {
    fn default() -> Self {
        Self::new()
    }
}

impl LossyCompressor for ResidualCompensator {
    fn name(&self) -> String {
        format!(
            "LLM.265(A+G) {:.1}+{:.1}/8b @{}",
            self.config.primary_bits, self.config.early_residual_bits, self.config.switch_step
        )
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let out = self.compress(t);
        self.step += 1;
        out
    }
}

/// Per-row 8-bit min–max RTN quantization of the residual (the late-phase
/// stage-2 coder). Returns the reconstruction and the bits spent
/// (8 bits/value plus two f32 scales per row).
pub fn rtn8(t: &Tensor) -> (Tensor, u64) {
    let mut out = Tensor::zeros(t.rows(), t.cols());
    for r in 0..t.rows() {
        let row = t.row(r);
        let (lo, hi) = row
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        let scale = if hi > lo { (hi - lo) / 255.0 } else { 0.0 };
        let out_row = out.row_mut(r);
        for (o, &v) in out_row.iter_mut().zip(row) {
            // lint:allow(float-cmp): `scale` is assigned exactly 0.0 for
            // flat rows above; this guards the division below.
            if scale == 0.0 {
                *o = lo;
            } else {
                let q = ((v - lo) / scale).round().clamp(0.0, 255.0);
                *o = lo + q * scale;
            }
        }
    }
    let bits = t.len() as u64 * 8 + t.rows() as u64 * 64;
    (out, bits)
}

/// The paper's realized-average formula: bits/value over a whole run of
/// `total_steps`, combining the early (primary + residual) and late
/// (primary + 8-bit RTN) phases.
pub fn average_bits_per_value(config: &ResidualCompensatorConfig, total_steps: usize) -> f64 {
    let early = config.switch_step.min(total_steps) as f64;
    let late = total_steps.saturating_sub(config.switch_step) as f64;
    let early_bits = config.primary_bits + config.early_residual_bits;
    let late_bits = config.primary_bits + 8.0;
    (early_bits * early + late_bits * late) / (early + late).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::stats;
    use llm265_tensor::synthetic::{llm_gradient, GradientProfile};

    #[test]
    fn paper_average_formula_matches() {
        // ((3.5 + 3.5) * 2500 + (3.5 + 8) * 5500) / 8000 = 10.09...
        let avg = average_bits_per_value(&ResidualCompensatorConfig::default(), 8000);
        assert!((avg - 10.09375).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn residual_compensation_beats_single_stage() {
        let mut rng = Pcg32::seed_from(30);
        let g = llm_gradient(48, 48, &GradientProfile::at_progress(0.3), &mut rng);
        let comp = ResidualCompensator::new();
        let (two_stage, _) = comp.compress(&g);

        let codec = Llm265Codec::new();
        let enc = codec.encode(&g, RateTarget::BitsPerValue(3.5)).unwrap();
        let one_stage = codec.decode(&enc).unwrap();

        let e2 = stats::tensor_mse(&g, &two_stage);
        let e1 = stats::tensor_mse(&g, &one_stage);
        assert!(e2 < e1, "two-stage {e2} vs one-stage {e1}");
    }

    #[test]
    fn phase_switch_happens_at_configured_step() {
        let mut comp = ResidualCompensator::with_config(ResidualCompensatorConfig {
            switch_step: 3,
            ..Default::default()
        });
        let mut rng = Pcg32::seed_from(31);
        let g = llm_gradient(16, 16, &GradientProfile::default(), &mut rng);
        let mut bits_per_step = Vec::new();
        for _ in 0..5 {
            let (_, bits) = comp.transcode(&g);
            bits_per_step.push(bits);
        }
        assert!(!comp.in_late_phase() || comp.step() >= 3);
        // Late-phase steps carry the 8-bit residual: strictly more bits.
        assert!(bits_per_step[4] > bits_per_step[0]);
        let late_bpv = bits_per_step[4] as f64 / g.len() as f64;
        assert!(
            late_bpv > 8.0,
            "late phase must include 8-bit residual: {late_bpv}"
        );
    }

    #[test]
    fn late_phase_handles_wide_range_gradients() {
        // Late-training gradients have 3 orders of magnitude of row-scale
        // spread; the 8-bit RTN residual must keep relative error sane.
        let mut rng = Pcg32::seed_from(32);
        let g = llm_gradient(64, 64, &GradientProfile::at_progress(1.0), &mut rng);
        let mut comp = ResidualCompensator::with_config(ResidualCompensatorConfig {
            switch_step: 0,
            ..Default::default()
        });
        let (recon, bits) = comp.transcode(&g);
        let nmse = stats::tensor_mse(&g, &recon) / stats::variance(g.data());
        assert!(nmse < 0.05, "nmse {nmse}");
        let bpv = bits as f64 / g.len() as f64;
        assert!(bpv > 10.0 && bpv < 14.0, "bpv {bpv}");
    }

    #[test]
    fn rtn8_row_scaling_is_tight() {
        let mut t = Tensor::zeros(2, 4);
        t.row_mut(0).copy_from_slice(&[0.0, 1.0, 2.0, 3.0]);
        t.row_mut(1).copy_from_slice(&[-1000.0, 0.0, 500.0, 1000.0]);
        let (out, bits) = rtn8(&t);
        for r in 0..2 {
            let row_range = if r == 0 { 3.0f32 } else { 2000.0 };
            for (a, b) in t.row(r).iter().zip(out.row(r)) {
                assert!((a - b).abs() <= row_range / 255.0 / 2.0 + 1e-3);
            }
        }
        assert_eq!(bits, 8 * 8 + 2 * 64);
    }

    #[test]
    fn rtn8_constant_rows_are_exact() {
        let t = Tensor::full(3, 5, -0.75);
        let (out, _) = rtn8(&t);
        assert_eq!(out, t);
    }
}
