//! LLM.265 — the video-codec-based tensor codec (the paper's primary
//! contribution).
//!
//! The pipeline mirrors §3.2 of the paper:
//!
//! 1. the input tensor is partitioned into frame-sized **chunks** (NVENC
//!    has frame-size limits; so does our software codec's working set);
//! 2. each chunk's FP16/FP32 values are affinely quantized to **8-bit
//!    Luma** pixels;
//! 3. frames are compressed by the **intra-only video codec**
//!    ([`llm265_videocodec`]), with the rate knob (continuous QP /
//!    bisection) delivering **fractional bits-per-value** targets;
//! 4. decoding inverts the codec and the affine map.
//!
//! On top of the plain codec this crate provides the paper's two rate
//! features:
//!
//! - **Variable bit-width allocation** ([`rate`]) — the footnote-2 search
//!   `B = k·l + b` over a layer stack, giving later (harder) layers more
//!   bits while holding the average budget;
//! - **Residual-compensated gradient compression** ([`gradient`]) — §5.1's
//!   two-stage scheme `Comp(G) + Comp(G − Comp(G))` with the late-training
//!   switch of the residual stage to 8-bit RTN.
//!
//! # Example
//!
//! ```
//! use llm265_core::{Llm265Codec, TensorCodec, RateTarget};
//! use llm265_tensor::{synthetic, rng::Pcg32};
//!
//! let mut rng = Pcg32::seed_from(1);
//! let w = synthetic::llm_weight(64, 64, &synthetic::WeightProfile::default(), &mut rng);
//! let codec = Llm265Codec::new();
//! let enc = codec.encode(&w, RateTarget::BitsPerValue(3.0))?;
//! assert!(enc.bits_per_value() <= 3.2);
//! let out = codec.decode(&enc)?;
//! assert_eq!(out.shape(), w.shape());
//! # Ok::<(), llm265_core::CodecError>(())
//! ```

#![forbid(unsafe_code)]

pub mod archive;
mod chunk;
mod codec;
pub mod gradient;
pub mod pool;
pub mod rate;

pub use codec::{Llm265Channel, Llm265Codec, Llm265Config, Llm265TrackingChannel};
pub use llm265_videocodec::{PipelineConfig, Profile, ProfileKind};

use llm265_tensor::Tensor;

/// Error produced when encoding or decoding a tensor fails.
///
/// This is the same [`llm265_bitstream::CodecError`] taxonomy used by every
/// decode path in the workspace, so errors propagate from the entropy coders
/// through the video codec up to the tensor codec without translation.
pub use llm265_bitstream::CodecError;

/// How the encoder should choose its rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateTarget {
    /// Meet an average bits-per-value budget (fractional budgets are the
    /// point — e.g. 2.88 or 3.5 bits).
    BitsPerValue(f64),
    /// Spend as few bits as possible while keeping the *normalized* MSE
    /// (MSE divided by the tensor's variance) at or under this value.
    MaxNormalizedMse(f64),
    /// Encode at a fixed quantization parameter (expert knob).
    Qp(f64),
}

/// An encoded tensor: a self-describing compressed byte stream.
#[derive(Debug, Clone)]
pub struct EncodedTensor {
    pub(crate) bytes: Vec<u8>,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
}

impl EncodedTensor {
    /// Reassembles an encoded tensor from its transported parts (the byte
    /// stream plus the shape it was encoded from) — the receiving side of
    /// any transport that moves [`EncodedTensor::bytes`] across a wire.
    ///
    /// The stream is *validated at decode time*, not here: feeding a
    /// corrupt or truncated stream to [`TensorCodec::decode`] returns a
    /// [`CodecError`], it never panics.
    pub fn from_parts(bytes: Vec<u8>, rows: usize, cols: usize) -> Self {
        EncodedTensor { bytes, rows, cols }
    }

    /// The compressed byte stream.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Shape of the original tensor.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Compressed size in bits.
    pub fn bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Average compressed bits per tensor value (including all metadata).
    pub fn bits_per_value(&self) -> f64 {
        let n = self.rows * self.cols;
        if n == 0 {
            0.0
        } else {
            self.bits() as f64 / n as f64
        }
    }
}

/// A general-purpose tensor codec: encode to bytes, decode back.
///
/// This is the interface the paper's "general-purpose" claim is about: the
/// same codec object compresses weights, activations, KV-cache slabs and
/// gradients with no data-dependent calibration.
pub trait TensorCodec {
    /// Display name used in experiment tables.
    fn name(&self) -> String;

    /// Encodes a tensor under a rate target.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the tensor cannot be encoded (e.g. empty).
    fn encode(&self, t: &Tensor, target: RateTarget) -> Result<EncodedTensor, CodecError>;

    /// Decodes an [`EncodedTensor`] produced by this codec.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on corrupt or truncated input.
    fn decode(&self, e: &EncodedTensor) -> Result<Tensor, CodecError>;
}
