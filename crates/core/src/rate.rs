//! Variable per-layer bit-width allocation.
//!
//! The paper's footnote 2 (§4.1): in fixed mode one bits/value budget is
//! applied to all tensors; in variable mode the per-layer budget is
//! `B_l = k·l + b`, where `l` is the layer index, `k` is a searched slope
//! and `b` is chosen so the *average* budget matches the user's target.
//! The search minimizes total reconstruction error, which is the knob that
//! lets LLM.265 drop below 3 bits where fixed budgets fall apart (Fig 5).

use llm265_tensor::{stats, Tensor};

use crate::{CodecError, EncodedTensor, RateTarget, TensorCodec};

/// Minimum per-layer budget: the codec always spends a little on headers.
const MIN_BITS: f64 = 0.25;

/// One allocated layer: its budget and its encode.
#[derive(Debug, Clone)]
pub struct AllocatedLayer {
    /// Bits/value budget assigned to this layer.
    pub budget: f64,
    /// The encode produced under that budget.
    pub encoded: EncodedTensor,
}

/// Result of a variable-rate allocation across a layer stack.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// The slope `k` the search settled on.
    pub k: f64,
    /// Per-layer encodes, in layer order.
    pub layers: Vec<AllocatedLayer>,
}

impl Allocation {
    /// Realized average bits per value across the stack.
    pub fn bits_per_value(&self) -> f64 {
        let (bits, values) = self.layers.iter().fold((0u64, 0usize), |(b, n), l| {
            let (r, c) = l.encoded.shape();
            (b + l.encoded.bits(), n + r * c)
        });
        if values == 0 {
            0.0
        } else {
            bits as f64 / values as f64
        }
    }
}

/// Computes per-layer budgets `B_l = k·l + b` with `b` solved so the
/// value-weighted average equals `avg_bits`, clamping at a small positive floor.
pub fn layer_budgets(layer_sizes: &[usize], avg_bits: f64, k: f64) -> Vec<f64> {
    let total: f64 = layer_sizes.iter().map(|&n| n as f64).sum();
    // lint:allow(float-cmp): a sum of usize casts is exactly 0.0 iff every
    // layer is empty — the degenerate stack this early-out covers.
    if total == 0.0 {
        return Vec::new();
    }
    // Weighted mean of k·l over layers (weights = layer sizes).
    let mean_kl: f64 = layer_sizes
        .iter()
        .enumerate()
        .map(|(l, &n)| k * l as f64 * n as f64)
        .sum::<f64>()
        / total;
    let b = avg_bits - mean_kl;
    layer_sizes
        .iter()
        .enumerate()
        .map(|(l, _)| (k * l as f64 + b).max(MIN_BITS))
        .collect()
}

/// Encodes a layer stack at a fixed per-layer budget (the paper's
/// fixed-bitrate variant).
///
/// # Errors
///
/// Propagates the first per-layer encode failure.
pub fn allocate_fixed(
    codec: &dyn TensorCodec,
    layers: &[Tensor],
    avg_bits: f64,
) -> Result<Allocation, CodecError> {
    let encoded = layers
        .iter()
        .map(|t| {
            Ok(AllocatedLayer {
                budget: avg_bits,
                encoded: codec.encode(t, RateTarget::BitsPerValue(avg_bits))?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(Allocation {
        k: 0.0,
        layers: encoded,
    })
}

/// Searches the slope `k` over `k_grid` and returns the allocation with
/// the lowest total normalized reconstruction error at the same average
/// budget (the paper's variable-bitrate mode).
///
/// # Errors
///
/// Rejects an empty layer stack or slope grid and propagates per-layer
/// encode/decode failures.
pub fn allocate_variable(
    codec: &dyn TensorCodec,
    layers: &[Tensor],
    avg_bits: f64,
    k_grid: &[f64],
) -> Result<Allocation, CodecError> {
    if layers.is_empty() {
        return Err(CodecError::InvalidInput("no layers to allocate".into()));
    }
    if k_grid.is_empty() {
        return Err(CodecError::InvalidInput("empty slope grid".into()));
    }
    let sizes: Vec<usize> = layers.iter().map(Tensor::len).collect();

    let mut best: Option<(f64, Allocation)> = None;
    for &k in k_grid {
        let budgets = layer_budgets(&sizes, avg_bits, k);
        let mut alloc_layers = Vec::with_capacity(layers.len());
        let mut err = 0.0;
        for (t, &budget) in layers.iter().zip(&budgets) {
            let encoded = codec.encode(t, RateTarget::BitsPerValue(budget))?;
            let dec = codec.decode(&encoded)?;
            let var = stats::variance(t.data()).max(1e-30);
            err += stats::tensor_mse(t, &dec) / var * t.len() as f64;
            alloc_layers.push(AllocatedLayer { budget, encoded });
        }
        let alloc = Allocation {
            k,
            layers: alloc_layers,
        };
        if best.as_ref().is_none_or(|(e, _)| err < *e) {
            best = Some((err, alloc));
        }
    }
    // lint:allow(panic): `k_grid` was checked non-empty above, so the loop
    // ran at least once and `best` is always populated.
    Ok(best.expect("grid was non-empty").1)
}

/// A sensible default slope grid for the `k` search.
pub fn default_k_grid() -> Vec<f64> {
    vec![-0.10, -0.05, -0.02, 0.0, 0.02, 0.05, 0.10, 0.15]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Llm265Codec;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::synthetic::{llm_weight_stack, WeightProfile};

    #[test]
    fn budgets_average_to_target() {
        let sizes = [1024usize; 8];
        for &k in &[-0.1, 0.0, 0.07, 0.2] {
            let budgets = layer_budgets(&sizes, 3.0, k);
            let avg: f64 = budgets.iter().sum::<f64>() / budgets.len() as f64;
            // Equal sizes and no clamping: exact match.
            assert!((avg - 3.0).abs() < 1e-9, "k={k} avg={avg}");
        }
    }

    #[test]
    fn budgets_weighted_by_layer_size() {
        let sizes = [100usize, 10_000];
        let budgets = layer_budgets(&sizes, 2.0, 0.5);
        // Weighted average must hit the target.
        let avg = (budgets[0] * 100.0 + budgets[1] * 10_000.0) / 10_100.0;
        assert!((avg - 2.0).abs() < 1e-9);
        assert!(budgets[1] > budgets[0]);
    }

    #[test]
    fn clamp_keeps_budgets_positive() {
        let sizes = [1000usize; 4];
        let budgets = layer_budgets(&sizes, 0.5, -2.0);
        assert!(budgets.iter().all(|&b| b >= MIN_BITS));
    }

    #[test]
    fn variable_allocation_meets_average_and_beats_or_ties_fixed() {
        let mut rng = Pcg32::seed_from(20);
        // Small stack whose later layers are harder (the generator drifts).
        let layers = llm_weight_stack(4, 48, 48, &WeightProfile::default(), &mut rng);
        let codec = Llm265Codec::new();
        let avg = 2.5;

        let fixed = allocate_fixed(&codec, &layers, avg).unwrap();
        let var = allocate_variable(&codec, &layers, avg, &[0.0, 0.05, 0.1]).unwrap();

        assert!(fixed.bits_per_value() <= avg + 0.05);
        assert!(
            var.bits_per_value() <= avg + 0.25,
            "avg {}",
            var.bits_per_value()
        );

        let err = |alloc: &Allocation| -> f64 {
            alloc
                .layers
                .iter()
                .zip(&layers)
                .map(|(al, t)| {
                    let dec = codec.decode(&al.encoded).unwrap();
                    llm265_tensor::stats::tensor_mse(t, &dec)
                        / llm265_tensor::stats::variance(t.data())
                })
                .sum()
        };
        // k = 0 is in the grid, so variable can never be worse than fixed
        // beyond encoder noise.
        assert!(err(&var) <= err(&fixed) * 1.05 + 1e-6);
    }
}
