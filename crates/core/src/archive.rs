//! Multi-tensor archives: one self-describing stream for a whole model.
//!
//! The paper's deployment story compresses *all* of a model's weight
//! matrices (Fig 1b); shipping them as one archive (an index plus
//! per-tensor LLM.265 streams) is the natural container — this is what a
//! checkpoint saved "in LLM.265 format" looks like.

use llm265_bitstream::bytes;
use llm265_tensor::Tensor;

use crate::{CodecError, EncodedTensor, RateTarget, TensorCodec};

const MAGIC: u32 = 0x4C41_3635; // "LA65"

/// A compressed multi-tensor archive.
#[derive(Debug, Clone)]
pub struct TensorArchive {
    bytes: Vec<u8>,
    entries: Vec<(String, usize, usize)>, // name, rows, cols
}

impl TensorArchive {
    /// Compresses `tensors` (name, tensor) with `codec` at `target`,
    /// producing a single self-describing byte stream.
    ///
    /// # Errors
    ///
    /// Propagates the first per-tensor encode failure, and rejects inputs
    /// that overflow the wire format's fixed-width length fields (more
    /// than `u32::MAX` tensors, names over `u16::MAX` bytes, a per-tensor
    /// stream over `u32::MAX` bytes) instead of truncating them.
    pub fn encode(
        codec: &dyn TensorCodec,
        tensors: &[(String, Tensor)],
        target: RateTarget,
    ) -> Result<Self, CodecError> {
        let mut out = Vec::new();
        bytes::write_le_u32(&mut out, MAGIC);
        let n_tensors = u32::try_from(tensors.len())
            .map_err(|_| CodecError::LimitExceeded("archive tensor count exceeds u32"))?;
        bytes::write_le_u32(&mut out, n_tensors);
        let mut entries = Vec::with_capacity(tensors.len());
        for (name, t) in tensors {
            let name_len = u16::try_from(name.len()).map_err(|_| {
                CodecError::InvalidInput(format!("tensor name too long ({} bytes)", name.len()))
            })?;
            let enc = codec.encode(t, target)?;
            bytes::write_le_u16(&mut out, name_len);
            out.extend_from_slice(name.as_bytes());
            let stream_len = u32::try_from(enc.bytes().len())
                .map_err(|_| CodecError::LimitExceeded("archive tensor stream exceeds u32"))?;
            bytes::write_le_u32(&mut out, stream_len);
            out.extend_from_slice(enc.bytes());
            entries.push((name.clone(), t.rows(), t.cols()));
        }
        Ok(TensorArchive {
            bytes: out,
            entries,
        })
    }

    /// The serialized archive.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Archive entries as `(name, rows, cols)`.
    pub fn entries(&self) -> &[(String, usize, usize)] {
        &self.entries
    }

    /// Total archive size in bits.
    pub fn bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Average bits per stored tensor value (with all framing).
    pub fn bits_per_value(&self) -> f64 {
        let values: usize = self.entries.iter().map(|(_, r, c)| r * c).sum();
        if values == 0 {
            0.0
        } else {
            self.bits() as f64 / values as f64
        }
    }

    /// Parses and decodes an archive produced by [`TensorArchive::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on corrupt or truncated streams.
    pub fn decode(
        codec: &dyn TensorCodec,
        data: &[u8],
    ) -> Result<Vec<(String, Tensor)>, CodecError> {
        let mut pos = 0usize;
        let magic = bytes::read_le_u32(data, &mut pos)?;
        if magic != MAGIC {
            return Err(CodecError::Corrupt("bad archive magic"));
        }
        let count = bytes::read_le_u32(data, &mut pos)? as usize;
        if count > 1 << 20 {
            return Err(CodecError::LimitExceeded("archive entry count"));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = bytes::read_le_u16(data, &mut pos)? as usize;
            let name_bytes = data
                .get(pos..)
                .and_then(|rest| rest.get(..name_len))
                .ok_or(CodecError::Truncated("tensor name"))?;
            pos += name_len;
            let name = String::from_utf8(name_bytes.to_vec())
                .map_err(|_| CodecError::Corrupt("tensor name is not UTF-8"))?;
            let len = bytes::read_le_u32(data, &mut pos)? as usize;
            let payload = data
                .get(pos..)
                .and_then(|rest| rest.get(..len))
                .ok_or(CodecError::Truncated("tensor payload"))?;
            pos += len;
            // Reconstruct an EncodedTensor wrapper around the payload; the
            // inner stream is itself self-describing, so shape comes from
            // the decode.
            let enc = EncodedTensor {
                bytes: payload.to_vec(),
                rows: 0,
                cols: 0,
            };
            let t = codec.decode(&enc)?;
            out.push((name, t));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Llm265Codec;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::stats;
    use llm265_tensor::synthetic::{llm_weight, WeightProfile};

    fn stack(seed: u64) -> Vec<(String, Tensor)> {
        let mut rng = Pcg32::seed_from(seed);
        (0..3)
            .map(|i| {
                (
                    format!("layer{i}.w"),
                    llm_weight(48, 48, &WeightProfile::default(), &mut rng),
                )
            })
            .collect()
    }

    #[test]
    fn archive_roundtrip_preserves_names_shapes_and_quality() {
        let tensors = stack(1);
        let codec = Llm265Codec::new();
        let ar = TensorArchive::encode(&codec, &tensors, RateTarget::BitsPerValue(3.0)).unwrap();
        assert!(ar.bits_per_value() <= 3.2, "bpv {}", ar.bits_per_value());
        let back = TensorArchive::decode(&codec, ar.bytes()).unwrap();
        assert_eq!(back.len(), 3);
        for ((name_a, t_a), (name_b, t_b)) in tensors.iter().zip(&back) {
            assert_eq!(name_a, name_b);
            assert_eq!(t_a.shape(), t_b.shape());
            let nmse = stats::tensor_mse(t_a, t_b) / stats::variance(t_a.data());
            assert!(nmse < 0.1, "{name_a}: nmse {nmse}");
        }
    }

    #[test]
    fn archive_entries_report_inventory() {
        let tensors = stack(2);
        let codec = Llm265Codec::new();
        let ar = TensorArchive::encode(&codec, &tensors, RateTarget::Qp(28.0)).unwrap();
        assert_eq!(ar.entries().len(), 3);
        assert_eq!(ar.entries()[0], ("layer0.w".to_string(), 48, 48));
    }

    #[test]
    fn corrupt_archives_error_gracefully() {
        let tensors = stack(3);
        let codec = Llm265Codec::new();
        let ar = TensorArchive::encode(&codec, &tensors, RateTarget::Qp(30.0)).unwrap();
        assert!(TensorArchive::decode(&codec, &[]).is_err());
        assert!(TensorArchive::decode(&codec, &ar.bytes()[..6]).is_err());
        let mut bad = ar.bytes().to_vec();
        bad[0] ^= 0xff;
        assert!(TensorArchive::decode(&codec, &bad).is_err());
        let cut = ar.bytes().len() - 10;
        assert!(TensorArchive::decode(&codec, &ar.bytes()[..cut]).is_err());
    }

    #[test]
    fn empty_archive_is_valid() {
        let codec = Llm265Codec::new();
        let ar = TensorArchive::encode(&codec, &[], RateTarget::Qp(20.0)).unwrap();
        assert_eq!(ar.bits_per_value(), 0.0);
        assert!(TensorArchive::decode(&codec, ar.bytes())
            .unwrap()
            .is_empty());
    }
}
