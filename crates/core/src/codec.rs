//! The LLM.265 codec object.

use llm265_bitstream::bytes;
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::{stats, Tensor};
use llm265_videocodec::{decode_video, encode_video, CodecConfig, PipelineConfig, Profile};

use crate::chunk::{self, Chunk};
use crate::{CodecError, EncodedTensor, RateTarget, TensorCodec};

const MAGIC: u32 = 0x4C54_3635; // "LT65"

/// Configuration of the LLM.265 tensor codec.
#[derive(Debug, Clone, PartialEq)]
pub struct Llm265Config {
    /// Video-codec profile (H.265-like by default, per the paper's §4.1.1
    /// choice: widest availability, highest resolution and throughput).
    pub profile: Profile,
    /// Pipeline switches. The default enforces intra-only coding, as the
    /// paper does for tensors.
    pub pipeline: PipelineConfig,
    /// Maximum pixels per frame chunk (hardware codecs bound frame sizes).
    pub max_chunk_pixels: usize,
    /// QP bisection iterations for rate / distortion targets.
    pub search_iters: usize,
}

impl Default for Llm265Config {
    fn default() -> Self {
        Llm265Config {
            profile: Profile::h265(),
            pipeline: PipelineConfig::default(),
            max_chunk_pixels: 1 << 16,
            search_iters: 9,
        }
    }
}

/// The LLM.265 tensor codec: chunking + 8-bit quantization + the intra-only
/// video codec (see crate docs).
#[derive(Debug, Clone, Default)]
pub struct Llm265Codec {
    config: Llm265Config,
}

impl Llm265Codec {
    /// Creates a codec with the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a codec with an explicit configuration.
    #[must_use]
    pub fn with_config(config: Llm265Config) -> Self {
        Llm265Codec { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &Llm265Config {
        &self.config
    }

    /// Encodes every chunk at one QP, returning the serialized stream.
    fn encode_at_qp(&self, t: &Tensor, chunks: &[Chunk], qp: f64) -> EncodedTensor {
        let cfg = CodecConfig {
            profile: self.config.profile.clone(),
            pipeline: self.config.pipeline,
            qp,
        };
        let mut out = Vec::new();
        bytes::write_le_u32(&mut out, MAGIC);
        bytes::write_le_u32(&mut out, t.rows() as u32);
        bytes::write_le_u32(&mut out, t.cols() as u32);
        bytes::write_le_u32(&mut out, chunks.len() as u32);
        for c in chunks {
            let enc = encode_video(std::slice::from_ref(&c.frame), &cfg);
            bytes::write_le_u32(&mut out, c.row0 as u32);
            bytes::write_le_u32(&mut out, c.rows as u32);
            bytes::write_le_u32(&mut out, c.lo.to_bits());
            bytes::write_le_u32(&mut out, c.scale.to_bits());
            bytes::write_le_u32(&mut out, enc.bytes.len() as u32);
            out.extend_from_slice(&enc.bytes);
        }
        EncodedTensor {
            bytes: out,
            rows: t.rows(),
            cols: t.cols(),
        }
    }

    /// Bisects QP for the chosen target. `feasible(enc)` must be monotone
    /// in QP in the stated `increasing` sense.
    fn search_qp(
        &self,
        t: &Tensor,
        chunks: &[Chunk],
        feasible: impl Fn(&EncodedTensor) -> bool,
        prefer_low_qp: bool,
    ) -> EncodedTensor {
        // Feasibility boundary: for a bits budget, high QPs are feasible
        // and we want the lowest feasible QP (most quality in budget). For
        // an MSE budget, low QPs are feasible and we want the highest
        // feasible QP (fewest bits within quality).
        let (mut lo, mut hi) = (0.0_f64, 51.0_f64);
        let lo_enc = self.encode_at_qp(t, chunks, lo);
        let hi_enc = self.encode_at_qp(t, chunks, hi);
        if prefer_low_qp {
            // Feasible set = [boundary, 51]; want the boundary.
            if feasible(&lo_enc) {
                return lo_enc;
            }
            if !feasible(&hi_enc) {
                // Nothing feasible — typical for tiny tensors whose fixed
                // headers exceed the budget. Rather than returning the
                // maximally coarse encode, find the *finest* QP whose size
                // is within 5% of the minimum achievable: headers dominate
                // there, so the extra quality is nearly free.
                let cap = hi_enc.bits() as f64 * 1.05;
                let (mut flo, mut fhi) = (0.0_f64, 51.0_f64);
                let mut best = hi_enc;
                for _ in 0..self.config.search_iters {
                    let mid = 0.5 * (flo + fhi);
                    let enc = self.encode_at_qp(t, chunks, mid);
                    if enc.bits() as f64 <= cap {
                        best = enc;
                        fhi = mid; // try finer
                    } else {
                        flo = mid;
                    }
                }
                return best;
            }
        } else {
            // Feasible set = [0, boundary]; want the boundary.
            if feasible(&hi_enc) {
                return hi_enc;
            }
            if !feasible(&lo_enc) {
                return lo_enc;
            }
        }
        let mut best: Option<EncodedTensor> = None;
        for _ in 0..self.config.search_iters {
            let mid = 0.5 * (lo + hi);
            let enc = self.encode_at_qp(t, chunks, mid);
            if feasible(&enc) {
                best = Some(enc);
                if prefer_low_qp {
                    hi = mid;
                } else {
                    lo = mid;
                }
            } else if prefer_low_qp {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        best.unwrap_or(if prefer_low_qp { hi_enc } else { lo_enc })
    }
}

impl TensorCodec for Llm265Codec {
    fn name(&self) -> String {
        format!("LLM.265/{}", self.config.profile.kind().name())
    }

    fn encode(&self, t: &Tensor, target: RateTarget) -> Result<EncodedTensor, CodecError> {
        if t.is_empty() {
            return Err(CodecError::InvalidInput(
                "cannot encode an empty tensor".into(),
            ));
        }
        if t.cols() > self.config.max_chunk_pixels {
            return Err(CodecError::InvalidInput(format!(
                "tensor width {} exceeds max chunk pixels {}",
                t.cols(),
                self.config.max_chunk_pixels
            )));
        }
        let chunks = chunk::partition(t, self.config.max_chunk_pixels);
        let enc = match target {
            RateTarget::Qp(qp) => {
                if !(0.0..=51.0).contains(&qp) {
                    return Err(CodecError::InvalidInput(format!("qp {qp} out of range")));
                }
                self.encode_at_qp(t, &chunks, qp)
            }
            RateTarget::BitsPerValue(b) => {
                if b <= 0.0 {
                    return Err(CodecError::InvalidInput(
                        "bits/value target must be positive".into(),
                    ));
                }
                self.search_qp(t, &chunks, |e| e.bits_per_value() <= b, true)
            }
            RateTarget::MaxNormalizedMse(m) => {
                if m < 0.0 {
                    return Err(CodecError::InvalidInput(
                        "MSE target must be non-negative".into(),
                    ));
                }
                let var = stats::variance(t.data()).max(1e-30);
                let target_mse = m * var;
                let src = t.clone();
                self.search_qp(
                    t,
                    &chunks,
                    move |e| {
                        // lint:allow(panic): stream produced by encode_at_qp
                        let dec = decode_tensor(e).expect("self-produced stream decodes");
                        stats::tensor_mse(&src, &dec) <= target_mse
                    },
                    false,
                )
            }
        };
        Ok(enc)
    }

    fn decode(&self, e: &EncodedTensor) -> Result<Tensor, CodecError> {
        decode_tensor(e)
    }
}

fn decode_tensor(e: &EncodedTensor) -> Result<Tensor, CodecError> {
    let data = &e.bytes;
    let mut pos = 0usize;
    if bytes::read_le_u32(data, &mut pos)? != MAGIC {
        return Err(CodecError::Corrupt("bad tensor-stream magic"));
    }
    let rows = bytes::read_le_u32(data, &mut pos)? as usize;
    let cols = bytes::read_le_u32(data, &mut pos)? as usize;
    let n_chunks = bytes::read_le_u32(data, &mut pos)? as usize;
    if rows.checked_mul(cols).is_none_or(|n| n > (1 << 31)) {
        return Err(CodecError::LimitExceeded("tensor shape"));
    }
    let mut out = Tensor::zeros(rows, cols);
    let mut covered = 0usize;
    for _ in 0..n_chunks {
        let row0 = bytes::read_le_u32(data, &mut pos)? as usize;
        let c_rows = bytes::read_le_u32(data, &mut pos)? as usize;
        let lo = f32::from_bits(bytes::read_le_u32(data, &mut pos)?);
        let scale = f32::from_bits(bytes::read_le_u32(data, &mut pos)?);
        let len = bytes::read_le_u32(data, &mut pos)? as usize;
        let payload = data
            .get(pos..)
            .and_then(|rest| rest.get(..len))
            .ok_or(CodecError::Truncated("chunk payload"))?;
        pos += len;
        if row0 + c_rows > rows {
            return Err(CodecError::Corrupt("chunk exceeds tensor rows"));
        }
        let frames = decode_video(payload)?;
        let frame = frames
            .first()
            .ok_or(CodecError::Corrupt("chunk decoded to zero frames"))?;
        if frame.width() != cols || frame.height() != c_rows {
            return Err(CodecError::Corrupt("chunk frame size mismatch"));
        }
        chunk::dequantize_into(&mut out, frame, row0, lo, scale);
        covered += c_rows;
    }
    if covered != rows {
        return Err(CodecError::Corrupt("chunks do not cover the tensor"));
    }
    Ok(out)
}

/// [`LossyCompressor`] adapter: an LLM.265 codec bound to one rate target,
/// pluggable into the distributed-training simulator.
#[derive(Debug, Clone)]
pub struct Llm265Channel {
    codec: Llm265Codec,
    target: RateTarget,
}

impl Llm265Channel {
    /// Binds a codec to a rate target.
    pub fn new(codec: Llm265Codec, target: RateTarget) -> Self {
        Llm265Channel { codec, target }
    }

    /// Convenience: default codec at a bits/value budget.
    pub fn at_bits(bits: f64) -> Self {
        Llm265Channel::new(Llm265Codec::new(), RateTarget::BitsPerValue(bits))
    }
}

impl LossyCompressor for Llm265Channel {
    fn name(&self) -> String {
        match self.target {
            RateTarget::BitsPerValue(b) => format!("LLM.265 ({b:.1}b)"),
            RateTarget::MaxNormalizedMse(m) => format!("LLM.265 (nmse {m})"),
            RateTarget::Qp(q) => format!("LLM.265 (qp {q})"),
        }
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let enc = self
            .codec
            .encode(t, self.target)
            // lint:allow(panic): channel contract — callers feed non-empty tensors
            .expect("transcode of non-empty tensor");
        let out = self
            .codec
            .decode(&enc)
            // lint:allow(panic): decoding a stream produced two lines up
            .expect("self-produced stream decodes");
        (out, enc.bits())
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        match self.target {
            RateTarget::BitsPerValue(b) => Some(b),
            _ => None,
        }
    }
}

/// A rate-*tracking* LLM.265 channel for training loops.
///
/// Training-time compression calls the codec on statistically similar
/// tensors thousands of times (every gradient, every step). Bisecting QP
/// from scratch each call costs ~11 encodes; this channel instead carries
/// the last accepted QP forward and runs a small proportional controller
/// (at most a handful of encodes per call), converging to the
/// bits/value target within a few steps and staying there.
#[derive(Debug, Clone)]
pub struct Llm265TrackingChannel {
    codec: Llm265Codec,
    target_bits: f64,
    last_qp: f64,
}

impl Llm265TrackingChannel {
    const MAX_TRIES: usize = 4;

    /// Creates a tracking channel for a bits/value target.
    ///
    /// # Panics
    ///
    /// Panics if `target_bits` is not positive.
    pub fn at_bits(target_bits: f64) -> Self {
        assert!(target_bits > 0.0, "bits target must be positive");
        Llm265TrackingChannel {
            codec: Llm265Codec::new(),
            target_bits,
            last_qp: 30.0,
        }
    }

    /// The QP the controller is currently sitting at.
    pub fn current_qp(&self) -> f64 {
        self.last_qp
    }
}

impl LossyCompressor for Llm265TrackingChannel {
    fn name(&self) -> String {
        format!("LLM.265 ({:.1}b, tracking)", self.target_bits)
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let chunks = chunk::partition(t, self.codec.config.max_chunk_pixels);
        let mut qp = self.last_qp;
        let mut best: Option<(f64, EncodedTensor)> = None;
        for _ in 0..Self::MAX_TRIES {
            let enc = self.codec.encode_at_qp(t, &chunks, qp);
            let bpv = enc.bits_per_value();
            if bpv <= self.target_bits {
                let better = best.as_ref().is_none_or(|(b, _)| bpv > *b);
                if better {
                    best = Some((bpv, enc));
                    self.last_qp = qp;
                }
                if bpv >= 0.93 * self.target_bits {
                    break; // close enough under the budget
                }
                // Under-spending: move to a finer QP (~1 bit per 6 QP).
                qp = (qp - 6.0 * (self.target_bits / bpv.max(0.05)).log2().min(1.5)).max(0.0);
            } else {
                // Over budget: move to a coarser QP.
                qp = (qp + 6.0 * (bpv / self.target_bits).log2().clamp(0.2, 1.5)).min(51.0);
            }
        }
        let (_, enc) = best.unwrap_or_else(|| {
            // Never got under the budget within the try limit: keep
            // coarsening until feasible or QP saturates (headers may make
            // the budget unreachable; QP 51 is then the best effort).
            let mut qp = qp;
            loop {
                qp = (qp + 6.0).min(51.0);
                let enc = self.codec.encode_at_qp(t, &chunks, qp);
                let bpv = enc.bits_per_value();
                if bpv <= self.target_bits || qp >= 51.0 {
                    self.last_qp = qp;
                    return (bpv, enc);
                }
            }
        });
        let out = self
            .codec
            .decode(&enc)
            // lint:allow(panic): decoding a stream produced by encode_at_qp above
            .expect("self-produced stream decodes");
        (out, enc.bits())
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        Some(self.target_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::synthetic::{self, WeightProfile};

    fn weight(seed: u64, n: usize) -> Tensor {
        let mut rng = Pcg32::seed_from(seed);
        synthetic::llm_weight(n, n, &WeightProfile::default(), &mut rng)
    }

    #[test]
    fn roundtrip_shape_and_rate() {
        let t = weight(1, 64);
        let codec = Llm265Codec::new();
        let enc = codec.encode(&t, RateTarget::BitsPerValue(3.0)).unwrap();
        assert!(enc.bits_per_value() <= 3.05, "bpv {}", enc.bits_per_value());
        let out = codec.decode(&enc).unwrap();
        assert_eq!(out.shape(), t.shape());
        let nmse = stats::tensor_mse(&t, &out) / stats::variance(t.data());
        assert!(nmse < 0.2, "nmse {nmse}");
    }

    #[test]
    fn multi_chunk_tensors_roundtrip() {
        let t = weight(2, 96); // forces several chunks with small limit
        let codec = Llm265Codec::with_config(Llm265Config {
            max_chunk_pixels: 96 * 24,
            ..Llm265Config::default()
        });
        let enc = codec.encode(&t, RateTarget::Qp(20.0)).unwrap();
        let out = codec.decode(&enc).unwrap();
        assert_eq!(out.shape(), t.shape());
        let nmse = stats::tensor_mse(&t, &out) / stats::variance(t.data());
        assert!(nmse < 0.05, "nmse {nmse}");
    }

    #[test]
    fn mse_target_is_met() {
        let t = weight(3, 64);
        let codec = Llm265Codec::new();
        let enc = codec
            .encode(&t, RateTarget::MaxNormalizedMse(0.02))
            .unwrap();
        let out = codec.decode(&enc).unwrap();
        let nmse = stats::tensor_mse(&t, &out) / stats::variance(t.data());
        assert!(nmse <= 0.02 + 1e-9, "nmse {nmse}");
        // Should not be extravagant in bits for the quality asked.
        assert!(enc.bits_per_value() < 8.0);
    }

    #[test]
    fn lower_budget_means_fewer_bits_and_more_error() {
        let t = weight(4, 64);
        let codec = Llm265Codec::new();
        let coarse = codec.encode(&t, RateTarget::BitsPerValue(1.5)).unwrap();
        let fine = codec.encode(&t, RateTarget::BitsPerValue(4.5)).unwrap();
        assert!(coarse.bits() < fine.bits());
        let e_coarse = stats::tensor_mse(&t, &codec.decode(&coarse).unwrap());
        let e_fine = stats::tensor_mse(&t, &codec.decode(&fine).unwrap());
        assert!(e_coarse > e_fine);
    }

    #[test]
    fn fractional_budgets_resolve() {
        // The paper's headline: 2.88-bit style fractional budgets.
        let t = weight(5, 64);
        let codec = Llm265Codec::new();
        let a = codec.encode(&t, RateTarget::BitsPerValue(2.6)).unwrap();
        let b = codec.encode(&t, RateTarget::BitsPerValue(2.9)).unwrap();
        assert!(a.bits_per_value() <= 2.65);
        assert!(b.bits_per_value() <= 2.95);
        assert!(b.bits() >= a.bits());
    }

    #[test]
    fn rejects_bad_inputs() {
        let codec = Llm265Codec::new();
        let empty = Tensor::zeros(0, 0);
        assert!(codec.encode(&empty, RateTarget::Qp(20.0)).is_err());
        let t = weight(6, 8);
        assert!(codec.encode(&t, RateTarget::Qp(99.0)).is_err());
        assert!(codec.encode(&t, RateTarget::BitsPerValue(-1.0)).is_err());
        assert!(codec
            .encode(&t, RateTarget::MaxNormalizedMse(-0.5))
            .is_err());
    }

    #[test]
    fn rejects_corrupt_streams() {
        let t = weight(7, 32);
        let codec = Llm265Codec::new();
        let enc = codec.encode(&t, RateTarget::Qp(24.0)).unwrap();
        let mut bad = enc.clone();
        bad.bytes.truncate(bad.bytes.len() / 2);
        assert!(codec.decode(&bad).is_err());
        let mut bad_magic = enc.clone();
        bad_magic.bytes[0] ^= 0xff;
        assert!(codec.decode(&bad_magic).is_err());
    }

    #[test]
    fn channel_adapter_reports_bits() {
        let t = weight(8, 48);
        let mut ch = Llm265Channel::at_bits(3.5);
        let (out, bits) = ch.transcode(&t);
        assert_eq!(out.shape(), t.shape());
        let bpv = bits as f64 / t.len() as f64;
        assert!(bpv <= 3.55, "bpv {bpv}");
        assert_eq!(ch.nominal_bits_per_value(), Some(3.5));
        assert!(ch.name().contains("LLM.265"));
    }

    #[test]
    fn constant_tensor_costs_almost_nothing() {
        let t = Tensor::full(64, 64, 0.25);
        let codec = Llm265Codec::new();
        let enc = codec.encode(&t, RateTarget::Qp(30.0)).unwrap();
        let out = codec.decode(&enc).unwrap();
        assert_eq!(out, t);
        assert!(enc.bits_per_value() < 0.2, "bpv {}", enc.bits_per_value());
    }
}

#[cfg(test)]
mod tracking_tests {
    use super::*;
    use llm265_tensor::channel::LossyCompressor;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::synthetic::{llm_gradient, GradientProfile};

    #[test]
    fn tracking_channel_converges_to_budget() {
        let mut ch = Llm265TrackingChannel::at_bits(3.0);
        let mut rng = Pcg32::seed_from(1);
        let mut last_bpv = 0.0;
        for step in 0..6 {
            let g = llm_gradient(48, 48, &GradientProfile::default(), &mut rng);
            let (out, bits) = ch.transcode(&g);
            assert_eq!(out.shape(), g.shape());
            last_bpv = bits as f64 / g.len() as f64;
            // Never over budget once warmed up.
            if step > 1 {
                assert!(last_bpv <= 3.0 + 1e-9, "step {step}: {last_bpv}");
            }
        }
        assert!(last_bpv > 2.2, "should sit near the budget, got {last_bpv}");
        assert!(ch.current_qp() > 0.0 && ch.current_qp() < 51.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tracking_channel_rejects_bad_target() {
        let _ = Llm265TrackingChannel::at_bits(0.0);
    }
}
