//! The LLM.265 codec object.
//!
//! Encoding is structured as **probe → assemble**: a probe encodes every
//! chunk at one QP (fanned over the deterministic [`pool`]) and keeps the
//! per-chunk payloads plus the two summaries rate search needs — exact
//! serialized size and reconstruction error. Assembly serializes a probe
//! into the final stream. Rate searches cache probes per QP, so choosing
//! a rate never re-encodes a QP twice and never decodes anything.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use llm265_bitstream::bytes;
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::{stats, Tensor};
use llm265_videocodec::{decode_video, encode_video, CodecConfig, Frame, PipelineConfig, Profile};

use crate::chunk::{self, Chunk};
use crate::pool;
use crate::{CodecError, EncodedTensor, RateTarget, TensorCodec};

const MAGIC: u32 = 0x4C54_3635; // "LT65"

/// Fixed stream header: magic + rows + cols + chunk count, 4 B each.
const STREAM_HEADER_BYTES: usize = 16;
/// Per-chunk record header: row0 + rows + lo + scale + payload length.
const CHUNK_HEADER_BYTES: usize = 20;

/// Upper end of the QP scale.
const QP_MAX: f64 = 51.0;
/// Rate searches stop once the QP bracket is this tight: the rate/quality
/// difference across a quarter QP step is far below every target's slack.
const QP_TOL: f64 = 0.25;
/// Saturation bound for the log-ratio feasibility score.
const SCORE_SAT: f64 = 60.0;

/// Configuration of the LLM.265 tensor codec.
#[derive(Debug, Clone, PartialEq)]
pub struct Llm265Config {
    /// Video-codec profile (H.265-like by default, per the paper's §4.1.1
    /// choice: widest availability, highest resolution and throughput).
    pub profile: Profile,
    /// Pipeline switches. The default enforces intra-only coding, as the
    /// paper does for tensors.
    pub pipeline: PipelineConfig,
    /// Maximum pixels per frame chunk (hardware codecs bound frame sizes).
    pub max_chunk_pixels: usize,
    /// Iteration cap for the QP rate search (it usually terminates earlier
    /// via the bracket-width tolerance).
    pub search_iters: usize,
    /// Worker threads for chunk-parallel encode/decode; `0` means use the
    /// machine's available parallelism. Encoded bytes are identical at
    /// every thread count — see [`crate::pool`].
    pub threads: usize,
}

impl Default for Llm265Config {
    fn default() -> Self {
        Llm265Config {
            profile: Profile::h265(),
            pipeline: PipelineConfig::default(),
            max_chunk_pixels: 1 << 16,
            search_iters: 9,
            threads: 0,
        }
    }
}

/// One chunk's encode at a probed QP: the video payload plus the summary
/// values the rate search reads.
#[derive(Debug, Clone)]
struct ChunkProbe {
    /// Serialized intra-only video payload for this chunk's frame.
    bytes: Vec<u8>,
    /// Squared error of this chunk's reconstruction against the source
    /// tensor rows, measured through the affine dequantizer.
    sq_err: f64,
}

/// A full probe of one QP across every chunk. Caching these per probed
/// QP is what makes the search incremental: feasibility checks, the
/// final stream, and the channel adapters all read from here instead of
/// re-encoding or decoding.
#[derive(Debug, Clone)]
struct QpProbe {
    chunks: Vec<ChunkProbe>,
    /// Exact serialized stream length (headers + payloads).
    stream_bytes: usize,
    /// Total squared reconstruction error across chunks.
    sq_err: f64,
}

impl QpProbe {
    fn bits(&self) -> u64 {
        self.stream_bytes as u64 * 8
    }
}

/// What a rate search must satisfy. The score of a probe (see [`score`])
/// is ≤ 0 exactly when the probe meets the goal.
#[derive(Debug, Clone, Copy)]
enum SearchGoal {
    /// Total stream size must not exceed this many bits.
    MaxBits(f64),
    /// Total squared reconstruction error must not exceed this.
    MaxSquaredError(f64),
}

impl SearchGoal {
    /// Maps a search-axis position to a QP. The axis is oriented so the
    /// score is decreasing in x and the preferred (highest-quality
    /// feasible) answer is the *lowest* feasible x: bits searches walk QP
    /// directly (low QP = quality), error searches walk `51 − qp`.
    fn to_qp(self, x: f64) -> f64 {
        match self {
            SearchGoal::MaxBits(_) => x,
            SearchGoal::MaxSquaredError(_) => QP_MAX - x,
        }
    }
}

/// Cache of probes keyed by the probed QP's bit pattern.
type ProbeCache = BTreeMap<u64, QpProbe>;

/// A remembered search bracket on the search's x-axis (where the score is
/// decreasing and the best feasible answer is the lowest feasible x; see
/// [`Llm265Codec::search_qp`]). Handing the previous call's bracket back
/// to the search lets repeated same-shape tensors skip the lazy endpoint
/// setup: both remembered ends are probed directly and expanded
/// geometrically only if the crossing moved.
#[derive(Debug, Clone, Copy)]
struct QpBracket {
    /// x of the last accepted (feasible) probe.
    feasible: f64,
    /// x of a nearby infeasible probe (always ≤ `feasible`).
    infeasible: f64,
}

/// A live false-position bracket: positions and scores of both ends.
#[derive(Debug, Clone, Copy)]
struct Bracket {
    x_lo: f64,
    s_lo: f64,
    x_hi: f64,
    s_hi: f64,
}

/// The LLM.265 tensor codec: chunking + 8-bit quantization + the intra-only
/// video codec (see crate docs).
#[derive(Debug, Clone, Default)]
pub struct Llm265Codec {
    config: Llm265Config,
    encode_counter: Option<Arc<AtomicU64>>,
}

impl Llm265Codec {
    /// Creates a codec with the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a codec with an explicit configuration.
    #[must_use]
    pub fn with_config(config: Llm265Config) -> Self {
        Llm265Codec {
            config,
            encode_counter: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &Llm265Config {
        &self.config
    }

    /// Installs a counter incremented once per chunk-level video encode —
    /// a test/diagnostics hook for asserting how much work a rate search
    /// performs (e.g. that lazy endpoint probing does not regress).
    pub fn set_chunk_encode_counter(&mut self, counter: Arc<AtomicU64>) {
        self.encode_counter = Some(counter);
    }

    /// Encodes every chunk at `qp` — fanned over the deterministic pool —
    /// and returns payloads plus feasibility summaries. Nothing is
    /// serialized or decoded here: the stream size is computed from the
    /// payload lengths and the error from the encoder's own
    /// reconstruction, which is bit-exact with the decoder's output.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Internal`] if a worker thread panics.
    fn probe_qp(&self, t: &Tensor, chunks: &[Chunk], qp: f64) -> Result<QpProbe, CodecError> {
        let cfg = CodecConfig {
            profile: self.config.profile.clone(),
            pipeline: self.config.pipeline,
            qp,
        };
        let counter = self.encode_counter.as_deref();
        let probes = pool::run_ordered(chunks.len(), self.config.threads, |i| {
            if let Some(n) = counter {
                n.fetch_add(1, Ordering::Relaxed);
            }
            let c = &chunks[i];
            let enc = encode_video(std::slice::from_ref(&c.frame), &cfg);
            let sq_err = enc
                .recon
                .first()
                .map_or(f64::INFINITY, |f| chunk_sq_err(t, c, f));
            ChunkProbe {
                bytes: enc.bytes,
                sq_err,
            }
        })?;
        let mut stream_bytes = STREAM_HEADER_BYTES;
        let mut sq_err = 0.0;
        for p in &probes {
            stream_bytes += CHUNK_HEADER_BYTES + p.bytes.len();
            sq_err += p.sq_err;
        }
        Ok(QpProbe {
            chunks: probes,
            stream_bytes,
            sq_err,
        })
    }

    /// Returns the cached probe for `qp`, encoding it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`Llm265Codec::probe_qp`] failures.
    fn probe_cached<'c>(
        &self,
        cache: &'c mut ProbeCache,
        t: &Tensor,
        chunks: &[Chunk],
        qp: f64,
    ) -> Result<&'c QpProbe, CodecError> {
        match cache.entry(qp.to_bits()) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(v) => Ok(v.insert(self.probe_qp(t, chunks, qp)?)),
        }
    }

    /// Serializes a probe into the final tensor stream. This is the `u32`
    /// wire boundary: oversize dimensions or payloads fail with
    /// [`CodecError::LimitExceeded`] instead of silently truncating.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::LimitExceeded`] when a header field does not
    /// fit its 32-bit wire representation.
    fn assemble(
        &self,
        t: &Tensor,
        chunks: &[Chunk],
        probe: &QpProbe,
    ) -> Result<EncodedTensor, CodecError> {
        let mut out = Vec::with_capacity(probe.stream_bytes);
        bytes::write_le_u32(&mut out, MAGIC);
        bytes::write_le_u32(&mut out, wire_u32(t.rows(), "tensor rows")?);
        bytes::write_le_u32(&mut out, wire_u32(t.cols(), "tensor cols")?);
        bytes::write_le_u32(&mut out, wire_u32(chunks.len(), "chunk count")?);
        for (c, p) in chunks.iter().zip(&probe.chunks) {
            bytes::write_le_u32(&mut out, wire_u32(c.row0, "chunk row offset")?);
            bytes::write_le_u32(&mut out, wire_u32(c.rows, "chunk rows")?);
            bytes::write_le_u32(&mut out, c.lo.to_bits());
            bytes::write_le_u32(&mut out, c.scale.to_bits());
            bytes::write_le_u32(&mut out, wire_u32(p.bytes.len(), "chunk payload length")?);
            out.extend_from_slice(&p.bytes);
        }
        Ok(EncodedTensor {
            bytes: out,
            rows: t.rows(),
            cols: t.cols(),
        })
    }

    /// Probes `qp` (through the cache) and serializes the result.
    ///
    /// # Errors
    ///
    /// Propagates probe and assembly failures.
    fn assemble_at(
        &self,
        cache: &mut ProbeCache,
        t: &Tensor,
        chunks: &[Chunk],
        qp: f64,
    ) -> Result<EncodedTensor, CodecError> {
        let probe = self.probe_cached(cache, t, chunks, qp)?;
        self.assemble(t, chunks, probe)
    }

    /// Encodes every chunk at one QP, returning the serialized stream.
    ///
    /// # Errors
    ///
    /// Propagates probe and assembly failures.
    fn encode_at_qp(
        &self,
        t: &Tensor,
        chunks: &[Chunk],
        qp: f64,
    ) -> Result<EncodedTensor, CodecError> {
        let probe = self.probe_qp(t, chunks, qp)?;
        self.assemble(t, chunks, &probe)
    }

    /// Incremental QP search (the rate half of §3.2's "continuous QP").
    ///
    /// Replaces the eager bisection of earlier revisions:
    ///
    /// - every probed QP's per-chunk encodes are **cached**, so revisiting
    ///   a QP (including the final assembly) costs nothing;
    /// - feasibility comes from per-chunk **summaries** — payload sizes
    ///   and encoder-reconstruction error — so probes neither serialize
    ///   the stream nor decode it;
    /// - the **expensive endpoint is lazy**: a QP-0 encode costs several
    ///   times a mid-range one and is only probed if it is the answer.
    ///   The cheap QP-51 probe anchors the search; a pessimistic
    ///   pseudo-score stands in for the unprobed end;
    /// - probes are placed by **safeguarded false position** (the
    ///   Illinois variant) on the log-ratio score, which is near-linear
    ///   in QP for both rate and distortion, and the loop stops once the
    ///   bracket is [`QP_TOL`] wide.
    ///
    /// Returns the stream of the best feasible probed QP, the QP itself,
    /// and a [`QpBracket`] a later same-goal search can warm-start from.
    /// When nothing is feasible, the bits goal re-targets the finest QP
    /// within 5% of the minimum achievable size (tiny tensors: headers
    /// dominate, quality is nearly free) and the error goal returns the
    /// QP-0 best effort — both matching the old bisection's behavior.
    ///
    /// With `warm` set (the bracket a previous call returned), the lazy
    /// endpoint setup is skipped entirely: both remembered ends are probed
    /// directly, the bracket expands geometrically only if the crossing
    /// moved, and the refinement starts at most a couple of QP wide. On
    /// statistically similar tensors this saves several encodes per call.
    ///
    /// # Errors
    ///
    /// Propagates probe and assembly failures.
    fn search_qp(
        &self,
        t: &Tensor,
        chunks: &[Chunk],
        goal: SearchGoal,
        cache: &mut ProbeCache,
        warm: Option<QpBracket>,
    ) -> Result<(EncodedTensor, f64, QpBracket), CodecError> {
        if let Some(w) = warm {
            if let Some(found) = self.search_warm(t, chunks, goal, cache, w)? {
                return Ok(found);
            }
            // Nothing feasible anywhere under the remembered bracket's
            // coarse end: fall through — the cold path owns re-targeting
            // and best-effort behavior.
        }

        // QP 51 is the coarsest and by far the fastest encode — always
        // probe it first.
        let s_51 = score(self.probe_cached(cache, t, chunks, QP_MAX)?, goal);

        let br = match goal {
            SearchGoal::MaxBits(budget) => {
                if s_51 > 0.0 {
                    // Even the coarsest encode misses the budget (typical
                    // for tiny tensors whose fixed headers exceed it).
                    let cap = {
                        let p = self.probe_cached(cache, t, chunks, QP_MAX)?;
                        p.bits() as f64 * 1.05
                    };
                    // One level of recursion only: QP 51 satisfies `cap`
                    // by construction, so the recursive call cannot take
                    // this branch again.
                    return self.search_qp(t, chunks, SearchGoal::MaxBits(cap), cache, None);
                }
                // Pseudo-score for the unprobed QP-0 end: 8-bit pixels
                // plus entropy overhead keep real streams under ~9
                // bits/value, and the floor keeps the end labeled
                // infeasible so the bracket invariant holds.
                Bracket {
                    x_lo: 0.0,
                    s_lo: ((9.0 * t.len() as f64) / budget).log2().max(0.5),
                    x_hi: QP_MAX,
                    s_hi: s_51,
                }
            }
            SearchGoal::MaxSquaredError(_) => {
                if s_51 <= 0.0 {
                    // The cheapest possible encode already meets the
                    // error budget.
                    return self.finish(cache, t, chunks, goal, 0.0, 0.0);
                }
                // Pseudo-score for the unprobed QP-0 end: squared error
                // shrinks roughly 2^(−ΔQP/3), putting QP 0 about 17
                // score units below QP 51; the cap keeps the end labeled
                // feasible. If QP 0 turns out infeasible too, the loop
                // converges onto it and returns it as the best effort.
                Bracket {
                    x_lo: 0.0,
                    s_lo: s_51,
                    x_hi: QP_MAX,
                    s_hi: (s_51 - 17.0).min(-1.0),
                }
            }
        };

        let (x_lo, x_hi) = self.refine(t, chunks, goal, cache, br)?;
        self.finish(cache, t, chunks, goal, x_lo, x_hi)
    }

    /// The warm half of [`Llm265Codec::search_qp`]: re-establishes a
    /// bracket from a previous call's [`QpBracket`] with as few probes as
    /// possible, then refines it. Returns `Ok(None)` when even the search
    /// axis's coarse extreme is infeasible — the cold path handles that.
    ///
    /// # Errors
    ///
    /// Propagates probe failures.
    fn search_warm(
        &self,
        t: &Tensor,
        chunks: &[Chunk],
        goal: SearchGoal,
        cache: &mut ProbeCache,
        warm: QpBracket,
    ) -> Result<Option<(EncodedTensor, f64, QpBracket)>, CodecError> {
        let mut x_hi = warm.feasible.clamp(0.0, QP_MAX);
        let mut s_hi = self.score_at(cache, t, chunks, goal, x_hi)?;
        if s_hi > 0.0 {
            // The remembered feasible end no longer is: expand upward
            // (coarser) with geometrically growing steps.
            let mut step = 2.0;
            loop {
                if x_hi >= QP_MAX {
                    return Ok(None);
                }
                let (x_lo, s_lo) = (x_hi, s_hi);
                x_hi = (x_hi + step).min(QP_MAX);
                step *= 2.0;
                s_hi = self.score_at(cache, t, chunks, goal, x_hi)?;
                if s_hi <= 0.0 {
                    let br = Bracket {
                        x_lo,
                        s_lo,
                        x_hi,
                        s_hi,
                    };
                    let (x_lo, x_hi) = self.refine(t, chunks, goal, cache, br)?;
                    return self.finish(cache, t, chunks, goal, x_lo, x_hi).map(Some);
                }
            }
        }
        // The remembered feasible end still holds; walk the infeasible
        // end, expanding downward (finer) while it keeps being feasible.
        let mut x_lo = warm.infeasible.clamp(0.0, x_hi);
        if x_hi - x_lo < QP_TOL {
            x_lo = (x_hi - 4.0 * QP_TOL).max(0.0);
        }
        let mut s_lo;
        let mut step = 2.0;
        loop {
            if x_hi <= 0.0 {
                // The finest end of the axis is feasible: nothing to refine.
                return self.finish(cache, t, chunks, goal, 0.0, 0.0).map(Some);
            }
            s_lo = self.score_at(cache, t, chunks, goal, x_lo)?;
            if s_lo > 0.0 {
                break;
            }
            (x_hi, s_hi) = (x_lo, s_lo);
            x_lo = (x_lo - step).max(0.0);
            step *= 2.0;
        }
        let br = Bracket {
            x_lo,
            s_lo,
            x_hi,
            s_hi,
        };
        let (x_lo, x_hi) = self.refine(t, chunks, goal, cache, br)?;
        self.finish(cache, t, chunks, goal, x_lo, x_hi).map(Some)
    }

    /// Probes the search-axis position `x` (through the cache) and scores
    /// it against `goal`.
    ///
    /// # Errors
    ///
    /// Propagates probe failures.
    fn score_at(
        &self,
        cache: &mut ProbeCache,
        t: &Tensor,
        chunks: &[Chunk],
        goal: SearchGoal,
        x: f64,
    ) -> Result<f64, CodecError> {
        let p = self.probe_cached(cache, t, chunks, goal.to_qp(x))?;
        Ok(score(p, goal))
    }

    /// Shrinks a bracket with safeguarded false position (the Illinois
    /// variant) until it is [`QP_TOL`] wide or the probe budget runs out,
    /// returning the final `(x_lo, x_hi)`.
    ///
    /// # Errors
    ///
    /// Propagates probe failures.
    fn refine(
        &self,
        t: &Tensor,
        chunks: &[Chunk],
        goal: SearchGoal,
        cache: &mut ProbeCache,
        br: Bracket,
    ) -> Result<(f64, f64), CodecError> {
        let Bracket {
            mut x_lo,
            mut s_lo,
            mut x_hi,
            mut s_hi,
        } = br;
        let mut hi_moved_last: Option<bool> = None;
        for _ in 0..self.config.search_iters {
            if x_hi - x_lo <= QP_TOL {
                break;
            }
            let x = interpolate(x_lo, s_lo, x_hi, s_hi);
            let s = self.score_at(cache, t, chunks, goal, x)?;
            if s <= 0.0 {
                // Illinois safeguard: when the feasible end moves twice
                // in a row, halve the stale end's score so plain false
                // position cannot stall against one endpoint.
                if hi_moved_last == Some(true) {
                    s_lo *= 0.5;
                }
                (x_hi, s_hi) = (x, s);
                hi_moved_last = Some(true);
            } else {
                if hi_moved_last == Some(false) {
                    s_hi *= 0.5;
                }
                (x_lo, s_lo) = (x, s);
                hi_moved_last = Some(false);
            }
        }
        Ok((x_lo, x_hi))
    }

    /// Assembles the search answer `x_hi` and packages the bracket handed
    /// to the next warm start. The remembered width is clamped to
    /// `[1, 2]` QP: wide enough that a slightly drifted crossing still
    /// lands inside, narrow enough that it never points at the expensive
    /// unprobed extreme a cold search avoids.
    ///
    /// # Errors
    ///
    /// Propagates probe and assembly failures.
    fn finish(
        &self,
        cache: &mut ProbeCache,
        t: &Tensor,
        chunks: &[Chunk],
        goal: SearchGoal,
        x_lo: f64,
        x_hi: f64,
    ) -> Result<(EncodedTensor, f64, QpBracket), CodecError> {
        let qp = goal.to_qp(x_hi);
        let enc = self.assemble_at(cache, t, chunks, qp)?;
        let width = (x_hi - x_lo).clamp(1.0, 2.0);
        let bracket = QpBracket {
            feasible: x_hi,
            infeasible: (x_hi - width).max(0.0),
        };
        Ok((enc, qp, bracket))
    }
}

/// Log-ratio feasibility score of a probe: ≤ 0 exactly when the probe
/// meets the goal, near-linear in QP for both goals (rate and distortion
/// are roughly exponential in QP), which is what makes false position
/// converge in a handful of probes.
fn score(p: &QpProbe, goal: SearchGoal) -> f64 {
    match goal {
        SearchGoal::MaxBits(budget) => (p.bits() as f64 / budget)
            .log2()
            .clamp(-SCORE_SAT, SCORE_SAT),
        SearchGoal::MaxSquaredError(budget) => {
            if p.sq_err <= 0.0 {
                -SCORE_SAT
            } else if budget <= 0.0 {
                SCORE_SAT
            } else {
                (p.sq_err / budget).log2().clamp(-SCORE_SAT, SCORE_SAT)
            }
        }
    }
}

/// One safeguarded false-position step: the secant zero crossing of the
/// bracket scores, clamped 5% away from both ends so the bracket always
/// shrinks even when the secant model is poor.
fn interpolate(x_lo: f64, s_lo: f64, x_hi: f64, s_hi: f64) -> f64 {
    let width = x_hi - x_lo;
    let denom = s_lo - s_hi; // > 0 for a proper bracket
    let x = if denom > 1e-12 {
        x_lo + width * (s_lo / denom)
    } else {
        x_lo + 0.5 * width
    };
    x.clamp(x_lo + 0.05 * width, x_hi - 0.05 * width)
}

/// Narrows a host size to a `u32` wire field.
///
/// # Errors
///
/// Returns [`CodecError::LimitExceeded`] when the value does not fit —
/// the encode-side guard that oversized shapes and payloads fail instead
/// of truncating on serialization.
fn wire_u32(v: usize, what: &'static str) -> Result<u32, CodecError> {
    u32::try_from(v).map_err(|_| CodecError::LimitExceeded(what))
}

/// Squared error between a chunk's source rows and its reconstruction
/// mapped back through the affine dequantizer. The encoder reconstruction
/// is bit-exact with the decoder's output (pinned by videocodec tests),
/// so this equals the decode-side error without a decode round trip.
fn chunk_sq_err(t: &Tensor, c: &Chunk, recon: &Frame) -> f64 {
    let mut sum = 0.0;
    for y in 0..recon.height() {
        let row = t.row(c.row0 + y);
        for (x, &src) in row.iter().enumerate().take(recon.width()) {
            let v = c.lo + f32::from(recon.get(x, y)) * c.scale;
            let d = f64::from(src) - f64::from(v);
            sum += d * d;
        }
    }
    sum
}

impl TensorCodec for Llm265Codec {
    fn name(&self) -> String {
        format!("LLM.265/{}", self.config.profile.kind().name())
    }

    fn encode(&self, t: &Tensor, target: RateTarget) -> Result<EncodedTensor, CodecError> {
        if t.is_empty() {
            return Err(CodecError::InvalidInput(
                "cannot encode an empty tensor".into(),
            ));
        }
        if t.cols() > self.config.max_chunk_pixels {
            return Err(CodecError::InvalidInput(format!(
                "tensor width {} exceeds max chunk pixels {}",
                t.cols(),
                self.config.max_chunk_pixels
            )));
        }
        let chunks = chunk::partition(t, self.config.max_chunk_pixels, self.config.threads)?;
        let enc = match target {
            RateTarget::Qp(qp) => {
                if !(0.0..=51.0).contains(&qp) {
                    return Err(CodecError::InvalidInput(format!("qp {qp} out of range")));
                }
                self.encode_at_qp(t, &chunks, qp)?
            }
            RateTarget::BitsPerValue(b) => {
                if b <= 0.0 {
                    return Err(CodecError::InvalidInput(
                        "bits/value target must be positive".into(),
                    ));
                }
                let mut cache = ProbeCache::new();
                let budget_bits = b * t.len() as f64;
                let (enc, _, _) = self.search_qp(
                    t,
                    &chunks,
                    SearchGoal::MaxBits(budget_bits),
                    &mut cache,
                    None,
                )?;
                enc
            }
            RateTarget::MaxNormalizedMse(m) => {
                if m < 0.0 {
                    return Err(CodecError::InvalidInput(
                        "MSE target must be non-negative".into(),
                    ));
                }
                let var = stats::variance(t.data()).max(1e-30);
                // Total squared error budget: target normalized MSE ×
                // variance × element count (feasibility on sums avoids a
                // division per probe and matches `stats::tensor_mse` up
                // to summation order).
                let budget_sq = m * var * t.len() as f64;
                let mut cache = ProbeCache::new();
                let (enc, _, _) = self.search_qp(
                    t,
                    &chunks,
                    SearchGoal::MaxSquaredError(budget_sq),
                    &mut cache,
                    None,
                )?;
                enc
            }
        };
        Ok(enc)
    }

    fn decode(&self, e: &EncodedTensor) -> Result<Tensor, CodecError> {
        decode_tensor(e, self.config.threads)
    }
}

fn decode_tensor(e: &EncodedTensor, threads: usize) -> Result<Tensor, CodecError> {
    let data = &e.bytes;
    let mut pos = 0usize;
    if bytes::read_le_u32(data, &mut pos)? != MAGIC {
        return Err(CodecError::Corrupt("bad tensor-stream magic"));
    }
    let rows = bytes::read_le_u32(data, &mut pos)? as usize;
    let cols = bytes::read_le_u32(data, &mut pos)? as usize;
    let n_chunks = bytes::read_le_u32(data, &mut pos)? as usize;
    if rows.checked_mul(cols).is_none_or(|n| n > (1 << 31)) {
        return Err(CodecError::LimitExceeded("tensor shape"));
    }
    if n_chunks > data.len() / CHUNK_HEADER_BYTES {
        return Err(CodecError::LimitExceeded("tensor chunk count"));
    }
    // Pass 1 (serial): frame the chunk records so payload decodes can fan
    // out. All structural validation that needs inter-chunk state lives
    // here; growth is bounded by the actual stream length, not the
    // (attacker-controlled) declared count.
    let mut records: Vec<(usize, usize, f32, f32, &[u8])> = Vec::new();
    for _ in 0..n_chunks {
        let row0 = bytes::read_le_u32(data, &mut pos)? as usize;
        let c_rows = bytes::read_le_u32(data, &mut pos)? as usize;
        let lo = f32::from_bits(bytes::read_le_u32(data, &mut pos)?);
        let scale = f32::from_bits(bytes::read_le_u32(data, &mut pos)?);
        let len = bytes::read_le_u32(data, &mut pos)? as usize;
        let payload = data
            .get(pos..)
            .and_then(|rest| rest.get(..len))
            .ok_or(CodecError::Truncated("chunk payload"))?;
        pos += len;
        if row0 + c_rows > rows {
            return Err(CodecError::Corrupt("chunk exceeds tensor rows"));
        }
        records.push((row0, c_rows, lo, scale, payload));
    }
    // Pass 2: decode chunk payloads on the deterministic pool. Errors
    // surface in task order, so a corrupt stream reports the same chunk
    // at every thread count.
    let frames = pool::try_run_ordered(records.len(), threads, |i| {
        let (_, c_rows, _, _, payload) = records[i];
        let frame = decode_video(payload)?
            .into_iter()
            .next()
            .ok_or(CodecError::Corrupt("chunk decoded to zero frames"))?;
        if frame.width() != cols || frame.height() != c_rows {
            return Err(CodecError::Corrupt("chunk frame size mismatch"));
        }
        Ok(frame)
    })?;
    // Pass 3 (serial): affine-restore the bands into the output tensor.
    let mut out = Tensor::zeros(rows, cols);
    let mut covered = 0usize;
    for ((row0, c_rows, lo, scale, _), frame) in records.iter().zip(&frames) {
        // Re-established where it is consumed: pass 1 checked row0 against
        // the declared rows and pass 2 checked the frame dimensions, but
        // the restore indexes `out` with both, so bound them here too.
        if *row0 + frame.height() > rows {
            return Err(CodecError::Corrupt("restored chunk exceeds tensor rows"));
        }
        chunk::dequantize_into(&mut out, frame, *row0, *lo, *scale);
        covered += c_rows;
    }
    if covered != rows {
        return Err(CodecError::Corrupt("chunks do not cover the tensor"));
    }
    Ok(out)
}

/// [`LossyCompressor`] adapter: an LLM.265 codec bound to one rate target,
/// pluggable into the distributed-training simulator.
#[derive(Debug, Clone)]
pub struct Llm265Channel {
    codec: Llm265Codec,
    target: RateTarget,
}

impl Llm265Channel {
    /// Binds a codec to a rate target.
    pub fn new(codec: Llm265Codec, target: RateTarget) -> Self {
        Llm265Channel { codec, target }
    }

    /// Convenience: default codec at a bits/value budget.
    pub fn at_bits(bits: f64) -> Self {
        Llm265Channel::new(Llm265Codec::new(), RateTarget::BitsPerValue(bits))
    }
}

impl LossyCompressor for Llm265Channel {
    fn name(&self) -> String {
        match self.target {
            RateTarget::BitsPerValue(b) => format!("LLM.265 ({b:.1}b)"),
            RateTarget::MaxNormalizedMse(m) => format!("LLM.265 (nmse {m})"),
            RateTarget::Qp(q) => format!("LLM.265 (qp {q})"),
        }
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let enc = self
            .codec
            .encode(t, self.target)
            // lint:allow(panic): channel contract — callers feed non-empty tensors
            .expect("transcode of non-empty tensor");
        let out = self
            .codec
            .decode(&enc)
            // lint:allow(panic): decoding a stream produced two lines up
            .expect("self-produced stream decodes");
        (out, enc.bits())
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        match self.target {
            RateTarget::BitsPerValue(b) => Some(b),
            _ => None,
        }
    }
}

/// A rate-*tracking* LLM.265 channel for training loops.
///
/// Training-time compression calls the codec on statistically similar
/// tensors thousands of times (every gradient, every step). Searching QP
/// from scratch each call pays the lazy endpoint setup every time; this
/// channel instead hands each search the [`QpBracket`] the previous one
/// returned, so repeated same-shape tensors re-establish the bracket with
/// two cached-cheap probes and refine from at most a couple of QP wide.
#[derive(Debug, Clone)]
pub struct Llm265TrackingChannel {
    codec: Llm265Codec,
    target_bits: f64,
    last_qp: f64,
    warm: Option<QpBracket>,
}

impl Llm265TrackingChannel {
    /// Creates a tracking channel for a bits/value target.
    ///
    /// # Panics
    ///
    /// Panics if `target_bits` is not positive.
    pub fn at_bits(target_bits: f64) -> Self {
        Llm265TrackingChannel::with_codec(Llm265Codec::new(), target_bits)
    }

    /// Creates a tracking channel around an explicit codec (e.g. one with
    /// a thread count or an encode counter installed).
    ///
    /// # Panics
    ///
    /// Panics if `target_bits` is not positive.
    pub fn with_codec(codec: Llm265Codec, target_bits: f64) -> Self {
        assert!(target_bits > 0.0, "bits target must be positive");
        Llm265TrackingChannel {
            codec,
            target_bits,
            last_qp: 30.0,
            warm: None,
        }
    }

    /// The QP the last search settled on.
    pub fn current_qp(&self) -> f64 {
        self.last_qp
    }
}

impl LossyCompressor for Llm265TrackingChannel {
    fn name(&self) -> String {
        format!("LLM.265 ({:.1}b, tracking)", self.target_bits)
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let chunks = chunk::partition(
            t,
            self.codec.config.max_chunk_pixels,
            self.codec.config.threads,
        )
        // lint:allow(panic): channel contract — callers feed non-empty tensors
        .expect("partition of non-empty tensor");
        let mut cache = ProbeCache::new();
        let budget_bits = self.target_bits * t.len() as f64;
        let (enc, qp, bracket) = self
            .codec
            .search_qp(
                t,
                &chunks,
                SearchGoal::MaxBits(budget_bits),
                &mut cache,
                self.warm.take(),
            )
            // lint:allow(panic): probing fails only if a pool worker dies
            .expect("search over self-produced chunks");
        self.last_qp = qp;
        self.warm = Some(bracket);
        let out = self
            .codec
            .decode(&enc)
            // lint:allow(panic): decoding a stream assembled above
            .expect("self-produced stream decodes");
        (out, enc.bits())
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        Some(self.target_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::synthetic::{self, WeightProfile};

    fn weight(seed: u64, n: usize) -> Tensor {
        let mut rng = Pcg32::seed_from(seed);
        synthetic::llm_weight(n, n, &WeightProfile::default(), &mut rng)
    }

    #[test]
    fn roundtrip_shape_and_rate() {
        let t = weight(1, 64);
        let codec = Llm265Codec::new();
        let enc = codec.encode(&t, RateTarget::BitsPerValue(3.0)).unwrap();
        assert!(enc.bits_per_value() <= 3.05, "bpv {}", enc.bits_per_value());
        let out = codec.decode(&enc).unwrap();
        assert_eq!(out.shape(), t.shape());
        let nmse = stats::tensor_mse(&t, &out) / stats::variance(t.data());
        assert!(nmse < 0.2, "nmse {nmse}");
    }

    #[test]
    fn multi_chunk_tensors_roundtrip() {
        let t = weight(2, 96); // forces several chunks with small limit
        let codec = Llm265Codec::with_config(Llm265Config {
            max_chunk_pixels: 96 * 24,
            ..Llm265Config::default()
        });
        let enc = codec.encode(&t, RateTarget::Qp(20.0)).unwrap();
        let out = codec.decode(&enc).unwrap();
        assert_eq!(out.shape(), t.shape());
        let nmse = stats::tensor_mse(&t, &out) / stats::variance(t.data());
        assert!(nmse < 0.05, "nmse {nmse}");
    }

    #[test]
    fn mse_target_is_met() {
        let t = weight(3, 64);
        let codec = Llm265Codec::new();
        let enc = codec
            .encode(&t, RateTarget::MaxNormalizedMse(0.02))
            .unwrap();
        let out = codec.decode(&enc).unwrap();
        let nmse = stats::tensor_mse(&t, &out) / stats::variance(t.data());
        assert!(nmse <= 0.02 + 1e-9, "nmse {nmse}");
        // Should not be extravagant in bits for the quality asked.
        assert!(enc.bits_per_value() < 8.0);
    }

    #[test]
    fn lower_budget_means_fewer_bits_and_more_error() {
        let t = weight(4, 64);
        let codec = Llm265Codec::new();
        let coarse = codec.encode(&t, RateTarget::BitsPerValue(1.5)).unwrap();
        let fine = codec.encode(&t, RateTarget::BitsPerValue(4.5)).unwrap();
        assert!(coarse.bits() < fine.bits());
        let e_coarse = stats::tensor_mse(&t, &codec.decode(&coarse).unwrap());
        let e_fine = stats::tensor_mse(&t, &codec.decode(&fine).unwrap());
        assert!(e_coarse > e_fine);
    }

    #[test]
    fn fractional_budgets_resolve() {
        // The paper's headline: 2.88-bit style fractional budgets.
        let t = weight(5, 64);
        let codec = Llm265Codec::new();
        let a = codec.encode(&t, RateTarget::BitsPerValue(2.6)).unwrap();
        let b = codec.encode(&t, RateTarget::BitsPerValue(2.9)).unwrap();
        assert!(a.bits_per_value() <= 2.65);
        assert!(b.bits_per_value() <= 2.95);
        assert!(b.bits() >= a.bits());
    }

    #[test]
    fn rejects_bad_inputs() {
        let codec = Llm265Codec::new();
        let empty = Tensor::zeros(0, 0);
        assert!(codec.encode(&empty, RateTarget::Qp(20.0)).is_err());
        let t = weight(6, 8);
        assert!(codec.encode(&t, RateTarget::Qp(99.0)).is_err());
        assert!(codec.encode(&t, RateTarget::BitsPerValue(-1.0)).is_err());
        assert!(codec
            .encode(&t, RateTarget::MaxNormalizedMse(-0.5))
            .is_err());
    }

    #[test]
    fn rejects_corrupt_streams() {
        let t = weight(7, 32);
        let codec = Llm265Codec::new();
        let enc = codec.encode(&t, RateTarget::Qp(24.0)).unwrap();
        let mut bad = enc.clone();
        bad.bytes.truncate(bad.bytes.len() / 2);
        assert!(codec.decode(&bad).is_err());
        let mut bad_magic = enc.clone();
        bad_magic.bytes[0] ^= 0xff;
        assert!(codec.decode(&bad_magic).is_err());
    }

    #[test]
    fn channel_adapter_reports_bits() {
        let t = weight(8, 48);
        let mut ch = Llm265Channel::at_bits(3.5);
        let (out, bits) = ch.transcode(&t);
        assert_eq!(out.shape(), t.shape());
        let bpv = bits as f64 / t.len() as f64;
        assert!(bpv <= 3.55, "bpv {bpv}");
        assert_eq!(ch.nominal_bits_per_value(), Some(3.5));
        assert!(ch.name().contains("LLM.265"));
    }

    #[test]
    fn constant_tensor_costs_almost_nothing() {
        let t = Tensor::full(64, 64, 0.25);
        let codec = Llm265Codec::new();
        let enc = codec.encode(&t, RateTarget::Qp(30.0)).unwrap();
        let out = codec.decode(&enc).unwrap();
        assert_eq!(out, t);
        assert!(enc.bits_per_value() < 0.2, "bpv {}", enc.bits_per_value());
    }

    #[test]
    fn oversize_wire_fields_error_instead_of_truncating() {
        assert!(wire_u32(usize::try_from(u32::MAX).unwrap(), "x").is_ok());
        let too_big = usize::try_from(u64::from(u32::MAX) + 1).unwrap();
        assert!(matches!(
            wire_u32(too_big, "x"),
            Err(CodecError::LimitExceeded("x"))
        ));
    }

    #[test]
    fn probe_summaries_match_the_assembled_stream() {
        // The search trusts probe summaries instead of serializing or
        // decoding; pin them to the ground truth.
        let t = weight(9, 96);
        let codec = Llm265Codec::with_config(Llm265Config {
            max_chunk_pixels: 96 * 24,
            threads: 1,
            ..Llm265Config::default()
        });
        let chunks = chunk::partition(&t, 96 * 24, 1).unwrap();
        let probe = codec.probe_qp(&t, &chunks, 28.0).unwrap();
        let enc = codec.assemble(&t, &chunks, &probe).unwrap();
        assert_eq!(probe.stream_bytes, enc.bytes().len());
        let dec = codec.decode(&enc).unwrap();
        let true_sq = stats::tensor_mse(&t, &dec) * t.len() as f64;
        let rel = (probe.sq_err - true_sq).abs() / true_sq.max(1e-30);
        assert!(
            rel < 1e-9,
            "probe sq_err {} vs decode {}",
            probe.sq_err,
            true_sq
        );
    }
}

#[cfg(test)]
mod tracking_tests {
    use super::*;
    use llm265_tensor::channel::LossyCompressor;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::synthetic::{llm_gradient, GradientProfile};

    #[test]
    fn tracking_channel_converges_to_budget() {
        let mut ch = Llm265TrackingChannel::at_bits(3.0);
        let mut rng = Pcg32::seed_from(1);
        let mut last_bpv = 0.0;
        for step in 0..6 {
            let g = llm_gradient(48, 48, &GradientProfile::default(), &mut rng);
            let (out, bits) = ch.transcode(&g);
            assert_eq!(out.shape(), g.shape());
            last_bpv = bits as f64 / g.len() as f64;
            // Never over budget once warmed up.
            if step > 1 {
                assert!(last_bpv <= 3.0 + 1e-9, "step {step}: {last_bpv}");
            }
        }
        assert!(last_bpv > 2.2, "should sit near the budget, got {last_bpv}");
        assert!(ch.current_qp() > 0.0 && ch.current_qp() < 51.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tracking_channel_rejects_bad_target() {
        let _ = Llm265TrackingChannel::at_bits(0.0);
    }

    /// The warm start is the whole point of the tracking channel: on the
    /// second same-shape tensor the search must re-enter from the
    /// remembered bracket and probe strictly fewer QPs than the cold
    /// search did. The counter hook counts chunk encodes, and the tensors
    /// here are single-chunk, so it counts probes exactly.
    #[test]
    fn tracking_channel_warm_start_skips_probes() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut codec = Llm265Codec::with_config(Llm265Config {
            threads: 1,
            ..Llm265Config::default()
        });
        codec.set_chunk_encode_counter(Arc::clone(&counter));
        let mut ch = Llm265TrackingChannel::with_codec(codec, 3.0);
        let mut rng = Pcg32::seed_from(5);
        let a = llm_gradient(48, 48, &GradientProfile::default(), &mut rng);
        let b = llm_gradient(48, 48, &GradientProfile::default(), &mut rng);

        let _ = ch.transcode(&a);
        let cold = counter.swap(0, Ordering::Relaxed);
        let (out, bits) = ch.transcode(&b);
        let warmed = counter.swap(0, Ordering::Relaxed);

        assert!(
            warmed < cold,
            "warm start probed {warmed} QPs, cold search probed {cold}"
        );
        assert!(warmed <= 8, "warm start should stay cheap, probed {warmed}");
        // And it still answers correctly: under budget, correct shape.
        assert_eq!(out.shape(), b.shape());
        assert!(bits as f64 / b.len() as f64 <= 3.0 + 1e-9);
    }
}
