//! Deterministic scoped thread pool for chunk-level parallelism.
//!
//! Chunks are independent frames by construction (`chunk::partition`
//! emits disjoint row bands), so encoding and decoding them is
//! embarrassingly parallel — the same frame-level parallelism real NVENC
//! silicon exploits (PAPER.md §4). The constraint is bit-exactness: the
//! distributed-training simulator re-encodes the same tensor on every
//! rank and the streams must match byte for byte, so parallel execution
//! must not be able to influence the output.
//!
//! This pool guarantees that with the **ordered-collection idiom**:
//!
//! 1. workers claim task indices from an atomic counter (load balancing
//!    is scheduling-dependent and that is fine);
//! 2. each worker keeps its results as `(index, value)` pairs private to
//!    the worker;
//! 3. after an **ordered join** of every worker, the results are placed
//!    into a pre-sized `Vec<Option<T>>` slot addressed by task index.
//!
//! The output vector is a pure function of `f` and `n_tasks`: thread
//! count, scheduling and work stealing can only change *when* `f(i)` runs,
//! never *where* its result lands. There is no cross-task reduction, so
//! no float-accumulation-order hazard either. `xtask lint`'s determinism
//! pass recognises exactly this shape (scope + spawn + join + index-
//! addressed store) and exempts it from the thread-parallelism ban.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::CodecError;

/// Upper bound on worker threads; guards against absurd configuration
/// values (`Llm265Config::threads` is user-controlled).
const MAX_THREADS: usize = 256;

/// Runs `f(0..n_tasks)` on `threads` workers and returns the results in
/// task-index order.
///
/// `threads == 0` resolves to the machine's available parallelism. The
/// output is bit-identical at every thread count, including 1: results
/// are joined in worker order and placed by task index, so scheduling
/// cannot reorder them.
///
/// # Errors
///
/// Returns [`CodecError::Internal`] if a worker panics. All workers are
/// joined before returning — a panicking task never leaves detached
/// threads running.
pub fn run_ordered<T, F>(n_tasks: usize, threads: usize, f: F) -> Result<Vec<T>, CodecError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads, n_tasks);
    if threads <= 1 {
        // Inline path: identical order and arithmetic to the parallel
        // path's per-index calls, with zero spawn overhead.
        return Ok((0..n_tasks).map(f).collect());
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n_tasks);
    slots.resize_with(n_tasks, || None);

    // No lint:allow here: `xtask lint`'s determinism pass recognises this
    // function's shape (fetch_add claim + scoped spawn + join all + store
    // by task index) and exempts the spawn structurally.
    let joined: Vec<std::thread::Result<Vec<(usize, T)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        // Ordered join: every handle is joined (a panic in one worker
        // must not leave another unjoined), in spawn order.
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .collect()
    });

    for worker in joined {
        let pairs = worker.map_err(|_| CodecError::Internal("codec worker thread panicked"))?;
        for (i, v) in pairs {
            slots[i] = Some(v);
        }
    }
    let mut out = Vec::with_capacity(n_tasks);
    for slot in slots {
        // Every index in 0..n_tasks is claimed exactly once by the atomic
        // counter, so a hole is impossible unless the pool itself is buggy.
        out.push(slot.ok_or(CodecError::Internal("pool lost a task result"))?);
    }
    Ok(out)
}

/// Like [`run_ordered`] for fallible tasks: the first error in *task
/// order* (not completion order) is returned, keeping error selection
/// deterministic across thread counts.
///
/// # Errors
///
/// Returns the lowest-indexed task error, or [`CodecError::Internal`] if
/// a worker panics.
pub fn try_run_ordered<T, F>(n_tasks: usize, threads: usize, f: F) -> Result<Vec<T>, CodecError>
where
    T: Send,
    F: Fn(usize) -> Result<T, CodecError> + Sync,
{
    let results = run_ordered(n_tasks, threads, f)?;
    results.into_iter().collect()
}

/// Resolves a requested thread count: `0` means the machine's available
/// parallelism, and the result is clamped to `[1, min(n_tasks, 256)]` —
/// more workers than tasks would only spawn idle threads.
pub fn effective_threads(requested: usize, n_tasks: usize) -> usize {
    let requested = if requested == 0 {
        // lint:allow(determinism): thread count only sizes the worker
        // set of the ordered-join pool above; it cannot affect output
        // bytes (see module docs).
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    };
    requested.clamp(1, MAX_THREADS.min(n_tasks.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_task_order_at_every_thread_count() {
        for threads in [1, 2, 3, 8] {
            let out = run_ordered(100, threads, |i| i * i).expect("pool run");
            let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out = run_ordered(0, 4, |i| i).expect("pool run");
        assert!(out.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = run_ordered(57, 4, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        })
        .expect("pool run");
        assert_eq!(out.len(), 57);
        assert_eq!(count.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn worker_panic_surfaces_as_codec_error_and_joins_everyone() {
        // One task panics; the pool must join every worker (no hangs, no
        // detached threads) and surface a CodecError instead of panicking.
        let err = run_ordered(16, 4, |i| {
            if i == 7 {
                // lint:allow(panic): this test exists to exercise the
                // pool's panic containment.
                panic!("task 7 exploded");
            }
            i
        })
        .expect_err("panic must become an error");
        assert!(matches!(err, CodecError::Internal(_)), "{err:?}");
    }

    #[test]
    fn try_run_reports_the_lowest_indexed_error() {
        for threads in [1, 4] {
            let err = try_run_ordered(32, threads, |i| {
                if i % 10 == 3 {
                    Err(CodecError::Corrupt(if i == 3 { "first" } else { "later" }))
                } else {
                    Ok(i)
                }
            })
            .expect_err("must fail");
            // Task order, not completion order: always index 3's error.
            assert!(matches!(err, CodecError::Corrupt("first")), "{err:?}");
        }
    }

    #[test]
    fn effective_threads_resolves_zero_and_clamps() {
        assert!(effective_threads(0, 8) >= 1);
        assert_eq!(effective_threads(5, 2), 2); // capped by task count
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(1_000_000, 1_000_000), MAX_THREADS);
        assert_eq!(effective_threads(4, 0), 1);
    }
}
