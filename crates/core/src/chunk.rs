//! Tensor ↔ frame chunking and 8-bit affine quantization.
//!
//! NVENC/NVDEC limit frame dimensions, so the paper partitions each input
//! tensor into multiple chunks, each corresponding to a frame, and rounds
//! FP16 values to 8-bit integers before feeding the codec (§3.2). This
//! module implements that mapping: row-band chunks, per-chunk min–max
//! affine quantization to the Luma plane, and the inverse.

use llm265_tensor::Tensor;
use llm265_videocodec::Frame;

use crate::pool;
use crate::CodecError;

/// A chunk: one frame plus the affine map that restores values.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// First tensor row covered by this chunk.
    pub row0: usize,
    /// Number of tensor rows covered.
    pub rows: usize,
    /// The 8-bit Luma frame (width = tensor cols, height = rows).
    pub frame: Frame,
    /// Value of pixel 0: `value = lo + pixel * scale`.
    pub lo: f32,
    /// Step per pixel level.
    pub scale: f32,
}

/// Splits `t` into row-band chunks of at most `max_pixels` values each and
/// quantizes each band to 8 bits with its own min–max affine map.
///
/// Bands are quantized on the deterministic [`pool`] (`threads == 0`
/// resolves to the machine's parallelism): each band's affine map and
/// pixels depend only on its own tensor rows, so the output is identical
/// at every thread count.
///
/// # Errors
///
/// Returns [`CodecError::Internal`] if a pool worker panics.
///
/// # Panics
///
/// Panics if `t` is empty or `max_pixels < t.cols()`.
pub fn partition(t: &Tensor, max_pixels: usize, threads: usize) -> Result<Vec<Chunk>, CodecError> {
    assert!(!t.is_empty(), "cannot chunk an empty tensor");
    assert!(
        max_pixels >= t.cols(),
        "max_pixels {} smaller than one row ({})",
        max_pixels,
        t.cols()
    );
    let rows_per_chunk = (max_pixels / t.cols()).max(1).min(t.rows());
    let n_chunks = t.rows().div_ceil(rows_per_chunk);
    pool::run_ordered(n_chunks, threads, |i| {
        let row0 = i * rows_per_chunk;
        let rows = rows_per_chunk.min(t.rows() - row0);
        quantize_band(t, row0, rows)
    })
}

fn quantize_band(t: &Tensor, row0: usize, rows: usize) -> Chunk {
    let cols = t.cols();
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for r in row0..row0 + rows {
        for &v in t.row(r) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        // Non-finite values collapse to a flat chunk at zero; the paper's
        // FP16 inputs never carry NaN/Inf into the codec.
        lo = 0.0;
        hi = 0.0;
    }
    let scale = if hi > lo { (hi - lo) / 255.0 } else { 0.0 };
    let frame = Frame::from_fn(cols, rows, |x, y| {
        let v = t[(row0 + y, x)];
        // lint:allow(float-cmp): `scale` is assigned exactly 0.0 for flat
        // chunks two lines up; this guards the division below.
        if scale == 0.0 || !v.is_finite() {
            0
        } else {
            (((v - lo) / scale).round()).clamp(0.0, 255.0) as u8
        }
    });
    Chunk {
        row0,
        rows,
        frame,
        lo,
        scale,
    }
}

/// Restores a chunk's frame (possibly the codec's lossy reconstruction)
/// into the destination tensor.
///
/// # Panics
///
/// Panics if the chunk does not fit `dst`.
pub fn dequantize_into(dst: &mut Tensor, frame: &Frame, row0: usize, lo: f32, scale: f32) {
    assert!(row0 + frame.height() <= dst.rows() && frame.width() == dst.cols());
    for y in 0..frame.height() {
        for x in 0..frame.width() {
            dst[(row0 + y, x)] = lo + frame.get(x, y) as f32 * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::stats;

    fn sample_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = Pcg32::seed_from(seed);
        Tensor::from_fn(rows, cols, |_, _| (rng.normal() * 0.05) as f32)
    }

    #[test]
    fn partition_covers_all_rows_without_overlap() {
        let t = sample_tensor(100, 32, 1);
        let chunks = partition(&t, 32 * 24, 1).expect("partition");
        let mut next = 0;
        for c in &chunks {
            assert_eq!(c.row0, next);
            assert_eq!(c.frame.width(), 32);
            assert_eq!(c.frame.height(), c.rows);
            next += c.rows;
        }
        assert_eq!(next, 100);
        // 24-row bands: 100 = 24*4 + 4.
        assert_eq!(chunks.len(), 5);
        assert_eq!(chunks.last().unwrap().rows, 4);
    }

    #[test]
    fn single_chunk_when_tensor_fits() {
        let t = sample_tensor(16, 16, 2);
        let chunks = partition(&t, 1 << 20, 1).expect("partition");
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let t = sample_tensor(32, 32, 3);
        let chunks = partition(&t, 1 << 20, 1).expect("partition");
        let c = &chunks[0];
        let mut out = Tensor::zeros(32, 32);
        dequantize_into(&mut out, &c.frame, c.row0, c.lo, c.scale);
        for (a, b) in t.data().iter().zip(out.data()) {
            assert!((a - b).abs() <= c.scale * 0.5 + 1e-7);
        }
        // 8-bit quantization noise is tiny relative to the signal.
        let nmse = stats::tensor_mse(&t, &out) / stats::variance(t.data());
        assert!(nmse < 2e-3, "8-bit quantization nmse {nmse}");
    }

    #[test]
    fn constant_tensor_roundtrips_exactly() {
        let t = Tensor::full(8, 8, 0.125);
        let chunks = partition(&t, 1 << 20, 1).expect("partition");
        assert_eq!(chunks[0].scale, 0.0);
        let mut out = Tensor::zeros(8, 8);
        let c = &chunks[0];
        dequantize_into(&mut out, &c.frame, c.row0, c.lo, c.scale);
        assert_eq!(out, t);
    }

    #[test]
    fn extremes_map_to_0_and_255() {
        let mut t = Tensor::zeros(2, 2);
        t[(0, 0)] = -1.0;
        t[(1, 1)] = 3.0;
        let chunks = partition(&t, 1 << 20, 1).expect("partition");
        let c = &chunks[0];
        assert_eq!(c.frame.get(0, 0), 0);
        assert_eq!(c.frame.get(1, 1), 255);
        assert_eq!(c.lo, -1.0);
    }

    #[test]
    fn non_finite_values_do_not_poison_the_chunk() {
        let mut t = Tensor::zeros(2, 2);
        t[(0, 0)] = f32::NAN;
        let chunks = partition(&t, 1 << 20, 1).expect("partition");
        // Must not panic; chunk degrades to flat.
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn per_chunk_scaling_isolates_outlier_bands() {
        // An outlier in one band must not destroy resolution in another.
        let mut t = sample_tensor(64, 16, 4);
        t[(0, 0)] = 100.0; // huge outlier in the first band
        let chunks = partition(&t, 16 * 32, 1).expect("partition"); // two bands of 32 rows
        assert_eq!(chunks.len(), 2);
        assert!(chunks[0].scale > 10.0 * chunks[1].scale);
    }
}
