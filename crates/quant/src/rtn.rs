//! Round-to-nearest (RTN) quantization.
//!
//! The vanilla quantizer every other method builds on (§2.1 of the paper):
//! `Q(w) = Δ · round(w/Δ)` with `Δ = max|w| / 2^(N-1)` in the symmetric
//! case, or an asymmetric min–max affine grid. Grouping controls the
//! granularity at which Δ is computed — per tensor, per group of 128
//! values ("128G" in the paper's tables), or per row/token.

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

/// Granularity at which quantization scales are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupScheme {
    /// One scale for the whole tensor.
    PerTensor,
    /// One scale per contiguous group of this many values (row-major).
    Groups(usize),
    /// One scale per row (per output channel / per token).
    PerRow,
}

/// An RTN quantizer: bit width, grouping and symmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtnQuantizer {
    bits: u32,
    scheme: GroupScheme,
    asymmetric: bool,
}

impl RtnQuantizer {
    /// Symmetric RTN at `bits` with the given grouping.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or a group size is 0.
    pub fn symmetric(bits: u32, scheme: GroupScheme) -> Self {
        Self::validate(bits, scheme);
        RtnQuantizer {
            bits,
            scheme,
            asymmetric: false,
        }
    }

    /// Asymmetric min–max RTN (the paper's dynamic-quantization baseline
    /// for KV cache and activations).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or a group size is 0.
    pub fn asymmetric(bits: u32, scheme: GroupScheme) -> Self {
        Self::validate(bits, scheme);
        RtnQuantizer {
            bits,
            scheme,
            asymmetric: true,
        }
    }

    fn validate(bits: u32, scheme: GroupScheme) {
        assert!((1..=8).contains(&bits), "RTN bits must be 1..=8");
        if let GroupScheme::Groups(g) = scheme {
            assert!(g > 0, "group size must be positive");
        }
    }

    /// The quantization bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantizes and dequantizes a tensor, returning the reconstruction.
    pub fn apply(&self, t: &Tensor) -> Tensor {
        let mut out = t.clone();
        let cols = t.cols().max(1);
        let group_len = match self.scheme {
            GroupScheme::PerTensor => t.len().max(1),
            GroupScheme::Groups(g) => g,
            GroupScheme::PerRow => cols,
        };
        let data = out.data_mut();
        let mut start = 0;
        while start < data.len() {
            let end = (start + group_len).min(data.len());
            self.quantize_group(&mut data[start..end]);
            start = end;
        }
        out
    }

    fn quantize_group(&self, xs: &mut [f32]) {
        if xs.is_empty() {
            return;
        }
        if self.asymmetric {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &v in xs.iter() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let levels = ((1u32 << self.bits) - 1) as f32;
            let scale = if hi > lo { (hi - lo) / levels } else { 0.0 };
            for v in xs.iter_mut() {
                // lint:allow(float-cmp): `scale` is assigned exactly 0.0
                // for flat groups above; this guards the division.
                if scale == 0.0 {
                    *v = lo;
                } else {
                    let q = ((*v - lo) / scale).round().clamp(0.0, levels);
                    *v = lo + q * scale;
                }
            }
        } else {
            let max_abs = xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let half = (1u32 << (self.bits - 1)) as f32;
            let delta = if max_abs > 0.0 { max_abs / half } else { 0.0 };
            for v in xs.iter_mut() {
                // lint:allow(float-cmp): `delta` is assigned exactly 0.0
                // for all-zero groups above; this guards the division.
                if delta == 0.0 {
                    *v = 0.0;
                } else {
                    let q = (*v / delta).round().clamp(-half, half - 1.0);
                    *v = q * delta;
                }
            }
        }
    }

    /// Wire size in bits for quantizing `t`: payload plus scale metadata
    /// (one f32 per scale for symmetric, two for asymmetric).
    pub fn wire_bits(&self, t: &Tensor) -> u64 {
        let n = t.len() as u64;
        let group_len: usize = match self.scheme {
            GroupScheme::PerTensor => t.len().max(1),
            GroupScheme::Groups(g) => g,
            GroupScheme::PerRow => t.cols().max(1),
        };
        let groups = n.div_ceil((group_len as u64).max(1));
        let scale_bits = if self.asymmetric { 64 } else { 32 };
        n * u64::from(self.bits) + groups * scale_bits
    }
}

impl LossyCompressor for RtnQuantizer {
    fn name(&self) -> String {
        let g = match self.scheme {
            GroupScheme::PerTensor => String::new(),
            GroupScheme::Groups(g) => format!("-{g}G"),
            GroupScheme::PerRow => "-row".to_string(),
        };
        format!("RTN{}{}", self.bits, g)
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        (self.apply(t), self.wire_bits(t))
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        Some(self.bits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::stats;

    fn gaussian(seed: u64, rows: usize, cols: usize) -> Tensor {
        let mut rng = Pcg32::seed_from(seed);
        Tensor::from_fn(rows, cols, |_, _| rng.normal() as f32)
    }

    #[test]
    fn symmetric_error_bounded_by_half_delta() {
        let t = gaussian(1, 16, 16);
        let q = RtnQuantizer::symmetric(8, GroupScheme::PerTensor);
        let out = q.apply(&t);
        let delta = t.max_abs() / 128.0;
        for (a, b) in t.data().iter().zip(out.data()) {
            assert!((a - b).abs() <= delta * 0.5 + 1e-6);
        }
    }

    #[test]
    fn more_bits_less_error() {
        let t = gaussian(2, 32, 32);
        let errs: Vec<f64> = (2..=8)
            .map(|b| {
                let q = RtnQuantizer::symmetric(b, GroupScheme::PerTensor);
                stats::tensor_mse(&t, &q.apply(&t))
            })
            .collect();
        for w in errs.windows(2) {
            assert!(w[1] < w[0], "error should fall with bits: {errs:?}");
        }
    }

    #[test]
    fn groupwise_beats_per_tensor_on_outliers() {
        // A single outlier kills per-tensor resolution but only one group's.
        let mut t = gaussian(3, 8, 128);
        t[(0, 0)] = 50.0;
        let per_tensor = RtnQuantizer::symmetric(4, GroupScheme::PerTensor);
        let grouped = RtnQuantizer::symmetric(4, GroupScheme::Groups(128));
        let e_pt = stats::tensor_mse(&t, &per_tensor.apply(&t));
        let e_g = stats::tensor_mse(&t, &grouped.apply(&t));
        assert!(e_g < e_pt / 4.0, "grouped {e_g} vs per-tensor {e_pt}");
    }

    #[test]
    fn asymmetric_handles_shifted_data() {
        let t = gaussian(4, 16, 16).map(|x| x + 10.0);
        let sym = RtnQuantizer::symmetric(4, GroupScheme::PerTensor);
        let asym = RtnQuantizer::asymmetric(4, GroupScheme::PerTensor);
        let e_sym = stats::tensor_mse(&t, &sym.apply(&t));
        let e_asym = stats::tensor_mse(&t, &asym.apply(&t));
        assert!(e_asym < e_sym, "asym {e_asym} vs sym {e_sym}");
    }

    #[test]
    fn one_bit_symmetric_is_sign_times_delta() {
        let t = Tensor::from_vec(1, 4, vec![-2.0, -0.1, 0.1, 2.0]);
        let q = RtnQuantizer::symmetric(1, GroupScheme::PerTensor);
        let out = q.apply(&t);
        // With 1 bit, levels are {-delta, 0}: q in {-1, 0}.
        for v in out.data() {
            assert!(*v == 0.0 || *v == -2.0, "level {v}");
        }
    }

    #[test]
    fn wire_bits_accounting() {
        let t = gaussian(5, 4, 128);
        let q = RtnQuantizer::symmetric(4, GroupScheme::Groups(128));
        // 512 values * 4 bits + 4 groups * 32 bits.
        assert_eq!(q.wire_bits(&t), 512 * 4 + 4 * 32);
        let qa = RtnQuantizer::asymmetric(3, GroupScheme::PerRow);
        assert_eq!(qa.wire_bits(&t), 512 * 3 + 4 * 64);
    }

    #[test]
    fn constant_tensor_is_exact_asymmetric() {
        let t = Tensor::full(4, 4, 3.25);
        let q = RtnQuantizer::asymmetric(2, GroupScheme::PerTensor);
        assert_eq!(q.apply(&t), t);
    }

    #[test]
    fn compressor_interface() {
        let t = gaussian(6, 8, 8);
        let mut q = RtnQuantizer::symmetric(4, GroupScheme::Groups(32));
        let (out, bits) = q.transcode(&t);
        assert_eq!(out.shape(), t.shape());
        assert!(bits >= 64 * 4);
        assert_eq!(q.name(), "RTN4-32G");
        assert_eq!(q.nominal_bits_per_value(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_panics() {
        let _ = RtnQuantizer::symmetric(0, GroupScheme::PerTensor);
    }
}
