//! Baseline tensor compressors for the LLM.265 reproduction.
//!
//! The paper compares LLM.265 against the contemporary quantization
//! landscape; this crate reimplements each baseline family from scratch:
//!
//! - [`rtn`] — round-to-nearest quantization (per-tensor, group-wise,
//!   asymmetric dynamic), the universal baseline (§2.1).
//! - [`gptq`] — GPTQ-style post-training quantization: sequential
//!   column rounding with Hessian-based error compensation from a
//!   calibration set.
//! - [`awq`] — AWQ-style activation-aware weight scaling before
//!   group-wise RTN.
//! - [`rotation`] — QuaRot/SpinQuant-style randomized-Hadamard rotation
//!   to spread outliers before quantization (used for KV-cache and
//!   activation baselines in Fig 8).
//! - [`mxfp`] — microscaling floating-point formats (MXFP4/6/8) with
//!   shared power-of-two block scales.
//! - [`nf4`] — NormalFloat-4 codebook quantization.
//! - [`onebit`] — 1-bit Adam / 1-bit LAMB gradient compression with error
//!   feedback and a warm-up phase (§5.2 baselines).
//! - [`chained`] — the Fig 14 baseline grid: {RTN, MXFP} × {Huffman,
//!   Deflate, LZ4, CABAC} chained "tensor codecs".
//!
//! All compressors implement
//! [`LossyCompressor`](llm265_tensor::channel::LossyCompressor) so the
//! distributed-training simulator and the benchmark harness can treat
//! them interchangeably with LLM.265.

#![forbid(unsafe_code)]

pub mod awq;
pub mod chained;
pub mod gptq;
pub mod mxfp;
pub mod nf4;
pub mod onebit;
pub mod rotation;
pub mod rtn;
pub mod smoothquant;

mod linalg;

pub use rtn::{GroupScheme, RtnQuantizer};
