//! Rotation-based quantization (QuaRot / SpinQuant style).
//!
//! These baselines fight activation outliers by applying an orthogonal
//! rotation — a randomized Hadamard transform — before quantization: the
//! rotation smears outlier energy across all channels, flattening the
//! distribution so low-bit RTN grids fit. Decoding quantizes back through
//! the inverse rotation. This is the paper's strongest KV-cache /
//! activation baseline (Fig 8). SpinQuant *learns* its rotations on data;
//! we model it as the Hadamard pipeline with per-group scales, which is
//! the common data-free core of both methods.

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;
use llm265_tensor::Tensor;

use crate::rtn::{GroupScheme, RtnQuantizer};

/// Fast in-place Walsh–Hadamard transform (unnormalized). Length must be a
/// power of two.
fn fwht(xs: &mut [f32]) {
    let n = xs.len();
    debug_assert!(n.is_power_of_two());
    let mut h = 1;
    while h < n {
        let mut i = 0;
        while i < n {
            for j in i..i + h {
                let a = xs[j];
                let b = xs[j + h];
                xs[j] = a + b;
                xs[j + h] = a - b;
            }
            i += 2 * h;
        }
        h *= 2;
    }
}

/// Randomized-Hadamard rotation quantizer.
#[derive(Debug, Clone)]
pub struct RotationQuantizer {
    bits: u32,
    group: usize,
    seed: u64,
    /// Display name ("QuaRot" or "SpinQuant" flavor).
    flavor: &'static str,
}

impl RotationQuantizer {
    /// QuaRot-style: Hadamard rotation + per-group asymmetric RTN.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside 1..=8.
    pub fn quarot(bits: u32, group: usize, seed: u64) -> Self {
        assert!((1..=8).contains(&bits), "bits must be 1..=8");
        RotationQuantizer {
            bits,
            group: group.max(1),
            seed,
            flavor: "QuaRot",
        }
    }

    /// SpinQuant-style (same data-free core, finer default grouping).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside 1..=8.
    pub fn spinquant(bits: u32, group: usize, seed: u64) -> Self {
        assert!((1..=8).contains(&bits), "bits must be 1..=8");
        RotationQuantizer {
            bits,
            group: group.max(1),
            seed,
            flavor: "SpinQuant",
        }
    }

    /// Largest power-of-two block that divides the row length.
    fn block_len(cols: usize) -> usize {
        let mut b = 1;
        while b * 2 <= cols && cols.is_multiple_of(b * 2) {
            b *= 2;
        }
        b
    }

    /// Applies the randomized-Hadamard rotation to each row, blockwise.
    fn rotate_rows(&self, t: &Tensor, inverse: bool) -> Tensor {
        let cols = t.cols();
        let block = Self::block_len(cols);
        // Deterministic sign vector shared by forward and inverse.
        let mut rng = Pcg32::seed_from(self.seed);
        let signs: Vec<f32> = (0..cols)
            .map(|_| if rng.chance(0.5) { 1.0 } else { -1.0 })
            .collect();
        let norm = 1.0 / (block as f32).sqrt();
        let mut out = t.clone();
        for r in 0..t.rows() {
            let row = out.row_mut(r);
            for b0 in (0..cols).step_by(block) {
                let chunk = &mut row[b0..b0 + block];
                if inverse {
                    // Inverse: H/√n then sign flip (H is its own inverse
                    // up to scale; signs commute as a diagonal matrix).
                    fwht(chunk);
                    for (x, s) in chunk.iter_mut().zip(&signs[b0..b0 + block]) {
                        *x *= norm * s;
                    }
                } else {
                    for (x, s) in chunk.iter_mut().zip(&signs[b0..b0 + block]) {
                        *x *= s;
                    }
                    fwht(chunk);
                    for x in chunk.iter_mut() {
                        *x *= norm;
                    }
                }
            }
        }
        out
    }

    /// Quantizes through the rotation and returns the reconstruction in
    /// the original (unrotated) space.
    pub fn apply(&self, t: &Tensor) -> Tensor {
        if t.is_empty() {
            return t.clone();
        }
        let rotated = self.rotate_rows(t, false);
        let q = RtnQuantizer::asymmetric(self.bits, GroupScheme::Groups(self.group));
        let rq = q.apply(&rotated);
        self.rotate_rows(&rq, true)
    }

    /// Wire size in bits (same payload accounting as the inner RTN; the
    /// rotation itself is a shared seed, effectively free).
    pub fn wire_bits(&self, t: &Tensor) -> u64 {
        RtnQuantizer::asymmetric(self.bits, GroupScheme::Groups(self.group)).wire_bits(t) + 64
    }
}

impl LossyCompressor for RotationQuantizer {
    fn name(&self) -> String {
        format!("{}{}", self.flavor, self.bits)
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        (self.apply(t), self.wire_bits(t))
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        Some(self.bits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::stats;
    use llm265_tensor::synthetic::{llm_activation, ActivationProfile};

    #[test]
    fn rotation_is_orthogonal() {
        let mut rng = Pcg32::seed_from(1);
        let t = Tensor::from_fn(4, 64, |_, _| rng.normal() as f32);
        let q = RotationQuantizer::quarot(8, 64, 7);
        let rot = q.rotate_rows(&t, false);
        // Energy preserved.
        assert!((rot.sq_norm() - t.sq_norm()).abs() / t.sq_norm() < 1e-5);
        // Inverse restores the input.
        let back = q.rotate_rows(&rot, true);
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn rotation_flattens_outlier_channels() {
        let mut rng = Pcg32::seed_from(2);
        let p = ActivationProfile {
            outlier_channel_frac: 0.05,
            ..ActivationProfile::default()
        };
        let t = llm_activation(64, 128, &p, &mut rng);
        let q = RotationQuantizer::quarot(4, 128, 3);
        let rot = q.rotate_rows(&t, false);
        assert!(
            stats::peak_to_sigma(rot.data()) < stats::peak_to_sigma(t.data()) * 0.8,
            "rotation should shrink peak/σ: {} -> {}",
            stats::peak_to_sigma(t.data()),
            stats::peak_to_sigma(rot.data())
        );
    }

    #[test]
    fn quarot_beats_plain_rtn_on_outlier_activations() {
        let mut rng = Pcg32::seed_from(3);
        let p = ActivationProfile {
            outlier_channel_frac: 0.04,
            ..ActivationProfile::default()
        };
        let t = llm_activation(128, 128, &p, &mut rng);
        let rot = RotationQuantizer::quarot(4, 128, 5).apply(&t);
        let rtn = RtnQuantizer::asymmetric(4, GroupScheme::Groups(128)).apply(&t);
        let e_rot = stats::mse(t.data(), rot.data());
        let e_rtn = stats::mse(t.data(), rtn.data());
        assert!(e_rot < e_rtn, "rotated {e_rot} vs plain {e_rtn}");
    }

    #[test]
    fn non_power_of_two_widths_are_handled() {
        let mut rng = Pcg32::seed_from(4);
        let t = Tensor::from_fn(8, 96, |_, _| rng.normal() as f32); // 96 = 32·3
        let q = RotationQuantizer::spinquant(6, 32, 1);
        let out = q.apply(&t);
        assert_eq!(out.shape(), t.shape());
        let nmse = stats::mse(t.data(), out.data()) / stats::variance(t.data());
        assert!(nmse < 0.02, "nmse {nmse}");
    }

    #[test]
    fn block_len_is_largest_pow2_divisor() {
        assert_eq!(RotationQuantizer::block_len(128), 128);
        assert_eq!(RotationQuantizer::block_len(96), 32);
        assert_eq!(RotationQuantizer::block_len(7), 1);
    }
}
