//! Minimal dense linear algebra for the GPTQ-style quantizer: symmetric
//! positive-definite Cholesky factorization and inversion.

/// Cholesky factor `L` (lower triangular, row-major n×n) of a symmetric
/// positive-definite matrix `a`. Returns `None` when `a` is not PD.
pub fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Inverse of a symmetric positive-definite matrix via Cholesky.
/// Returns `None` when the matrix is not PD.
pub fn spd_inverse(a: &[f64], n: usize) -> Option<Vec<f64>> {
    let l = cholesky(a, n)?;
    // Invert L (lower triangular) by forward substitution.
    let mut linv = vec![0.0f64; n * n];
    for i in 0..n {
        linv[i * n + i] = 1.0 / l[i * n + i];
        for j in 0..i {
            let mut sum = 0.0;
            for k in j..i {
                sum -= l[i * n + k] * linv[k * n + j];
            }
            linv[i * n + j] = sum / l[i * n + i];
        }
    }
    // A^-1 = L^-T L^-1.
    let mut inv = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = 0.0;
            for k in i..n {
                sum += linv[k * n + i] * linv[k * n + j];
            }
            inv[i * n + j] = sum;
            inv[j * n + i] = sum;
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    c[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        c
    }

    fn spd_example(n: usize) -> Vec<f64> {
        // A = B^T B + n·I with B a fixed pseudo-random matrix.
        let b: Vec<f64> = (0..n * n)
            .map(|i| ((i * 2654435761 % 1000) as f64 / 500.0) - 1.0)
            .collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    a[i * n + j] += b[k * n + i] * b[k * n + j];
                }
            }
            a[i * n + i] += n as f64;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let n = 8;
        let a = spd_example(n);
        let l = cholesky(&a, n).unwrap();
        // L L^T = A.
        let mut lt = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                lt[i * n + j] = l[j * n + i];
            }
        }
        let back = matmul(&l, &lt, n);
        for (x, y) in a.iter().zip(&back) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let n = 10;
        let a = spd_example(n);
        let inv = spd_inverse(&a, n).unwrap();
        let prod = matmul(&a, &inv, n);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[i * n + j] - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn non_pd_matrix_rejected() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky(&a, 2).is_none());
        assert!(spd_inverse(&a, 2).is_none());
    }
}
