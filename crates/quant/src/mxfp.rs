//! Microscaling floating-point formats (MXFP4 / MXFP6 / MXFP8).
//!
//! MXFP (OCP Microscaling, Rouhani et al. 2023) stores blocks of 32
//! values as low-bit floats sharing one power-of-two scale (E8M0). The
//! paper uses MXFP as the numeric-format half of its chained-baseline
//! grid (Fig 14) and cites it as the representative custom-format
//! approach (§7.1).

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

/// The MX block size fixed by the OCP spec.
pub const BLOCK: usize = 32;

/// An MXFP element format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MxFormat {
    /// FP4 E2M1: 4 bits/element.
    Mxfp4,
    /// FP6 E2M3: 6 bits/element.
    Mxfp6,
    /// FP8 E4M3: 8 bits/element.
    Mxfp8,
}

impl MxFormat {
    /// Bits per element (excluding the shared scale).
    pub fn element_bits(self) -> u32 {
        match self {
            MxFormat::Mxfp4 => 4,
            MxFormat::Mxfp6 => 6,
            MxFormat::Mxfp8 => 8,
        }
    }

    /// Exponent / mantissa widths.
    fn e_m(self) -> (i32, i32) {
        match self {
            MxFormat::Mxfp4 => (2, 1),
            MxFormat::Mxfp6 => (2, 3),
            MxFormat::Mxfp8 => (4, 3),
        }
    }

    /// Largest finite magnitude representable at unit scale.
    pub fn max_value(self) -> f64 {
        if self == MxFormat::Mxfp8 {
            // E4M3 reserves the all-ones code for NaN, so the top mantissa
            // at the top exponent is 1.75 · 2^8 = 448 (OCP FP8 spec).
            return 448.0;
        }
        let (e, m) = self.e_m();
        let bias = (1 << (e - 1)) - 1;
        let max_exp = ((1 << e) - 1) - bias; // FP4/FP6 have no Inf/NaN codes
        let max_mant = 2.0 - 2f64.powi(-m);
        max_mant * 2f64.powi(max_exp)
    }

    /// Rounds `x` to the nearest representable value at unit scale.
    pub fn round(self, x: f64) -> f64 {
        // lint:allow(float-cmp): exact zero has no exponent — log2 below
        // would return -inf; every other value rounds through the grid.
        if x == 0.0 || !x.is_finite() {
            return 0.0;
        }
        let (e, m) = self.e_m();
        let bias = (1 << (e - 1)) - 1;
        let max = self.max_value();
        let sign = x.signum();
        let mag = x.abs().min(max);
        // Exponent of the value, clamped to the normal range.
        let exp = mag.log2().floor() as i32;
        let min_norm_exp = 1 - bias;
        if exp < min_norm_exp {
            // Subnormal: fixed quantum 2^(min_norm_exp - m).
            let quantum = 2f64.powi(min_norm_exp - m);
            return sign * (mag / quantum).round() * quantum;
        }
        let exp = exp.min(((1 << e) - 1) - bias);
        let quantum = 2f64.powi(exp - m);
        let r = (mag / quantum).round() * quantum;
        sign * r.min(max)
    }
}

/// MXFP block quantizer: shared E8M0 (power-of-two) scale per 32 values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MxfpQuantizer {
    format: MxFormat,
}

impl MxfpQuantizer {
    /// Creates a quantizer for the given element format.
    pub fn new(format: MxFormat) -> Self {
        MxfpQuantizer { format }
    }

    /// The element format.
    pub fn format(&self) -> MxFormat {
        self.format
    }

    /// Quantizes and dequantizes row-major blocks of 32 values.
    pub fn apply(&self, t: &Tensor) -> Tensor {
        let mut out = t.clone();
        let data = out.data_mut();
        let mut start = 0;
        while start < data.len() {
            let end = (start + BLOCK).min(data.len());
            self.quantize_block(&mut data[start..end]);
            start = end;
        }
        out
    }

    fn quantize_block(&self, xs: &mut [f32]) {
        let max_abs = xs.iter().fold(0.0f64, |m, &v| m.max((v as f64).abs()));
        // lint:allow(float-cmp): all-zero block — the fold starts at
        // exactly 0.0, and log2(0) below would be -inf.
        if max_abs == 0.0 {
            return;
        }
        // E8M0 shared scale: power of two such that max_abs maps near the
        // format's max value.
        let scale_exp = (max_abs / self.format.max_value()).log2().ceil() as i32;
        let scale_exp = scale_exp.clamp(-127, 127);
        let scale = 2f64.powi(scale_exp);
        for v in xs.iter_mut() {
            *v = (self.format.round(*v as f64 / scale) * scale) as f32;
        }
    }

    /// Wire size in bits: elements plus one 8-bit scale per block.
    pub fn wire_bits(&self, t: &Tensor) -> u64 {
        let blocks = (t.len() as u64).div_ceil(BLOCK as u64);
        t.len() as u64 * self.format.element_bits() as u64 + blocks * 8
    }

    /// Nominal bits/value including the amortized scale.
    pub fn bits_per_value(&self) -> f64 {
        self.format.element_bits() as f64 + 8.0 / BLOCK as f64
    }
}

impl LossyCompressor for MxfpQuantizer {
    fn name(&self) -> String {
        match self.format {
            MxFormat::Mxfp4 => "MXFP4".to_string(),
            MxFormat::Mxfp6 => "MXFP6".to_string(),
            MxFormat::Mxfp8 => "MXFP8".to_string(),
        }
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        (self.apply(t), self.wire_bits(t))
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        Some(self.bits_per_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::stats;

    #[test]
    fn fp4_grid_values_are_exact() {
        // E2M1 representable magnitudes: 0, 0.5, 1, 1.5, 2, 3, 4, 6.
        let f = MxFormat::Mxfp4;
        for &v in &[0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0] {
            assert_eq!(f.round(v), v, "value {v}");
            assert_eq!(f.round(-v), -v);
        }
        assert_eq!(f.max_value(), 6.0);
        // Values beyond max saturate.
        assert_eq!(f.round(100.0), 6.0);
        // Rounding to nearest: 2.4 -> 2, 2.6 -> 3.
        assert_eq!(f.round(2.4), 2.0);
        assert_eq!(f.round(2.6), 3.0);
    }

    #[test]
    fn fp8_e4m3_max_is_448() {
        assert_eq!(MxFormat::Mxfp8.max_value(), 448.0);
    }

    #[test]
    fn relative_error_shrinks_with_wider_formats() {
        let mut rng = Pcg32::seed_from(1);
        let t = Tensor::from_fn(32, 32, |_, _| (rng.normal() * 0.1) as f32);
        let errs: Vec<f64> = [MxFormat::Mxfp4, MxFormat::Mxfp6, MxFormat::Mxfp8]
            .iter()
            .map(|&f| stats::tensor_mse(&t, &MxfpQuantizer::new(f).apply(&t)))
            .collect();
        assert!(errs[1] < errs[0]);
        assert!(errs[2] < errs[1]);
    }

    #[test]
    fn per_block_scales_adapt_to_magnitude() {
        // Two blocks with wildly different scales both reconstruct well.
        let mut data = vec![0.0f32; 64];
        for (i, v) in data.iter_mut().enumerate() {
            *v = if i < 32 { 1e-4 } else { 1e4 } * (1.0 + (i % 7) as f32 * 0.1);
        }
        let t = Tensor::from_vec(2, 32, data);
        let q = MxfpQuantizer::new(MxFormat::Mxfp6);
        let out = q.apply(&t);
        for (a, b) in t.data().iter().zip(out.data()) {
            let rel = ((a - b) / a).abs();
            assert!(rel < 0.07, "rel err {rel} at {a}");
        }
    }

    #[test]
    fn zero_blocks_stay_zero() {
        let t = Tensor::zeros(4, 32);
        let q = MxfpQuantizer::new(MxFormat::Mxfp4);
        assert_eq!(q.apply(&t), t);
    }

    #[test]
    fn wire_bits_accounting() {
        let t = Tensor::zeros(2, 48); // 96 values = 3 blocks
        let q = MxfpQuantizer::new(MxFormat::Mxfp4);
        assert_eq!(q.wire_bits(&t), 96 * 4 + 3 * 8);
        assert!((q.bits_per_value() - 4.25).abs() < 1e-12);
    }

    #[test]
    fn subnormals_are_representable() {
        // E2M1's single subnormal is 0.5 (quantum 2^(min_norm_exp − m)
        // = 2^(0−1) = 0.5); values below half of it flush to zero.
        let f = MxFormat::Mxfp4;
        assert_eq!(f.round(0.5), 0.5);
        assert_eq!(f.round(0.2), 0.0);
        assert_eq!(f.round(0.3), 0.5);
    }
}
