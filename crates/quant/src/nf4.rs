//! NormalFloat-4 (NF4) codebook quantization.
//!
//! QLoRA's NF4 (Dettmers et al. 2023) quantizes absmax-normalized blocks
//! against a 16-level codebook placed at the quantiles of a standard
//! normal — information-optimal for exactly the bell-shaped tensors the
//! paper studies. Cited in §2.1 as the representative non-uniform
//! quantization format.

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

/// NF4 block size (QLoRA default).
pub const BLOCK: usize = 64;

/// The 16 NF4 codebook levels in `[-1, 1]` (normal quantiles, from the
/// QLoRA reference implementation).
#[allow(clippy::excessive_precision)] // published reference values, kept exact
pub const CODEBOOK: [f32; 16] = [
    -1.0,
    -0.6961928009986877,
    -0.5250730514526367,
    -0.39491748809814453,
    -0.28444138169288635,
    -0.18477343022823334,
    -0.09105003625154495,
    0.0,
    0.07958029955625534,
    0.16093020141124725,
    0.24611230194568634,
    0.33791524171829224,
    0.44070982933044434,
    0.5626170039176941,
    0.7229568362236023,
    1.0,
];

/// NF4 quantizer: absmax block normalization + codebook rounding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Nf4Quantizer;

impl Nf4Quantizer {
    /// Creates the quantizer.
    pub fn new() -> Self {
        Nf4Quantizer
    }

    /// Quantizes and dequantizes `t` blockwise.
    pub fn apply(&self, t: &Tensor) -> Tensor {
        let mut out = t.clone();
        let data = out.data_mut();
        let mut start = 0;
        while start < data.len() {
            let end = (start + BLOCK).min(data.len());
            let chunk = &mut data[start..end];
            let absmax = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if absmax > 0.0 {
                for v in chunk.iter_mut() {
                    let norm = *v / absmax;
                    let idx = nearest_level(norm);
                    *v = CODEBOOK[idx] * absmax;
                }
            }
            start = end;
        }
        out
    }

    /// Wire size: 4 bits/value + one f32 absmax per block.
    pub fn wire_bits(&self, t: &Tensor) -> u64 {
        let blocks = (t.len() as u64).div_ceil(BLOCK as u64);
        t.len() as u64 * 4 + blocks * 32
    }
}

fn nearest_level(x: f32) -> usize {
    // Codebook is sorted: binary search then compare neighbours.
    let mut lo = 0usize;
    let mut hi = CODEBOOK.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if CODEBOOK[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    if (x - CODEBOOK[lo]).abs() <= (CODEBOOK[hi] - x).abs() {
        lo
    } else {
        hi
    }
}

impl LossyCompressor for Nf4Quantizer {
    fn name(&self) -> String {
        "NF4".to_string()
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        (self.apply(t), self.wire_bits(t))
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        Some(4.0 + 32.0 / BLOCK as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::{GroupScheme, RtnQuantizer};
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::stats;

    #[test]
    fn codebook_is_sorted_and_symmetric_endpoints() {
        for w in CODEBOOK.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(CODEBOOK[0], -1.0);
        assert_eq!(CODEBOOK[15], 1.0);
        assert_eq!(CODEBOOK[7], 0.0);
    }

    #[test]
    fn nearest_level_picks_closest() {
        assert_eq!(nearest_level(-1.0), 0);
        assert_eq!(nearest_level(1.0), 15);
        assert_eq!(nearest_level(0.0), 7);
        assert_eq!(nearest_level(0.9), 15);
        assert_eq!(nearest_level(0.03), 7);
        assert_eq!(nearest_level(0.05), 8);
    }

    #[test]
    fn outputs_lie_on_scaled_codebook() {
        let mut rng = Pcg32::seed_from(1);
        let t = Tensor::from_fn(2, BLOCK, |_, _| rng.normal() as f32);
        let out = Nf4Quantizer::new().apply(&t);
        for r in 0..2 {
            let absmax = t.row(r).iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            for v in out.row(r) {
                let norm = v / absmax;
                let on_grid = CODEBOOK.iter().any(|&c| (c - norm).abs() < 1e-6);
                assert!(on_grid, "{norm} not on codebook");
            }
        }
    }

    #[test]
    fn nf4_beats_uniform_int4_on_gaussian_data() {
        // The whole point of NF4: normal-quantile levels beat a uniform
        // grid on normal data.
        let mut rng = Pcg32::seed_from(2);
        let t = Tensor::from_fn(64, 64, |_, _| rng.normal() as f32);
        let nf4 = Nf4Quantizer::new().apply(&t);
        let int4 = RtnQuantizer::symmetric(4, GroupScheme::Groups(BLOCK)).apply(&t);
        let e_nf4 = stats::mse(t.data(), nf4.data());
        let e_int4 = stats::mse(t.data(), int4.data());
        assert!(e_nf4 < e_int4, "nf4 {e_nf4} vs int4 {e_int4}");
    }

    #[test]
    fn wire_bits_accounting() {
        let t = Tensor::zeros(2, 96); // 192 values = 3 blocks
        assert_eq!(Nf4Quantizer::new().wire_bits(&t), 192 * 4 + 3 * 32);
    }

    #[test]
    fn zero_tensor_is_fixed_point() {
        let t = Tensor::zeros(4, 16);
        assert_eq!(Nf4Quantizer::new().apply(&t), t);
    }
}
