//! Chained tensor codecs: the Fig 14 baseline grid.
//!
//! §7.1 of the paper builds eight alternative "tensor codecs" by chaining
//! a numeric-format stage (integer RTN or MXFP) into a general-purpose
//! lossless compressor (Huffman, Deflate, LZ4, or CABAC) — the pipeline
//! used by hardware-compression proposals like Atalanta. This module
//! implements the chain: quantize, serialize the quantized symbols as
//! bytes, compress losslessly, and account the *measured* compressed bits
//! (which is what makes the comparison against LLM.265's measured bits
//! fair).

use llm265_bitstream::{deflate::Deflate, huffman::Huffman, lz4::Lz4, ByteCodec, CabacBytes};
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

use crate::mxfp::{MxFormat, MxfpQuantizer};
use crate::rtn::{GroupScheme, RtnQuantizer};

/// The numeric-format stage of a chained codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericStage {
    /// Symmetric group-wise RTN at this bit width.
    Rtn(u32),
    /// An MXFP block float format.
    Mxfp(MxFormat),
}

impl NumericStage {
    fn name(&self) -> String {
        match self {
            NumericStage::Rtn(b) => format!("INT{b}"),
            NumericStage::Mxfp(f) => MxfpQuantizer::new(*f).name(),
        }
    }

    /// Applies the stage, returning the reconstruction plus the quantized
    /// symbol stream (one byte per value) handed to the lossless stage.
    fn quantize(&self, t: &Tensor) -> (Tensor, Vec<u8>) {
        match self {
            NumericStage::Rtn(bits) => {
                let q = RtnQuantizer::symmetric(*bits, GroupScheme::Groups(128));
                let recon = q.apply(t);
                // Symbols: per-group level indices (reconstruct the level
                // from the reconstruction by re-deriving the group delta).
                let symbols = symbols_from_groups(t, &recon, *bits, 128);
                (recon, symbols)
            }
            NumericStage::Mxfp(format) => {
                let q = MxfpQuantizer::new(*format);
                let recon = q.apply(t);
                // Symbols: byte image of the element encoding. We use the
                // rank of each value within its block's representable set,
                // approximated by scaled-and-offset rounding — adequate
                // for entropy measurement since it is a bijection of the
                // element encoding.
                let symbols = mxfp_symbols(&recon, *format);
                (recon, symbols)
            }
        }
    }
}

/// Derives per-value level indices (biased to unsigned bytes) from a
/// symmetric group-wise RTN reconstruction.
fn symbols_from_groups(orig: &Tensor, recon: &Tensor, bits: u32, group: usize) -> Vec<u8> {
    let half: f32 = (1i32 << (bits - 1)) as f32;
    let mut out = Vec::with_capacity(orig.len());
    let data_o = orig.data();
    let data_r = recon.data();
    let mut start = 0;
    while start < data_o.len() {
        let end = (start + group).min(data_o.len());
        let max_abs = data_o[start..end]
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        let delta = if max_abs > 0.0 { max_abs / half } else { 0.0 };
        for &r in &data_r[start..end] {
            // lint:allow(float-cmp): `delta` is assigned exactly 0.0 for
            // all-zero groups one line up; this guards the division.
            let level = if delta == 0.0 {
                0
            } else {
                (r / delta).round() as i32
            };
            out.push((level + half as i32).clamp(0, 255) as u8);
        }
        start = end;
    }
    out
}

/// Bijective byte image of MXFP-reconstructed values within each block.
fn mxfp_symbols(recon: &Tensor, format: MxFormat) -> Vec<u8> {
    let block = crate::mxfp::BLOCK;
    let data = recon.data();
    let mut out = Vec::with_capacity(data.len());
    let mut start = 0;
    while start < data.len() {
        let end = (start + block).min(data.len());
        let max_abs = data[start..end]
            .iter()
            .fold(0.0f64, |m, &v| m.max((v as f64).abs()));
        let scale = if max_abs > 0.0 {
            (max_abs / format.max_value()).log2().ceil().exp2()
        } else {
            1.0
        };
        for &v in &data[start..end] {
            // Map the unit-scale value onto a small signed integer grid;
            // distinct representable values map to distinct symbols.
            let unit = v as f64 / scale;
            let sym = (unit / format.max_value() * 120.0).round() as i32 + 128;
            out.push(sym.clamp(0, 255) as u8);
        }
        start = end;
    }
    out
}

/// The lossless stage of a chained codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LosslessStage {
    Huffman,
    Deflate,
    Lz4,
    Cabac,
}

impl LosslessStage {
    /// All four stages, in the paper's order.
    pub fn all() -> [LosslessStage; 4] {
        [
            LosslessStage::Huffman,
            LosslessStage::Deflate,
            LosslessStage::Lz4,
            LosslessStage::Cabac,
        ]
    }

    fn codec(&self) -> Box<dyn ByteCodec> {
        match self {
            LosslessStage::Huffman => Box::new(Huffman),
            LosslessStage::Deflate => Box::new(Deflate),
            LosslessStage::Lz4 => Box::new(Lz4),
            LosslessStage::Cabac => Box::new(CabacBytes),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            LosslessStage::Huffman => "Huffman",
            LosslessStage::Deflate => "Deflate",
            LosslessStage::Lz4 => "LZ4",
            LosslessStage::Cabac => "CABAC",
        }
    }
}

/// A chained codec: numeric stage → lossless stage.
#[derive(Debug, Clone)]
pub struct ChainedCodec {
    numeric: NumericStage,
    lossless: LosslessStage,
}

impl ChainedCodec {
    /// Chains a numeric stage into a lossless stage.
    pub fn new(numeric: NumericStage, lossless: LosslessStage) -> Self {
        ChainedCodec { numeric, lossless }
    }

    /// The full 2×4 grid of Fig 14 at a given RTN bit width and MXFP
    /// format.
    pub fn grid(rtn_bits: u32, mxfp: MxFormat) -> Vec<ChainedCodec> {
        let mut out = Vec::with_capacity(8);
        for numeric in [NumericStage::Rtn(rtn_bits), NumericStage::Mxfp(mxfp)] {
            for lossless in LosslessStage::all() {
                out.push(ChainedCodec::new(numeric, lossless));
            }
        }
        out
    }
}

impl LossyCompressor for ChainedCodec {
    fn name(&self) -> String {
        format!("{}+{}", self.numeric.name(), self.lossless.name())
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let (recon, symbols) = self.numeric.quantize(t);
        let packed = self.lossless.codec().compress(&symbols);
        // Group/block scale metadata rides along uncompressed.
        let scale_bits = match self.numeric {
            NumericStage::Rtn(_) => (t.len() as u64).div_ceil(128) * 32,
            NumericStage::Mxfp(_) => (t.len() as u64).div_ceil(crate::mxfp::BLOCK as u64) * 8,
        };
        (recon, packed.len() as u64 * 8 + scale_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::stats;
    use llm265_tensor::synthetic::{llm_gradient, GradientProfile};

    fn gradient(seed: u64) -> Tensor {
        let mut rng = Pcg32::seed_from(seed);
        llm_gradient(64, 64, &GradientProfile::default(), &mut rng)
    }

    #[test]
    fn grid_has_eight_members_with_unique_names() {
        let grid = ChainedCodec::grid(4, MxFormat::Mxfp4);
        assert_eq!(grid.len(), 8);
        let mut names: Vec<String> = grid.iter().map(LossyCompressor::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn entropy_stage_beats_raw_bit_width_on_gaussian_levels() {
        // Quantized bell-shaped data has well under 8 bits of entropy at
        // 8-bit width; every entropy-coding stage must come in under the
        // numeric width (LZ4 has no entropy stage and is skipped).
        let g = gradient(1);
        for lossless in LosslessStage::all() {
            if lossless == LosslessStage::Lz4 {
                continue;
            }
            let mut c = ChainedCodec::new(NumericStage::Rtn(8), lossless);
            let (_, bits) = c.transcode(&g);
            let bpv = bits as f64 / g.len() as f64;
            assert!(bpv < 7.5, "{}: {bpv}", c.name());
        }
    }

    #[test]
    fn reconstruction_matches_pure_numeric_stage() {
        let g = gradient(2);
        let mut chained = ChainedCodec::new(NumericStage::Rtn(4), LosslessStage::Huffman);
        let (recon, _) = chained.transcode(&g);
        let pure = RtnQuantizer::symmetric(4, GroupScheme::Groups(128)).apply(&g);
        assert_eq!(recon, pure, "lossless stage must not change values");
    }

    #[test]
    fn mxfp_chain_works() {
        let g = gradient(3);
        let mut c = ChainedCodec::new(NumericStage::Mxfp(MxFormat::Mxfp6), LosslessStage::Cabac);
        let (recon, bits) = c.transcode(&g);
        let nmse = stats::mse(g.data(), recon.data()) / stats::variance(g.data());
        assert!(nmse < 0.02, "nmse {nmse}");
        let bpv = bits as f64 / g.len() as f64;
        assert!(bpv < 7.0, "bpv {bpv}");
    }

    #[test]
    fn coarser_numeric_stage_gives_fewer_bits_more_error() {
        let g = gradient(4);
        let measure = |bits: u32| {
            let mut c = ChainedCodec::new(NumericStage::Rtn(bits), LosslessStage::Cabac);
            let (recon, wire) = c.transcode(&g);
            (
                wire as f64 / g.len() as f64,
                stats::mse(g.data(), recon.data()),
            )
        };
        let (b3, e3) = measure(3);
        let (b6, e6) = measure(6);
        assert!(b3 < b6);
        assert!(e3 > e6);
    }
}
