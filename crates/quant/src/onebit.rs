//! 1-bit Adam and 1-bit LAMB gradient compression.
//!
//! The paper's data-parallel baselines (§5.2): after a warm-up phase in
//! which gradients are transmitted uncompressed (the model "hasn't
//! converged to a point where the weights can be easily compressed yet"),
//! these methods send only the **sign** of the error-compensated gradient
//! plus a per-column magnitude, keeping a local error-feedback buffer of
//! what the 1-bit channel could not carry. The warm-up is what drives
//! their realized average to ~3.25 bits (15% of steps at 16 bits), and
//! their variance-freeze assumption is what makes them unstable compared
//! to the training-agnostic LLM.265 channel.

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

/// Which optimizer family the compressor mimics (they differ only in the
/// scale statistic here, mirroring the LAMB trust-ratio normalization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneBitFlavor {
    /// 1-bit Adam: per-column mean |v| scale.
    Adam,
    /// 1-bit LAMB: per-column RMS scale (LAMB normalizes by layer norms).
    Lamb,
}

/// Error-feedback 1-bit gradient compressor with a warm-up phase.
#[derive(Debug, Clone)]
pub struct OneBitCompressor {
    flavor: OneBitFlavor,
    /// Number of uncompressed warm-up steps.
    warmup_steps: usize,
    step: usize,
    error: Option<Tensor>,
}

impl OneBitCompressor {
    /// Creates a compressor with `warmup_steps` uncompressed steps (the
    /// paper uses 15% of total iterations).
    pub fn new(flavor: OneBitFlavor, warmup_steps: usize) -> Self {
        OneBitCompressor {
            flavor,
            warmup_steps,
            step: 0,
            error: None,
        }
    }

    /// Steps taken so far.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Whether the compressor is still in its warm-up phase.
    pub fn in_warmup(&self) -> bool {
        self.step < self.warmup_steps
    }

    /// Realized average bits/value over `total_steps` with this warm-up.
    pub fn average_bits(&self, total_steps: usize) -> f64 {
        let warm = self.warmup_steps.min(total_steps) as f64;
        let cold = total_steps.saturating_sub(self.warmup_steps) as f64;
        (16.0 * warm + 1.0 * cold) / (warm + cold).max(1.0)
    }

    fn compress_cold(&mut self, g: &Tensor) -> Tensor {
        // Error feedback: compensate with what previous steps dropped.
        let mut v = g.clone();
        if let Some(e) = &self.error {
            if e.shape() == g.shape() {
                v.add_assign(e);
            }
        }
        // Per-column scale.
        let cols = v.cols();
        let rows = v.rows();
        let mut scale = vec![0.0f64; cols];
        for r in 0..rows {
            for (c, &x) in v.row(r).iter().enumerate() {
                scale[c] += match self.flavor {
                    OneBitFlavor::Adam => (x as f64).abs(),
                    OneBitFlavor::Lamb => (x as f64) * (x as f64),
                };
            }
        }
        for s in scale.iter_mut() {
            *s = match self.flavor {
                OneBitFlavor::Adam => *s / rows as f64,
                OneBitFlavor::Lamb => (*s / rows as f64).sqrt(),
            };
        }
        let out = Tensor::from_fn(rows, cols, |r, c| {
            let x = v[(r, c)];
            (scale[c] as f32) * x.signum()
        });
        // Update the error memory with what the channel dropped.
        let mut err = v;
        err.sub_assign(&out);
        self.error = Some(err);
        out
    }
}

impl LossyCompressor for OneBitCompressor {
    fn name(&self) -> String {
        match self.flavor {
            OneBitFlavor::Adam => "1-bit Adam".to_string(),
            OneBitFlavor::Lamb => "1-bit LAMB".to_string(),
        }
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let result = if self.in_warmup() {
            // Uncompressed FP16 during warm-up.
            (t.map(llm265_tensor::half::round_f16), t.len() as u64 * 16)
        } else {
            let out = self.compress_cold(t);
            // 1 bit/value + one f32 scale per column.
            (out, t.len() as u64 + t.cols() as u64 * 32)
        };
        self.step += 1;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;
    use llm265_tensor::synthetic::{llm_gradient, GradientProfile};

    fn grad(seed: u64) -> Tensor {
        let mut rng = Pcg32::seed_from(seed);
        llm_gradient(32, 32, &GradientProfile::default(), &mut rng)
    }

    #[test]
    fn warmup_is_uncompressed() {
        let mut c = OneBitCompressor::new(OneBitFlavor::Adam, 2);
        let g = grad(1);
        let (out, bits) = c.transcode(&g);
        assert_eq!(bits, g.len() as u64 * 16);
        // FP16 roundtrip: nearly identical.
        for (a, b) in g.data().iter().zip(out.data()) {
            assert!((a - b).abs() <= a.abs() / 1000.0 + 1e-7);
        }
        assert!(c.in_warmup());
    }

    #[test]
    fn cold_phase_is_one_bit_signs() {
        let mut c = OneBitCompressor::new(OneBitFlavor::Adam, 0);
        let g = grad(2);
        let (out, bits) = c.transcode(&g);
        assert_eq!(bits, g.len() as u64 + g.cols() as u64 * 32);
        // Each column has at most two distinct magnitudes (±scale).
        for col in 0..out.cols() {
            let mags: Vec<f32> = (0..out.rows()).map(|r| out[(r, col)].abs()).collect();
            let first = mags[0];
            assert!(mags.iter().all(|&m| (m - first).abs() < 1e-6));
        }
    }

    #[test]
    fn error_feedback_reduces_long_run_bias() {
        // Accumulated sum of compressed gradients should track the true
        // sum thanks to error feedback (the EF-SGD property).
        let mut c = OneBitCompressor::new(OneBitFlavor::Adam, 0);
        let mut rng = Pcg32::seed_from(3);
        let mut true_sum = Tensor::zeros(16, 16);
        let mut comp_sum = Tensor::zeros(16, 16);
        for _ in 0..200 {
            let g = Tensor::from_fn(16, 16, |r, c2| {
                (0.01 * (r as f64 - 7.5) + 0.002 * c2 as f64 + 0.05 * rng.normal()) as f32
            });
            true_sum.add_assign(&g);
            let (out, _) = c.transcode(&g);
            comp_sum.add_assign(&out);
        }
        // Relative deviation of the accumulated signal stays bounded.
        let num: f64 = true_sum
            .data()
            .iter()
            .zip(comp_sum.data())
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum();
        let den = true_sum.sq_norm().max(1e-12);
        assert!(num / den < 0.2, "relative drift {}", num / den);
    }

    #[test]
    fn average_bits_matches_paper() {
        // 15% warm-up of 16-bit + 85% of 1-bit ≈ 3.25 bits.
        let c = OneBitCompressor::new(OneBitFlavor::Lamb, 150);
        let avg = c.average_bits(1000);
        assert!((avg - 3.25).abs() < 0.01, "avg {avg}");
    }

    #[test]
    fn lamb_and_adam_scales_differ() {
        let g = grad(4);
        let mut adam = OneBitCompressor::new(OneBitFlavor::Adam, 0);
        let mut lamb = OneBitCompressor::new(OneBitFlavor::Lamb, 0);
        let (a, _) = adam.transcode(&g);
        let (l, _) = lamb.transcode(&g);
        // RMS >= mean|x| always, with equality only for constant |x|.
        assert!(
            l.data().iter().map(|x| x.abs()).sum::<f32>()
                > a.data().iter().map(|x| x.abs()).sum::<f32>()
        );
    }
}
