//! SmoothQuant-style dual-side quantization.
//!
//! SmoothQuant (Xiao et al., cited in §2.1) migrates quantization
//! difficulty from activations to weights: per input channel `c`, the
//! activation is divided by `s_c = max|x_c|^α / max|w_c|^(1−α)` and the
//! weight column multiplied by it, so both sides become quantization-
//! friendly. We implement the joint transform plus per-side RTN so the
//! baseline grid can include a W8A8-style dual-side point.

use llm265_tensor::rng::Pcg32;
use llm265_tensor::Tensor;

use crate::rtn::{GroupScheme, RtnQuantizer};

/// SmoothQuant-style dual-side quantizer bound to calibration
/// activations.
#[derive(Debug, Clone)]
pub struct SmoothQuant {
    w_bits: u32,
    a_bits: u32,
    alpha: f64,
    calib: Tensor,
}

impl SmoothQuant {
    /// Creates a dual-side quantizer (`w_bits` for weights, `a_bits` for
    /// activations) with migration strength `alpha` (0.5 is the paper's
    /// default).
    ///
    /// # Panics
    ///
    /// Panics if a bit width is outside 1..=8, `alpha` is outside
    /// `[0, 1]`, or `calib` is empty.
    pub fn new(w_bits: u32, a_bits: u32, alpha: f64, calib: Tensor) -> Self {
        assert!((1..=8).contains(&w_bits), "w_bits must be 1..=8");
        assert!((1..=8).contains(&a_bits), "a_bits must be 1..=8");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!(!calib.is_empty(), "calibration set must be non-empty");
        SmoothQuant {
            w_bits,
            a_bits,
            alpha,
            calib,
        }
    }

    /// Creates a quantizer with synthetic outlier-channel calibration
    /// activations (the distribution SmoothQuant exists to fix).
    #[must_use]
    pub fn with_synthetic_calibration(
        w_bits: u32,
        a_bits: u32,
        alpha: f64,
        in_features: usize,
        samples: usize,
        seed: u64,
    ) -> Self {
        let mut rng = Pcg32::seed_from(seed);
        let chan: Vec<f64> = (0..in_features)
            .map(|_| if rng.chance(0.04) { 15.0 } else { 1.0 })
            .collect();
        let calib = Tensor::from_fn(samples, in_features, |_, c| (chan[c] * rng.normal()) as f32);
        SmoothQuant::new(w_bits, a_bits, alpha, calib)
    }

    /// Per-channel migration scales `s_c`.
    ///
    /// # Panics
    ///
    /// Panics if the weight's column count differs from the calibration
    /// feature count.
    pub fn scales(&self, w: &Tensor) -> Vec<f32> {
        assert_eq!(w.cols(), self.calib.cols(), "in_features mismatch");
        let n = w.cols();
        let mut a_max = vec![1e-8f64; n];
        for s in 0..self.calib.rows() {
            for (c, &v) in self.calib.row(s).iter().enumerate() {
                a_max[c] = a_max[c].max((v as f64).abs());
            }
        }
        let mut w_max = vec![1e-8f64; n];
        for r in 0..w.rows() {
            for (c, &v) in w.row(r).iter().enumerate() {
                w_max[c] = w_max[c].max((v as f64).abs());
            }
        }
        (0..n)
            .map(|c| (a_max[c].powf(self.alpha) / w_max[c].powf(1.0 - self.alpha)).max(1e-6) as f32)
            .collect()
    }

    /// Quantizes a (weight, activation) pair jointly: returns the
    /// reconstructed weight and activation after migration + RTN on each
    /// side.
    ///
    /// # Panics
    ///
    /// Panics if `w.cols() != x.cols()` or shapes disagree with the
    /// calibration features.
    pub fn apply(&self, w: &Tensor, x: &Tensor) -> (Tensor, Tensor) {
        assert_eq!(w.cols(), x.cols(), "weight/activation feature mismatch");
        let s = self.scales(w);
        // Migrate: W' = W·diag(s), X' = X·diag(1/s).
        let w_m = Tensor::from_fn(w.rows(), w.cols(), |r, c| w[(r, c)] * s[c]);
        let x_m = Tensor::from_fn(x.rows(), x.cols(), |r, c| x[(r, c)] / s[c]);
        let wq = RtnQuantizer::symmetric(self.w_bits, GroupScheme::PerRow).apply(&w_m);
        let xq = RtnQuantizer::asymmetric(self.a_bits, GroupScheme::PerRow).apply(&x_m);
        // Migrate back so callers compare in the original space.
        let w_out = Tensor::from_fn(w.rows(), w.cols(), |r, c| wq[(r, c)] / s[c]);
        let x_out = Tensor::from_fn(x.rows(), x.cols(), |r, c| xq[(r, c)] * s[c]);
        (w_out, x_out)
    }

    /// Layer-output error `‖XWᵀ − X̂Ŵᵀ‖²/n` on a probe batch — the metric
    /// dual-side quantization optimizes.
    pub fn output_error(&self, w: &Tensor, x: &Tensor) -> f64 {
        let (wq, xq) = self.apply(w, x);
        let y = x.matmul(&w.transposed());
        let yq = xq.matmul(&wq.transposed());
        llm265_tensor::stats::mse(y.data(), yq.data())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::stats;
    use llm265_tensor::synthetic::{llm_weight, WeightProfile};

    fn setup(seed: u64, n: usize) -> (Tensor, Tensor, SmoothQuant) {
        let mut rng = Pcg32::seed_from(seed);
        let w = llm_weight(n, n, &WeightProfile::default(), &mut rng);
        let sq = SmoothQuant::with_synthetic_calibration(8, 8, 0.5, n, 128, seed ^ 7);
        // Probe activations drawn like the calibration set.
        let x = SmoothQuant::with_synthetic_calibration(8, 8, 0.5, n, 64, seed ^ 7).calib;
        (w, x, sq)
    }

    #[test]
    fn migration_flattens_activation_channels() {
        let (w, x, sq) = setup(1, 64);
        let s = sq.scales(&w);
        let x_m = Tensor::from_fn(x.rows(), x.cols(), |r, c| x[(r, c)] / s[c]);
        assert!(
            stats::peak_to_sigma(x_m.data()) < stats::peak_to_sigma(x.data()),
            "migration should reduce activation peak/σ: {} -> {}",
            stats::peak_to_sigma(x.data()),
            stats::peak_to_sigma(x_m.data())
        );
    }

    #[test]
    fn smoothquant_beats_naive_dual_rtn_at_low_activation_bits() {
        let (w, x, _) = setup(2, 64);
        let smooth = SmoothQuant::with_synthetic_calibration(8, 4, 0.5, 64, 128, 2 ^ 7);
        let e_smooth = smooth.output_error(&w, &x);

        // Naive dual-side: quantize both sides with no migration.
        let wq = RtnQuantizer::symmetric(8, GroupScheme::PerRow).apply(&w);
        let xq = RtnQuantizer::asymmetric(4, GroupScheme::PerRow).apply(&x);
        let y = x.matmul(&w.transposed());
        let yq = xq.matmul(&wq.transposed());
        let e_naive = stats::mse(y.data(), yq.data());
        assert!(
            e_smooth < e_naive,
            "smoothquant {e_smooth} vs naive {e_naive}"
        );
    }

    #[test]
    fn alpha_zero_moves_all_difficulty_to_weights() {
        let (w, _x, _) = setup(3, 32);
        let sq0 = SmoothQuant::with_synthetic_calibration(8, 8, 0.0, 32, 64, 9);
        let s = sq0.scales(&w);
        // alpha = 0: s_c = 1 / max|w_c|^1 → migrated weight max per
        // channel equals 1 exactly.
        let w_m = Tensor::from_fn(w.rows(), w.cols(), |r, c| w[(r, c)] * s[c]);
        for c in 0..32 {
            let col_max = (0..32).map(|r| w_m[(r, c)].abs()).fold(0.0f32, f32::max);
            assert!((col_max - 1.0).abs() < 1e-3, "col {c}: {col_max}");
        }
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let (w, x, sq) = setup(4, 48);
        let (wq, xq) = sq.apply(&w, &x);
        let w_nmse = stats::mse(w.data(), wq.data()) / stats::variance(w.data());
        let x_nmse = stats::mse(x.data(), xq.data()) / stats::variance(x.data());
        assert!(w_nmse < 0.01, "weight nmse {w_nmse}");
        assert!(x_nmse < 0.01, "activation nmse {x_nmse}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = SmoothQuant::with_synthetic_calibration(8, 8, 1.5, 16, 8, 1);
    }
}
