//! GPTQ-style post-training quantization.
//!
//! GPTQ rounds weight columns one at a time, each time redistributing the
//! rounding error onto the not-yet-quantized columns through the inverse
//! Hessian of the layer's reconstruction loss, `H = X^T X` over a
//! calibration set (§2.1 of the paper; Frantar et al. 2023). This is the
//! paper's main *calibration-dependent* baseline: its quality hinges on
//! the calibration data matching deployment data — exactly the dependence
//! LLM.265 avoids.

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;
use llm265_tensor::Tensor;

use crate::linalg::spd_inverse;
use crate::rtn::{GroupScheme, RtnQuantizer};

/// GPTQ-style quantizer bound to a calibration activation matrix.
#[derive(Debug, Clone)]
pub struct GptqQuantizer {
    bits: u32,
    group: usize,
    damp: f64,
    calib: Tensor,
}

impl GptqQuantizer {
    /// Creates a quantizer from explicit calibration activations
    /// (`samples × in_features`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside 1..=8 or `calib` is empty.
    pub fn new(bits: u32, group: usize, calib: Tensor) -> Self {
        assert!((1..=8).contains(&bits), "bits must be 1..=8");
        assert!(!calib.is_empty(), "calibration set must be non-empty");
        GptqQuantizer {
            bits,
            group: group.max(1),
            damp: 0.01,
            calib,
        }
    }

    /// Creates a quantizer with a synthetic calibration set of `samples`
    /// rows — the stand-in for WikiText-2 calibration batches. Features
    /// are AR(1)-correlated with per-channel scales: GPTQ's Hessian
    /// compensation only has leverage when `H = XᵀX` is non-diagonal,
    /// which real LLM activations (and these) are.
    #[must_use]
    pub fn with_synthetic_calibration(
        bits: u32,
        group: usize,
        in_features: usize,
        samples: usize,
        seed: u64,
    ) -> Self {
        let mut rng = Pcg32::seed_from(seed);
        let chan_scale: Vec<f64> = (0..in_features)
            .map(|_| (0.4 * rng.normal()).exp())
            .collect();
        let mut calib = Tensor::zeros(samples, in_features);
        for s in 0..samples {
            let mut prev = rng.normal();
            for c in 0..in_features {
                prev = 0.7 * prev + 0.5 * rng.normal();
                calib[(s, c)] = (chan_scale[c] * prev) as f32;
            }
        }
        Self::new(bits, group, calib)
    }

    /// Quantizes a weight matrix (`out_features × in_features`) and
    /// returns the reconstruction.
    ///
    /// # Panics
    ///
    /// Panics if the weight's column count differs from the calibration
    /// set's feature count.
    pub fn apply(&self, w: &Tensor) -> Tensor {
        let n = w.cols();
        assert_eq!(
            n,
            self.calib.cols(),
            "weight in_features must match calibration features"
        );
        // H = X^T X / samples + damp·mean(diag)·I.
        let mut h = vec![0.0f64; n * n];
        for s in 0..self.calib.rows() {
            let row = self.calib.row(s);
            for i in 0..n {
                let xi = row[i] as f64;
                // lint:allow(float-cmp): exact-zero skip is a pure perf
                // shortcut — a true 0.0 adds nothing to the Gram matrix.
                if xi == 0.0 {
                    continue;
                }
                for j in i..n {
                    h[i * n + j] += xi * row[j] as f64;
                }
            }
        }
        let samples = self.calib.rows() as f64;
        for i in 0..n {
            for j in 0..i {
                h[i * n + j] = h[j * n + i];
            }
        }
        let mean_diag = (0..n).map(|i| h[i * n + i]).sum::<f64>() / n as f64 / samples;
        for v in h.iter_mut() {
            *v /= samples;
        }
        for i in 0..n {
            h[i * n + i] += self.damp * mean_diag.max(1e-12);
        }
        // GPTQ propagates rounding error through the *upper Cholesky
        // factor* U of H^-1 (A = L·Lᵀ, U = Lᵀ): err = (w_j − q)/U[j][j],
        // then w_k −= err·U[j][k] for k > j. U[j][k] = L[k][j].
        let l_factor = match spd_inverse(&h, n).and_then(|a| crate::linalg::cholesky(&a, n)) {
            Some(l) => l,
            // Degenerate calibration: fall back to plain group-wise RTN.
            None => {
                return RtnQuantizer::symmetric(self.bits, GroupScheme::Groups(self.group)).apply(w)
            }
        };

        // Per-group symmetric grids, computed up front per row.
        let half = (1u32 << (self.bits - 1)) as f32;
        let mut out = Tensor::zeros(w.rows(), w.cols());
        let mut work: Vec<f64> = Vec::with_capacity(n);
        for r in 0..w.rows() {
            work.clear();
            work.extend(w.row(r).iter().map(|&v| v as f64));
            // Column-sequential rounding with error propagation.
            for j in 0..n {
                // Grid scale from the current group's *original* weights.
                let g0 = (j / self.group) * self.group;
                let g1 = (g0 + self.group).min(n);
                let max_abs = w.row(r)[g0..g1].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                let delta = if max_abs > 0.0 { max_abs / half } else { 0.0 };
                // lint:allow(float-cmp): `delta` is assigned exactly 0.0
                // for all-zero groups one line up; this guards the division.
                let q = if delta == 0.0 {
                    0.0
                } else {
                    ((work[j] / delta as f64).round()).clamp(-(half as f64), half as f64 - 1.0)
                        * delta as f64
                };
                let err = (work[j] - q) / l_factor[j * n + j].max(1e-12);
                work[j] = q;
                for k in j + 1..n {
                    work[k] -= err * l_factor[k * n + j];
                }
                out[(r, j)] = q as f32;
            }
        }
        out
    }

    /// Wire size in bits (payload + one scale per group per row).
    pub fn wire_bits(&self, w: &Tensor) -> u64 {
        // `self.group` is clamped to >= 1 at construction.
        let groups_per_row = (w.cols() as u64).div_ceil(self.group as u64);
        w.len() as u64 * u64::from(self.bits) + w.rows() as u64 * groups_per_row * 32
    }
}

impl LossyCompressor for GptqQuantizer {
    fn name(&self) -> String {
        if self.group >= 1 << 20 {
            format!("GPTQ{}", self.bits)
        } else {
            format!("GPTQ{}-{}G", self.bits, self.group)
        }
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        (self.apply(t), self.wire_bits(t))
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        Some(self.bits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::stats;
    use llm265_tensor::synthetic::{llm_weight, WeightProfile};

    fn weight(seed: u64, n: usize) -> Tensor {
        let mut rng = Pcg32::seed_from(seed);
        llm_weight(n, n, &WeightProfile::default(), &mut rng)
    }

    /// Layer-output error on a probe batch — what GPTQ optimizes.
    fn output_error(w: &Tensor, wq: &Tensor, probe: &Tensor) -> f64 {
        let y = probe.matmul(&w.transposed());
        let yq = probe.matmul(&wq.transposed());
        stats::mse(y.data(), yq.data())
    }

    #[test]
    fn gptq_beats_rtn_on_layer_output_error() {
        let n = 48;
        let w = weight(1, n);
        let q = GptqQuantizer::with_synthetic_calibration(3, 1 << 20, n, 256, 7);
        let wq_gptq = q.apply(&w);
        let wq_rtn = RtnQuantizer::symmetric(3, GroupScheme::PerRow).apply(&w);

        // Probe batch drawn from the same correlated distribution as the
        // calibration set (same seed → same channel scales).
        let probe = GptqQuantizer::with_synthetic_calibration(3, 1 << 20, n, 128, 7).calib;
        let e_gptq = output_error(&w, &wq_gptq, &probe);
        let e_rtn = output_error(&w, &wq_rtn, &probe);
        assert!(
            e_gptq < e_rtn,
            "gptq {e_gptq} should beat per-row rtn {e_rtn}"
        );
    }

    #[test]
    fn quantized_values_lie_on_the_grid_scale() {
        let n = 16;
        let w = weight(2, n);
        let q = GptqQuantizer::with_synthetic_calibration(4, n, n, 64, 3);
        let wq = q.apply(&w);
        // Error stays bounded relative to the weight scale.
        let nmse = stats::mse(w.data(), wq.data()) / stats::variance(w.data());
        assert!(nmse < 0.2, "nmse {nmse}");
    }

    #[test]
    fn group_scales_isolate_outliers() {
        let n = 64;
        let mut w = weight(3, n);
        w[(0, 0)] = 5.0; // outlier in group 0
        let grouped = GptqQuantizer::with_synthetic_calibration(4, 16, n, 128, 5);
        let whole = GptqQuantizer::with_synthetic_calibration(4, 1 << 20, n, 128, 5);
        let e_g = stats::mse(w.data(), grouped.apply(&w).data());
        let e_w = stats::mse(w.data(), whole.apply(&w).data());
        assert!(e_g < e_w, "grouped {e_g} vs per-row {e_w}");
    }

    #[test]
    fn wire_bits_accounting() {
        let w = weight(4, 32);
        let q = GptqQuantizer::with_synthetic_calibration(3, 16, 32, 32, 1);
        // 1024 values * 3 bits + 32 rows * 2 groups * 32 bits.
        assert_eq!(q.wire_bits(&w), 1024 * 3 + 32 * 2 * 32);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_calibration_panics() {
        let w = weight(5, 16);
        let q = GptqQuantizer::with_synthetic_calibration(4, 16, 8, 32, 1);
        let _ = q.apply(&w);
    }
}
