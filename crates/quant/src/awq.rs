//! AWQ-style activation-aware weight quantization.
//!
//! AWQ observes that the weights multiplying high-magnitude activation
//! channels matter most, and protects them by scaling each input channel
//! by `s_c = E[|x_c|]^α` before group-wise RTN (dividing activations by
//! the same factor at runtime). The exponent α is grid-searched on a
//! calibration batch (§2.1; Lin et al. 2024). Like GPTQ, this is a
//! calibration-dependent baseline.

use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;
use llm265_tensor::{stats, Tensor};

use crate::rtn::{GroupScheme, RtnQuantizer};

/// AWQ-style quantizer bound to calibration activations.
#[derive(Debug, Clone)]
pub struct AwqQuantizer {
    bits: u32,
    group: usize,
    calib: Tensor,
    alpha_grid: Vec<f64>,
}

impl AwqQuantizer {
    /// Creates a quantizer from calibration activations
    /// (`samples × in_features`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside 1..=8 or `calib` is empty.
    pub fn new(bits: u32, group: usize, calib: Tensor) -> Self {
        assert!((1..=8).contains(&bits), "bits must be 1..=8");
        assert!(!calib.is_empty(), "calibration set must be non-empty");
        AwqQuantizer {
            bits,
            group: group.max(1),
            calib,
            alpha_grid: (0..=10).map(|i| i as f64 / 10.0).collect(),
        }
    }

    /// Creates a quantizer with synthetic calibration activations that
    /// carry outlier channels (the structure AWQ exists to exploit).
    #[must_use]
    pub fn with_synthetic_calibration(
        bits: u32,
        group: usize,
        in_features: usize,
        samples: usize,
        seed: u64,
    ) -> Self {
        let mut rng = Pcg32::seed_from(seed);
        let chan_scale: Vec<f64> = (0..in_features)
            .map(|_| if rng.chance(0.04) { 12.0 } else { 1.0 })
            .collect();
        let calib = Tensor::from_fn(samples, in_features, |_, c| {
            (chan_scale[c] * rng.normal()) as f32
        });
        Self::new(bits, group, calib)
    }

    /// Mean absolute activation per input channel.
    fn channel_magnitudes(&self) -> Vec<f64> {
        let n = self.calib.cols();
        let mut mags = vec![0.0f64; n];
        for s in 0..self.calib.rows() {
            for (c, &v) in self.calib.row(s).iter().enumerate() {
                mags[c] += (v as f64).abs();
            }
        }
        let samples = self.calib.rows() as f64;
        for m in mags.iter_mut() {
            *m = (*m / samples).max(1e-8);
        }
        mags
    }

    fn apply_with_alpha(&self, w: &Tensor, mags: &[f64], alpha: f64) -> Tensor {
        let scales: Vec<f32> = mags.iter().map(|&m| m.powf(alpha) as f32).collect();
        // Scale columns up, quantize, scale back down.
        let scaled = Tensor::from_fn(w.rows(), w.cols(), |r, c| w[(r, c)] * scales[c]);
        let rtn = RtnQuantizer::symmetric(self.bits, GroupScheme::Groups(self.group));
        let q = rtn.apply(&scaled);
        Tensor::from_fn(w.rows(), w.cols(), |r, c| q[(r, c)] / scales[c])
    }

    /// Quantizes a weight matrix, grid-searching α on the calibration
    /// batch's layer-output error.
    ///
    /// # Panics
    ///
    /// Panics if column counts mismatch the calibration features.
    pub fn apply(&self, w: &Tensor) -> Tensor {
        assert_eq!(
            w.cols(),
            self.calib.cols(),
            "weight in_features must match calibration features"
        );
        let mags = self.channel_magnitudes();
        let reference = self.calib.matmul(&w.transposed());
        let mut best: Option<(f64, Tensor)> = None;
        for &alpha in &self.alpha_grid {
            let wq = self.apply_with_alpha(w, &mags, alpha);
            let out = self.calib.matmul(&wq.transposed());
            let err = stats::mse(reference.data(), out.data());
            if best.as_ref().is_none_or(|(e, _)| err < *e) {
                best = Some((err, wq));
            }
        }
        best.expect("alpha grid is non-empty").1
    }

    /// Wire size in bits: payload + group scales + per-channel scales.
    pub fn wire_bits(&self, w: &Tensor) -> u64 {
        // `self.group` is clamped to >= 1 at construction.
        let groups = (w.len() as u64).div_ceil(self.group as u64);
        w.len() as u64 * u64::from(self.bits) + groups * 32 + w.cols() as u64 * 32
    }
}

impl LossyCompressor for AwqQuantizer {
    fn name(&self) -> String {
        if self.group >= 1 << 20 {
            format!("AWQ{}", self.bits)
        } else {
            format!("AWQ{}-{}G", self.bits, self.group)
        }
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        (self.apply(t), self.wire_bits(t))
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        Some(self.bits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::synthetic::{llm_weight, WeightProfile};

    #[test]
    fn awq_beats_plain_rtn_on_outlier_activations() {
        let n = 64;
        let mut rng = Pcg32::seed_from(1);
        let w = llm_weight(n, n, &WeightProfile::default(), &mut rng);
        let q = AwqQuantizer::with_synthetic_calibration(3, 32, n, 128, 9);

        let wq_awq = q.apply(&w);
        let wq_rtn = RtnQuantizer::symmetric(3, GroupScheme::Groups(32)).apply(&w);

        // Evaluate on a *fresh* probe batch with the same outlier channels.
        let probe = {
            let q2 = AwqQuantizer::with_synthetic_calibration(3, 32, n, 96, 9);
            q2.calib
        };
        let y = probe.matmul(&w.transposed());
        let e_awq = stats::mse(y.data(), probe.matmul(&wq_awq.transposed()).data());
        let e_rtn = stats::mse(y.data(), probe.matmul(&wq_rtn.transposed()).data());
        assert!(e_awq < e_rtn, "awq {e_awq} vs rtn {e_rtn}");
    }

    #[test]
    fn alpha_zero_reduces_to_rtn() {
        let n = 32;
        let mut rng = Pcg32::seed_from(2);
        let w = llm_weight(n, n, &WeightProfile::default(), &mut rng);
        let q = AwqQuantizer::with_synthetic_calibration(4, 16, n, 64, 3);
        let mags = q.channel_magnitudes();
        let awq0 = q.apply_with_alpha(&w, &mags, 0.0);
        let rtn = RtnQuantizer::symmetric(4, GroupScheme::Groups(16)).apply(&w);
        assert_eq!(awq0, rtn);
    }

    #[test]
    fn reconstruction_error_is_bounded() {
        let n = 32;
        let mut rng = Pcg32::seed_from(3);
        let w = llm_weight(n, n, &WeightProfile::default(), &mut rng);
        let q = AwqQuantizer::with_synthetic_calibration(4, 32, n, 64, 4);
        let wq = q.apply(&w);
        let nmse = stats::mse(w.data(), wq.data()) / stats::variance(w.data());
        assert!(nmse < 0.1, "nmse {nmse}");
    }

    #[test]
    fn wire_bits_include_channel_scales() {
        let w = Tensor::zeros(8, 64);
        let q = AwqQuantizer::with_synthetic_calibration(4, 64, 64, 16, 5);
        assert_eq!(q.wire_bits(&w), 512 * 4 + 8 * 32 + 64 * 32);
    }
}
