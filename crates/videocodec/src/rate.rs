//! Rate- and distortion-targeted encoding.
//!
//! The paper's "variable and fractional bit-width compression" (§4.1)
//! rests on the codec exposing a continuous rate knob: users specify a
//! bits-per-value budget and the encoder finds codec parameters meeting
//! it. QP here is already continuous (see [`crate::quant`]), and bits per
//! pixel is monotonically non-increasing in QP, so a bisection over QP
//! reaches any achievable fractional target. A distortion-targeted dual
//! (`encode_to_mse`) drives the Fig 2(b) ablation, whose quality
//! constraint is an MSE budget.

use crate::quant::{QP_MAX, QP_MIN};
use crate::{encode_video, CodecConfig, EncodedVideo, Frame};

/// Default number of bisection iterations (bits are within ~1-2% after 9).
const SEARCH_ITERS: usize = 9;

/// Outcome of a rate search: the chosen QP and the encode at that QP.
#[derive(Debug, Clone)]
pub struct RateSearchResult {
    /// QP the search settled on.
    pub qp: f64,
    /// Encode produced at that QP.
    pub encoded: EncodedVideo,
}

impl RateSearchResult {
    /// Bits per pixel of the final encode.
    pub fn bits_per_pixel(&self) -> f64 {
        self.encoded.bits_per_pixel()
    }
}

/// Encodes `frames` at the largest QP whose bits/pixel does not exceed
/// `target_bpp` (i.e. the best quality within the budget).
///
/// If even the coarsest QP exceeds the budget, returns the coarsest-QP
/// encode — the caller can inspect [`RateSearchResult::bits_per_pixel`].
///
/// # Panics
///
/// Panics if `frames` is empty or `target_bpp` is not positive.
pub fn encode_to_bitrate(frames: &[Frame], cfg: &CodecConfig, target_bpp: f64) -> RateSearchResult {
    assert!(target_bpp > 0.0, "target bits/pixel must be positive");
    search(frames, cfg, super::EncodedVideo::bits_per_pixel, target_bpp)
}

/// Encodes `frames` at the largest QP (fewest bits) whose reconstruction
/// MSE in pixel² units does not exceed `target_mse`.
///
/// If even the finest QP exceeds the target, returns the finest-QP encode.
///
/// # Panics
///
/// Panics if `frames` is empty or `target_mse` is negative.
pub fn encode_to_mse(frames: &[Frame], cfg: &CodecConfig, target_mse: f64) -> RateSearchResult {
    assert!(target_mse >= 0.0, "target MSE must be non-negative");
    // MSE is monotone non-decreasing in QP, so bisect on -mse against
    // -target: we want max QP with mse <= target.
    let measure = |enc: &EncodedVideo| mse_of(frames, enc);
    search(frames, cfg, measure, target_mse)
}

/// Mean pixel² error between source frames and an encode's reconstruction.
pub fn mse_of(frames: &[Frame], enc: &EncodedVideo) -> f64 {
    let mut ssd = 0.0;
    let mut count = 0usize;
    for (a, b) in frames.iter().zip(&enc.recon) {
        ssd += a.ssd(b) as f64;
        count += a.width() * a.height();
    }
    if count == 0 {
        0.0
    } else {
        ssd / count as f64
    }
}

/// Bisects QP for the largest value keeping `metric(encode) <= target`.
/// Both bits/pixel and MSE-vs-target work because bits decrease and MSE
/// increases monotonically with QP.
fn search(
    frames: &[Frame],
    cfg: &CodecConfig,
    metric: impl Fn(&EncodedVideo) -> f64,
    target: f64,
) -> RateSearchResult {
    assert!(!frames.is_empty(), "cannot search on an empty video");
    // For bits/pixel the feasible set is high QPs; for MSE it is low QPs.
    // Distinguish by probing the extremes.
    let lo_enc = encode_at(frames, cfg, QP_MIN);
    let hi_enc = encode_at(frames, cfg, QP_MAX);
    let lo_val = metric(&lo_enc);
    let hi_val = metric(&hi_enc);

    // Metric increases with QP (MSE case) or decreases with QP (bits case).
    let increasing = hi_val >= lo_val;

    // Feasibility at the extremes.
    if increasing {
        if hi_val <= target {
            return RateSearchResult {
                qp: QP_MAX,
                encoded: hi_enc,
            };
        }
        if lo_val > target {
            return RateSearchResult {
                qp: QP_MIN,
                encoded: lo_enc,
            };
        }
    } else {
        if hi_val > target {
            return RateSearchResult {
                qp: QP_MAX,
                encoded: hi_enc,
            };
        }
        if lo_val <= target {
            return RateSearchResult {
                qp: QP_MIN,
                encoded: lo_enc,
            };
        }
    }

    // Invariant: metric(lo) feasible region boundary lies in (lo, hi].
    let (mut lo, mut hi) = (QP_MIN, QP_MAX);
    let mut best: Option<(f64, EncodedVideo)> = None;
    for _ in 0..SEARCH_ITERS {
        let mid = 0.5 * (lo + hi);
        let enc = encode_at(frames, cfg, mid);
        let v = metric(&enc);
        let feasible = v <= target;
        if feasible {
            // Feasible: remember the best feasible QP so far. For an
            // increasing metric (MSE) the boundary is the *largest*
            // feasible QP; for a decreasing metric (bits) it is the
            // *smallest* feasible QP (most bits inside the budget).
            let better = match &best {
                None => true,
                Some((bq, _)) => {
                    if increasing {
                        mid > *bq
                    } else {
                        mid < *bq
                    }
                }
            };
            if better {
                best = Some((mid, enc));
            }
            if increasing {
                lo = mid;
            } else {
                hi = mid;
            }
        } else if increasing {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    match best {
        Some((qp, encoded)) => RateSearchResult { qp, encoded },
        None => {
            // Should not happen given the extreme checks, but fall back to
            // the feasible extreme.
            let qp = if increasing { QP_MIN } else { QP_MAX };
            RateSearchResult {
                qp,
                encoded: encode_at(frames, cfg, qp),
            }
        }
    }
}

fn encode_at(frames: &[Frame], cfg: &CodecConfig, qp: f64) -> EncodedVideo {
    let cfg = cfg.clone().with_qp(qp);
    encode_video(frames, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;

    fn noisy_frame(seed: u64, n: usize) -> Frame {
        let mut rng = Pcg32::seed_from(seed);
        Frame::from_fn(n, n, |x, _y| {
            let base = (x / 8) as f64 * 30.0 + 40.0;
            (base + 18.0 * rng.normal()).clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn bitrate_target_is_respected() {
        let frames = [noisy_frame(1, 64)];
        let cfg = CodecConfig::default();
        let res = encode_to_bitrate(&frames, &cfg, 2.0);
        assert!(
            res.bits_per_pixel() <= 2.1,
            "bpp {} exceeds target",
            res.bits_per_pixel()
        );
        // And it should be reasonably close to the budget, not tiny.
        assert!(res.bits_per_pixel() > 0.5, "bpp {}", res.bits_per_pixel());
    }

    #[test]
    fn fractional_targets_are_achievable() {
        // The paper's fractional-bitrate property: nearby fractional
        // targets produce distinct, ordered rates.
        let frames = [noisy_frame(2, 64)];
        let cfg = CodecConfig::default();
        let a = encode_to_bitrate(&frames, &cfg, 1.6);
        let b = encode_to_bitrate(&frames, &cfg, 2.4);
        assert!(a.bits_per_pixel() <= 1.7);
        assert!(b.bits_per_pixel() <= 2.5);
        assert!(b.bits_per_pixel() > a.bits_per_pixel());
        // Lower rate means no better quality.
        assert!(mse_of(&frames, &a.encoded) >= mse_of(&frames, &b.encoded));
    }

    #[test]
    fn mse_target_is_respected() {
        let frames = [noisy_frame(3, 64)];
        let cfg = CodecConfig::default();
        let res = encode_to_mse(&frames, &cfg, 20.0);
        let got = mse_of(&frames, &res.encoded);
        assert!(got <= 20.0 + 1e-9, "mse {got}");
        // Should not be wastefully precise either: within ~8x of target.
        assert!(got > 1.0, "mse {got} suspiciously tiny for the budget");
    }

    #[test]
    fn rate_monotone_in_qp() {
        let frames = [noisy_frame(4, 64)];
        let cfg = CodecConfig::default();
        let bpp_fine = encode_at(&frames, &cfg, 16.0).bits_per_pixel();
        let bpp_coarse = encode_at(&frames, &cfg, 40.0).bits_per_pixel();
        assert!(bpp_fine > bpp_coarse);
    }
}
