//! Inter-frame motion prediction.
//!
//! Included to reproduce the paper's *negative* result: Fig 2(b) step
//! 5→6 shows that enabling inter-frame prediction does not reduce the
//! bits/value of tensor compression — consecutive LLM layers have little
//! pixel-level correlation — which is why LLM.265 enforces intra-only
//! coding and why §6.2 proposes removing the inter machinery from the
//! hardware entirely. The implementation is a classic full-pel diamond of
//! full-search SAD over a bounded window against the previous
//! reconstructed frame.

use crate::Frame;

/// Motion search range in pixels (full search ±RANGE in each axis).
pub const SEARCH_RANGE: i32 = 8;

/// A full-pel motion vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    /// Horizontal displacement in pixels.
    pub dx: i8,
    /// Vertical displacement in pixels.
    pub dy: i8,
}

/// Sum of absolute differences between the block at `(x0, y0)` in `cur`
/// and the displaced block in `reference` (edge-clamped reads).
pub fn sad(
    cur: &Frame,
    reference: &Frame,
    x0: usize,
    y0: usize,
    n: usize,
    mv: MotionVector,
) -> u64 {
    let mut acc = 0u64;
    for y in 0..n {
        for x in 0..n {
            let a = cur.get(x0 + x, y0 + y) as i64;
            // Coordinates are bounded by frame dimensions, far below
            // isize::MAX; `try_from` keeps the conversion explicit.
            let b = reference.get_clamped(
                isize::try_from(x0 + x).unwrap_or(isize::MAX) + isize::from(mv.dx),
                isize::try_from(y0 + y).unwrap_or(isize::MAX) + isize::from(mv.dy),
            ) as i64;
            acc += (a - b).unsigned_abs();
        }
    }
    acc
}

/// Full-search motion estimation: returns the motion vector minimizing SAD
/// within ±[`SEARCH_RANGE`], with a small per-bit MV penalty so zero-MV is
/// preferred on ties.
pub fn motion_search(
    cur: &Frame,
    reference: &Frame,
    x0: usize,
    y0: usize,
    n: usize,
) -> (MotionVector, u64) {
    let mut best = MotionVector::default();
    let mut best_cost = sad(cur, reference, x0, y0, n, best);
    for dy in -SEARCH_RANGE..=SEARCH_RANGE {
        for dx in -SEARCH_RANGE..=SEARCH_RANGE {
            if dx == 0 && dy == 0 {
                continue;
            }
            let mv = MotionVector {
                dx: dx.clamp(-128, 127) as i8,
                dy: dy.clamp(-128, 127) as i8,
            };
            // Penalty approximates the MV's coding cost.
            let penalty = 2 * (u64::from(dx.unsigned_abs()) + u64::from(dy.unsigned_abs()));
            let cost = sad(cur, reference, x0, y0, n, mv) + penalty;
            if cost < best_cost {
                best_cost = cost;
                best = mv;
            }
        }
    }
    (best, best_cost)
}

/// Builds the motion-compensated prediction block for `mv`.
pub fn compensate(reference: &Frame, x0: usize, y0: usize, n: usize, mv: MotionVector) -> Vec<i32> {
    let mut out = vec![0i32; n * n];
    for y in 0..n {
        for x in 0..n {
            out[y * n + x] = reference.get_clamped(
                isize::try_from(x0 + x).unwrap_or(isize::MAX) + isize::from(mv.dx),
                isize::try_from(y0 + y).unwrap_or(isize::MAX) + isize::from(mv.dy),
            ) as i32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> Frame {
        Frame::from_fn(w, h, |x, y| ((x * 7 + y * 13 + (x * y) / 3) % 256) as u8)
    }

    #[test]
    fn zero_motion_on_identical_frames() {
        let f = textured(64, 64);
        let (mv, cost) = motion_search(&f, &f, 16, 16, 16);
        assert_eq!(mv, MotionVector::default());
        assert_eq!(cost, 0);
    }

    #[test]
    fn finds_pure_translation() {
        let reference = textured(64, 64);
        // Current frame = reference shifted right by 3, down by 2.
        let cur = Frame::from_fn(64, 64, |x, y| {
            reference.get_clamped(x as isize - 3, y as isize - 2)
        });
        let (mv, _) = motion_search(&cur, &reference, 24, 24, 16);
        assert_eq!((mv.dx, mv.dy), (-3, -2));
        // Compensation with the found MV reproduces the block exactly.
        let pred = compensate(&reference, 24, 24, 16, mv);
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(pred[y * 16 + x], cur.get(24 + x, 24 + y) as i32);
            }
        }
    }

    #[test]
    fn uncorrelated_frames_give_high_sad() {
        let a = textured(64, 64);
        let b = Frame::from_fn(64, 64, |x, y| ((x * 151 + y * 211) % 256) as u8);
        let (_, cost) = motion_search(&a, &b, 16, 16, 16);
        // No displacement explains unrelated content.
        assert!(cost > 16 * 16 * 10, "cost {cost}");
    }

    #[test]
    fn compensation_clamps_at_edges() {
        let reference = textured(32, 32);
        let pred = compensate(&reference, 0, 0, 8, MotionVector { dx: -5, dy: -5 });
        // All reads clamp to the frame's top-left region; first pixel is (0,0).
        assert_eq!(pred[0], reference.get(0, 0) as i32);
        assert_eq!(pred.len(), 64);
    }

    #[test]
    fn sad_is_zero_iff_blocks_match() {
        let f = textured(32, 32);
        assert_eq!(sad(&f, &f, 8, 8, 8, MotionVector::default()), 0);
        let shifted = MotionVector { dx: 1, dy: 0 };
        assert!(sad(&f, &f, 8, 8, 8, shifted) > 0);
    }
}
