//! Intra-frame prediction.
//!
//! §3.1 of the paper observes that LLM weight matrices, viewed as images,
//! contain the planar regions and channel-wise "edges" that intra
//! prediction was designed for, and that the intra predictor captures the
//! channel-wise scale structure with a handful of prediction states,
//! leaving small residuals (Fig 4). This module implements the HEVC mode
//! family — DC, Planar and 33 angular directions with 1/32-pel reference
//! interpolation — plus the Paeth and Smooth predictors for the AV1-like
//! profile.
//!
//! Prediction always reads *reconstructed* neighbour pixels, so encoder
//! and decoder compute identical predictions.

use crate::Frame;

/// An intra prediction mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredMode {
    /// Mean of the reference samples.
    Dc,
    /// HEVC planar: bilinear blend of the reference edges.
    Planar,
    /// HEVC angular mode 2..=34 (10 = horizontal, 26 = vertical).
    Angular(u8),
    /// AV1 Paeth predictor (nearest of top/left/corner to their sum-diff).
    Paeth,
    /// AV1-like smooth blend of top and left edges.
    Smooth,
    /// AV1-like smooth blend, vertical only.
    SmoothV,
    /// AV1-like smooth blend, horizontal only.
    SmoothH,
}

impl PredMode {
    /// The H.265 mode set: Planar, DC and all 33 angular directions.
    pub fn h265_set() -> Vec<PredMode> {
        let mut v = vec![PredMode::Planar, PredMode::Dc];
        v.extend((2..=34).map(PredMode::Angular));
        v
    }

    /// The H.264-like 9-direction set (DC, V, H and six diagonals).
    pub fn h264_set() -> Vec<PredMode> {
        vec![
            PredMode::Dc,
            PredMode::Angular(26), // vertical
            PredMode::Angular(10), // horizontal
            PredMode::Angular(34), // down-left
            PredMode::Angular(18), // down-right
            PredMode::Angular(22),
            PredMode::Angular(14),
            PredMode::Angular(30),
            PredMode::Angular(6),
        ]
    }

    /// The AV1-like set: H.265 modes plus Paeth and the Smooth family.
    pub fn av1_set() -> Vec<PredMode> {
        let mut v = Self::h265_set();
        v.extend([
            PredMode::Paeth,
            PredMode::Smooth,
            PredMode::SmoothV,
            PredMode::SmoothH,
        ]);
        v
    }
}

/// HEVC `intraPredAngle` for modes 2..=34.
const ANGLES: [i32; 33] = [
    32, 26, 21, 17, 13, 9, 5, 2, 0, -2, -5, -9, -13, -17, -21, -26, -32, -26, -21, -17, -13, -9,
    -5, -2, 0, 2, 5, 9, 13, 17, 21, 26, 32,
];

/// HEVC `invAngle` for negative angles (|angle| in {2,5,9,13,17,21,26,32}).
fn inv_angle(a: i32) -> i32 {
    match a.abs() {
        2 => 4096,
        5 => 1638,
        9 => 910,
        13 => 630,
        17 => 482,
        21 => 390,
        26 => 315,
        32 => 256,
        // lint:allow(panic): only called with angles from the ANGLES table.
        _ => unreachable!("no inverse angle for {a}"),
    }
}

/// Reference samples around an `n × n` block, prepared from the
/// reconstructed frame with HEVC-style substitution for unavailable edges.
#[derive(Debug, Clone)]
pub struct RefSamples {
    n: usize,
    corner: i32,
    /// `top[i]` = reconstructed pixel at `(x0 + i, y0 - 1)`, `i` in `0..2n`.
    top: Vec<i32>,
    /// `left[i]` = reconstructed pixel at `(x0 - 1, y0 + i)`, `i` in `0..2n`.
    left: Vec<i32>,
}

impl RefSamples {
    /// Gathers reference samples for the block at `(x0, y0)`.
    ///
    /// Samples right of / below the frame are edge-replicated; when a whole
    /// side is unavailable (frame boundary) it is substituted from the
    /// other side, or 128 if neither exists.
    pub fn gather(recon: &Frame, x0: usize, y0: usize, n: usize) -> Self {
        let have_top = y0 > 0;
        let have_left = x0 > 0;
        let (w, h) = (recon.width(), recon.height());

        let mut top = vec![0i32; 2 * n];
        let mut left = vec![0i32; 2 * n];
        let corner;

        match (have_top, have_left) {
            (false, false) => {
                top.fill(128);
                left.fill(128);
                corner = 128;
            }
            (true, false) => {
                for (i, t) in top.iter_mut().enumerate() {
                    *t = recon.get((x0 + i).min(w - 1), y0 - 1) as i32;
                }
                corner = top[0];
                left.fill(corner);
            }
            (false, true) => {
                for (i, l) in left.iter_mut().enumerate() {
                    *l = recon.get(x0 - 1, (y0 + i).min(h - 1)) as i32;
                }
                corner = left[0];
                top.fill(corner);
            }
            (true, true) => {
                for (i, t) in top.iter_mut().enumerate() {
                    *t = recon.get((x0 + i).min(w - 1), y0 - 1) as i32;
                }
                for (i, l) in left.iter_mut().enumerate() {
                    *l = recon.get(x0 - 1, (y0 + i).min(h - 1)) as i32;
                }
                corner = recon.get(x0 - 1, y0 - 1) as i32;
            }
        }
        RefSamples {
            n,
            corner,
            top,
            left,
        }
    }

    /// Block size the references were gathered for.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Computes the prediction block (row-major `n × n`) for `mode`.
    pub fn predict(&self, mode: PredMode) -> Vec<i32> {
        let mut out = Vec::new();
        self.predict_into(mode, &mut out);
        out
    }

    /// [`Self::predict`] into a caller-owned buffer, for the encoder's
    /// mode sweep which evaluates dozens of modes per leaf and would
    /// otherwise allocate a block per mode.
    pub fn predict_into(&self, mode: PredMode, out: &mut Vec<i32>) {
        out.clear();
        out.resize(self.n * self.n, 0);
        match mode {
            PredMode::Dc => self.predict_dc(out),
            PredMode::Planar => self.predict_planar(out),
            PredMode::Angular(m) => self.predict_angular(m, out),
            PredMode::Paeth => self.predict_paeth(out),
            PredMode::Smooth => self.predict_smooth(true, true, out),
            PredMode::SmoothV => self.predict_smooth(true, false, out),
            PredMode::SmoothH => self.predict_smooth(false, true, out),
        }
    }

    fn predict_dc(&self, out: &mut [i32]) {
        let n = self.n;
        let sum: i32 = self.top[..n].iter().sum::<i32>() + self.left[..n].iter().sum::<i32>();
        // Blocks are at most 32×32, so the size always fits i32.
        let ni = i32::try_from(n).unwrap_or(i32::MAX);
        let dc = (sum + ni) / (2 * ni);
        out.fill(dc);
    }

    fn predict_planar(&self, out: &mut [i32]) {
        let n = self.n;
        // Blocks are at most 32×32, so the size always fits i32.
        let ni = i32::try_from(n).unwrap_or(i32::MAX);
        let shift = n.trailing_zeros() + 1;
        debug_assert!(shift <= 6, "blocks are at most 32x32");
        let tr = self.top[n]; // first top-right sample
        let bl = self.left[n]; // first bottom-left sample
        for y in 0..n {
            let yi = i32::try_from(y).unwrap_or(i32::MAX);
            for x in 0..n {
                let xi = i32::try_from(x).unwrap_or(i32::MAX);
                let h = (ni - 1 - xi) * self.left[y] + (xi + 1) * tr;
                let v = (ni - 1 - yi) * self.top[x] + (yi + 1) * bl;
                out[y * n + x] = (h + v + ni) >> shift;
            }
        }
    }

    fn predict_angular(&self, mode: u8, out: &mut [i32]) {
        assert!((2..=34).contains(&mode), "angular mode {mode} out of range");
        let n = self.n;
        debug_assert!((4..=32).contains(&n), "blocks are 4x4 to 32x32");
        let angle = ANGLES[mode as usize - 2];
        // The HEVC angle table spans ±32; the projection arithmetic below
        // relies on that to stay inside i32.
        debug_assert!((-32..=32).contains(&angle), "angle table out of range");
        let vertical = mode >= 18;

        // Main reference runs along the prediction direction's source edge;
        // the side reference extends it for negative angles.
        let (main, side): (&[i32], &[i32]) = if vertical {
            (&self.top, &self.left)
        } else {
            (&self.left, &self.top)
        };

        // ref_arr[i + n] corresponds to HEVC's ref[i - 1 + ...]; we build
        // ref[x] for x in -n..=2n with ref[0] = corner, ref[k] = main[k-1].
        // Blocks are at most 32×32, so the fixed-size stack array always
        // covers `3n + 1` entries.
        let mut ref_store = [0i32; 3 * 32 + 1];
        let ref_arr = &mut ref_store[..3 * n + 1];
        // Blocks are at most 32×32, so the conversion is exact and the
        // projected indices below stay within i32.
        let off = i32::try_from(n).unwrap_or(32); // ref_arr[(x + off)] = ref[x]
        ref_arr[n] = self.corner;
        ref_arr[n + 1..=3 * n].copy_from_slice(&main[..2 * n]);
        if angle < 0 {
            let inv = inv_angle(angle);
            let lowest = (off * angle) >> 5; // most negative index used
            for x in (lowest..0).rev() {
                // Project onto the side reference.
                let idx = ((x * inv + 128) >> 8) - 1; // index into side[], -1 = corner
                let s = if idx < 0 {
                    self.corner
                } else {
                    side[usize::try_from(idx).unwrap_or(0).min(2 * n - 1)]
                };
                // `lowest >= -n`, so `x + off >= 0` always holds.
                ref_arr[usize::try_from(x + off).unwrap_or(0)] = s;
            }
        }

        for j in 0..n {
            // j indexes rows for vertical modes, columns for horizontal.
            let pos = (i32::try_from(j).unwrap_or(i32::MAX) + 1) * angle;
            let int_part = pos >> 5;
            let frac = pos & 31;
            for i in 0..n {
                // `int_part >= -n` and `off = n`, so the sum is never negative.
                let base =
                    usize::try_from(i32::try_from(i).unwrap_or(i32::MAX) + int_part + 1 + off)
                        .unwrap_or(0);
                let a = ref_arr[base.min(ref_arr.len() - 1)];
                let b = ref_arr[(base + 1).min(ref_arr.len() - 1)];
                let v = ((32 - frac) * a + frac * b + 16) >> 5;
                let (x, y) = if vertical { (i, j) } else { (j, i) };
                out[y * n + x] = v;
            }
        }
    }

    fn predict_paeth(&self, out: &mut [i32]) {
        let n = self.n;
        for y in 0..n {
            for x in 0..n {
                let t = self.top[x];
                let l = self.left[y];
                let c = self.corner;
                let base = t + l - c;
                let (dt, dl, dc) = ((base - t).abs(), (base - l).abs(), (base - c).abs());
                out[y * n + x] = if dt <= dl && dt <= dc {
                    t
                } else if dl <= dc {
                    l
                } else {
                    c
                };
            }
        }
    }

    /// Linear-weight smooth predictor ("AV1-like"; AV1 proper uses a
    /// quadratic weight table — the behaviour is equivalent for our
    /// purposes and documented in DESIGN.md).
    fn predict_smooth(&self, use_v: bool, use_h: bool, out: &mut [i32]) {
        let n = self.n;
        let bl = self.left[n]; // bottom-left anchor
        let tr = self.top[n]; // top-right anchor
                              // Blocks are at most 32×32, so the size always fits i32.
        let ni = i32::try_from(n.max(1)).unwrap_or(i32::MAX);
        let w = |i: usize| -> i32 {
            // 256 at i = 0 decaying linearly to 64 at i = n-1.
            (256 - (192 * i32::try_from(i).unwrap_or(i32::MAX)) / ni).max(64)
        };
        for y in 0..n {
            for x in 0..n {
                let mut acc = 0i32;
                let mut den = 0i32;
                if use_v {
                    acc += w(y) * self.top[x] + (256 - w(y)) * bl;
                    den += 256;
                }
                if use_h {
                    acc += w(x) * self.left[y] + (256 - w(x)) * tr;
                    den += 256;
                }
                out[y * n + x] = (acc + den / 2) / den;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_frame(v: u8) -> Frame {
        Frame::from_fn(32, 32, |_, _| v)
    }

    fn all_modes() -> Vec<PredMode> {
        PredMode::av1_set()
    }

    #[test]
    fn mode_sets_sizes() {
        assert_eq!(PredMode::h265_set().len(), 35);
        assert_eq!(PredMode::h264_set().len(), 9);
        assert_eq!(PredMode::av1_set().len(), 39);
    }

    #[test]
    fn flat_references_predict_flat_block() {
        let f = flat_frame(77);
        let refs = RefSamples::gather(&f, 8, 8, 8);
        for mode in all_modes() {
            let pred = refs.predict(mode);
            assert!(
                pred.iter().all(|&p| (p - 77).abs() <= 1),
                "mode {mode:?} broke flatness: {:?}",
                &pred[..4]
            );
        }
    }

    #[test]
    fn predictions_stay_in_pixel_range() {
        // Extreme checkerboard references must not overflow 0..=255.
        let f = Frame::from_fn(32, 32, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
        let refs = RefSamples::gather(&f, 16, 16, 8);
        for mode in all_modes() {
            let pred = refs.predict(mode);
            assert!(
                pred.iter().all(|&p| (0..=255).contains(&p)),
                "mode {mode:?} out of range"
            );
        }
    }

    #[test]
    fn extreme_block_sizes_stay_in_range_for_every_mode() {
        // n = 4 and n = 32 are the size invariant's two boundaries: the
        // planar shift hits its 6-bit cap, and the steepest negative
        // angle (±32) projects the longest side-reference run through
        // `x * inv_angle` at maximum magnitude. Extreme samples make any
        // wrap visible as an out-of-range prediction.
        let f = Frame::from_fn(64, 64, |x, y| if (x / 3 + y) % 2 == 0 { 0 } else { 255 });
        for n in [4usize, 32] {
            let refs = RefSamples::gather(&f, 32, 32, n);
            for mode in PredMode::h265_set() {
                let pred = refs.predict(mode);
                assert!(
                    pred.iter().all(|&p| (0..=255).contains(&p)),
                    "mode {mode:?} at n={n} out of range"
                );
            }
        }
    }

    #[test]
    fn vertical_mode_copies_top_row() {
        let f = Frame::from_fn(32, 32, |x, _| (x * 7 % 256) as u8);
        let refs = RefSamples::gather(&f, 8, 8, 4);
        let pred = refs.predict(PredMode::Angular(26)); // pure vertical
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(pred[y * 4 + x], f.get(8 + x, 7) as i32);
            }
        }
    }

    #[test]
    fn horizontal_mode_copies_left_column() {
        let f = Frame::from_fn(32, 32, |_, y| (y * 11 % 256) as u8);
        let refs = RefSamples::gather(&f, 8, 8, 4);
        let pred = refs.predict(PredMode::Angular(10)); // pure horizontal
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(pred[y * 4 + x], f.get(7, 8 + y) as i32);
            }
        }
    }

    #[test]
    fn dc_is_mean_of_edges() {
        let mut f = flat_frame(0);
        // Top edge = 100, left edge = 50.
        for i in 0..8 {
            f.set(8 + i, 7, 100);
            f.set(7, 8 + i, 50);
        }
        let refs = RefSamples::gather(&f, 8, 8, 8);
        let pred = refs.predict(PredMode::Dc);
        assert_eq!(pred[0], 75);
    }

    #[test]
    fn planar_interpolates_gradient() {
        // A gentle linear ramp should be predicted closely by planar. (The
        // HEVC planar anchors at the first top-right / bottom-left
        // reference samples, so steep gradients accrue corner error by
        // design — hence a mild slope here.)
        let f = Frame::from_fn(32, 32, |x, y| (x * 2 + y) as u8);
        let refs = RefSamples::gather(&f, 8, 8, 8);
        let pred = refs.predict(PredMode::Planar);
        let mut max_err = 0;
        for y in 0..8 {
            for x in 0..8 {
                let actual = f.get(8 + x, 8 + y) as i32;
                max_err = max_err.max((pred[y * 8 + x] - actual).abs());
            }
        }
        assert!(max_err <= 11, "planar max err {max_err}");
    }

    #[test]
    fn frame_corner_block_predicts_mid_gray() {
        let f = Frame::from_fn(32, 32, |x, y| ((x * y) % 256) as u8);
        let refs = RefSamples::gather(&f, 0, 0, 8);
        let pred = refs.predict(PredMode::Dc);
        assert!(pred.iter().all(|&p| p == 128));
    }

    #[test]
    fn top_edge_block_substitutes_left() {
        let f = Frame::from_fn(32, 32, |_, y| (y * 8).min(255) as u8);
        // y0 = 0: no top refs; they substitute from the left column.
        let refs = RefSamples::gather(&f, 8, 0, 4);
        let pred = refs.predict(PredMode::Angular(26));
        // Substituted top refs equal left[0] = pixel (7, 0) = 0.
        assert!(pred.iter().all(|&p| p == f.get(7, 0) as i32));
    }

    #[test]
    fn diagonal_mode_tracks_diagonal_edge() {
        // Mode 34 predicts down-left at 45°: pred[x][y] = top[x+y+1].
        let f = Frame::from_fn(32, 32, |x, _| (x * 9 % 256) as u8);
        let refs = RefSamples::gather(&f, 8, 8, 4);
        let pred = refs.predict(PredMode::Angular(34));
        for y in 0..4usize {
            for x in 0..4usize {
                let expect = f.get(8 + x + y + 1, 7) as i32;
                assert_eq!(pred[y * 4 + x], expect, "at ({x},{y})");
            }
        }
    }

    #[test]
    fn negative_angle_modes_use_both_edges() {
        // Mode 18 is the -32 diagonal (down-right): needs left refs too.
        let f = Frame::from_fn(32, 32, |x, y| ((x * 3 + y * 5) % 256) as u8);
        let refs = RefSamples::gather(&f, 8, 8, 8);
        let pred = refs.predict(PredMode::Angular(18));
        // pred[0][0] should equal the corner-adjacent diagonal source.
        assert_eq!(pred[0], refs.corner);
        assert!(pred.iter().all(|&p| (0..=255).contains(&p)));
    }

    #[test]
    fn all_angular_modes_produce_valid_output_at_all_sizes() {
        let f = Frame::from_fn(64, 64, |x, y| ((x * 13 + y * 7) % 256) as u8);
        for &n in &[4usize, 8, 16, 32] {
            let refs = RefSamples::gather(&f, 32, 16, n);
            for m in 2..=34u8 {
                let pred = refs.predict(PredMode::Angular(m));
                assert_eq!(pred.len(), n * n);
                assert!(
                    pred.iter().all(|&p| (0..=255).contains(&p)),
                    "mode {m} size {n}"
                );
            }
        }
    }

    #[test]
    fn channel_structure_is_captured_by_directional_modes() {
        // Column-banded "weights" (channel-wise scales): vertical mode
        // should predict far better than DC — the paper's Fig 4 story.
        let f = Frame::from_fn(64, 64, |x, _| (((x / 4) * 31) % 200 + 20) as u8);
        let refs = RefSamples::gather(&f, 16, 16, 16);
        let sad = |pred: &[i32]| -> i64 {
            let mut s = 0i64;
            for y in 0..16 {
                for x in 0..16 {
                    s += (pred[y * 16 + x] - f.get(16 + x, 16 + y) as i32).abs() as i64;
                }
            }
            s
        };
        let vert = sad(&refs.predict(PredMode::Angular(26)));
        let dc = sad(&refs.predict(PredMode::Dc));
        assert!(vert * 4 < dc, "vertical {vert} vs dc {dc}");
        assert_eq!(vert, 0, "pure column structure predicts exactly");
    }
}
