//! Coefficient scan orders.
//!
//! Quantized transform coefficients concentrate around the DC corner; the
//! entropy coder exploits that by visiting positions in up-right diagonal
//! order (as H.265 does), so significant coefficients cluster at the start
//! of the scan and the "last significant position" syntax element is small.

use std::sync::OnceLock;

/// Returns the diagonal scan order for an `n × n` block: scan position →
/// `(x, y)`. DC is first.
///
/// # Panics
///
/// Panics if `n` is not 4, 8, 16 or 32.
pub fn diagonal(n: usize) -> &'static [(u8, u8)] {
    static SCANS: OnceLock<[Vec<(u8, u8)>; 4]> = OnceLock::new();
    let scans = SCANS.get_or_init(|| [build(4), build(8), build(16), build(32)]);
    match n {
        4 => &scans[0],
        8 => &scans[1],
        16 => &scans[2],
        32 => &scans[3],
        // lint:allow(panic): scan sizes come from profile constants (powers
        // of two in 4..=32), never from bitstream input.
        _ => panic!("unsupported scan size {n}"),
    }
}

fn build(n: usize) -> Vec<(u8, u8)> {
    let mut order = Vec::with_capacity(n * n);
    // Up-right diagonals: within diagonal d = x + y, go from bottom-left
    // (large y) to top-right, matching HEVC's diagScan.
    for d in 0..2 * n - 1 {
        for y in (0..n).rev() {
            if d >= y {
                let x = d - y;
                if x < n {
                    // `n <= 32`, so coordinates always fit a byte.
                    order.push(((x & 0xFF) as u8, (y & 0xFF) as u8));
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_is_a_permutation() {
        for &n in &[4usize, 8, 16, 32] {
            let scan = diagonal(n);
            assert_eq!(scan.len(), n * n);
            let mut seen = vec![false; n * n];
            for &(x, y) in scan {
                let idx = y as usize * n + x as usize;
                assert!(!seen[idx], "duplicate at ({x},{y})");
                seen[idx] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn dc_is_first() {
        for &n in &[4usize, 8, 16, 32] {
            assert_eq!(diagonal(n)[0], (0, 0));
        }
    }

    #[test]
    fn diagonals_are_monotonic() {
        let scan = diagonal(8);
        let mut prev_d = 0;
        for &(x, y) in scan {
            let d = x as usize + y as usize;
            assert!(d >= prev_d, "diagonal went backwards");
            prev_d = d;
        }
    }

    #[test]
    fn four_by_four_matches_reference() {
        // HEVC up-right diagonal scan for 4x4.
        let expect: Vec<(u8, u8)> = vec![
            (0, 0),
            (0, 1),
            (1, 0),
            (0, 2),
            (1, 1),
            (2, 0),
            (0, 3),
            (1, 2),
            (2, 1),
            (3, 0),
            (1, 3),
            (2, 2),
            (3, 1),
            (2, 3),
            (3, 2),
            (3, 3),
        ];
        assert_eq!(diagonal(4), expect.as_slice());
    }
}
