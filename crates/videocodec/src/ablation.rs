//! Pipeline-stage ablation (the paper's Fig 2b).
//!
//! The paper enables the encoding pipeline's stages one at a time and
//! measures the bits/value needed to stay under an MSE budget, showing the
//! contribution of each stage (8 bits with plain quantization down to
//! ~2.6 with intra prediction, with inter prediction giving nothing back).
//! [`stages`] enumerates that ladder; [`run_stage`] measures one rung.

use crate::rate::{encode_to_mse, mse_of};
use crate::{CodecConfig, Frame, PipelineConfig, Profile};

/// One rung of the ablation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Human-readable label used in the Fig 2(b) table.
    pub label: &'static str,
    /// Pipeline switches for this rung.
    pub pipeline: PipelineConfig,
    /// A fixed QP instead of the MSE-targeted search. Stage 2 pins QP to
    /// the lossless step (qstep = 1): in the paper's pipeline the
    /// quantizer lives inside the transform stage (Fig 2a ②), so with the
    /// transform off the entropy coder sees the 8-bit input losslessly.
    pub pinned_qp: Option<f64>,
}

/// The Fig 2(b) ladder: stages enabled incrementally.
pub fn stages() -> Vec<Stage> {
    let off = PipelineConfig {
        entropy: false,
        transform: false,
        adaptive_partition: false,
        intra: false,
        inter: false,
    };
    vec![
        Stage {
            label: "(1) 8-bit quantization",
            pipeline: off,
            pinned_qp: None,
        },
        Stage {
            label: "(2) + entropy coding",
            pipeline: PipelineConfig {
                entropy: true,
                ..off
            },
            // qstep = 1: lossless coding of the quantized 8-bit input.
            pinned_qp: Some(4.0),
        },
        Stage {
            label: "(3) + transform coding",
            pipeline: PipelineConfig {
                entropy: true,
                transform: true,
                ..off
            },
            pinned_qp: None,
        },
        Stage {
            label: "(4) + adaptive partitioning",
            pipeline: PipelineConfig {
                entropy: true,
                transform: true,
                adaptive_partition: true,
                ..off
            },
            pinned_qp: None,
        },
        Stage {
            label: "(5) + intra prediction",
            pipeline: PipelineConfig {
                entropy: true,
                transform: true,
                adaptive_partition: true,
                intra: true,
                inter: false,
            },
            pinned_qp: None,
        },
        Stage {
            label: "(6) + inter prediction",
            pipeline: PipelineConfig {
                entropy: true,
                transform: true,
                adaptive_partition: true,
                intra: true,
                inter: true,
            },
            pinned_qp: None,
        },
    ]
}

/// Result of measuring one ablation rung.
#[derive(Debug, Clone, PartialEq)]
pub struct StageResult {
    /// The rung's label.
    pub label: &'static str,
    /// Bits per pixel needed to meet the MSE budget.
    pub bits_per_value: f64,
    /// Pixel-domain MSE actually achieved.
    pub mse: f64,
}

/// Measures the bits/value one stage configuration needs to meet
/// `target_mse` (pixel² units) on `frames`.
pub fn run_stage(
    frames: &[Frame],
    profile: &Profile,
    stage: &Stage,
    target_mse: f64,
) -> StageResult {
    let cfg = CodecConfig {
        profile: profile.clone(),
        pipeline: stage.pipeline,
        qp: 28.0,
    };
    if !stage.pipeline.entropy {
        // Raw 8-bit storage: rate is fixed; report its (near-lossless) MSE.
        let enc = crate::encode_video(frames, &cfg);
        return StageResult {
            label: stage.label,
            bits_per_value: enc.bits_per_pixel(),
            mse: mse_of(frames, &enc),
        };
    }
    if let Some(qp) = stage.pinned_qp {
        let enc = crate::encode_video(frames, &cfg.clone().with_qp(qp));
        return StageResult {
            label: stage.label,
            bits_per_value: enc.bits_per_pixel(),
            mse: mse_of(frames, &enc),
        };
    }
    let res = encode_to_mse(frames, &cfg, target_mse);
    StageResult {
        label: stage.label,
        bits_per_value: res.encoded.bits_per_pixel(),
        mse: mse_of(frames, &res.encoded),
    }
}

/// Runs the whole ladder.
pub fn run_all(frames: &[Frame], profile: &Profile, target_mse: f64) -> Vec<StageResult> {
    stages()
        .iter()
        .map(|s| run_stage(frames, profile, s, target_mse))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;

    /// A weight-like frame: channel-banded means, a smooth low-rank field,
    /// noise and rare outliers — the texture §3.1 says makes tensors
    /// codec-friendly (Fig 4's "edges and planar blocks").
    fn weight_frame(seed: u64, n: usize) -> Frame {
        let mut rng = Pcg32::seed_from(seed);
        let col_mean: Vec<f64> = (0..n)
            .map(|x| 35.0 * ((x / 6) as f64 * 0.9).sin())
            .collect();
        let row_field: Vec<f64> = {
            let mut acc = 0.0;
            (0..n)
                .map(|_| {
                    acc = 0.95 * acc + 4.0 * rng.normal();
                    acc
                })
                .collect()
        };
        Frame::from_fn(n, n, |x, y| {
            let mut v = 128.0 + col_mean[x] + row_field[y] + 10.0 * rng.normal();
            if rng.chance(0.002) {
                v += 90.0;
            }
            v.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn ladder_has_six_rungs_in_order() {
        let s = stages();
        assert_eq!(s.len(), 6);
        assert!(!s[0].pipeline.entropy);
        assert!(s[1].pipeline.entropy && !s[1].pipeline.transform);
        assert!(s[2].pipeline.transform && !s[2].pipeline.adaptive_partition);
        assert!(s[3].pipeline.adaptive_partition && !s[3].pipeline.intra);
        assert!(s[4].pipeline.intra && !s[4].pipeline.inter);
        assert!(s[5].pipeline.inter);
    }

    #[test]
    fn stage1_is_exactly_eight_bits_plus_header() {
        let frames = [weight_frame(10, 64)];
        let r = run_stage(&frames, &Profile::h265(), &stages()[0], 10.0);
        assert!(r.bits_per_value >= 8.0);
        assert!(r.bits_per_value < 8.2, "raw storage {}", r.bits_per_value);
        assert_eq!(r.mse, 0.0);
    }

    #[test]
    fn each_stage_reduces_bits_until_inter() {
        // The core Fig 2(b) shape: monotone drop through stage 5, no gain
        // from stage 6. Uses a small frame so the test stays fast.
        let frames = [weight_frame(11, 64)];
        let profile = Profile::h265();
        let results = run_all(&frames, &profile, 10.0);
        let bits: Vec<f64> = results.iter().map(|r| r.bits_per_value).collect();
        assert!(bits[1] < bits[0], "entropy coding must beat raw: {bits:?}");
        assert!(
            bits[2] < bits[1],
            "transform must beat entropy-only: {bits:?}"
        );
        assert!(
            bits[4] < bits[2],
            "intra must beat transform-only: {bits:?}"
        );
        // Inter gives nothing on a single frame (and little on weight
        // stacks) — allow noise but no real win.
        assert!(bits[5] >= bits[4] * 0.95, "inter should not help: {bits:?}");
        // MSE budget respected wherever entropy coding is on.
        for r in &results[1..] {
            assert!(r.mse <= 10.0 + 1e-9, "{}: mse {}", r.label, r.mse);
        }
    }
}
