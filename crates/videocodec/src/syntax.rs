//! Bitstream syntax: context models, residual coding, and bit-cost
//! estimation.
//!
//! Syntax functions are generic over a [`BinSink`] so the same code path
//! serves three backends: the real CABAC encoder, and a [`BitCounter`]
//! that accumulates fractional bit costs for the encoder's RD decisions
//! without emitting anything. The decoder mirrors the structure through
//! [`CabacDecoder`] directly.
//!
//! Residual coding follows H.265's scheme: coded-block flag, last
//! significant scan position, per-position significance flags, then
//! greater-1 / greater-2 flags with adaptive-Rice coded remainders and
//! bypass signs.

use llm265_bitstream::cabac::{CabacDecoder, CabacEncoder, Prob};

use crate::scan;
use crate::DecodeError;

/// Maximum truncated-Rice prefix before escaping to exp-Golomb.
const RICE_MAX_PREFIX: u32 = 4;
/// Cap on the adaptive Rice parameter.
const RICE_MAX_K: u32 = 8;

/// A destination for binary symbols: either the real arithmetic coder or a
/// cost counter used during RD search.
pub trait BinSink {
    /// Codes one bit under an adaptive context.
    fn bit(&mut self, ctx: &mut Prob, b: bool);
    /// Codes one equiprobable bit.
    fn bypass(&mut self, b: bool);

    /// Codes `n` bypass bits, MSB first.
    fn bypass_bits(&mut self, v: u64, n: u32) {
        for i in (0..n).rev() {
            self.bypass((v >> i) & 1 == 1);
        }
    }
}

impl BinSink for CabacEncoder {
    fn bit(&mut self, ctx: &mut Prob, b: bool) {
        self.encode_bit(ctx, b);
    }

    fn bypass(&mut self, b: bool) {
        self.encode_bypass(b);
    }

    fn bypass_bits(&mut self, v: u64, n: u32) {
        // Batched fast path: byte-identical to the default bin-by-bin
        // loop (see `CabacEncoder::encode_bypass_bits`).
        self.encode_bypass_bits(v, n);
    }
}

/// Accumulates the fractional bit cost of a syntax sequence, updating the
/// context models exactly like the real encoder would.
#[derive(Debug, Clone, Default)]
pub struct BitCounter {
    bits: f64,
}

impl BitCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits accumulated.
    pub fn bits(&self) -> f64 {
        self.bits
    }
}

impl BinSink for BitCounter {
    fn bit(&mut self, ctx: &mut Prob, b: bool) {
        self.bits += ctx.cost_bits(b);
        // Evolve the context exactly as the arithmetic coder would, so RD
        // estimates and real encoding see the same probabilities.
        ctx.update(b);
    }

    fn bypass(&mut self, _b: bool) {
        self.bits += 1.0;
    }

    fn bypass_bits(&mut self, _v: u64, n: u32) {
        // Bypass bins cost exactly one bit each; no need to walk them.
        self.bits += f64::from(n);
    }
}

/// The adaptive context models used by the frame coder.
#[derive(Debug, Clone, Default)]
pub struct Contexts {
    /// Quad-tree split flag.
    pub split: Prob,
    /// Intra/inter selector for P-frames.
    pub inter_flag: Prob,
    /// Most-probable-mode flag.
    pub mpm: Prob,
    /// Coded-block flags, indexed by "is spatial residual".
    pub cbf: [Prob; 2],
    /// Last-significant-position prefix bins.
    pub last_prefix: [Prob; 12],
    /// Significance flags by region (DC / low / high frequency).
    pub sig: [Prob; 3],
    /// Level greater-than-1 flags.
    pub gt1: [Prob; 2],
    /// Level greater-than-2 flag.
    pub gt2: Prob,
}

impl Contexts {
    /// Fresh contexts (used at every frame start so frames decode
    /// independently).
    pub fn new() -> Self {
        Self::default()
    }
}

fn sig_ctx_index(scan_pos: usize, n: usize) -> usize {
    if scan_pos == 0 {
        0
    } else if scan_pos < n {
        1
    } else {
        2
    }
}

/// Codes the quantized level block of one TU (size `n`, row-major levels in
/// raster order).
pub fn code_residual<S: BinSink>(
    sink: &mut S,
    ctxs: &mut Contexts,
    levels: &[i32],
    n: usize,
    spatial: bool,
) {
    let scan_order = scan::diagonal(n);
    debug_assert_eq!(levels.len(), n * n);

    // Last significant position in scan order.
    let mut last = None;
    for (p, &(x, y)) in scan_order.iter().enumerate() {
        if levels[usize::from(y) * n + usize::from(x)] != 0 {
            last = Some(p);
        }
    }

    let cbf_ctx = spatial as usize;
    match last {
        None => {
            sink.bit(&mut ctxs.cbf[cbf_ctx], false);
        }
        Some(last) => {
            sink.bit(&mut ctxs.cbf[cbf_ctx], true);
            // Scan positions top out at 32·32 - 1, well inside u32.
            code_last_pos(sink, ctxs, u32::try_from(last).unwrap_or(u32::MAX));

            // Rice parameter adapts within the TU.
            let mut rice_k: u32 = if spatial { 3 } else { 0 };
            for (p, &(x, y)) in scan_order.iter().enumerate().take(last + 1) {
                let v = levels[usize::from(y) * n + usize::from(x)];
                if p < last {
                    let sig = v != 0;
                    let ci = sig_ctx_index(p, n);
                    sink.bit(&mut ctxs.sig[ci], sig);
                    if !sig {
                        continue;
                    }
                }
                // Level magnitude (>= 1 here).
                let mag = v.unsigned_abs();
                let g1 = mag > 1;
                sink.bit(&mut ctxs.gt1[(p == 0) as usize], g1);
                if g1 {
                    let g2 = mag > 2;
                    sink.bit(&mut ctxs.gt2, g2);
                    if g2 {
                        code_remainder(sink, mag - 3, rice_k);
                    }
                }
                if mag > (3 << rice_k) && rice_k < RICE_MAX_K {
                    rice_k += 1;
                }
                sink.bypass(v < 0);
            }
        }
    }
}

/// Parses one TU's levels (inverse of [`code_residual`]).
pub fn parse_residual(
    dec: &mut CabacDecoder<'_>,
    ctxs: &mut Contexts,
    n: usize,
    spatial: bool,
) -> Result<Vec<i32>, DecodeError> {
    let scan_order = scan::diagonal(n);
    let mut levels = vec![0i32; n * n];

    let cbf_ctx = spatial as usize;
    if !dec.decode_bit(&mut ctxs.cbf[cbf_ctx]) {
        return Ok(levels);
    }
    let last = parse_last_pos(dec, ctxs)? as usize;
    let last = last.min(n * n - 1);

    let mut rice_k: u32 = if spatial { 3 } else { 0 };
    for (p, &(x, y)) in scan_order.iter().enumerate().take(last + 1) {
        let sig = if p < last {
            dec.decode_bit(&mut ctxs.sig[sig_ctx_index(p, n)])
        } else {
            true
        };
        if !sig {
            continue;
        }
        let mut mag = 1u32;
        if dec.decode_bit(&mut ctxs.gt1[(p == 0) as usize]) {
            mag = 2;
            if dec.decode_bit(&mut ctxs.gt2) {
                mag = 3 + parse_remainder(dec, rice_k)?;
            }
        }
        if mag > (3 << rice_k) && rice_k < RICE_MAX_K {
            rice_k += 1;
        }
        let neg = dec.decode_bypass();
        // A hostile remainder can exceed i32::MAX; saturate instead of
        // wrapping the magnitude into a sign-flipped level.
        let mag = i32::try_from(mag).unwrap_or(i32::MAX);
        levels[usize::from(y) * n + usize::from(x)] = if neg { -mag } else { mag };
    }
    Ok(levels)
}

/// Codes the last significant scan position: the bit-length of `pos + 1`
/// unary with contexts, then the trailing bits in bypass.
fn code_last_pos<S: BinSink>(sink: &mut S, ctxs: &mut Contexts, pos: u32) {
    let v = pos + 1;
    let len = 32 - v.leading_zeros(); // >= 1
    for i in 0..len - 1 {
        sink.bit(&mut ctxs.last_prefix[(i.min(11)) as usize], true);
    }
    sink.bit(&mut ctxs.last_prefix[((len - 1).min(11)) as usize], false);
    if len > 1 {
        sink.bypass_bits(u64::from(v & !(1 << (len - 1))), len - 1);
    }
}

fn parse_last_pos(dec: &mut CabacDecoder<'_>, ctxs: &mut Contexts) -> Result<u32, DecodeError> {
    let mut len = 1u32;
    while dec.decode_bit(&mut ctxs.last_prefix[((len - 1).min(11)) as usize]) {
        len += 1;
        if len > 20 {
            // Corrupt stream: saturate rather than loop.
            break;
        }
    }
    let suffix = if len > 1 {
        // `len <= 21`, so the suffix always fits u32; `try_from` states
        // that width contract explicitly instead of silently truncating.
        u32::try_from(dec.decode_bypass_bits(len - 1))
            .map_err(|_| DecodeError::Corrupt("last-position suffix exceeds 32 bits"))?
    } else {
        0
    };
    Ok(((1u32 << (len - 1)) | suffix) - 1)
}

/// Codes a level remainder with truncated-Rice + exp-Golomb escape
/// (H.265's `coeff_abs_level_remaining` binarization). The whole Rice
/// code — unary quotient, terminator and `k` suffix bits — is assembled
/// into a single batched bypass call (at most `3 + 1 + 8 = 12` bins).
pub fn code_remainder<S: BinSink>(sink: &mut S, r: u32, k: u32) {
    let q = r >> k;
    if q < RICE_MAX_PREFIX {
        let prefix = ((1u64 << q) - 1) << 1; // q one-bits, then the 0.
        sink.bypass_bits((prefix << k) | u64::from(r & ((1 << k) - 1)), q + 1 + k);
    } else {
        sink.bypass_bits((1u64 << RICE_MAX_PREFIX) - 1, RICE_MAX_PREFIX);
        code_eg(sink, r - (RICE_MAX_PREFIX << k), k + 1);
    }
}

/// Parses a truncated-Rice remainder.
pub fn parse_remainder(dec: &mut CabacDecoder<'_>, k: u32) -> Result<u32, DecodeError> {
    let mut q = 0u32;
    while q < RICE_MAX_PREFIX && dec.decode_bypass() {
        q += 1;
    }
    if q < RICE_MAX_PREFIX {
        // `k <= RICE_MAX_K = 8`, so the low bits always fit u32.
        let low = u32::try_from(dec.decode_bypass_bits(k))
            .map_err(|_| DecodeError::Corrupt("rice suffix exceeds 32 bits"))?;
        Ok((q << k) | low)
    } else {
        Ok((RICE_MAX_PREFIX << k) + parse_eg(dec, k + 1)?)
    }
}

/// k-th order exp-Golomb in bypass bits. The interleaved bin-by-bin loop
/// is split into an arithmetic prefix count followed by one batched
/// bypass call carrying prefix, terminator and suffix (at most 62 bins).
fn code_eg<S: BinSink>(sink: &mut S, v: u32, m0: u32) {
    let mut rem = v;
    let mut m = m0;
    let mut ones = 0u32;
    while m < 31 && rem >= (1 << m) {
        rem -= 1 << m;
        m += 1;
        ones += 1;
    }
    // `ones` grows in lockstep with `m`, which the loop caps below 31.
    debug_assert!(ones <= 30, "exp-Golomb prefix exceeds the order cap");
    if m < 31 {
        let prefix = ((1u64 << ones) - 1) << 1; // `ones` one-bits, then the 0.
        sink.bypass_bits((prefix << m) | u64::from(rem), ones + 1 + m);
    } else {
        // Saturated prefix (truncated unary): the parser's own `m < 31`
        // cap ends the prefix, so coding a terminator would desync it.
        let prefix = (1u64 << ones) - 1;
        sink.bypass_bits((prefix << m) | u64::from(rem), ones + m);
    }
}

fn parse_eg(dec: &mut CabacDecoder<'_>, mut m: u32) -> Result<u32, DecodeError> {
    let mut base = 0u32;
    while m < 31 && dec.decode_bypass() {
        base += 1 << m;
        m += 1;
    }
    // `m <= 31`, so the suffix always fits u32; `try_from` states that
    // width contract explicitly instead of silently truncating.
    let suffix = u32::try_from(dec.decode_bypass_bits(m))
        .map_err(|_| DecodeError::Corrupt("exp-golomb suffix exceeds 32 bits"))?;
    Ok(base + suffix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;

    fn roundtrip_levels(levels: &[i32], n: usize, spatial: bool) -> f64 {
        let mut enc = CabacEncoder::new();
        let mut ctxs = Contexts::new();
        code_residual(&mut enc, &mut ctxs, levels, n, spatial);
        let bytes = enc.finish();
        let mut dec = CabacDecoder::new(&bytes);
        let mut ctxs = Contexts::new();
        let parsed = parse_residual(&mut dec, &mut ctxs, n, spatial).expect("parse");
        assert_eq!(parsed, levels);
        bytes.len() as f64 * 8.0 / (n * n) as f64
    }

    #[test]
    fn exp_golomb_prefix_cap_boundary() {
        // The largest order-1 value that still round-trips drives the
        // prefix counter to its exact cap: `m` climbs to 31 and `ones` to
        // 30 before the `m < 31` guard stops the loop, and the 31-bit
        // suffix is full. One more prefix step would spill the batch.
        let top = u32::MAX - 2; // sum(2^1..=2^30) + (2^31 - 1)
        let mut enc = CabacEncoder::new();
        code_eg(&mut enc, top, 1);
        code_eg(&mut enc, 0, 1);
        let bytes = enc.finish();
        let mut dec = CabacDecoder::new(&bytes);
        assert_eq!(parse_eg(&mut dec, 1).expect("parse top"), top);
        assert_eq!(parse_eg(&mut dec, 1).expect("parse zero"), 0);
    }

    #[test]
    fn zero_block_costs_almost_nothing() {
        // Amortized over many TUs (a single stream carries ~5 bytes of
        // arithmetic-coder flush padding regardless of content).
        let mut enc = CabacEncoder::new();
        let mut ctxs = Contexts::new();
        let levels = vec![0i32; 64];
        let blocks = 64;
        for _ in 0..blocks {
            code_residual(&mut enc, &mut ctxs, &levels, 8, false);
        }
        let bytes = enc.finish();
        let bpp = bytes.len() as f64 * 8.0 / (blocks * 64) as f64;
        assert!(bpp < 0.05, "bits/coeff {bpp}");
        let mut dec = CabacDecoder::new(&bytes);
        let mut ctxs = Contexts::new();
        for _ in 0..blocks {
            assert_eq!(
                parse_residual(&mut dec, &mut ctxs, 8, false).expect("parse"),
                levels
            );
        }
    }

    #[test]
    fn single_dc_level() {
        let mut levels = vec![0i32; 64];
        levels[0] = 5;
        roundtrip_levels(&levels, 8, false);
        levels[0] = -1;
        roundtrip_levels(&levels, 8, false);
    }

    #[test]
    fn dense_random_levels_roundtrip_all_sizes() {
        let mut rng = Pcg32::seed_from(42);
        for &n in &[4usize, 8, 16, 32] {
            let levels: Vec<i32> = (0..n * n)
                .map(|_| {
                    if rng.chance(0.3) {
                        rng.below(41) as i32 - 20
                    } else {
                        0
                    }
                })
                .collect();
            roundtrip_levels(&levels, n, false);
            roundtrip_levels(&levels, n, true);
        }
    }

    #[test]
    fn huge_levels_roundtrip() {
        let mut levels = vec![0i32; 16];
        levels[0] = 100_000;
        levels[5] = -65_000;
        levels[15] = 1;
        roundtrip_levels(&levels, 4, false);
    }

    #[test]
    fn sparse_blocks_cheaper_than_dense() {
        let mut rng = Pcg32::seed_from(7);
        let sparse: Vec<i32> = (0..256)
            .map(|_| {
                if rng.chance(0.05) {
                    rng.below(5) as i32 + 1
                } else {
                    0
                }
            })
            .collect();
        let dense: Vec<i32> = (0..256)
            .map(|_| {
                if rng.chance(0.6) {
                    rng.below(9) as i32 - 4
                } else {
                    1
                }
            })
            .collect();
        let b_sparse = roundtrip_levels(&sparse, 16, false);
        let b_dense = roundtrip_levels(&dense, 16, false);
        assert!(b_sparse < b_dense, "{b_sparse} vs {b_dense}");
    }

    #[test]
    fn remainder_roundtrip_wide_range() {
        for k in 0..=RICE_MAX_K {
            let mut enc = CabacEncoder::new();
            let values = [0u32, 1, 2, 3, 15, 16, 100, 4095, 1 << 20];
            for &v in &values {
                code_remainder(&mut enc, v, k);
            }
            let bytes = enc.finish();
            let mut dec = CabacDecoder::new(&bytes);
            for &v in &values {
                assert_eq!(parse_remainder(&mut dec, k).expect("parse"), v, "k={k}");
            }
        }
    }

    #[test]
    fn last_pos_roundtrip() {
        let mut enc = CabacEncoder::new();
        let mut ctxs = Contexts::new();
        let values = [0u32, 1, 2, 7, 8, 63, 255, 1023];
        for &v in &values {
            code_last_pos(&mut enc, &mut ctxs, v);
        }
        let bytes = enc.finish();
        let mut dec = CabacDecoder::new(&bytes);
        let mut ctxs = Contexts::new();
        for &v in &values {
            assert_eq!(parse_last_pos(&mut dec, &mut ctxs).expect("parse"), v);
        }
    }

    #[test]
    fn counter_matches_encoder() {
        // BitCounter's context evolution must track the real encoder's so
        // RD estimates stay honest.
        let mut rng = Pcg32::seed_from(3);
        let levels: Vec<i32> = (0..256)
            .map(|_| {
                if rng.chance(0.2) {
                    rng.below(11) as i32 - 5
                } else {
                    0
                }
            })
            .collect();
        let mut counter = BitCounter::new();
        let mut ctxs_a = Contexts::new();
        code_residual(&mut counter, &mut ctxs_a, &levels, 16, false);

        let mut enc = CabacEncoder::new();
        let mut ctxs_b = Contexts::new();
        code_residual(&mut enc, &mut ctxs_b, &levels, 16, false);
        let actual = enc.finish().len() as f64 * 8.0;

        assert!(
            (counter.bits() - actual).abs() < actual * 0.15 + 16.0,
            "estimate {} vs actual {actual}",
            counter.bits()
        );
        // Contexts must have evolved identically.
        assert!((ctxs_a.sig[1].p0() - ctxs_b.sig[1].p0()).abs() < 1e-9);
        assert!((ctxs_a.gt1[0].p0() - ctxs_b.gt1[0].p0()).abs() < 1e-9);
    }

    #[test]
    fn eg_roundtrip() {
        for m in 1..6 {
            let mut enc = CabacEncoder::new();
            let values = [0u32, 1, 5, 100, 10_000, 1 << 22];
            for &v in &values {
                code_eg(&mut enc, v, m);
            }
            let bytes = enc.finish();
            let mut dec = CabacDecoder::new(&bytes);
            for &v in &values {
                assert_eq!(parse_eg(&mut dec, m).expect("parse"), v);
            }
        }
    }
}
