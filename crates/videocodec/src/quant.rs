//! Scalar quantization with the H.265 QP→step mapping.
//!
//! The quantizer is where the codec's *continuous* rate knob lives: QP is
//! a real number here (hardware uses integers plus per-block offsets; the
//! effect is the same), and `qstep = 2^((qp-4)/6)` doubles the step every
//! 6 QP, exactly as in H.264/H.265. Fractional bitrates — the paper's
//! headline versatility feature — fall out of sweeping QP continuously.

/// Quantization parameter range. H.265 uses 0..=51 for 8-bit video.
pub const QP_MIN: f64 = 0.0;
/// Upper end of the QP range.
pub const QP_MAX: f64 = 51.0;

/// Step size for a (possibly fractional) QP: `2^((qp-4)/6)`.
pub fn qstep(qp: f64) -> f64 {
    2f64.powf((qp - 4.0) / 6.0)
}

/// Lagrangian multiplier for RD decisions at a QP, in SSD-per-bit units.
/// The constant follows the HM reference encoder's intra tuning.
pub fn lambda(qp: f64) -> f64 {
    0.57 * 2f64.powf((qp - 12.0) / 3.0)
}

/// Dead-zone scalar quantizer.
///
/// Intra coding uses a rounding offset of 1/3 (HM's choice): values near a
/// step boundary round toward zero, trading a little distortion for
/// markedly fewer significant coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    step: f64,
    offset: f64,
}

impl Quantizer {
    /// Creates the quantizer for a QP.
    ///
    /// # Panics
    ///
    /// Panics if `qp` is outside `[QP_MIN, QP_MAX]`.
    pub fn from_qp(qp: f64) -> Self {
        assert!(
            (QP_MIN..=QP_MAX).contains(&qp),
            "qp {qp} out of range [{QP_MIN}, {QP_MAX}]"
        );
        Quantizer {
            step: qstep(qp),
            offset: 1.0 / 3.0,
        }
    }

    /// The quantization step size.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Quantizes one coefficient to an integer level.
    #[inline]
    pub fn quantize(&self, c: f64) -> i32 {
        let mag = (c.abs() / self.step + self.offset).floor();
        (mag.min(i32::MAX as f64) as i32) * c.signum() as i32
    }

    /// Dequantizes a level back to a coefficient value.
    #[inline]
    pub fn dequantize(&self, level: i32) -> f64 {
        level as f64 * self.step
    }

    /// Quantizes a whole coefficient block.
    pub fn quantize_block(&self, coeffs: &[f64]) -> Vec<i32> {
        coeffs.iter().map(|&c| self.quantize(c)).collect()
    }

    /// [`Self::quantize_block`] into a caller-owned buffer, for hot loops
    /// that process many blocks without reallocating.
    pub fn quantize_block_into(&self, coeffs: &[f64], out: &mut Vec<i32>) {
        out.clear();
        out.extend(coeffs.iter().map(|&c| self.quantize(c)));
    }

    /// Dequantizes a whole level block.
    pub fn dequantize_block(&self, levels: &[i32]) -> Vec<f64> {
        levels.iter().map(|&l| self.dequantize(l)).collect()
    }

    /// [`Self::dequantize_block`] into a caller-owned buffer, for hot
    /// loops that process many blocks without reallocating.
    pub fn dequantize_block_into(&self, levels: &[i32], out: &mut Vec<f64>) {
        out.clear();
        out.extend(levels.iter().map(|&l| self.dequantize(l)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qstep_doubles_every_six_qp() {
        let s0 = qstep(22.0);
        let s1 = qstep(28.0);
        assert!((s1 / s0 - 2.0).abs() < 1e-12);
        // Anchor: qstep(4) = 1.
        assert!((qstep(4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_grows_with_qp() {
        assert!(lambda(30.0) > lambda(20.0));
        assert!(lambda(20.0) > 0.0);
    }

    #[test]
    fn quantize_zero_stays_zero() {
        let q = Quantizer::from_qp(28.0);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.dequantize(0), 0.0);
    }

    #[test]
    fn quantize_is_odd_symmetric() {
        let q = Quantizer::from_qp(24.0);
        for &c in &[0.3, 1.7, 12.0, 555.5] {
            assert_eq!(q.quantize(c), -q.quantize(-c));
        }
    }

    #[test]
    fn reconstruction_error_bounded_by_step() {
        let q = Quantizer::from_qp(30.0);
        let step = q.step();
        let mut c = -300.0;
        while c < 300.0 {
            let level = q.quantize(c);
            let r = q.dequantize(level);
            assert!((r - c).abs() <= step, "err {} at {c}", (r - c).abs());
            c += 0.37;
        }
    }

    #[test]
    fn dead_zone_rounds_small_values_to_zero() {
        let q = Quantizer::from_qp(28.0);
        let step = q.step();
        // With offset 1/3, anything below (2/3)·step quantizes to 0.
        assert_eq!(q.quantize(0.6 * step), 0);
        assert_ne!(q.quantize(0.7 * step), 0);
    }

    #[test]
    fn finer_qp_means_smaller_error() {
        let fine = Quantizer::from_qp(10.0);
        let coarse = Quantizer::from_qp(40.0);
        let c = 37.123;
        let ef = (fine.dequantize(fine.quantize(c)) - c).abs();
        let ec = (coarse.dequantize(coarse.quantize(c)) - c).abs();
        assert!(ef < ec);
    }

    #[test]
    fn fractional_qp_interpolates_steps() {
        let a = qstep(27.0);
        let b = qstep(28.0);
        let mid = qstep(27.5);
        assert!(a < mid && mid < b);
    }

    #[test]
    fn block_helpers_match_scalar_ops() {
        let q = Quantizer::from_qp(26.0);
        let coeffs = [0.0, 5.5, -12.25, 100.0];
        let levels = q.quantize_block(&coeffs);
        for (i, &c) in coeffs.iter().enumerate() {
            assert_eq!(levels[i], q.quantize(c));
        }
        let back = q.dequantize_block(&levels);
        for (i, &l) in levels.iter().enumerate() {
            assert_eq!(back[i], q.dequantize(l));
        }
        let mut buf = vec![99.0; 7]; // stale contents must be overwritten
        q.dequantize_block_into(&levels, &mut buf);
        assert_eq!(buf, back);
        let mut lbuf = vec![7i32; 3]; // stale contents must be overwritten
        q.quantize_block_into(&coeffs, &mut lbuf);
        assert_eq!(lbuf, levels);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qp_out_of_range_panics() {
        let _ = Quantizer::from_qp(60.0);
    }
}
