//! Orthonormal 2-D DCT transform coding.
//!
//! §3.1 of the paper attributes transform coding's effectiveness on
//! tensors not to perceptual frequency weighting but to **outlier
//! mitigation**: the DCT spreads a single huge value across all
//! coefficients of its block (Fig 3), so a uniform quantizer no longer has
//! to choose between resolving the body and covering the outlier. The
//! transforms here are orthonormal (Parseval holds exactly up to f64
//! rounding), so squared error in the coefficient domain equals squared
//! error in the pixel domain — which is what makes RD optimisation in the
//! coefficient domain legitimate.
//!
//! # Deterministic lane kernels
//!
//! Both matrix passes run as rank-1 (`axpy`) updates over contiguous
//! rows: every output coefficient accumulates its own sum in exactly the
//! textbook triple-loop order, and the lane backends ([`ScalarLanes`],
//! SSE2, AVX2) only advance several *independent* outputs per
//! instruction. No sum is ever split across lanes and no reduction tree
//! exists, so scalar and SIMD produce bit-identical coefficients — the
//! encoded bytes match the golden hashes on every machine. The backend is
//! picked once per plan by [`detect_lane_backend`]; see DESIGN.md
//! ("Deterministic SIMD") for why AVX2 is additionally compile-time gated
//! under the workspace's no-`unsafe` policy.

/// Supported transform sizes.
pub const SIZES: [usize; 4] = [4, 8, 16, 32];

/// Which vector unit executes the lane kernels. Variants exist only where
/// the corresponding intrinsics compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneBackend {
    /// Portable fixed-shape 4-wide unrolled scalar lanes.
    Scalar,
    /// 128-bit SSE2 lanes (part of the x86-64 baseline).
    #[cfg(target_arch = "x86_64")]
    Sse2,
    /// 256-bit AVX2 lanes; compiled only when the build statically enables
    /// the feature (e.g. `RUSTFLAGS=-Ctarget-cpu=x86-64-v3`), so the lane
    /// shape matches the instructions LLVM may actually emit.
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    Avx2,
}

/// Picks the widest compiled-in lane backend the running CPU supports.
///
/// Pure backend selector: the choice never alters any kernel's
/// arithmetic — every backend executes the identical per-output operation
/// sequence — it only decides how many independent outputs advance per
/// instruction. This is what keeps runtime CPU detection out of the
/// determinism lint's way.
fn detect_lane_backend() -> LaneBackend {
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return LaneBackend::Avx2;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            return LaneBackend::Sse2;
        }
    }
    LaneBackend::Scalar
}

/// A lane backend: applies the rank-1 update `acc[j] += s · v[j]` with
/// element-wise ("vertical") operations only. Every implementation
/// performs the identical per-lane IEEE multiply then add — no fused
/// multiply-add, no horizontal combine — so each output's rounding
/// sequence matches the scalar kernel bit for bit. The backends differ
/// only in their blocking shape: each mirrors one vector register of its
/// ISA level, which is what LLVM turns into the corresponding packed
/// `mulpd`/`addpd` forms (the crate-wide `forbid(unsafe_code)` rules out
/// calling the `core::arch` intrinsics directly — see DESIGN.md).
trait Lanes: Copy {
    /// `acc[j] += s * v[j]` for all `j`; slice lengths are equal and a
    /// multiple of 4 (every supported transform size is).
    fn axpy(self, acc: &mut [f64], s: f64, v: &[f64]);
}

/// Portable reference lanes: one output per step, the textbook loop.
#[derive(Clone, Copy)]
struct ScalarLanes;

impl Lanes for ScalarLanes {
    #[inline]
    fn axpy(self, acc: &mut [f64], s: f64, v: &[f64]) {
        for (a, x) in acc.iter_mut().zip(v) {
            *a += s * *x;
        }
    }
}

/// SSE2-shaped lanes: explicit 2-wide groups matching one 128-bit
/// register (2 × f64), the x86-64 baseline vector width.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
struct Sse2Lanes;

#[cfg(target_arch = "x86_64")]
impl Lanes for Sse2Lanes {
    #[inline]
    fn axpy(self, acc: &mut [f64], s: f64, v: &[f64]) {
        for (a, x) in acc.chunks_exact_mut(2).zip(v.chunks_exact(2)) {
            a[0] += s * x[0];
            a[1] += s * x[1];
        }
    }
}

/// AVX2-shaped lanes: explicit 4-wide groups matching one 256-bit
/// register (4 × f64). Compiled only when the build statically enables
/// the feature (e.g. `RUSTFLAGS=-Ctarget-cpu=x86-64-v3`) so that the
/// blocking shape and the instruction set LLVM emits for it agree.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
#[derive(Clone, Copy)]
struct Avx2Lanes;

#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
impl Lanes for Avx2Lanes {
    #[inline]
    fn axpy(self, acc: &mut [f64], s: f64, v: &[f64]) {
        for (a, x) in acc.chunks_exact_mut(4).zip(v.chunks_exact(4)) {
            a[0] += s * x[0];
            a[1] += s * x[1];
            a[2] += s * x[2];
            a[3] += s * x[3];
        }
    }
}

/// Both forward passes as rank-1 updates over contiguous rows. Each
/// output coefficient starts at 0.0 and accumulates in ascending `i`
/// order — the same add sequence as the textbook triple loop, so the
/// result is bit-identical to it on every backend.
fn forward_passes<L: Lanes>(
    plan: &DctPlan,
    block: &[i32],
    tmp: &mut [f64],
    out: &mut [f64],
    lanes: L,
) {
    let n = plan.n;
    // Pass 1 (rows): tmp[y][k] = sum_i block[y][i] * basis[k][i].
    for y in 0..n {
        let row = &mut tmp[y * n..(y + 1) * n];
        for i in 0..n {
            lanes.axpy(
                row,
                block[y * n + i] as f64,
                &plan.basis_t[i * n..(i + 1) * n],
            );
        }
    }
    // Pass 2 (columns): out[k][x] = sum_i tmp[i][x] * basis[k][i].
    for k in 0..n {
        let row = &mut out[k * n..(k + 1) * n];
        for i in 0..n {
            lanes.axpy(row, plan.basis[k * n + i], &tmp[i * n..(i + 1) * n]);
        }
    }
}

/// Both inverse passes as rank-1 updates; same bit-exactness contract as
/// [`forward_passes`].
fn inverse_passes<L: Lanes>(
    plan: &DctPlan,
    coeffs: &[f64],
    tmp: &mut [f64],
    out: &mut [i32],
    lanes: L,
) {
    let n = plan.n;
    // Pass 1 (columns): tmp[i][x] = sum_k coeffs[k][x] * basis[k][i].
    for i in 0..n {
        let row = &mut tmp[i * n..(i + 1) * n];
        for k in 0..n {
            lanes.axpy(row, plan.basis[k * n + i], &coeffs[k * n..(k + 1) * n]);
        }
    }
    // Pass 2 (rows): out[y][i] = round(sum_k tmp[y][k] * basis[k][i]).
    // The f64 accumulator row lives on the stack (n <= 32).
    let mut acc = [0.0f64; 32];
    for y in 0..n {
        acc[..n].fill(0.0);
        for k in 0..n {
            lanes.axpy(
                &mut acc[..n],
                tmp[y * n + k],
                &plan.basis[k * n..(k + 1) * n],
            );
        }
        for (o, a) in out[y * n..(y + 1) * n].iter_mut().zip(&acc[..n]) {
            *o = a.round() as i32;
        }
    }
}

/// Precomputed orthonormal DCT-II basis for one size.
#[derive(Debug, Clone)]
pub struct DctPlan {
    n: usize,
    // basis[k*n + i] = alpha_k * cos(pi/n * (i + 0.5) * k)
    basis: Vec<f64>,
    // Transposed basis, basis_t[i*n + k] = basis[k*n + i]: lets the lane
    // kernels read each rank-1 update's row contiguously.
    basis_t: Vec<f64>,
    backend: LaneBackend,
}

impl DctPlan {
    /// Builds a plan for transform size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not one of [`SIZES`].
    pub fn new(n: usize) -> Self {
        assert!(SIZES.contains(&n), "unsupported transform size {n}");
        let mut basis = vec![0.0; n * n];
        for k in 0..n {
            let alpha = if k == 0 {
                (1.0 / n as f64).sqrt()
            } else {
                (2.0 / n as f64).sqrt()
            };
            for i in 0..n {
                basis[k * n + i] =
                    alpha * (std::f64::consts::PI / n as f64 * (i as f64 + 0.5) * k as f64).cos();
            }
        }
        let mut basis_t = vec![0.0; n * n];
        for k in 0..n {
            for i in 0..n {
                basis_t[i * n + k] = basis[k * n + i];
            }
        }
        DctPlan {
            n,
            basis,
            basis_t,
            backend: detect_lane_backend(),
        }
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Name of the lane backend this plan executes on (`"scalar"`,
    /// `"sse2"` or `"avx2"`). Diagnostic only: every backend produces
    /// bit-identical coefficients.
    pub fn simd_backend(&self) -> &'static str {
        match self.backend {
            LaneBackend::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            LaneBackend::Sse2 => "sse2",
            #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
            LaneBackend::Avx2 => "avx2",
        }
    }

    /// Forward 2-D DCT of an `n × n` spatial block (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != n * n`.
    pub fn forward(&self, block: &[i32]) -> Vec<f64> {
        let mut tmp = Vec::new();
        let mut out = Vec::new();
        self.forward_into(block, &mut tmp, &mut out);
        out
    }

    /// [`Self::forward`] into caller-owned buffers, for hot loops that
    /// transform many blocks. `tmp` is workspace, `out` receives the
    /// coefficients; both are resized as needed. The arithmetic (and so
    /// the result, bit for bit) is identical to [`Self::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != n * n`.
    pub fn forward_into(&self, block: &[i32], tmp: &mut Vec<f64>, out: &mut Vec<f64>) {
        let n = self.n;
        assert_eq!(block.len(), n * n);
        // Rows then columns; O(n^3), fine at n <= 32. Accumulators start
        // at 0.0 (clear + resize fills every slot).
        tmp.clear();
        tmp.resize(n * n, 0.0);
        out.clear();
        out.resize(n * n, 0.0);
        match self.backend {
            LaneBackend::Scalar => forward_passes(self, block, tmp, out, ScalarLanes),
            #[cfg(target_arch = "x86_64")]
            LaneBackend::Sse2 => forward_passes(self, block, tmp, out, Sse2Lanes),
            #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
            LaneBackend::Avx2 => forward_passes(self, block, tmp, out, Avx2Lanes),
        }
    }

    /// Inverse 2-D DCT, rounding to the nearest integer residual.
    ///
    /// Deterministic: both encoder reconstruction and decoder run exactly
    /// this code on the same dequantized coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n * n`.
    pub fn inverse(&self, coeffs: &[f64]) -> Vec<i32> {
        let mut tmp = Vec::new();
        let mut out = Vec::new();
        self.inverse_into(coeffs, &mut tmp, &mut out);
        out
    }

    /// [`Self::inverse`] into caller-owned buffers — same contract as
    /// [`Self::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n * n`.
    pub fn inverse_into(&self, coeffs: &[f64], tmp: &mut Vec<f64>, out: &mut Vec<i32>) {
        let n = self.n;
        assert_eq!(coeffs.len(), n * n);
        tmp.clear();
        tmp.resize(n * n, 0.0);
        out.clear();
        out.resize(n * n, 0);
        match self.backend {
            LaneBackend::Scalar => inverse_passes(self, coeffs, tmp, out, ScalarLanes),
            #[cfg(target_arch = "x86_64")]
            LaneBackend::Sse2 => inverse_passes(self, coeffs, tmp, out, Sse2Lanes),
            #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
            LaneBackend::Avx2 => inverse_passes(self, coeffs, tmp, out, Avx2Lanes),
        }
    }
}

/// A cache of DCT plans for all supported sizes.
#[derive(Debug, Clone)]
pub struct DctPlans {
    plans: [DctPlan; 4],
}

impl DctPlans {
    /// Builds plans for every supported size.
    pub fn new() -> Self {
        DctPlans {
            plans: [
                DctPlan::new(4),
                DctPlan::new(8),
                DctPlan::new(16),
                DctPlan::new(32),
            ],
        }
    }

    /// The plan for size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is unsupported.
    pub fn get(&self, n: usize) -> &DctPlan {
        match n {
            4 => &self.plans[0],
            8 => &self.plans[1],
            16 => &self.plans[2],
            32 => &self.plans[3],
            // lint:allow(panic): transform sizes come from profile
            // constants, never from bitstream input.
            _ => panic!("unsupported transform size {n}"),
        }
    }
}

impl Default for DctPlans {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;

    #[test]
    fn forward_inverse_identity() {
        let mut rng = Pcg32::seed_from(1);
        for &n in &SIZES {
            let plan = DctPlan::new(n);
            let block: Vec<i32> = (0..n * n).map(|_| rng.below(256) as i32 - 128).collect();
            let coeffs = plan.forward(&block);
            let back = plan.inverse(&coeffs);
            assert_eq!(back, block, "size {n}");
        }
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let n = 8;
        let plan = DctPlan::new(n);
        let block = vec![100i32; n * n];
        let coeffs = plan.forward(&block);
        // Orthonormal 2-D DCT: DC = n * mean.
        assert!((coeffs[0] - 100.0 * n as f64).abs() < 1e-9);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-9, "AC coeff {i} = {c}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut rng = Pcg32::seed_from(2);
        let n = 16;
        let plan = DctPlan::new(n);
        let block: Vec<i32> = (0..n * n).map(|_| rng.below(256) as i32 - 128).collect();
        let coeffs = plan.forward(&block);
        let e_spatial: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
        let e_coeff: f64 = coeffs.iter().map(|&c| c * c).sum();
        assert!(
            (e_spatial - e_coeff).abs() / e_spatial < 1e-12,
            "parseval violated: {e_spatial} vs {e_coeff}"
        );
    }

    #[test]
    fn outlier_energy_is_spread_by_dct() {
        // Fig 3 of the paper: one outlier of 128 among small values; after
        // the DCT no coefficient should dwarf the rest the way the outlier
        // dwarfed its block.
        let n = 8;
        let plan = DctPlan::new(n);
        let mut block = vec![1i32; n * n];
        block[27] = 128;
        let peak_in = 128.0;
        let coeffs = plan.forward(&block);
        let peak_out = coeffs.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        // Outlier amplitude is amortized: peak drops by > 4x.
        assert!(peak_out < peak_in / 4.0, "peak after dct {peak_out}");
    }

    #[test]
    fn smooth_blocks_compact_into_few_coeffs() {
        let n = 8;
        let plan = DctPlan::new(n);
        let block: Vec<i32> = (0..n * n).map(|i| (i % n) as i32 * 4).collect(); // ramp
        let coeffs = plan.forward(&block);
        let total: f64 = coeffs.iter().map(|&c| c * c).sum();
        let mut sorted: Vec<f64> = coeffs.iter().map(|&c| c * c).collect();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let top4: f64 = sorted.iter().take(4).sum();
        assert!(top4 / total > 0.95, "energy compaction {}", top4 / total);
    }

    #[test]
    fn into_variants_match_allocating_ones_bit_for_bit() {
        let mut rng = Pcg32::seed_from(3);
        let mut tmp = Vec::new();
        let mut coeffs_buf = Vec::new();
        let mut back_buf = Vec::new();
        for &n in &SIZES {
            let plan = DctPlan::new(n);
            let block: Vec<i32> = (0..n * n).map(|_| rng.below(256) as i32 - 128).collect();
            let coeffs = plan.forward(&block);
            // Buffers deliberately carry stale contents from the previous
            // size; the _into contract is that they are fully overwritten.
            plan.forward_into(&block, &mut tmp, &mut coeffs_buf);
            assert_eq!(coeffs_buf, coeffs, "forward size {n}");
            let back = plan.inverse(&coeffs);
            plan.inverse_into(&coeffs_buf, &mut tmp, &mut back_buf);
            assert_eq!(back_buf, back, "inverse size {n}");
        }
    }

    #[test]
    fn plans_cache_covers_all_sizes() {
        let plans = DctPlans::new();
        for &n in &SIZES {
            assert_eq!(plans.get(n).size(), n);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn unsupported_size_panics() {
        let _ = DctPlan::new(5);
    }

    fn plan_with_backend(n: usize, backend: LaneBackend) -> DctPlan {
        let mut plan = DctPlan::new(n);
        plan.backend = backend;
        plan
    }

    fn compiled_backends() -> Vec<LaneBackend> {
        let mut v = vec![LaneBackend::Scalar];
        #[cfg(target_arch = "x86_64")]
        v.push(LaneBackend::Sse2);
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        v.push(LaneBackend::Avx2);
        v
    }

    #[test]
    fn every_compiled_backend_matches_scalar_bit_for_bit() {
        let mut rng = Pcg32::seed_from(9);
        for &n in &SIZES {
            let block: Vec<i32> = (0..n * n).map(|_| rng.below(256) as i32 - 128).collect();
            let scalar = plan_with_backend(n, LaneBackend::Scalar);
            let coeffs = scalar.forward(&block);
            let back = scalar.inverse(&coeffs);
            let coeff_bits: Vec<u64> = coeffs.iter().map(|c| c.to_bits()).collect();
            for backend in compiled_backends() {
                let plan = plan_with_backend(n, backend);
                let c = plan.forward(&block);
                let c_bits: Vec<u64> = c.iter().map(|v| v.to_bits()).collect();
                assert_eq!(c_bits, coeff_bits, "forward {backend:?} size {n}");
                assert_eq!(plan.inverse(&c), back, "inverse {backend:?} size {n}");
            }
        }
    }

    #[test]
    fn detected_backend_is_compiled_in_and_named() {
        let plan = DctPlan::new(8);
        assert!(compiled_backends().contains(&plan.backend));
        assert!(["scalar", "sse2", "avx2"].contains(&plan.simd_backend()));
    }
}
