//! Orthonormal 2-D DCT transform coding.
//!
//! §3.1 of the paper attributes transform coding's effectiveness on
//! tensors not to perceptual frequency weighting but to **outlier
//! mitigation**: the DCT spreads a single huge value across all
//! coefficients of its block (Fig 3), so a uniform quantizer no longer has
//! to choose between resolving the body and covering the outlier. The
//! transforms here are orthonormal (Parseval holds exactly up to f64
//! rounding), so squared error in the coefficient domain equals squared
//! error in the pixel domain — which is what makes RD optimisation in the
//! coefficient domain legitimate.

/// Supported transform sizes.
pub const SIZES: [usize; 4] = [4, 8, 16, 32];

/// Precomputed orthonormal DCT-II basis for one size.
#[derive(Debug, Clone)]
pub struct DctPlan {
    n: usize,
    // basis[k*n + i] = alpha_k * cos(pi/n * (i + 0.5) * k)
    basis: Vec<f64>,
}

impl DctPlan {
    /// Builds a plan for transform size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not one of [`SIZES`].
    pub fn new(n: usize) -> Self {
        assert!(SIZES.contains(&n), "unsupported transform size {n}");
        let mut basis = vec![0.0; n * n];
        for k in 0..n {
            let alpha = if k == 0 {
                (1.0 / n as f64).sqrt()
            } else {
                (2.0 / n as f64).sqrt()
            };
            for i in 0..n {
                basis[k * n + i] =
                    alpha * (std::f64::consts::PI / n as f64 * (i as f64 + 0.5) * k as f64).cos();
            }
        }
        DctPlan { n, basis }
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Forward 2-D DCT of an `n × n` spatial block (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != n * n`.
    pub fn forward(&self, block: &[i32]) -> Vec<f64> {
        let mut tmp = Vec::new();
        let mut out = Vec::new();
        self.forward_into(block, &mut tmp, &mut out);
        out
    }

    /// [`Self::forward`] into caller-owned buffers, for hot loops that
    /// transform many blocks. `tmp` is workspace, `out` receives the
    /// coefficients; both are resized as needed. The arithmetic (and so
    /// the result, bit for bit) is identical to [`Self::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != n * n`.
    pub fn forward_into(&self, block: &[i32], tmp: &mut Vec<f64>, out: &mut Vec<f64>) {
        let n = self.n;
        assert_eq!(block.len(), n * n);
        // Rows then columns; O(n^3), fine at n <= 32.
        tmp.clear();
        tmp.resize(n * n, 0.0);
        for y in 0..n {
            for k in 0..n {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += block[y * n + i] as f64 * self.basis[k * n + i];
                }
                tmp[y * n + k] = acc;
            }
        }
        out.clear();
        out.resize(n * n, 0.0);
        for x in 0..n {
            for k in 0..n {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += tmp[i * n + x] * self.basis[k * n + i];
                }
                out[k * n + x] = acc;
            }
        }
    }

    /// Inverse 2-D DCT, rounding to the nearest integer residual.
    ///
    /// Deterministic: both encoder reconstruction and decoder run exactly
    /// this code on the same dequantized coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n * n`.
    pub fn inverse(&self, coeffs: &[f64]) -> Vec<i32> {
        let mut tmp = Vec::new();
        let mut out = Vec::new();
        self.inverse_into(coeffs, &mut tmp, &mut out);
        out
    }

    /// [`Self::inverse`] into caller-owned buffers — same contract as
    /// [`Self::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n * n`.
    pub fn inverse_into(&self, coeffs: &[f64], tmp: &mut Vec<f64>, out: &mut Vec<i32>) {
        let n = self.n;
        assert_eq!(coeffs.len(), n * n);
        tmp.clear();
        tmp.resize(n * n, 0.0);
        for x in 0..n {
            for i in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += coeffs[k * n + x] * self.basis[k * n + i];
                }
                tmp[i * n + x] = acc;
            }
        }
        out.clear();
        out.resize(n * n, 0);
        for y in 0..n {
            for i in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += tmp[y * n + k] * self.basis[k * n + i];
                }
                out[y * n + i] = acc.round() as i32;
            }
        }
    }
}

/// A cache of DCT plans for all supported sizes.
#[derive(Debug, Clone)]
pub struct DctPlans {
    plans: [DctPlan; 4],
}

impl DctPlans {
    /// Builds plans for every supported size.
    pub fn new() -> Self {
        DctPlans {
            plans: [
                DctPlan::new(4),
                DctPlan::new(8),
                DctPlan::new(16),
                DctPlan::new(32),
            ],
        }
    }

    /// The plan for size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is unsupported.
    pub fn get(&self, n: usize) -> &DctPlan {
        match n {
            4 => &self.plans[0],
            8 => &self.plans[1],
            16 => &self.plans[2],
            32 => &self.plans[3],
            // lint:allow(panic): transform sizes come from profile
            // constants, never from bitstream input.
            _ => panic!("unsupported transform size {n}"),
        }
    }
}

impl Default for DctPlans {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm265_tensor::rng::Pcg32;

    #[test]
    fn forward_inverse_identity() {
        let mut rng = Pcg32::seed_from(1);
        for &n in &SIZES {
            let plan = DctPlan::new(n);
            let block: Vec<i32> = (0..n * n).map(|_| rng.below(256) as i32 - 128).collect();
            let coeffs = plan.forward(&block);
            let back = plan.inverse(&coeffs);
            assert_eq!(back, block, "size {n}");
        }
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let n = 8;
        let plan = DctPlan::new(n);
        let block = vec![100i32; n * n];
        let coeffs = plan.forward(&block);
        // Orthonormal 2-D DCT: DC = n * mean.
        assert!((coeffs[0] - 100.0 * n as f64).abs() < 1e-9);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-9, "AC coeff {i} = {c}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut rng = Pcg32::seed_from(2);
        let n = 16;
        let plan = DctPlan::new(n);
        let block: Vec<i32> = (0..n * n).map(|_| rng.below(256) as i32 - 128).collect();
        let coeffs = plan.forward(&block);
        let e_spatial: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
        let e_coeff: f64 = coeffs.iter().map(|&c| c * c).sum();
        assert!(
            (e_spatial - e_coeff).abs() / e_spatial < 1e-12,
            "parseval violated: {e_spatial} vs {e_coeff}"
        );
    }

    #[test]
    fn outlier_energy_is_spread_by_dct() {
        // Fig 3 of the paper: one outlier of 128 among small values; after
        // the DCT no coefficient should dwarf the rest the way the outlier
        // dwarfed its block.
        let n = 8;
        let plan = DctPlan::new(n);
        let mut block = vec![1i32; n * n];
        block[27] = 128;
        let peak_in = 128.0;
        let coeffs = plan.forward(&block);
        let peak_out = coeffs.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        // Outlier amplitude is amortized: peak drops by > 4x.
        assert!(peak_out < peak_in / 4.0, "peak after dct {peak_out}");
    }

    #[test]
    fn smooth_blocks_compact_into_few_coeffs() {
        let n = 8;
        let plan = DctPlan::new(n);
        let block: Vec<i32> = (0..n * n).map(|i| (i % n) as i32 * 4).collect(); // ramp
        let coeffs = plan.forward(&block);
        let total: f64 = coeffs.iter().map(|&c| c * c).sum();
        let mut sorted: Vec<f64> = coeffs.iter().map(|&c| c * c).collect();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let top4: f64 = sorted.iter().take(4).sum();
        assert!(top4 / total > 0.95, "energy compaction {}", top4 / total);
    }

    #[test]
    fn into_variants_match_allocating_ones_bit_for_bit() {
        let mut rng = Pcg32::seed_from(3);
        let mut tmp = Vec::new();
        let mut coeffs_buf = Vec::new();
        let mut back_buf = Vec::new();
        for &n in &SIZES {
            let plan = DctPlan::new(n);
            let block: Vec<i32> = (0..n * n).map(|_| rng.below(256) as i32 - 128).collect();
            let coeffs = plan.forward(&block);
            // Buffers deliberately carry stale contents from the previous
            // size; the _into contract is that they are fully overwritten.
            plan.forward_into(&block, &mut tmp, &mut coeffs_buf);
            assert_eq!(coeffs_buf, coeffs, "forward size {n}");
            let back = plan.inverse(&coeffs);
            plan.inverse_into(&coeffs_buf, &mut tmp, &mut back_buf);
            assert_eq!(back_buf, back, "inverse size {n}");
        }
    }

    #[test]
    fn plans_cache_covers_all_sizes() {
        let plans = DctPlans::new();
        for &n in &SIZES {
            assert_eq!(plans.get(n).size(), n);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn unsupported_size_panics() {
        let _ = DctPlan::new(5);
    }
}
