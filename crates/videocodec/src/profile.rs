//! Codec profiles and pipeline ablation switches.
//!
//! The paper compares three hardware codec families (H.264, H.265, AV1,
//! Fig 6 / Table 2) and ablates individual pipeline stages (Fig 2b). A
//! [`Profile`] captures what differs between codec generations — block
//! sizes and prediction-mode sets — while [`PipelineConfig`] toggles whole
//! stages on and off.

use crate::intra::PredMode;

/// Which codec family a profile emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileKind {
    /// H.264/AVC-like: 16×16 macroblocks, small transforms, 9-ish modes.
    H264,
    /// H.265/HEVC-like: 32×32 CTUs, transforms to 32×32, 35 intra modes.
    H265,
    /// AV1-like: H.265 block structure plus Paeth and Smooth predictors.
    Av1,
}

impl ProfileKind {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ProfileKind::H264 => "H.264",
            ProfileKind::H265 => "H.265",
            ProfileKind::Av1 => "AV1",
        }
    }

    fn id(self) -> u8 {
        match self {
            ProfileKind::H264 => 0,
            ProfileKind::H265 => 1,
            ProfileKind::Av1 => 2,
        }
    }

    fn from_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(ProfileKind::H264),
            1 => Some(ProfileKind::H265),
            2 => Some(ProfileKind::Av1),
            _ => None,
        }
    }
}

/// Block-structure and mode-set parameters of a codec generation.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    kind: ProfileKind,
    ctu: usize,
    min_cu: usize,
    max_tu: usize,
    modes: Vec<PredMode>,
}

impl Profile {
    /// H.264-like profile: 16×16 macroblocks, 4–8 px transforms, the
    /// classic 9-direction mode set.
    pub fn h264() -> Self {
        Profile {
            kind: ProfileKind::H264,
            ctu: 16,
            min_cu: 4,
            max_tu: 8,
            modes: PredMode::h264_set(),
        }
    }

    /// H.265-like profile: 32×32 CTUs, transforms to 32×32, DC + Planar +
    /// 33 angular modes.
    pub fn h265() -> Self {
        Profile {
            kind: ProfileKind::H265,
            ctu: 32,
            min_cu: 4,
            max_tu: 32,
            modes: PredMode::h265_set(),
        }
    }

    /// AV1-like profile: H.265 block structure plus Paeth and Smooth
    /// predictors.
    pub fn av1() -> Self {
        Profile {
            kind: ProfileKind::Av1,
            ctu: 32,
            min_cu: 4,
            max_tu: 32,
            modes: PredMode::av1_set(),
        }
    }

    /// Builds the profile for a [`ProfileKind`].
    pub fn of(kind: ProfileKind) -> Self {
        match kind {
            ProfileKind::H264 => Profile::h264(),
            ProfileKind::H265 => Profile::h265(),
            ProfileKind::Av1 => Profile::av1(),
        }
    }

    /// Which family this profile emulates.
    pub fn kind(&self) -> ProfileKind {
        self.kind
    }

    /// Coding-tree-unit (largest block) size.
    pub fn ctu(&self) -> usize {
        self.ctu
    }

    /// Smallest coding-unit size.
    pub fn min_cu(&self) -> usize {
        self.min_cu
    }

    /// Largest transform size; larger CUs split their residual into TUs.
    pub fn max_tu(&self) -> usize {
        self.max_tu
    }

    /// The intra prediction modes this profile may choose from.
    pub fn modes(&self) -> &[PredMode] {
        &self.modes
    }

    /// Serialization id for the bitstream header.
    pub(crate) fn header_id(&self) -> u8 {
        self.kind.id()
    }

    /// Rebuilds a profile from its header id.
    pub(crate) fn from_header_id(id: u8) -> Option<Self> {
        ProfileKind::from_id(id).map(Profile::of)
    }
}

impl Default for Profile {
    fn default() -> Self {
        Profile::h265()
    }
}

/// Per-stage switches over the encoding pipeline, reproducing the paper's
/// Fig 2(b) ablation.
///
/// Semantics:
/// - `entropy = false`: the quantized 8-bit plane is stored raw (8 bits per
///   pixel) — the paper's stage-1 baseline. All other switches are ignored.
/// - `transform = false`: residuals are quantized in the spatial domain
///   ("transform skip") instead of the DCT domain.
/// - `adaptive_partition = false`: a fixed 8×8 coding grid replaces the
///   RD-optimised quad-tree.
/// - `intra = false`: prediction is the constant mid-gray level.
/// - `inter = true`: P-frames may motion-compensate against the previous
///   reconstructed frame. The paper found this *hurts* tensors, so the
///   default is intra-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// CABAC entropy coding (off = raw 8-bit storage).
    pub entropy: bool,
    /// DCT transform coding.
    pub transform: bool,
    /// RD-optimised quad-tree partitioning.
    pub adaptive_partition: bool,
    /// Intra-frame prediction.
    pub intra: bool,
    /// Inter-frame motion prediction.
    pub inter: bool,
}

impl Default for PipelineConfig {
    /// The paper's tensor-codec configuration: everything on except inter.
    fn default() -> Self {
        PipelineConfig {
            entropy: true,
            transform: true,
            adaptive_partition: true,
            intra: true,
            inter: false,
        }
    }
}

impl PipelineConfig {
    /// Full video configuration (inter enabled), for Fig 2(b) stage 6.
    pub fn full_video() -> Self {
        PipelineConfig {
            inter: true,
            ..Self::default()
        }
    }

    /// Packs the flags into a header byte (also handy for enumerating
    /// every configuration in tests).
    pub fn to_byte(self) -> u8 {
        (self.entropy as u8)
            | (self.transform as u8) << 1
            | (self.adaptive_partition as u8) << 2
            | (self.intra as u8) << 3
            | (self.inter as u8) << 4
    }

    /// Unpacks header-byte flags.
    pub fn from_byte(b: u8) -> Self {
        PipelineConfig {
            entropy: b & 1 != 0,
            transform: b & 2 != 0,
            adaptive_partition: b & 4 != 0,
            intra: b & 8 != 0,
            inter: b & 16 != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parameters_are_sane() {
        for p in [Profile::h264(), Profile::h265(), Profile::av1()] {
            assert!(p.ctu() >= p.min_cu());
            assert!(p.max_tu() <= p.ctu());
            assert!(p.ctu().is_power_of_two());
            assert!(p.min_cu().is_power_of_two());
            assert!(!p.modes().is_empty());
        }
    }

    #[test]
    fn h264_has_fewer_modes_than_h265() {
        assert!(Profile::h264().modes().len() < Profile::h265().modes().len());
        assert!(Profile::av1().modes().len() > Profile::h265().modes().len());
    }

    #[test]
    fn profile_header_roundtrip() {
        for kind in [ProfileKind::H264, ProfileKind::H265, ProfileKind::Av1] {
            let p = Profile::of(kind);
            let back = Profile::from_header_id(p.header_id()).unwrap();
            assert_eq!(back.kind(), kind);
        }
        assert!(Profile::from_header_id(99).is_none());
    }

    #[test]
    fn pipeline_byte_roundtrip() {
        for b in 0..32u8 {
            let cfg = PipelineConfig::from_byte(b);
            assert_eq!(cfg.to_byte(), b);
        }
    }

    #[test]
    fn default_pipeline_is_intra_only() {
        let cfg = PipelineConfig::default();
        assert!(cfg.entropy && cfg.transform && cfg.adaptive_partition && cfg.intra);
        assert!(!cfg.inter, "the paper enforces intra-only for tensors");
        assert!(PipelineConfig::full_video().inter);
    }
}
