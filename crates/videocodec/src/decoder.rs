//! The video decoder, mirroring [`crate::encoder`]'s syntax exactly.

use llm265_bitstream::bits::BitReader;
use llm265_bitstream::bytes;
use llm265_bitstream::cabac::CabacDecoder;

use crate::encoder::{FIXED_CU, MAGIC, VERSION};
use crate::inter::{compensate, MotionVector};
use crate::intra::RefSamples;
use crate::quant::Quantizer;
use crate::syntax::{parse_residual, Contexts};
use crate::transform::DctPlans;
use crate::{CodecConfig, DecodeError, Frame, PipelineConfig, Profile};

struct FrameDecoder<'a> {
    cfg: &'a CodecConfig,
    plans: &'a DctPlans,
    recon: Frame,
    prev: Option<&'a Frame>,
    quant: Quantizer,
    frame_inter: bool,
    mode_bits: u32,
    prev_mode: u8,
    // Per-TU scratch (dequantized coefficients, DCT workspace and the
    // reconstructed residual), reused across every TU of the frame.
    deq: Vec<f64>,
    dct_tmp: Vec<f64>,
    rres: Vec<i32>,
}

impl<'a> FrameDecoder<'a> {
    fn min_cu(&self) -> usize {
        if self.cfg.pipeline.adaptive_partition {
            self.cfg.profile.min_cu()
        } else {
            FIXED_CU.min(self.cfg.profile.ctu())
        }
    }

    fn parse_cu(
        &mut self,
        dec: &mut CabacDecoder<'_>,
        ctxs: &mut Contexts,
        x0: usize,
        y0: usize,
        size: usize,
    ) -> Result<(), DecodeError> {
        let min = self.min_cu();
        let split = if !self.cfg.pipeline.adaptive_partition {
            size > min
        } else if size > min {
            dec.decode_bit(&mut ctxs.split)
        } else {
            false
        };
        if split {
            let half = size / 2;
            for (dx, dy) in [(0, 0), (half, 0), (0, half), (half, half)] {
                self.parse_cu(dec, ctxs, x0 + dx, y0 + dy, half)?;
            }
            return Ok(());
        }
        self.parse_leaf(dec, ctxs, x0, y0, size)
    }

    fn parse_leaf(
        &mut self,
        dec: &mut CabacDecoder<'_>,
        ctxs: &mut Contexts,
        x0: usize,
        y0: usize,
        size: usize,
    ) -> Result<(), DecodeError> {
        // Prediction kind + parameters.
        let is_inter = self.frame_inter && dec.decode_bit(&mut ctxs.inter_flag);
        let pred: Vec<i32> = if is_inter {
            let dx = parse_signed_eg(dec)?;
            let dy = parse_signed_eg(dec)?;
            let mv = MotionVector {
                dx: dx.clamp(-128, 127) as i8,
                dy: dy.clamp(-128, 127) as i8,
            };
            let prev = self
                .prev
                .ok_or(DecodeError::Corrupt("inter block without reference frame"))?;
            compensate(prev, x0, y0, size, mv)
        } else if self.cfg.pipeline.intra {
            let n_modes = self.cfg.profile.modes().len();
            let idx = if dec.decode_bit(&mut ctxs.mpm) {
                self.prev_mode
            } else {
                // `mode_bits <= 6` for every profile's mode table, so the
                // mask is value-preserving; out-of-range values error below.
                (dec.decode_bypass_bits(self.mode_bits) & 0xFF) as u8
            };
            if usize::from(idx) >= n_modes {
                return Err(DecodeError::Corrupt("intra mode index out of range"));
            }
            self.prev_mode = idx;
            let refs = RefSamples::gather(&self.recon, x0, y0, size);
            refs.predict(self.cfg.profile.modes()[usize::from(idx)])
        } else {
            vec![128; size * size]
        };

        // Residual per TU.
        let tu = size.min(self.cfg.profile.max_tu());
        let per_side = size / tu;
        let spatial = !self.cfg.pipeline.transform;
        let mut block = vec![0i32; size * size];
        for ty in 0..per_side {
            for tx in 0..per_side {
                let levels = parse_residual(dec, ctxs, tu, spatial)?;
                if self.cfg.pipeline.transform {
                    self.quant.dequantize_block_into(&levels, &mut self.deq);
                    self.plans
                        .get(tu)
                        .inverse_into(&self.deq, &mut self.dct_tmp, &mut self.rres);
                } else {
                    self.rres.clear();
                    self.rres.extend(
                        levels
                            .iter()
                            .map(|&l| self.quant.dequantize(l).round() as i32),
                    );
                }
                for y in 0..tu {
                    for x in 0..tu {
                        let idx = (ty * tu + y) * size + tx * tu + x;
                        block[idx] = (pred[idx] + self.rres[y * tu + x]).clamp(0, 255);
                    }
                }
            }
        }
        self.recon.write_block(x0, y0, size, &block);
        Ok(())
    }
}

fn parse_signed_eg(dec: &mut CabacDecoder<'_>) -> Result<i32, DecodeError> {
    let mut m = 1u32;
    let mut base = 0u32;
    while m < 31 && dec.decode_bypass() {
        base += 1 << m;
        m += 1;
    }
    // `m <= 31`, so the suffix always fits u32; `try_from` states that
    // width contract explicitly instead of silently truncating.
    let suffix = u32::try_from(dec.decode_bypass_bits(m))
        .map_err(|_| DecodeError::Corrupt("motion suffix exceeds 32 bits"))?;
    let mapped = base + suffix;
    // `mapped >> 1` fits i32; the mask is value-preserving and states that.
    Ok(if mapped & 1 == 0 {
        ((mapped >> 1) & 0x7FFF_FFFF) as i32
    } else {
        -((((mapped + 1) >> 1) & 0x7FFF_FFFF) as i32)
    })
}

/// Decodes a bitstream produced by [`crate::encode_video`].
pub(crate) fn decode_video(data: &[u8]) -> Result<Vec<Frame>, DecodeError> {
    let mut r = BitReader::new(data);
    if (r.read_bits(32)? & 0xFFFF_FFFF) as u32 != MAGIC {
        return Err(DecodeError::Corrupt("bad magic"));
    }
    if (r.read_bits(8)? & 0xFF) as u8 != VERSION {
        return Err(DecodeError::Unsupported("bitstream version"));
    }
    let profile = Profile::from_header_id((r.read_bits(8)? & 0xFF) as u8)
        .ok_or(DecodeError::Unsupported("unknown profile id"))?;
    let pipeline = PipelineConfig::from_byte((r.read_bits(8)? & 0xFF) as u8);
    let qp = r.read_bits(16)? as f64 / 256.0;
    // The 16-bit field can carry up to ~256.0; a QP beyond the H.265 range
    // never comes from our encoder and would violate the quantizer's
    // contract downstream.
    if !(crate::quant::QP_MIN..=crate::quant::QP_MAX).contains(&qp) {
        return Err(DecodeError::Corrupt("qp out of range"));
    }
    let w = r.read_bits(32)? as usize;
    let h = r.read_bits(32)? as usize;
    let n_frames = r.read_bits(32)? as usize;
    if w == 0 || h == 0 {
        return Err(DecodeError::Corrupt("zero frame dimensions"));
    }
    // A hostile header can declare absurd dimensions or frame counts that
    // would make the allocations below unbounded; cap them well above any
    // realistic tensor-frame workload.
    if w.saturating_mul(h) > 1 << 28 {
        return Err(DecodeError::LimitExceeded("frame dimensions"));
    }
    if n_frames > 1 << 20 {
        return Err(DecodeError::LimitExceeded("frame count"));
    }
    let mut pos = 21; // header is exactly 168 bits

    let cfg = CodecConfig {
        profile,
        pipeline,
        qp,
    };

    if !cfg.pipeline.entropy {
        // Raw 8-bit storage.
        let mut frames = Vec::with_capacity(n_frames);
        for _ in 0..n_frames {
            let raw = data
                .get(pos..)
                .and_then(|rest| rest.get(..w * h))
                .ok_or(DecodeError::Truncated("raw frame"))?;
            frames.push(Frame::from_vec(w, h, raw.to_vec()));
            pos += w * h;
        }
        return Ok(frames);
    }

    let plans = DctPlans::new();
    let mut frames = Vec::with_capacity(n_frames);
    let mut prev_padded: Option<Frame> = None;
    for i in 0..n_frames {
        let len: u32 = bytes::read_le_u32(data, &mut pos)
            .map_err(|_| DecodeError::Truncated("frame length"))?;
        let len = len as usize;
        let payload = data
            .get(pos..)
            .and_then(|rest| rest.get(..len))
            .ok_or(DecodeError::Truncated("frame payload"))?;
        pos += len;

        let recon = decode_frame(payload, prev_padded.as_ref(), &cfg, &plans, i, w, h)?;
        frames.push(recon.cropped(w, h));
        prev_padded = Some(recon);
    }
    Ok(frames)
}

/// Decodes one frame payload into its padded reconstruction; the exact
/// mirror of [`crate::encoder::encode_frame`].
pub(crate) fn decode_frame(
    payload: &[u8],
    prev: Option<&Frame>,
    cfg: &CodecConfig,
    plans: &DctPlans,
    frame_idx: usize,
    w: usize,
    h: usize,
) -> Result<Frame, DecodeError> {
    let ctu = cfg.profile.ctu();
    let pw = w.div_ceil(ctu) * ctu;
    let ph = h.div_ceil(ctu) * ctu;
    let frame_inter = cfg.pipeline.inter && frame_idx > 0 && prev.is_some();
    // Mode tables are tiny (at most 35 entries); the mask states that.
    let mode_count = (cfg.profile.modes().len() & 0xFFFF_FFFF) as u32;
    let mut fd = FrameDecoder {
        cfg,
        plans,
        recon: Frame::new(pw, ph),
        prev,
        quant: Quantizer::from_qp(cfg.qp),
        frame_inter,
        mode_bits: 32 - (mode_count - 1).leading_zeros(),
        prev_mode: 0,
        deq: Vec::new(),
        dct_tmp: Vec::new(),
        rres: Vec::new(),
    };
    let mut dec = CabacDecoder::new(payload);
    let mut ctxs = Contexts::new();
    for cy in (0..ph).step_by(ctu) {
        for cx in (0..pw).step_by(ctu) {
            fd.parse_cu(&mut dec, &mut ctxs, cx, cy, ctu)?;
        }
    }
    Ok(fd.recon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::code_signed_eg;
    use llm265_bitstream::cabac::CabacEncoder;

    #[test]
    fn signed_eg_extreme_motion_roundtrips() {
        // ±(i32::MAX - 1)-scale components map to the widest order-1
        // codes whose unary prefix hits the 30-one cap with a full
        // 31-bit suffix; one more prefix step would spill the batched
        // bypass call. (Real motion vectors are i16-ranged; this pins
        // the binarization itself at its arithmetic boundary.)
        let values = [0, 1, -1, 123_456, -654_321, i32::MAX - 1, -i32::MAX];
        let mut enc = CabacEncoder::new();
        for &v in &values {
            code_signed_eg(&mut enc, v);
        }
        let bytes = enc.finish();
        let mut dec = CabacDecoder::new(&bytes);
        for &v in &values {
            assert_eq!(parse_signed_eg(&mut dec).expect("parse"), v);
        }
    }
}
