//! A from-scratch software video codec for the LLM.265 reproduction.
//!
//! The paper's central artifact is a video codec repurposed as a tensor
//! codec. Since this reproduction has no NVENC/NVDEC hardware (see
//! DESIGN.md), this crate implements the relevant pipeline in software, in
//! the architecture of H.265 (§2.2 of the paper):
//!
//! 1. **CTU quad-tree partitioning** ([`encoder`]) — recursive
//!    rate-distortion-optimised coding-unit splits;
//! 2. **Intra-frame prediction** ([`intra`]) — DC, Planar and 33 angular
//!    modes (plus Paeth/Smooth in the AV1-like profile);
//! 3. **Inter-frame motion prediction** ([`inter`]) — full-pel motion
//!    search against the previous reconstructed frame (the paper shows this
//!    stage *hurts* tensor compression; it is off by default);
//! 4. **Transform coding** ([`transform`]) — orthonormal 2-D DCT on
//!    4×4…32×32 blocks;
//! 5. **Quantization** ([`quant`]) — dead-zone scalar quantizer with the
//!    H.265 QP→step mapping, continuous QP for fractional bitrates;
//! 6. **Entropy coding** ([`syntax`]) — CABAC with adaptive contexts,
//!    significance maps, greater1/greater2 flags and adaptive-Rice
//!    remainders.
//!
//! Every stage can be toggled via [`PipelineConfig`] to reproduce the
//! Fig 2(b) ablation, and three [`Profile`]s (H.264-, H.265- and AV1-like)
//! reproduce the Fig 6 codec comparison. [`rate`] provides bitrate- and
//! distortion-targeted encoding (bisection over continuous QP), the basis
//! of the paper's fractional-bit-width feature.
//!
//! The encoder contains the decoder: prediction always uses *reconstructed*
//! pixels, so `decode(encode(f))` is bit-exact with the encoder's internal
//! reconstruction (property-tested in `tests/`).
//!
//! # Example
//!
//! ```
//! use llm265_videocodec::{Frame, CodecConfig, encode_video, decode_video};
//!
//! // A gradient test frame.
//! let frame = Frame::from_fn(64, 64, |x, y| ((x * 2 + y) % 256) as u8);
//! let cfg = CodecConfig::default().with_qp(22.0);
//! let enc = encode_video(&[frame.clone()], &cfg);
//! let dec = decode_video(&enc.bytes).unwrap();
//! assert_eq!(dec.len(), 1);
//! assert_eq!(dec[0], enc.recon[0]); // bit-exact with encoder recon
//! ```

#![forbid(unsafe_code)]

pub mod ablation;
pub mod decoder;
pub mod encoder;
mod frame;
pub mod inter;
pub mod intra;
pub mod profile;
pub mod quant;
pub mod rate;
pub mod scan;
pub mod syntax;
pub mod transform;

pub use frame::Frame;
pub use llm265_bitstream::DecodeError;
pub use profile::{PipelineConfig, Profile, ProfileKind};

/// Encoder configuration: profile, pipeline switches and base QP.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecConfig {
    /// Block-structure / mode-set profile (H.264-, H.265- or AV1-like).
    pub profile: Profile,
    /// Per-stage pipeline switches (Fig 2b ablation).
    pub pipeline: PipelineConfig,
    /// Base quantization parameter. Continuous (fractional QPs are legal);
    /// H.265 step mapping `qstep = 2^((qp-4)/6)`.
    pub qp: f64,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig {
            profile: Profile::h265(),
            pipeline: PipelineConfig::default(),
            qp: 28.0,
        }
    }
}

impl CodecConfig {
    /// Returns the config with a different base QP.
    #[must_use]
    pub fn with_qp(mut self, qp: f64) -> Self {
        self.qp = qp;
        self
    }

    /// Returns the config with a different profile.
    #[must_use]
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self
    }

    /// Returns the config with different pipeline switches.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }
}

/// Result of encoding a video: the bitstream plus the encoder's
/// reconstruction (bit-exact with what the decoder will produce).
#[derive(Debug, Clone)]
pub struct EncodedVideo {
    /// The compressed bitstream, self-describing (decode with
    /// [`decode_video`]).
    pub bytes: Vec<u8>,
    /// Reconstructed frames as the decoder will see them.
    pub recon: Vec<Frame>,
}

impl EncodedVideo {
    /// Compressed size in bits.
    pub fn bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Average compressed bits per pixel.
    pub fn bits_per_pixel(&self) -> f64 {
        let pixels: usize = self.recon.iter().map(|f| f.width() * f.height()).sum();
        if pixels == 0 {
            0.0
        } else {
            self.bits() as f64 / pixels as f64
        }
    }
}

/// Encodes a sequence of frames.
///
/// The first frame is always intra; later frames may use inter prediction
/// when `cfg.pipeline.inter` is set (the paper's default for tensors is
/// intra-only).
///
/// # Panics
///
/// Panics if `frames` is empty or frames disagree in size.
pub fn encode_video(frames: &[Frame], cfg: &CodecConfig) -> EncodedVideo {
    encoder::encode_video(frames, cfg)
}

/// Decodes a bitstream produced by [`encode_video`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or corrupt input.
pub fn decode_video(bytes: &[u8]) -> Result<Vec<Frame>, DecodeError> {
    decoder::decode_video(bytes)
}
