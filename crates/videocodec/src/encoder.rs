//! The frame/video encoder.
//!
//! Encoding is two-phase per frame:
//!
//! 1. **Decide** — walk CTUs in raster order, recursively choosing quad-tree
//!    splits, prediction modes and quantized levels by rate-distortion cost
//!    (`cost = SSD + λ·bits`, bits estimated by `syntax::BitCounter` on
//!    cloned contexts). Reconstruction is committed as decisions are made,
//!    so later blocks predict from exactly what the decoder will see.
//! 2. **Emit** — replay the decision tree into the real CABAC coder.
//!
//! Because the cost counter evolves context models identically to the real
//! coder, both phases see the same probability state, and the encoder's
//! reconstruction is bit-exact with the decoder's output.

use llm265_bitstream::bits::BitWriter;
use llm265_bitstream::cabac::CabacEncoder;

use crate::inter::{compensate, motion_search, MotionVector};
use crate::intra::RefSamples;
use crate::quant::{lambda, Quantizer};
use crate::syntax::{code_residual, BinSink, BitCounter, Contexts};
use crate::transform::DctPlans;
use crate::{CodecConfig, EncodedVideo, Frame};

/// Magic number at the start of every bitstream ("L265").
pub(crate) const MAGIC: u32 = 0x4C32_3635;
/// Bitstream format version.
pub(crate) const VERSION: u8 = 1;
/// Coding-unit size used when adaptive partitioning is disabled.
pub(crate) const FIXED_CU: usize = 8;
/// Number of top SAD candidates taken to full RD evaluation.
const RD_CANDIDATES: usize = 4;

/// How a leaf coding unit is predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CuKind {
    /// Constant mid-gray prediction (intra stage disabled).
    Flat,
    /// Intra prediction with the profile's mode at this index.
    Intra(u8),
    /// Motion-compensated prediction from the previous frame.
    Inter(MotionVector),
}

/// A decided leaf: prediction kind plus quantized levels per TU.
#[derive(Debug, Clone)]
pub(crate) struct LeafData {
    pub kind: CuKind,
    /// Levels for each transform unit, raster TU order.
    pub tus: Vec<Vec<i32>>,
}

/// A node of the decided coding quad-tree.
#[derive(Debug, Clone)]
pub(crate) enum CuNode {
    Split(Vec<CuNode>),
    Leaf(LeafData),
}

/// Coder state that must stay in lock-step between decide and emit: the
/// CABAC contexts plus the previous-mode predictor.
#[derive(Debug, Clone)]
pub(crate) struct CoderState {
    pub ctxs: Contexts,
    pub prev_mode: u8,
}

impl CoderState {
    pub fn new() -> Self {
        CoderState {
            ctxs: Contexts::new(),
            prev_mode: 0,
        }
    }
}

/// Reusable buffers for the per-TU transform/quantize path. The decide
/// loop runs this for every candidate of every CU at every quad-tree
/// level, so fresh allocations here dominate the encode profile; the
/// buffers carry no information between calls — each user overwrites
/// them completely.
#[derive(Default)]
struct TuScratch {
    /// Spatial residual staged by the caller, `tu * tu` values.
    residual: Vec<i32>,
    /// Forward-transform output / quantizer input.
    coeffs: Vec<f64>,
    /// Dequantized coefficients.
    deq: Vec<f64>,
    /// Row/column workspace shared by both DCT directions.
    dct_tmp: Vec<f64>,
    /// Reconstructed residual left for the caller.
    rres: Vec<i32>,
}

/// Per-frame scratch: TU buffers plus the CU-sized staging blocks used
/// by the decide loop.
#[derive(Default)]
struct Scratch {
    tu: TuScratch,
    /// Original pixels of the CU being residual-coded.
    cu_orig: Vec<i32>,
    /// Original pixels of the CU whose prediction is being decided.
    leaf_orig: Vec<i32>,
    /// Prediction block reused across the intra mode sweep.
    pred: Vec<i32>,
}

/// Everything a single frame encode needs.
struct FrameCoder<'a> {
    cfg: &'a CodecConfig,
    plans: &'a DctPlans,
    orig: &'a Frame,
    recon: Frame,
    prev: Option<&'a Frame>,
    quant: Quantizer,
    lambda: f64,
    frame_inter: bool,
    mode_bits: u32,
    scratch: Scratch,
}

impl<'a> FrameCoder<'a> {
    fn new(
        cfg: &'a CodecConfig,
        plans: &'a DctPlans,
        orig: &'a Frame,
        prev: Option<&'a Frame>,
        frame_inter: bool,
    ) -> Self {
        // Mode tables are tiny (at most 35 entries); the mask states that.
        let n_modes = (cfg.profile.modes().len() & 0xFFFF_FFFF) as u32;
        FrameCoder {
            cfg,
            plans,
            orig,
            recon: Frame::new(orig.width(), orig.height()),
            prev,
            quant: Quantizer::from_qp(cfg.qp),
            lambda: lambda(cfg.qp),
            frame_inter,
            mode_bits: 32 - (n_modes - 1).leading_zeros(),
            scratch: Scratch::default(),
        }
    }

    fn min_cu(&self) -> usize {
        if self.cfg.pipeline.adaptive_partition {
            self.cfg.profile.min_cu()
        } else {
            FIXED_CU.min(self.cfg.profile.ctu())
        }
    }

    /// Transforms + quantizes the residual staged in `scratch.tu.residual`,
    /// leaving the reconstructed residual (what dequantization will
    /// recover) in `scratch.tu.rres` and returning the quantized levels —
    /// owned, because they outlive the scratch inside [`LeafData`].
    fn quantize_tu(&mut self, n: usize) -> Vec<i32> {
        let tu = &mut self.scratch.tu;
        if self.cfg.pipeline.transform {
            let plan = self.plans.get(n);
            plan.forward_into(&tu.residual, &mut tu.dct_tmp, &mut tu.coeffs);
            let levels = self.quant.quantize_block(&tu.coeffs);
            self.quant.dequantize_block_into(&levels, &mut tu.deq);
            plan.inverse_into(&tu.deq, &mut tu.dct_tmp, &mut tu.rres);
            levels
        } else {
            // Transform skip: quantize the spatial residual directly.
            let levels: Vec<i32> = tu
                .residual
                .iter()
                .map(|&r| self.quant.quantize(r as f64))
                .collect();
            tu.rres.clear();
            tu.rres.extend(
                levels
                    .iter()
                    .map(|&l| self.quant.dequantize(l).round() as i32),
            );
            levels
        }
    }

    /// Runs the residual path for a whole CU (splitting into TUs as the
    /// profile requires). Returns levels per TU, the reconstructed block,
    /// and the SSD distortion against the original.
    fn quantize_cu_residual(
        &mut self,
        x0: usize,
        y0: usize,
        size: usize,
        pred: &[i32],
    ) -> (Vec<Vec<i32>>, Vec<i32>, f64) {
        let tu = size.min(self.cfg.profile.max_tu());
        let per_side = size / tu;
        self.scratch.cu_orig.clear();
        self.scratch.cu_orig.resize(size * size, 0);
        self.orig
            .read_block(x0, y0, size, &mut self.scratch.cu_orig);

        let mut tus = Vec::with_capacity(per_side * per_side);
        let mut recon = vec![0i32; size * size];
        for ty in 0..per_side {
            for tx in 0..per_side {
                self.scratch.tu.residual.clear();
                self.scratch.tu.residual.resize(tu * tu, 0);
                for y in 0..tu {
                    for x in 0..tu {
                        let idx = (ty * tu + y) * size + tx * tu + x;
                        self.scratch.tu.residual[y * tu + x] =
                            self.scratch.cu_orig[idx] - pred[idx];
                    }
                }
                let levels = self.quantize_tu(tu);
                for y in 0..tu {
                    for x in 0..tu {
                        let idx = (ty * tu + y) * size + tx * tu + x;
                        recon[idx] = (pred[idx] + self.scratch.tu.rres[y * tu + x]).clamp(0, 255);
                    }
                }
                tus.push(levels);
            }
        }
        let dist: f64 = self
            .scratch
            .cu_orig
            .iter()
            .zip(&recon)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum();
        (tus, recon, dist)
    }

    /// Codes (or counts) the syntax of one leaf.
    fn code_leaf<S: BinSink>(
        &self,
        sink: &mut S,
        state: &mut CoderState,
        leaf: &LeafData,
        size: usize,
    ) {
        if self.frame_inter {
            let is_inter = matches!(leaf.kind, CuKind::Inter(_));
            sink.bit(&mut state.ctxs.inter_flag, is_inter);
        }
        match leaf.kind {
            CuKind::Inter(mv) => {
                code_signed_eg(sink, mv.dx as i32);
                code_signed_eg(sink, mv.dy as i32);
            }
            CuKind::Intra(idx) => {
                let is_mpm = idx == state.prev_mode;
                sink.bit(&mut state.ctxs.mpm, is_mpm);
                if !is_mpm {
                    sink.bypass_bits(u64::from(idx), self.mode_bits);
                }
                state.prev_mode = idx;
            }
            CuKind::Flat => {}
        }
        let tu = size.min(self.cfg.profile.max_tu());
        for levels in &leaf.tus {
            code_residual(
                sink,
                &mut state.ctxs,
                levels,
                tu,
                !self.cfg.pipeline.transform,
            );
        }
    }

    /// Evaluates and commits the best leaf for this CU. Updates `state`
    /// and the reconstruction; returns the decided leaf and its RD cost.
    fn decide_leaf(
        &mut self,
        x0: usize,
        y0: usize,
        size: usize,
        state: &mut CoderState,
    ) -> (LeafData, f64) {
        self.scratch.leaf_orig.clear();
        self.scratch.leaf_orig.resize(size * size, 0);
        self.orig
            .read_block(x0, y0, size, &mut self.scratch.leaf_orig);
        let orig = &self.scratch.leaf_orig;

        // Candidate predictions.
        let mut cands: Vec<(CuKind, Vec<i32>)> = Vec::new();
        if self.cfg.pipeline.intra {
            let refs = RefSamples::gather(&self.recon, x0, y0, size);
            // SAD-score every mode through one reused prediction buffer
            // (dozens of modes per leaf — a fresh block per mode used to
            // dominate the sweep's profile), then materialize only the
            // few RD survivors.
            let mut pred_buf = std::mem::take(&mut self.scratch.pred);
            let modes = self.cfg.profile.modes();
            let mut scored: Vec<(u64, u8)> = Vec::with_capacity(modes.len());
            for (i, &mode) in modes.iter().enumerate() {
                refs.predict_into(mode, &mut pred_buf);
                let sad: u64 = orig
                    .iter()
                    .zip(&pred_buf)
                    .map(|(&a, &b)| u64::from((a - b).unsigned_abs()))
                    .sum();
                // At most 35 modes, so the index fits a byte.
                scored.push((sad, (i & 0xFF) as u8));
            }
            self.scratch.pred = pred_buf;
            scored.sort_by_key(|&(sad, i)| (sad, i));
            for &(_, i) in scored.iter().take(RD_CANDIDATES) {
                cands.push((CuKind::Intra(i), refs.predict(modes[usize::from(i)])));
            }
        } else {
            cands.push((CuKind::Flat, vec![128; size * size]));
        }
        if self.frame_inter {
            if let Some(prev) = self.prev {
                let (mv, _) = motion_search(self.orig, prev, x0, y0, size);
                cands.push((CuKind::Inter(mv), compensate(prev, x0, y0, size, mv)));
            }
        }

        let mut best: Option<(LeafData, Vec<i32>, f64)> = None;
        for (kind, pred) in cands {
            let (tus, recon, dist) = self.quantize_cu_residual(x0, y0, size, &pred);
            let leaf = LeafData { kind, tus };
            let mut trial_state = state.clone();
            let mut counter = BitCounter::new();
            self.code_leaf(&mut counter, &mut trial_state, &leaf, size);
            let cost = dist + self.lambda * counter.bits();
            if best.as_ref().is_none_or(|(_, _, c)| cost < *c) {
                best = Some((leaf, recon, cost));
            }
        }
        // lint:allow(panic): `cands` is never empty — the intra and flat
        // branches above always push at least one candidate.
        let (leaf, recon, cost) = best.expect("at least one candidate");

        // Commit: context evolution + reconstruction.
        let mut counter = BitCounter::new();
        self.code_leaf(&mut counter, state, &leaf, size);
        self.recon.write_block(x0, y0, size, &recon);
        (leaf, cost)
    }

    /// Recursively decides the coding tree for a CU.
    fn decide_cu(
        &mut self,
        x0: usize,
        y0: usize,
        size: usize,
        state: &mut CoderState,
    ) -> (CuNode, f64) {
        let min = self.min_cu();
        if !self.cfg.pipeline.adaptive_partition {
            // Implied splits down to the fixed grid; no flags coded.
            if size > min {
                let half = size / 2;
                let mut children = Vec::with_capacity(4);
                let mut cost = 0.0;
                for (dx, dy) in [(0, 0), (half, 0), (0, half), (half, half)] {
                    let (node, c) = self.decide_cu(x0 + dx, y0 + dy, half, state);
                    children.push(node);
                    cost += c;
                }
                return (CuNode::Split(children), cost);
            }
            let (leaf, cost) = self.decide_leaf(x0, y0, size, state);
            return (CuNode::Leaf(leaf), cost);
        }

        if size <= min {
            let (leaf, cost) = self.decide_leaf(x0, y0, size, state);
            return (CuNode::Leaf(leaf), cost);
        }

        let saved_region = self.recon.save_region(x0, y0, size);
        let base_state = state.clone();

        // Branch A: code as one leaf (split flag = 0).
        let mut st_leaf = base_state.clone();
        let mut flag_cost = BitCounter::new();
        flag_cost.bit(&mut st_leaf.ctxs.split, false);
        let (leaf, leaf_cost) = self.decide_leaf(x0, y0, size, &mut st_leaf);
        let cost_leaf = leaf_cost + self.lambda * flag_cost.bits();
        let leaf_region = self.recon.save_region(x0, y0, size);

        // Branch B: split into four (split flag = 1).
        self.recon.restore_region(x0, y0, size, &saved_region);
        let mut st_split = base_state;
        let mut flag_cost = BitCounter::new();
        flag_cost.bit(&mut st_split.ctxs.split, true);
        let half = size / 2;
        let mut children = Vec::with_capacity(4);
        let mut cost_split = self.lambda * flag_cost.bits();
        for (dx, dy) in [(0, 0), (half, 0), (0, half), (half, half)] {
            let (node, c) = self.decide_cu(x0 + dx, y0 + dy, half, &mut st_split);
            children.push(node);
            cost_split += c;
        }

        if cost_leaf <= cost_split {
            self.recon.restore_region(x0, y0, size, &leaf_region);
            *state = st_leaf;
            (CuNode::Leaf(leaf), cost_leaf)
        } else {
            *state = st_split;
            (CuNode::Split(children), cost_split)
        }
    }

    /// Emits a decided coding tree into the real CABAC coder.
    fn code_cu(&self, node: &CuNode, size: usize, enc: &mut CabacEncoder, state: &mut CoderState) {
        let min = self.min_cu();
        let adaptive = self.cfg.pipeline.adaptive_partition;
        match node {
            CuNode::Split(children) => {
                if adaptive {
                    debug_assert!(size > min);
                    enc.bit(&mut state.ctxs.split, true);
                }
                for child in children {
                    self.code_cu(child, size / 2, enc, state);
                }
            }
            CuNode::Leaf(leaf) => {
                if adaptive && size > min {
                    enc.bit(&mut state.ctxs.split, false);
                }
                self.code_leaf(enc, state, leaf, size);
            }
        }
    }
}

/// Codes a signed value as zig-zag-mapped order-1 exp-Golomb bypass bits
/// (used for motion vectors).
pub(crate) fn code_signed_eg<S: BinSink>(sink: &mut S, v: i32) {
    // `unsigned_abs` avoids the sign-changing cast and is well-defined
    // even for i32::MIN, where `-v` would overflow.
    let mapped = if v >= 0 {
        v.unsigned_abs() << 1
    } else {
        (v.unsigned_abs() << 1) - 1
    };
    // Count the unary prefix arithmetically, then emit prefix, terminator
    // and suffix in one batched bypass call (at most 62 bins).
    let mut m = 1u32;
    let mut rem = mapped;
    let mut ones = 0u32;
    while m < 31 && rem >= (1 << m) {
        rem -= 1 << m;
        m += 1;
        ones += 1;
    }
    // `ones` grows in lockstep with `m`, which the loop caps below 31.
    debug_assert!(ones <= 30, "exp-Golomb prefix exceeds the order cap");
    if m < 31 {
        let prefix = ((1u64 << ones) - 1) << 1; // `ones` one-bits, then the 0.
        sink.bypass_bits((prefix << m) | u64::from(rem), ones + 1 + m);
    } else {
        // Saturated prefix (truncated unary): the parser's own `m < 31`
        // cap ends the prefix, so coding a terminator would desync it.
        let prefix = (1u64 << ones) - 1;
        sink.bypass_bits((prefix << m) | u64::from(rem), ones + m);
    }
}

/// Encodes one frame (already padded to the CTU size). Returns the frame
/// payload and its padded reconstruction.
pub(crate) fn encode_frame(
    orig: &Frame,
    prev: Option<&Frame>,
    cfg: &CodecConfig,
    plans: &DctPlans,
    frame_idx: usize,
) -> (Vec<u8>, Frame) {
    let frame_inter = cfg.pipeline.inter && frame_idx > 0 && prev.is_some();
    let mut coder = FrameCoder::new(cfg, plans, orig, prev, frame_inter);
    let ctu = cfg.profile.ctu();

    // Phase 1: decide.
    let mut state = CoderState::new();
    let mut trees = Vec::new();
    for cy in (0..orig.height()).step_by(ctu) {
        for cx in (0..orig.width()).step_by(ctu) {
            let (node, _cost) = coder.decide_cu(cx, cy, ctu, &mut state);
            trees.push(node);
        }
    }

    // Phase 2: emit.
    let mut enc = CabacEncoder::new();
    let mut state = CoderState::new();
    for node in &trees {
        coder.code_cu(node, ctu, &mut enc, &mut state);
    }
    (enc.finish(), coder.recon)
}

/// Encodes a video (see [`crate::encode_video`]).
pub(crate) fn encode_video(frames: &[Frame], cfg: &CodecConfig) -> EncodedVideo {
    assert!(!frames.is_empty(), "cannot encode an empty video");
    let w: usize = frames[0].width();
    let h: usize = frames[0].height();
    assert!(w > 0 && h > 0, "frames must be non-empty");
    for f in frames {
        assert_eq!(
            (f.width(), f.height()),
            (w, h),
            "all frames must share one size"
        );
    }

    let mut header = BitWriter::new();
    header.write_bits(MAGIC as u64, 32);
    header.write_bits(VERSION as u64, 8);
    header.write_bits(cfg.profile.header_id() as u64, 8);
    header.write_bits(cfg.pipeline.to_byte() as u64, 8);
    // Snap QP to the header's 1/256 fixed-point grid and encode with the
    // snapped value, so the decoder's quantizer matches bit-exactly.
    let qp_fixed = (cfg.qp * 256.0).round().clamp(0.0, 65535.0) as u64;
    let cfg = cfg.clone().with_qp(qp_fixed as f64 / 256.0);
    let cfg = &cfg;
    header.write_bits(qp_fixed, 16);
    header.write_bits(w as u64, 32);
    header.write_bits(h as u64, 32);
    header.write_bits(frames.len() as u64, 32);
    let mut bytes = header.finish();

    if !cfg.pipeline.entropy {
        // Stage-1 baseline: raw 8-bit storage of every frame.
        let mut recon = Vec::with_capacity(frames.len());
        for f in frames {
            bytes.extend_from_slice(f.data());
            recon.push(f.clone());
        }
        return EncodedVideo { bytes, recon };
    }

    let plans = DctPlans::new();
    let ctu = cfg.profile.ctu();
    let mut recon_frames = Vec::with_capacity(frames.len());
    let mut prev_padded: Option<Frame> = None;
    for (i, f) in frames.iter().enumerate() {
        let padded = f.padded_to(ctu);
        let (payload, recon_padded) = encode_frame(&padded, prev_padded.as_ref(), cfg, &plans, i);
        // Frame payloads are far below 4 GiB; the mask states the width.
        bytes.extend_from_slice(&((payload.len() & 0xFFFF_FFFF) as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        recon_frames.push(recon_padded.cropped(w, h));
        prev_padded = Some(recon_padded);
    }
    EncodedVideo {
        bytes,
        recon: recon_frames,
    }
}
