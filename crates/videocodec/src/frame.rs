/// A single 8-bit grayscale (Luma) frame.
///
/// The paper feeds tensors to the codec as Luma-only frames after rounding
/// values to 8 bits (§3.2); this type is that frame. Coordinates are
/// `(x, y)` with `x` the column, matching video convention.
///
/// # Example
///
/// ```
/// use llm265_videocodec::Frame;
///
/// let f = Frame::from_fn(4, 2, |x, y| (x + 10 * y) as u8);
/// assert_eq!(f.get(3, 1), 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Frame {
    /// Creates a frame filled with mid-gray (128), the codec's neutral
    /// level.
    pub fn new(width: usize, height: usize) -> Self {
        Frame {
            width,
            height,
            data: vec![128; width * height],
        }
    }

    /// Creates a frame from a closure mapping `(x, y)` to a pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut fr = Frame::new(width, height);
        for y in 0..height {
            for x in 0..width {
                fr.data[y * width + x] = f(x, y);
            }
        }
        fr
    }

    /// Creates a frame by taking ownership of a row-major pixel buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height, "pixel buffer length mismatch");
        Frame {
            width,
            height,
            data,
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel buffer.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = v;
    }

    /// Pixel with edge clamping — reads outside the frame return the
    /// nearest edge pixel (used by motion compensation).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        // `max(0)` makes the conversion infallible; `min` clamps to the
        // far edge without ever leaving the unsigned domain.
        let x = usize::try_from(x.max(0)).unwrap_or(0).min(self.width - 1);
        let y = usize::try_from(y.max(0)).unwrap_or(0).min(self.height - 1);
        self.data[y * self.width + x]
    }

    /// Returns a copy padded with edge replication so both dimensions are
    /// multiples of `align`. The codec pads to the CTU size and crops back
    /// after decoding.
    pub fn padded_to(&self, align: usize) -> Frame {
        let pw = self.width.div_ceil(align) * align;
        let ph = self.height.div_ceil(align) * align;
        if pw == self.width && ph == self.height {
            return self.clone();
        }
        Frame::from_fn(pw, ph, |x, y| {
            self.get(x.min(self.width - 1), y.min(self.height - 1))
        })
    }

    /// Returns the top-left `width × height` crop.
    ///
    /// # Panics
    ///
    /// Panics if the crop exceeds the frame.
    pub fn cropped(&self, width: usize, height: usize) -> Frame {
        assert!(
            width <= self.width && height <= self.height,
            "crop too large"
        );
        Frame::from_fn(width, height, |x, y| self.get(x, y))
    }

    /// Copies the `size × size` block at `(x0, y0)` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the frame or `out` is too small.
    pub fn read_block(&self, x0: usize, y0: usize, size: usize, out: &mut [i32]) {
        assert!(x0 + size <= self.width && y0 + size <= self.height);
        assert!(out.len() >= size * size);
        for y in 0..size {
            for x in 0..size {
                out[y * size + x] = i32::from(self.data[(y0 + y) * self.width + (x0 + x)]);
            }
        }
    }

    /// Writes a `size × size` block of clamped values at `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the frame.
    pub fn write_block(&mut self, x0: usize, y0: usize, size: usize, block: &[i32]) {
        assert!(x0 + size <= self.width && y0 + size <= self.height);
        for y in 0..size {
            for x in 0..size {
                self.data[(y0 + y) * self.width + (x0 + x)] =
                    block[y * size + x].clamp(0, 255) as u8;
            }
        }
    }

    /// Saves the `size × size` region at `(x0, y0)` (for RD trial rollback).
    pub(crate) fn save_region(&self, x0: usize, y0: usize, size: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(size * size);
        for y in 0..size {
            let row = (y0 + y) * self.width;
            out.extend_from_slice(&self.data[row + x0..row + x0 + size]);
        }
        out
    }

    /// Restores a region previously captured with `save_region`.
    pub(crate) fn restore_region(&mut self, x0: usize, y0: usize, size: usize, saved: &[u8]) {
        for y in 0..size {
            let row = (y0 + y) * self.width;
            self.data[row + x0..row + x0 + size].copy_from_slice(&saved[y * size..(y + 1) * size]);
        }
    }

    /// Sum of squared differences against another frame.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn ssd(&self, other: &Frame) -> u64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "ssd size mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = i64::from(a) - i64::from(b);
                (d * d).unsigned_abs()
            })
            .sum()
    }

    /// Mean square error against another frame, in pixel² units.
    pub fn mse(&self, other: &Frame) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ssd(other) as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_mid_gray() {
        let f = Frame::new(3, 2);
        assert!(f.data().iter().all(|&p| p == 128));
    }

    #[test]
    fn padding_replicates_edges() {
        let f = Frame::from_fn(5, 3, |x, y| (x * 10 + y) as u8);
        let p = f.padded_to(4);
        assert_eq!(p.width(), 8);
        assert_eq!(p.height(), 4);
        // Right edge replicated from column 4.
        assert_eq!(p.get(7, 0), f.get(4, 0));
        // Bottom edge replicated from row 2.
        assert_eq!(p.get(2, 3), f.get(2, 2));
        // Corner replicated.
        assert_eq!(p.get(7, 3), f.get(4, 2));
        // Cropping back recovers the original.
        assert_eq!(p.cropped(5, 3), f);
    }

    #[test]
    fn padding_noop_when_aligned() {
        let f = Frame::from_fn(8, 8, |x, y| (x ^ y) as u8);
        assert_eq!(f.padded_to(8), f);
    }

    #[test]
    fn block_roundtrip() {
        let mut f = Frame::new(8, 8);
        let block: Vec<i32> = (0..16).map(|i| i * 17 - 30).collect();
        f.write_block(2, 3, 4, &block);
        let mut out = vec![0i32; 16];
        f.read_block(2, 3, 4, &mut out);
        let expect: Vec<i32> = block.iter().map(|&v| v.clamp(0, 255)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn save_restore_region() {
        let mut f = Frame::from_fn(8, 8, |x, y| (x + 8 * y) as u8);
        let saved = f.save_region(2, 2, 4);
        for y in 2..6 {
            for x in 2..6 {
                f.set(x, y, 0);
            }
        }
        f.restore_region(2, 2, 4, &saved);
        assert_eq!(f, Frame::from_fn(8, 8, |x, y| (x + 8 * y) as u8));
    }

    #[test]
    fn ssd_and_mse() {
        let a = Frame::from_vec(2, 1, vec![10, 20]);
        let b = Frame::from_vec(2, 1, vec![13, 16]);
        assert_eq!(a.ssd(&b), 9 + 16);
        assert_eq!(a.mse(&b), 12.5);
    }

    #[test]
    fn clamped_reads() {
        let f = Frame::from_fn(4, 4, |x, y| (x * 4 + y) as u8);
        assert_eq!(f.get_clamped(-5, -5), f.get(0, 0));
        assert_eq!(f.get_clamped(10, 2), f.get(3, 2));
    }
}
