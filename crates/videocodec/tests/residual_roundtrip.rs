//! Randomized and adversarial round-trips of the residual syntax layer.
//!
//! Two properties are pinned here, at every TU size and in both transform
//! and spatial modes:
//!
//! 1. **Round-trip**: `parse_residual` inverts `code_residual` exactly,
//!    including extreme magnitudes (`±i32::MAX` exercises the truncated
//!    Rice → exp-Golomb escape all the way out) and pure sign patterns.
//! 2. **Batched = bin-by-bin**: the `CabacEncoder` fast path that folds
//!    whole bypass runs (`encode_bypass_bits`) produces byte-identical
//!    streams to the naive one-bin-at-a-time decomposition. A wrapper
//!    sink forces the default `BinSink::bypass_bits` loop so both code
//!    paths run against the same syntax.

use llm265_bitstream::cabac::{CabacDecoder, CabacEncoder, Prob};
use llm265_videocodec::syntax::{code_residual, parse_residual, BinSink, Contexts};

/// All TU sizes the codec profiles can emit.
const TU_SIZES: [usize; 4] = [4, 8, 16, 32];

/// A sink that refuses the batched bypass fast path: `bypass_bits` falls
/// back to the trait's default bin-by-bin decomposition, so every bypass
/// bin goes through `encode_bypass` individually.
struct BinByBin(CabacEncoder);

impl BinSink for BinByBin {
    fn bit(&mut self, ctx: &mut Prob, b: bool) {
        self.0.encode_bit(ctx, b);
    }

    fn bypass(&mut self, b: bool) {
        self.0.encode_bypass(b);
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Adversarial level blocks for an `n × n` TU.
fn patterns(n: usize) -> Vec<Vec<i32>> {
    let nn = n * n;
    let mut out: Vec<Vec<i32>> = Vec::new();
    // Max-magnitude, alternating signs: every level takes the deepest
    // escape path and every sign bin flips.
    out.push(
        (0..nn)
            .map(|i| if i % 2 == 0 { i32::MAX } else { -i32::MAX })
            .collect(),
    );
    // All-sign-flip at minimal magnitude: sign bypass bins dominate.
    out.push((0..nn).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect());
    // Sparse: a few nonzeros straddling the scan.
    let mut sparse = vec![0i32; nn];
    sparse[0] = 7;
    sparse[nn / 2] = -12_345;
    sparse[nn - 1] = 1;
    out.push(sparse);
    // Empty TU: coded-block flag only.
    out.push(vec![0i32; nn]);
    // Dense mixed magnitudes with zero runs.
    let mut s = 0x1234_5678_9abc_def0u64 ^ nn as u64;
    out.push(
        (0..nn)
            .map(|_| {
                let r = lcg(&mut s);
                if r.is_multiple_of(5) {
                    return 0;
                }
                let mag = ((r >> 8) % 300) as i32;
                if r & 1 == 0 {
                    mag
                } else {
                    -mag
                }
            })
            .collect(),
    );
    // Escape-heavy: magnitudes far past the Rice prefix cap, so the
    // exp-Golomb suffix path runs with large widths.
    let mut s = 0xdead_beefu64 ^ nn as u64;
    out.push(
        (0..nn)
            .map(|_| {
                let r = lcg(&mut s);
                let mag = 3 + ((r >> 5) % 100_000) as i32;
                if r & 1 == 0 {
                    mag
                } else {
                    -mag
                }
            })
            .collect(),
    );
    out
}

#[test]
fn batched_and_bin_by_bin_residual_streams_are_byte_identical() {
    for &n in &TU_SIZES {
        for &spatial in &[false, true] {
            let mut fast = CabacEncoder::new();
            let mut slow = BinByBin(CabacEncoder::new());
            let mut ctx_fast = Contexts::new();
            let mut ctx_slow = Contexts::new();
            // One continuous stream per configuration so the adaptive
            // contexts evolve across blocks on both sides.
            for levels in patterns(n) {
                code_residual(&mut fast, &mut ctx_fast, &levels, n, spatial);
                code_residual(&mut slow, &mut ctx_slow, &levels, n, spatial);
            }
            let a = fast.finish();
            let b = slow.0.finish();
            assert_eq!(a, b, "streams diverge at n={n} spatial={spatial}");
        }
    }
}

#[test]
fn adversarial_levels_roundtrip_at_every_tu_size() {
    for &n in &TU_SIZES {
        for &spatial in &[false, true] {
            let pats = patterns(n);
            let mut enc = CabacEncoder::new();
            let mut ectx = Contexts::new();
            for levels in &pats {
                code_residual(&mut enc, &mut ectx, levels, n, spatial);
            }
            let bytes = enc.finish();
            let mut dec = CabacDecoder::new(&bytes);
            let mut dctx = Contexts::new();
            for levels in &pats {
                let got = parse_residual(&mut dec, &mut dctx, n, spatial).expect("parse");
                assert_eq!(&got, levels, "roundtrip failed at n={n} spatial={spatial}");
            }
        }
    }
}

/// Proptest-style sweep: many random blocks with a magnitude mix skewed
/// toward the syntax's edge cases, each round checking both properties.
#[test]
fn random_levels_roundtrip_and_match_bin_by_bin() {
    let mut seed = 42u64;
    for round in 0..48 {
        let n = TU_SIZES[(lcg(&mut seed) % 4) as usize];
        let spatial = lcg(&mut seed) & 1 == 0;
        let levels: Vec<i32> = (0..n * n)
            .map(|_| {
                let r = lcg(&mut seed);
                match r % 7 {
                    0 | 1 => 0,
                    2 => i32::MAX,
                    3 => -i32::MAX,
                    4 => ((r >> 33) % 1_000) as i32,
                    5 => -(((r >> 33) % 1_000) as i32),
                    _ => {
                        if r & 2 == 0 {
                            1
                        } else {
                            -1
                        }
                    }
                }
            })
            .collect();

        let mut fast = CabacEncoder::new();
        let mut slow = BinByBin(CabacEncoder::new());
        let mut ctx_fast = Contexts::new();
        let mut ctx_slow = Contexts::new();
        code_residual(&mut fast, &mut ctx_fast, &levels, n, spatial);
        code_residual(&mut slow, &mut ctx_slow, &levels, n, spatial);
        let bytes = fast.finish();
        assert_eq!(
            bytes,
            slow.0.finish(),
            "round {round}: batched != bin-by-bin (n={n} spatial={spatial})"
        );

        let mut dec = CabacDecoder::new(&bytes);
        let mut dctx = Contexts::new();
        let got = parse_residual(&mut dec, &mut dctx, n, spatial).expect("parse");
        assert_eq!(
            got, levels,
            "round {round}: roundtrip failed (n={n} spatial={spatial})"
        );
    }
}
