//! Cross-run determinism: the encoder must be a pure function of its
//! inputs. Bit-exactness of the stream across repeated encodes is what the
//! `xtask lint` determinism pass enforces structurally (no hash-order or
//! clock dependence on codec paths); these tests pin the behaviour
//! end-to-end so a regression fails loudly even if a nondeterministic
//! construct slips past the static gate.

use llm265_videocodec::{decode_video, encode_video, CodecConfig, Frame, PipelineConfig, Profile};

fn textured_frame(seed: u64, w: usize, h: usize) -> Frame {
    Frame::from_fn(w, h, |x, y| {
        let v = (x * 7 + y * 13 + (x * y) / 3) as u64 + seed * 31;
        (v % 256) as u8
    })
}

/// Encoding the same frames twice must produce byte-identical streams —
/// any divergence means something on the encode path depends on process
/// state (hash seeds, time, thread scheduling).
#[test]
fn repeated_encodes_are_byte_identical() {
    let frames = [
        textured_frame(1, 48, 48),
        textured_frame(2, 48, 48),
        textured_frame(3, 48, 48),
    ];
    for profile in [Profile::h264(), Profile::h265(), Profile::av1()] {
        let cfg = CodecConfig::default().with_profile(profile).with_qp(27.5);
        let a = encode_video(&frames, &cfg);
        let b = encode_video(&frames, &cfg);
        assert_eq!(a.bytes, b.bytes, "stream differs across runs");
        for (fa, fb) in a.recon.iter().zip(&b.recon) {
            assert_eq!(fa, fb, "reconstruction differs across runs");
        }
    }
}

/// Every pipeline ablation point must also be deterministic, not just the
/// full configuration.
#[test]
fn all_pipeline_configs_are_deterministic() {
    let frames = [textured_frame(7, 32, 32), textured_frame(8, 32, 32)];
    for byte in 0..32u8 {
        let pipeline = PipelineConfig::from_byte(byte);
        let cfg = CodecConfig::default().with_pipeline(pipeline).with_qp(30.0);
        let a = encode_video(&frames, &cfg);
        let b = encode_video(&frames, &cfg);
        assert_eq!(a.bytes, b.bytes, "pipeline byte {byte} nondeterministic");
    }
}

/// Decode must be deterministic too: the same stream decodes to the same
/// frames on every run.
#[test]
fn repeated_decodes_are_identical() {
    let frames = [textured_frame(11, 40, 24)];
    let enc = encode_video(&frames, &CodecConfig::default().with_qp(24.0));
    let a = decode_video(&enc.bytes).expect("decode failed");
    let b = decode_video(&enc.bytes).expect("decode failed");
    assert_eq!(a, b);
}

/// The encoder's committed reconstruction must equal the decoder's output
/// exactly. The tensor codec's rate search relies on this: it measures
/// reconstruction error from `EncodedVideo::recon` without a decode
/// round-trip, so any drift here silently skews every MSE-targeted
/// search. Cover intra-only and inter paths at several QPs, including a
/// fractional one.
#[test]
fn encoder_recon_is_bit_exact_with_decoder_output() {
    let frames = [
        textured_frame(17, 56, 40),
        textured_frame(18, 56, 40),
        textured_frame(17, 56, 40), // repeat favours inter prediction
    ];
    for qp in [8.0, 24.25, 38.0, 51.0] {
        let cfg = CodecConfig::default().with_qp(qp);
        let enc = encode_video(&frames, &cfg);
        let dec = decode_video(&enc.bytes).expect("decode failed");
        assert_eq!(enc.recon.len(), dec.len());
        for (i, (r, d)) in enc.recon.iter().zip(&dec).enumerate() {
            assert_eq!(r, d, "frame {i} at qp {qp}");
        }
    }
}

/// Non-CTU-aligned frame sizes exercise the padding/cropping path; the
/// recon/decoder identity and run-to-run determinism must hold there too.
#[test]
fn odd_sizes_stay_deterministic_and_recon_exact() {
    for (w, h) in [(33, 17), (1, 64), (80, 9)] {
        let frames = [textured_frame(5, w, h)];
        let cfg = CodecConfig::default().with_qp(28.0);
        let a = encode_video(&frames, &cfg);
        let b = encode_video(&frames, &cfg);
        assert_eq!(a.bytes, b.bytes, "{w}x{h} stream differs across runs");
        let dec = decode_video(&a.bytes).expect("decode failed");
        assert_eq!(a.recon[0], dec[0], "{w}x{h} recon != decode");
    }
}
