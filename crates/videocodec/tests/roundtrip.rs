//! End-to-end codec invariants: decode(encode(x)) is bit-exact with the
//! encoder's reconstruction, for every profile, pipeline configuration and
//! frame shape.

use llm265_tensor::check::Checker;
use llm265_tensor::prop_ensure;
use llm265_tensor::rng::Pcg32;
use llm265_videocodec::{decode_video, encode_video, CodecConfig, Frame, PipelineConfig, Profile};

fn textured_frame(seed: u64, w: usize, h: usize) -> Frame {
    let mut rng = Pcg32::seed_from(seed);
    let bands: Vec<i32> = (0..w).map(|x| ((x / 5) as i32 * 37) % 120).collect();
    Frame::from_fn(w, h, |x, y| {
        let v = 70 + bands[x] + ((y / 7) as i32 * 11) % 60 + (rng.below(21) as i32 - 10);
        v.clamp(0, 255) as u8
    })
}

fn assert_roundtrip(frames: &[Frame], cfg: &CodecConfig) {
    let enc = encode_video(frames, cfg);
    let dec = decode_video(&enc.bytes).expect("decode failed");
    assert_eq!(dec.len(), frames.len());
    for (i, (d, r)) in dec.iter().zip(&enc.recon).enumerate() {
        assert_eq!(d, r, "frame {i} decoder/encoder recon mismatch");
    }
}

#[test]
fn roundtrip_all_profiles() {
    let frames = [textured_frame(1, 64, 64)];
    for profile in [Profile::h264(), Profile::h265(), Profile::av1()] {
        let cfg = CodecConfig::default().with_profile(profile).with_qp(26.0);
        assert_roundtrip(&frames, &cfg);
    }
}

#[test]
fn roundtrip_all_pipeline_configs() {
    let frames = [textured_frame(2, 48, 48), textured_frame(3, 48, 48)];
    for byte in 0..32u8 {
        let pipeline = PipelineConfig::from_byte(byte);
        let cfg = CodecConfig::default().with_pipeline(pipeline).with_qp(30.0);
        assert_roundtrip(&frames, &cfg);
    }
}

#[test]
fn roundtrip_non_aligned_sizes() {
    for &(w, h) in &[(1usize, 1usize), (7, 5), (33, 17), (65, 31), (100, 3)] {
        let frames = [textured_frame(w as u64 * 1000 + h as u64, w, h)];
        assert_roundtrip(&frames, &CodecConfig::default().with_qp(24.0));
    }
}

#[test]
fn roundtrip_extreme_qps() {
    let frames = [textured_frame(4, 40, 40)];
    for qp in [0.0, 4.0, 17.3, 51.0] {
        assert_roundtrip(&frames, &CodecConfig::default().with_qp(qp));
    }
}

#[test]
fn quality_improves_with_lower_qp() {
    let frames = [textured_frame(5, 64, 64)];
    let mse_at = |qp: f64| {
        let enc = encode_video(&frames, &CodecConfig::default().with_qp(qp));
        frames[0].mse(&enc.recon[0])
    };
    let fine = mse_at(12.0);
    let coarse = mse_at(42.0);
    assert!(fine < coarse, "fine {fine} coarse {coarse}");
    assert!(fine < 6.0, "qp 12 should be near-transparent: mse {fine}");
}

#[test]
fn lossless_at_qstep_one_with_transform_skip() {
    // qp = 4 gives qstep 1; transform-skip then reproduces pixels exactly.
    let frames = [textured_frame(6, 32, 32)];
    let pipeline = PipelineConfig {
        transform: false,
        ..PipelineConfig::default()
    };
    let cfg = CodecConfig::default().with_pipeline(pipeline).with_qp(4.0);
    let enc = encode_video(&frames, &cfg);
    assert_eq!(
        enc.recon[0], frames[0],
        "qstep=1 transform-skip must be lossless"
    );
}

#[test]
fn corrupt_streams_error_gracefully() {
    let frames = [textured_frame(7, 32, 32)];
    let enc = encode_video(&frames, &CodecConfig::default());
    assert!(decode_video(&[]).is_err());
    assert!(decode_video(&enc.bytes[..10]).is_err());
    let mut bad_magic = enc.bytes.clone();
    bad_magic[0] ^= 0xff;
    assert!(decode_video(&bad_magic).is_err());
    // Truncating the payload must error, not panic.
    assert!(decode_video(&enc.bytes[..enc.bytes.len() - 4]).is_err());
}

#[test]
fn structured_content_beats_noise() {
    // The codec must exploit structure: banded frames cost fewer bits than
    // pure noise at the same QP.
    let structured = [textured_frame(8, 64, 64)];
    let mut rng = Pcg32::seed_from(9);
    let noise = [Frame::from_fn(64, 64, |_, _| rng.below(256) as u8)];
    let cfg = CodecConfig::default().with_qp(28.0);
    let bits_structured = encode_video(&structured, &cfg).bits();
    let bits_noise = encode_video(&noise, &cfg).bits();
    assert!(
        (bits_structured as f64) < 0.8 * bits_noise as f64,
        "structured {bits_structured} vs noise {bits_noise}"
    );
}

#[test]
fn prop_roundtrip_random_frames() {
    Checker::new(12).run("roundtrip random frames", |rng| {
        let seed = rng.next_u64();
        let w = 4 + rng.below_usize(66);
        let h = 4 + rng.below_usize(66);
        let qp = rng.below(52);
        let frames = [textured_frame(seed, w, h)];
        let cfg = CodecConfig::default().with_qp(qp as f64);
        let enc = encode_video(&frames, &cfg);
        let dec = decode_video(&enc.bytes).map_err(|e| e.to_string())?;
        prop_ensure!(dec[0] == enc.recon[0], "decoder/encoder recon mismatch");
        prop_ensure!(
            dec[0].width() == w && dec[0].height() == h,
            "shape mismatch"
        );
        Ok(())
    });
}

#[test]
fn prop_recon_error_bounded_by_qstep() {
    Checker::new(12).run("recon error bounded by qstep", |rng| {
        // Per-pixel reconstruction error should be loosely bounded by the
        // quantization step (transform spreads error but MSE tracks step²).
        let seed = rng.next_u64();
        let qp = 4 + rng.below(41);
        let frames = [textured_frame(seed, 32, 32)];
        let cfg = CodecConfig::default().with_qp(qp as f64);
        let enc = encode_video(&frames, &cfg);
        let mse = frames[0].mse(&enc.recon[0]);
        let step = llm265_videocodec::quant::qstep(qp as f64);
        // Dead-zone quantizer MSE is at most ~step²; allow 1.2x headroom.
        prop_ensure!(mse <= 1.2 * step * step + 1.0, "mse {mse} step {step}");
        Ok(())
    });
}
