//! Validates the inter-prediction path itself: the paper's claim that
//! inter-frame prediction does not help *tensors* (Fig 2b step 5→6) is
//! only meaningful if the same machinery demonstrably helps *video*.
//! These tests establish both halves.

use llm265_tensor::rng::Pcg32;
use llm265_videocodec::{decode_video, encode_video, CodecConfig, Frame, PipelineConfig};

/// A textured scene that translates by (dx, dy) per frame — classic video.
fn moving_scene(frames: usize, n: usize, dx: isize, dy: isize) -> Vec<Frame> {
    let mut rng = Pcg32::seed_from(99);
    let big = 2 * n;
    let backdrop = Frame::from_fn(big, big, |x, y| {
        ((x * 13 + y * 7 + (x * y) / 5) % 200 + rng.below(20) as usize) as u8
    });
    (0..frames)
        .map(|f| {
            Frame::from_fn(n, n, |x, y| {
                backdrop.get_clamped(
                    (x as isize + f as isize * dx + n as isize / 2).min(big as isize - 1),
                    (y as isize + f as isize * dy + n as isize / 2).min(big as isize - 1),
                )
            })
        })
        .collect()
}

/// Uncorrelated "layer stack" frames — tensors viewed as video.
fn layer_stack(frames: usize, n: usize) -> Vec<Frame> {
    (0..frames)
        .map(|f| {
            let mut rng = Pcg32::seed_from(1000 + f as u64);
            let bands: Vec<i32> = (0..n).map(|_| rng.below(120) as i32).collect();
            Frame::from_fn(n, n, |x, _y| {
                (70 + bands[x] + rng.below(21) as i32 - 10).clamp(0, 255) as u8
            })
        })
        .collect()
}

fn bits_with(frames: &[Frame], inter: bool) -> (u64, f64) {
    let pipeline = if inter {
        PipelineConfig::full_video()
    } else {
        PipelineConfig::default()
    };
    let cfg = CodecConfig::default().with_pipeline(pipeline).with_qp(30.0);
    let enc = encode_video(frames, &cfg);
    let dec = decode_video(&enc.bytes).expect("decode");
    let mse: f64 =
        frames.iter().zip(&dec).map(|(a, b)| a.mse(b)).sum::<f64>() / frames.len() as f64;
    (enc.bits(), mse)
}

#[test]
fn inter_prediction_helps_real_video() {
    let frames = moving_scene(4, 96, 3, 1);
    let (bits_intra, mse_intra) = bits_with(&frames, false);
    let (bits_inter, mse_inter) = bits_with(&frames, true);
    // Same QP → similar quality; inter must spend clearly fewer bits.
    assert!(
        (mse_inter - mse_intra).abs() < mse_intra * 0.5 + 4.0,
        "quality drifted: {mse_intra} vs {mse_inter}"
    );
    assert!(
        (bits_inter as f64) < 0.8 * bits_intra as f64,
        "inter {bits_inter} should beat intra {bits_intra} on translating video"
    );
}

#[test]
fn inter_prediction_does_not_help_layer_stacks() {
    // The paper's negative result: consecutive LLM layers have no pixel
    // correlation, so motion prediction buys nothing.
    let frames = layer_stack(4, 96);
    let (bits_intra, _) = bits_with(&frames, false);
    let (bits_inter, _) = bits_with(&frames, true);
    assert!(
        bits_inter as f64 > 0.95 * bits_intra as f64,
        "inter {bits_inter} should not beat intra {bits_intra} on uncorrelated layers"
    );
}

#[test]
fn p_frames_decode_bit_exactly() {
    // Inter frames reference reconstructed (not original) frames; decode
    // must still match the encoder's reconstruction exactly.
    let frames = moving_scene(3, 64, 2, 2);
    let cfg = CodecConfig::default()
        .with_pipeline(PipelineConfig::full_video())
        .with_qp(24.0);
    let enc = encode_video(&frames, &cfg);
    let dec = decode_video(&enc.bytes).unwrap();
    for (i, (d, r)) in dec.iter().zip(&enc.recon).enumerate() {
        assert_eq!(d, r, "frame {i}");
    }
}
