//! Single-frame ("image") coding: the three-in-one codec's third input
//! class reuses the intra pipeline exactly as the AVC image format does
//! (the paper's §7). These tests pin down that path: one intra frame is a
//! complete, self-contained image codec with sane rate-distortion.

use llm265_tensor::rng::Pcg32;
use llm265_videocodec::rate::{encode_to_bitrate, encode_to_mse, mse_of};
use llm265_videocodec::{decode_video, encode_video, CodecConfig, Frame};

/// A photo-like frame: smooth shading + edges + texture noise.
fn photo(seed: u64, n: usize) -> Frame {
    let mut rng = Pcg32::seed_from(seed);
    Frame::from_fn(n, n, |x, y| {
        let shade = 90.0 + 60.0 * ((x as f64 / n as f64) * std::f64::consts::PI).sin();
        let edge = if (x / 20 + y / 28) % 2 == 0 {
            35.0
        } else {
            -25.0
        };
        let texture = 6.0 * rng.normal();
        (shade + edge + texture).clamp(0.0, 255.0) as u8
    })
}

#[test]
fn image_roundtrip_is_bit_exact_with_encoder_recon() {
    let img = photo(1, 96);
    let cfg = CodecConfig::default().with_qp(24.0);
    let enc = encode_video(std::slice::from_ref(&img), &cfg);
    let dec = decode_video(&enc.bytes).unwrap();
    assert_eq!(dec[0], enc.recon[0]);
}

#[test]
fn image_rate_distortion_is_sane() {
    // A photo-like image at 1 bit/pixel should be visually transparent-ish
    // (PSNR > 30 dB ⇔ MSE < 65) and clearly better at 3 bits/pixel.
    let img = photo(2, 128);
    let cfg = CodecConfig::default();
    let at1 = encode_to_bitrate(std::slice::from_ref(&img), &cfg, 1.0);
    let at3 = encode_to_bitrate(std::slice::from_ref(&img), &cfg, 3.0);
    let mse1 = mse_of(std::slice::from_ref(&img), &at1.encoded);
    let mse3 = mse_of(std::slice::from_ref(&img), &at3.encoded);
    assert!(mse1 < 65.0, "1 bpp mse {mse1}");
    assert!(mse3 < mse1 / 2.0, "3 bpp mse {mse3} vs {mse1}");
}

#[test]
fn quality_targeted_image_coding() {
    let img = photo(3, 96);
    let cfg = CodecConfig::default();
    let res = encode_to_mse(std::slice::from_ref(&img), &cfg, 20.0);
    let got = mse_of(std::slice::from_ref(&img), &res.encoded);
    assert!(got <= 20.0 + 1e-9, "mse {got}");
    assert!(res.encoded.bits_per_pixel() < 4.0);
}
