//! Adversarial decoder tests: hostile video bitstreams must produce
//! [`DecodeError`]s, never panics and never unbounded allocations.

use llm265_videocodec::{decode_video, encode_video, CodecConfig, DecodeError, Frame};

/// A small two-frame clip with real detail (so the bitstream contains
/// split flags, mode bits and residual syntax, not just trivial leaves).
fn sample_stream() -> Vec<u8> {
    let frames: Vec<Frame> = (0..2)
        .map(|t| Frame::from_fn(48, 32, |x, y| ((x * 5 + y * 3 + t * 17) % 251) as u8))
        .collect();
    encode_video(&frames, &CodecConfig::default()).bytes
}

// The fixed header is 168 bits: magic(32) version(8) profile(8)
// pipeline(8) qp(16) width(32) height(32) n_frames(32), MSB-first.
const HEADER_BYTES: usize = 21;
const WIDTH_OFFSET: usize = 9;
const HEIGHT_OFFSET: usize = 13;
const NFRAMES_OFFSET: usize = 17;

fn patch_be_u32(stream: &mut [u8], offset: usize, value: u32) {
    stream[offset..offset + 4].copy_from_slice(&value.to_be_bytes());
}

#[test]
fn empty_and_tiny_inputs_error() {
    assert!(decode_video(&[]).is_err());
    for len in 1..HEADER_BYTES {
        assert!(
            decode_video(&vec![0u8; len]).is_err(),
            "{len}-byte input must not decode"
        );
    }
}

#[test]
fn sample_stream_roundtrips_before_corruption() {
    // Sanity anchor: everything below corrupts *this* stream, so it must
    // decode cleanly first.
    let frames = decode_video(&sample_stream()).expect("clean stream decodes");
    assert_eq!(frames.len(), 2);
    assert_eq!((frames[0].width(), frames[0].height()), (48, 32));
}

#[test]
fn bad_magic_and_version_are_rejected() {
    let mut stream = sample_stream();
    stream[0] ^= 0xff;
    assert!(matches!(
        decode_video(&stream),
        Err(DecodeError::Corrupt("bad magic"))
    ));

    let mut stream = sample_stream();
    stream[4] = stream[4].wrapping_add(1);
    assert!(matches!(
        decode_video(&stream),
        Err(DecodeError::Unsupported("bitstream version"))
    ));
}

#[test]
fn hostile_dimensions_hit_the_limit_not_the_allocator() {
    let mut stream = sample_stream();
    patch_be_u32(&mut stream, WIDTH_OFFSET, u32::MAX);
    patch_be_u32(&mut stream, HEIGHT_OFFSET, u32::MAX);
    assert!(matches!(
        decode_video(&stream),
        Err(DecodeError::LimitExceeded("frame dimensions"))
    ));

    let mut stream = sample_stream();
    patch_be_u32(&mut stream, WIDTH_OFFSET, 0);
    assert!(matches!(
        decode_video(&stream),
        Err(DecodeError::Corrupt("zero frame dimensions"))
    ));

    let mut stream = sample_stream();
    patch_be_u32(&mut stream, NFRAMES_OFFSET, u32::MAX);
    assert!(matches!(
        decode_video(&stream),
        Err(DecodeError::LimitExceeded("frame count"))
    ));
}

#[test]
fn every_truncation_point_errors_or_decodes_without_panic() {
    let stream = sample_stream();
    for cut in 0..stream.len() {
        // Short prefixes must error; a cut inside the last frame's CABAC
        // payload may still "decode" (arithmetic decoders read past the
        // end as zeros) but must never panic.
        let _ = decode_video(&stream[..cut]);
    }
    // Cutting anywhere inside the header or frame-length framing must error.
    for cut in 0..=HEADER_BYTES + 3 {
        assert!(
            decode_video(&stream[..cut]).is_err(),
            "cut at {cut} decoded"
        );
    }
}

#[test]
fn every_single_byte_flip_never_panics() {
    let stream = sample_stream();
    for pos in 0..stream.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut evil = stream.clone();
            evil[pos] ^= flip;
            let _ = decode_video(&evil);
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in [1usize, 20, 21, 22, 64, 1024] {
        let garbage: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
        let _ = decode_video(&garbage);
    }
}
