//! Clean fixture: a hot-path crate every pass scans and none flags.

#![forbid(unsafe_code)]

/// Mask-proven narrowing cast.
pub fn low_byte(v: u64) -> u8 {
    (v & 0xFF) as u8
}

/// Widening is always fine.
pub fn widen(v: u8) -> u32 {
    u32::from(v)
}
