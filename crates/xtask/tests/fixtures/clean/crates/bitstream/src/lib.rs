//! Clean fixture: a hot-path crate every pass scans and none flags.

#![forbid(unsafe_code)]

/// Mask-proven narrowing cast.
pub fn low_byte(v: u64) -> u8 {
    (v & 0xFF) as u8
}

/// Widening is always fine.
pub fn widen(v: u8) -> u32 {
    u32::from(v)
}

/// Cap for wire-declared sizes.
const MAX_FRAME: usize = 1 << 16;

/// A laundered wire length capped before sizing anything: wire-taint's
/// sanitized negative.
pub fn decode_frame_len(data: &[u8]) -> Vec<u8> {
    let n = wire_len(data).min(MAX_FRAME);
    Vec::with_capacity(n)
}

fn wire_len(data: &[u8]) -> usize {
    data.first().map_or(0, |&b| usize::from(b))
}

/// A reachable helper that bounds-checks: panic-reach's quiet negative.
pub fn decode_probe(data: &[u8]) -> u8 {
    probe_at(data, 3)
}

fn probe_at(data: &[u8], i: usize) -> u8 {
    data.get(i).copied().unwrap_or(0)
}
