//! Dirty fixture, videocodec half: one float-cmp and one determinism
//! finding (plus a hygiene finding from the manifest).

#![forbid(unsafe_code)]

pub mod encoder;

/// Float-cmp: exact comparison against a float literal fires.
pub fn is_zero(x: f32) -> bool {
    x == 0.0
}

/// Determinism: `HashMap` inside an encode-family function fires once
/// (both mentions share a line and dedupe).
pub fn encode_config() -> usize {
    let m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
    m.len()
}
