//! Encoder half of the dirty fixture.

/// Symmetry: writes a syntax element no reader in the domain parses.
pub fn write_ghost() {}
