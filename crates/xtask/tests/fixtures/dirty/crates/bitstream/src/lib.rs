//! Dirty fixture, bitstream half: one panic-freedom, one cast-safety and
//! one error-discipline finding, each next to a quiet twin (an allowed or
//! proven site) so the tests pin both directions.

#![forbid(unsafe_code)]

/// Panic-freedom: unwrap in a hot-path crate fires.
pub fn first(v: Option<u8>) -> u8 {
    v.unwrap()
}

/// The same construct under a marker stays quiet.
pub fn second(v: Option<u8>) -> u8 {
    // lint:allow(panic): fixture-approved escape hatch
    v.unwrap()
}

/// Cast-safety: i64 -> u8 narrows without proof.
pub fn narrow(v: i64) -> u8 {
    v as u8
}

/// Mask-proven narrowing stays quiet.
pub fn masked(v: i64) -> u8 {
    (v & 0xFF) as u8
}

/// Error-discipline: the dropped `Result` fires.
pub fn careless() {
    let _ = fallible();
}

/// Every definition of this name returns `Result`.
pub fn fallible() -> Result<u8, ()> {
    Ok(0)
}
