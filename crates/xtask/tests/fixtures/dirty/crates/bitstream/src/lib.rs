//! Dirty fixture, bitstream half: one panic-freedom, one cast-safety and
//! one error-discipline finding, each next to a quiet twin (an allowed or
//! proven site) so the tests pin both directions.

#![forbid(unsafe_code)]

/// Panic-freedom: unwrap in a hot-path crate fires.
pub fn first(v: Option<u8>) -> u8 {
    v.unwrap()
}

/// The same construct under a marker stays quiet.
pub fn second(v: Option<u8>) -> u8 {
    // lint:allow(panic): fixture-approved escape hatch
    v.unwrap()
}

/// Cast-safety: i64 -> u8 narrows without proof.
pub fn narrow(v: i64) -> u8 {
    v as u8
}

/// Mask-proven narrowing stays quiet.
pub fn masked(v: i64) -> u8 {
    (v & 0xFF) as u8
}

/// Error-discipline: the dropped `Result` fires.
pub fn careless() {
    let _ = fallible();
}

/// Every definition of this name returns `Result`.
pub fn fallible() -> Result<u8, ()> {
    Ok(0)
}

/// Wire-taint: a length laundered through a helper still reaches the
/// allocation, and the witness chain carries the helper hop.
pub fn decode_table(data: &[u8]) -> Vec<u8> {
    let n = header_len(data);
    Vec::with_capacity(n)
}

/// The laundering hop: wire bytes in, a "plain" usize out.
fn header_len(data: &[u8]) -> usize {
    data.first().map_or(0, |&b| usize::from(b))
}

/// Cap for the sanitized twin.
const MAX_TABLE: usize = 4096;

/// The same flow capped against a named constant stays quiet.
pub fn decode_table_capped(data: &[u8]) -> Vec<u8> {
    let n = header_len(data).min(MAX_TABLE);
    Vec::with_capacity(n)
}

/// Panic-reach: the indexing lives in a helper, so only the call-graph
/// closure from the public decode API sees it.
pub fn decode_entry(data: &[u8]) -> u8 {
    entry_at(data, 1)
}

fn entry_at(data: &[u8], i: usize) -> u8 {
    data[i + 1]
}

/// The bounds-checked twin stays quiet.
pub fn decode_entry_checked(data: &[u8]) -> u8 {
    entry_at_checked(data, 1)
}

fn entry_at_checked(data: &[u8], i: usize) -> u8 {
    data.get(i + 1).copied().unwrap_or(0)
}

/// Range-proof: the promoted product wraps u16. The under-guarded shift
/// and the widened-then-truncated index below are collected too, but the
/// pass reports one finding per function, so the first site wins.
pub fn decode_gain(a: u8, n: u32) -> u16 {
    let lut: [u16; 16] = [0; 16];
    let wide = promote(a) * 300;
    let scaled = wide << (n & 31);
    scaled + lut[((u32::from(a) + 16) & 31) as usize]
}

/// The interprocedural hop: the summary carries the param -> return
/// interval, so the witness chain shows `promote(…) ∈ [0, 255]`.
fn promote(v: u8) -> u16 {
    u16::from(v)
}

/// The proven twin stays quiet: the product is widened to u32, the shift
/// amount is masked below the width, and the index below the length.
pub fn decode_gain_checked(a: u8, n: u32) -> u16 {
    let lut: [u16; 16] = [0; 16];
    let wide = u32::from(promote(a)) * 300;
    let scaled = wide >> (n & 15);
    (scaled & 0x7FFF) as u16 + lut[usize::from(a) & 15]
}
