//! End-to-end tests of the lint engine over the on-disk fixture
//! workspaces in `tests/fixtures/`.
//!
//! The `dirty` fixture is built to trip every pass exactly once, with a
//! quiet twin (an allowed or proven site) next to each finding; `clean`
//! must produce nothing. On top of the library-level assertions, the CLI
//! tests run the actual binary and pin its exit codes, JSON output, and
//! `--write-baseline` round trip.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

use xtask::baseline::Baseline;
use xtask::{run_lint, PASSES};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

fn counts_by_pass(violations: &[xtask::report::Violation]) -> BTreeMap<&'static str, usize> {
    let mut out = BTreeMap::new();
    for v in violations {
        *out.entry(v.pass).or_insert(0) += 1;
    }
    out
}

#[test]
fn clean_fixture_reports_nothing() {
    let report = run_lint(&fixture("clean"), None).expect("lint clean fixture");
    assert!(report.is_clean(), "unexpected: {:?}", report.violations);
    assert_eq!(report.files_scanned, 1);
    assert_eq!(report.passes_run, PASSES);
}

#[test]
fn dirty_fixture_trips_every_pass_exactly_once() {
    let report = run_lint(&fixture("dirty"), None).expect("lint dirty fixture");
    let counts = counts_by_pass(&report.violations);
    let expected: BTreeMap<&str, usize> = PASSES.iter().map(|&p| (p, 1)).collect();
    assert_eq!(counts, expected, "violations: {:?}", report.violations);
}

#[test]
fn dirty_findings_land_on_the_expected_sites() {
    let report = run_lint(&fixture("dirty"), None).expect("lint dirty fixture");
    let has = |pass: &str, path_suffix: &str, needle: &str| {
        report
            .violations
            .iter()
            .any(|v| v.pass == pass && v.path.ends_with(path_suffix) && v.message.contains(needle))
    };
    assert!(has("panic-freedom", "bitstream/src/lib.rs", "unwrap"));
    assert!(has("cast-safety", "bitstream/src/lib.rs", "i64"));
    assert!(has("error-discipline", "bitstream/src/lib.rs", "fallible"));
    assert!(has("float-cmp", "videocodec/src/lib.rs", "float"));
    assert!(has("determinism", "videocodec/src/lib.rs", "HashMap"));
    assert!(has("symmetry", "videocodec/src/encoder.rs", "ghost"));
    assert!(has("hygiene", "llm265-videocodec (Cargo.toml)", "[lints]"));
    assert!(has("wire-taint", "bitstream/src/lib.rs", "allocation size"));
    assert!(has("panic-reach", "bitstream/src/lib.rs", "decode_entry"));
    assert!(has("range-proof", "bitstream/src/lib.rs", "escapes"));
    // The determinism finding must explain the codec-path chain.
    let det = report
        .violations
        .iter()
        .find(|v| v.pass == "determinism")
        .expect("determinism finding");
    assert!(det.message.contains("encode_config"), "{}", det.message);
}

#[test]
fn dataflow_findings_carry_interprocedural_witness_chains() {
    let report = run_lint(&fixture("dirty"), None).expect("lint dirty fixture");
    // Wire-taint: the chain must span the laundering helper, i.e. hold at
    // least one function-call hop between the source and the sink fn.
    let taint = report
        .violations
        .iter()
        .find(|v| v.pass == "wire-taint")
        .expect("wire-taint finding");
    assert!(
        taint.chain.iter().any(|h| h == "header_len"),
        "{:?}",
        taint.chain
    );
    assert!(
        taint.chain.iter().any(|h| h == "decode_table"),
        "{:?}",
        taint.chain
    );
    // Panic-reach: the chain walks root → panicking helper.
    let reach = report
        .violations
        .iter()
        .find(|v| v.pass == "panic-reach")
        .expect("panic-reach finding");
    assert_eq!(reach.chain, vec!["decode_entry", "entry_at"]);
}

#[test]
fn allowed_and_proven_twins_stay_quiet() {
    let report = run_lint(&fixture("dirty"), None).expect("lint dirty fixture");
    // The fixture holds two unwraps (one under lint:allow(panic)) and two
    // narrowing casts (one mask-proven): exactly one finding each survives.
    let unwraps = report
        .violations
        .iter()
        .filter(|v| v.pass == "panic-freedom")
        .count();
    let casts = report
        .violations
        .iter()
        .filter(|v| v.pass == "cast-safety")
        .count();
    assert_eq!((unwraps, casts), (1, 1), "{:?}", report.violations);
}

#[test]
fn matching_baseline_makes_the_gate_clean() {
    let raw = run_lint(&fixture("dirty"), None).expect("raw lint");
    let baseline = Baseline::from_violations(&raw.violations);
    let gated = run_lint(&fixture("dirty"), Some(&baseline)).expect("gated lint");
    assert!(gated.is_clean(), "{:?}", gated.violations);
    assert_eq!(gated.baselined.len(), raw.violations.len());
    assert!(
        gated.stale_baseline.is_empty(),
        "{:?}",
        gated.stale_baseline
    );
}

#[test]
fn findings_beyond_the_baseline_fail_the_gate() {
    let raw = run_lint(&fixture("dirty"), None).expect("raw lint");
    let mut baseline = Baseline::from_violations(&raw.violations);
    // Drop one pass's table entirely: its finding is now "new" and fails.
    baseline.counts.remove("cast-safety");
    let gated = run_lint(&fixture("dirty"), Some(&baseline)).expect("gated lint");
    assert!(!gated.is_clean());
    assert_eq!(gated.violations.len(), 1);
    assert_eq!(gated.violations[0].pass, "cast-safety");
    assert_eq!(gated.baselined.len(), raw.violations.len() - 1);
}

#[test]
fn overlarge_baseline_entries_surface_as_stale() {
    let raw = run_lint(&fixture("dirty"), None).expect("raw lint");
    let mut baseline = Baseline::from_violations(&raw.violations);
    for files in baseline.counts.values_mut() {
        for n in files.values_mut() {
            *n += 1;
        }
    }
    let gated = run_lint(&fixture("dirty"), Some(&baseline)).expect("gated lint");
    assert!(gated.is_clean(), "inflated counts still cover everything");
    assert_eq!(
        gated.stale_baseline.len(),
        baseline.counts.values().map(BTreeMap::len).sum::<usize>(),
        "{:?}",
        gated.stale_baseline
    );
}

#[test]
fn fixture_baseline_roundtrips_through_toml() {
    let raw = run_lint(&fixture("dirty"), None).expect("raw lint");
    let baseline = Baseline::from_violations(&raw.violations);
    let reparsed = Baseline::parse(&baseline.to_toml()).expect("reparse");
    assert_eq!(reparsed, baseline);
}

// --- CLI-level tests: run the real binary against the fixtures. ---

fn lint_cmd(root: &PathBuf, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("run xtask binary")
}

#[test]
fn cli_exit_codes_track_cleanliness() {
    let clean = lint_cmd(&fixture("clean"), &[]);
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");
    // No baseline file exists under the fixture root, so all 10 findings
    // are new and the gate must fail.
    let dirty = lint_cmd(&fixture("dirty"), &["--no-baseline"]);
    assert_eq!(dirty.status.code(), Some(1), "{dirty:?}");
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(stdout.contains("10 violation(s) (0 baselined)"), "{stdout}");
}

#[test]
fn cli_json_format_reports_counts_ids_and_chains() {
    let out = lint_cmd(&fixture("dirty"), &["--no-baseline", "--format", "json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"count\": 10"), "{stdout}");
    assert!(stdout.contains("\"id\": \"wire-taint@"), "{stdout}");
    assert!(
        stdout.contains("\"chain\": [\"read of `data`\", \"header_len\", \"decode_table\"]"),
        "{stdout}"
    );
    assert_eq!(stdout.matches('{').count(), stdout.matches('}').count());
}

#[test]
fn cli_sarif_writes_a_valid_report_next_to_the_gate_output() {
    let dir = std::env::temp_dir().join(format!("xtask-sarif-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("lint.sarif");
    let out = lint_cmd(
        &fixture("dirty"),
        &["--no-baseline", "--sarif", path.to_str().expect("utf-8")],
    );
    // The SARIF write must not change the gate verdict.
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let sarif = std::fs::read_to_string(&path).expect("sarif written");
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"name\": \"xtask-lint\""), "{sarif}");
    assert!(sarif.contains("\"id\": \"range-proof\""), "{sarif}");
    assert!(
        sarif.contains("\"ruleId\": \"wire-taint\", \"level\": \"error\""),
        "{sarif}"
    );
    // Witness chains ride along as code flows.
    assert!(sarif.contains("\"codeFlows\""), "{sarif}");
    assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
    assert_eq!(sarif.matches('[').count(), sarif.matches(']').count());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_pass_filter_reports_one_pass_only() {
    let out = lint_cmd(
        &fixture("dirty"),
        &["--no-baseline", "--pass", "wire-taint"],
    );
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 violation(s) (0 baselined)"), "{stdout}");
    assert!(stdout.contains("passes: wire-taint"), "{stdout}");
    assert!(!stdout.contains("[panic-freedom]"), "{stdout}");
    // An unknown pass name is a usage error.
    let bad = lint_cmd(&fixture("dirty"), &["--pass", "no-such-pass"]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");
}

#[test]
fn cli_explain_prints_the_witness_chain() {
    let report = run_lint(&fixture("dirty"), None).expect("lint dirty fixture");
    let taint = report
        .violations
        .iter()
        .find(|v| v.pass == "wire-taint")
        .expect("wire-taint finding");
    let out = lint_cmd(&fixture("dirty"), &["--explain", &taint.id()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("witness chain"), "{stdout}");
    assert!(stdout.contains("header_len"), "{stdout}");
    assert!(stdout.contains("lint:allow(taint)"), "{stdout}");
    // An unknown id is a usage error, with guidance on stderr.
    let bad = lint_cmd(&fixture("dirty"), &["--explain", "wire-taint@nope.rs:1"]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");
}

#[test]
fn cli_explain_renders_interval_chain_hops() {
    let report = run_lint(&fixture("dirty"), None).expect("lint dirty fixture");
    let range = report
        .violations
        .iter()
        .find(|v| v.pass == "range-proof")
        .expect("range-proof finding");
    // The chain walks fn -> interprocedural hop, with the interval the
    // transfer function produced annotated at the hop.
    assert_eq!(range.chain[0], "fn decode_gain", "{:?}", range.chain);
    assert!(
        range
            .chain
            .iter()
            .any(|h| h.contains("promote") && h.contains("[0, 255]")),
        "{:?}",
        range.chain
    );
    let out = lint_cmd(&fixture("dirty"), &["--explain", &range.id()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("witness chain"), "{stdout}");
    assert!(stdout.contains("[0, 255]"), "{stdout}");
}

#[test]
fn cli_write_baseline_then_gate_passes() {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("engine-test-baseline.toml");
    let wrote = lint_cmd(
        &fixture("dirty"),
        &[
            "--write-baseline",
            "--baseline",
            path.to_str().expect("utf8 path"),
        ],
    );
    assert_eq!(wrote.status.code(), Some(0), "{wrote:?}");
    let text = std::fs::read_to_string(&path).expect("baseline written");
    assert!(text.contains("[cast-safety]"), "{text}");
    let gated = lint_cmd(
        &fixture("dirty"),
        &["--baseline", path.to_str().expect("utf8 path")],
    );
    assert_eq!(gated.status.code(), Some(0), "{gated:?}");
    let stdout = String::from_utf8_lossy(&gated.stdout);
    assert!(stdout.contains("0 violation(s) (10 baselined)"), "{stdout}");
}

#[test]
fn cli_rejects_unparsable_baseline() {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("engine-test-bad-baseline.toml");
    std::fs::write(&path, "this is not a baseline\n").expect("write bad baseline");
    let out = lint_cmd(
        &fixture("dirty"),
        &["--baseline", path.to_str().expect("utf8 path")],
    );
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
