//! Interprocedural wire-taint dataflow over the workspace call graph.
//!
//! The per-file passes reason about one function body at a time; this
//! module tracks *values* across function boundaries. A value is tainted
//! when it originates from an untrusted read — a `BitReader`/`ByteReader`
//! getter, a CABAC bypass decode, or any projection of an input-named
//! buffer (`data`, `payload`, …). Taint propagates through `let`
//! bindings, assignments, returns, and call arguments; it is cleared by
//! a sanitizer:
//!
//! - a diverging guard (`if n > MAX { return Err(…) }` — any `if` whose
//!   body bails via `return`/`break`/`continue` clears every tainted
//!   value its condition inspects);
//! - `.min(…)`/`.clamp(…)` where one side of the bound is untrusted-free;
//! - a narrowing `u8`/`u16`/`i8`/`i16` `::try_from` (the type bounds the
//!   value).
//!
//! The analysis is summary-based: [`summarize`] runs every function once
//! per fixed-point round with its parameters seeded as symbolic taint,
//! producing per-function facts (does the return carry wire taint? which
//! parameters flow to the return? which parameters reach an allocation
//! size, loop bound, or slice index?). The wire-taint pass then replays
//! each function *unseeded*, so only genuine wire-rooted values reach the
//! recorded sinks, and renders a source→sink witness chain from the
//! [`Origin`] tree.
//!
//! Known imprecision (deliberate, documented in DESIGN.md): the tracker
//! is field-insensitive and treats struct literals as opaque
//! constructors; one-sided comparisons count as full guards; a sanitizer
//! anywhere in an expression clears the whole expression.

pub mod interval;

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::ast::index::Index;
use crate::ast::lex::Kind;
use crate::ast::tree::{to_text, Group, Tree};
use crate::passes::panic_free::INPUT_NAMES;

/// Same ambiguity cap as [`Index::reachable`]: a name with more bodied
/// definitions than this is treated as unresolvable.
pub const MAX_CANDIDATES: usize = 3;

/// Reader/decoder methods whose return value is attacker-controlled.
pub const SOURCE_METHODS: &[&str] = &[
    "read_bits",
    "read_bit",
    "read_ue",
    "read_se",
    "read_le_u16",
    "read_le_u32",
    "read_le_u64",
    "decode_bit",
    "decode_bypass",
    "decode_bypass_bits",
    "decode_ue_bypass",
    "decode_truncated_unary",
];

/// Projections whose result is trusted even on a tainted receiver: the
/// *length* of a wire-filled buffer is the decoder's own bookkeeping.
const TRUSTED_PROJECTIONS: &[&str] = &["len", "is_empty", "capacity"];

/// Integer types narrow enough that a fallible `try_from` into them
/// bounds a wire value below any allocation or index hazard.
const NARROW_TYPES: &[&str] = &["u8", "u16", "i8", "i16"];

/// Receiver methods that absorb their argument: a tainted argument
/// taints the (local) receiver collection.
const TAINTING_MUTATORS: &[&str] = &["push", "extend", "extend_from_slice", "append", "insert"];

/// Control keywords that look like calls (`if (…)`) or would otherwise be
/// mistaken for index receivers (`return [a, b]`).
const KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "let", "else", "move", "mut",
    "ref", "break", "continue",
];

/// Where a tainted value came from — a linked provenance trail that the
/// report renders as the source half of the witness chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// Direct call of a reader method (`read_bits`, `decode_ue_bypass`).
    Source(String),
    /// Projection or indexing of an input-named buffer (`data[..]`).
    WireRead(String),
    /// Call of a workspace function whose return carries wire taint;
    /// the index identifies the callee for chain expansion.
    Call(String, usize),
    /// A tainted argument laundered through a call's return value.
    Through(String, Box<Origin>),
    /// The enclosing function's own parameter (summary mode only).
    Param(usize),
}

impl Origin {
    /// The parameter index this origin is rooted in, if it is (possibly
    /// transitively) a symbolic parameter rather than a concrete read.
    #[must_use]
    pub fn root_param(&self) -> Option<usize> {
        match self {
            Origin::Param(k) => Some(*k),
            Origin::Through(_, inner) => inner.root_param(),
            _ => None,
        }
    }
}

/// A parameter-rooted sink recorded in a function's summary: calling
/// this function with a tainted value in that position reaches `what`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSink {
    /// Sink kind: `allocation size`, `loop bound`, or `slice index`.
    pub what: &'static str,
    /// Compact text of the sink expression.
    pub detail: String,
    /// Callee names *below* the summarized function on the way to the
    /// sink (empty when the sink is in its own body).
    pub hops: Vec<String>,
}

/// Fixed-point facts for every indexed function, keyed by fn index.
#[derive(Debug, Clone, Default)]
pub struct Summaries {
    /// Wire-rooted taint carried by the return value, if any.
    pub returns: Vec<Option<Origin>>,
    /// Parameters that flow into the return value.
    pub param_returns: Vec<BTreeSet<usize>>,
    /// Parameters that reach a sink inside the function (or transitively
    /// through its callees).
    pub param_sinks: Vec<BTreeMap<usize, ParamSink>>,
}

/// One taint finding inside an analyzed function body.
#[derive(Debug, Clone)]
pub struct Finding {
    /// 0-based line of the sink (or of the call that forwards into one).
    pub line: usize,
    /// Sink kind: `allocation size`, `loop bound`, or `slice index`.
    pub what: &'static str,
    /// Compact text of the sink expression.
    pub detail: String,
    /// Provenance of the tainted value.
    pub origin: Origin,
    /// Callee names between this function and the sink site (empty when
    /// the sink is in this body; `[callee, …]` when a tainted argument
    /// flows into a callee's recorded sink).
    pub sink_hops: Vec<String>,
}

/// The result of analyzing one function body.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Tainted values reaching sinks.
    pub findings: Vec<Finding>,
    /// Taint origins that escape through `return` or the tail expression.
    pub escapes: Vec<Origin>,
}

/// Computes per-function summaries to a fixed point (capped rounds; the
/// call graph is shallow and each round is monotone, so the cap is a
/// safety net, not a tuning knob).
#[must_use]
pub fn summarize(index: &Index) -> Summaries {
    let n = index.fns.len();
    let mut sums = Summaries {
        returns: vec![None; n],
        param_returns: vec![BTreeSet::new(); n],
        param_sinks: vec![BTreeMap::new(); n],
    };
    for _round in 0..4 {
        let mut changed = false;
        for id in 0..n {
            let a = analyze(index, &sums, id, true);
            for o in &a.escapes {
                match o.root_param() {
                    Some(p) => {
                        changed |= sums.param_returns[id].insert(p);
                    }
                    None => {
                        if sums.returns[id].is_none() {
                            sums.returns[id] = Some(o.clone());
                            changed = true;
                        }
                    }
                }
            }
            for f in a.findings {
                if let Some(p) = f.origin.root_param() {
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        sums.param_sinks[id].entry(p)
                    {
                        e.insert(ParamSink {
                            what: f.what,
                            detail: f.detail,
                            hops: f.sink_hops,
                        });
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// Renders an origin as the source half of a witness chain, deepest
/// (the actual read) first. Depth-capped against recursive call cycles.
#[must_use]
pub fn origin_chain(sums: &Summaries, origin: &Origin) -> Vec<String> {
    fn go(sums: &Summaries, origin: &Origin, depth: usize, out: &mut Vec<String>) {
        if depth == 0 {
            out.push("…".to_string());
            return;
        }
        match origin {
            Origin::Source(m) => out.push(format!("{m}()")),
            Origin::WireRead(b) => out.push(format!("read of `{b}`")),
            Origin::Call(name, id) => {
                if let Some(Some(inner)) = sums.returns.get(*id) {
                    go(sums, inner, depth - 1, out);
                }
                out.push(name.clone());
            }
            Origin::Through(name, inner) => {
                go(sums, inner, depth - 1, out);
                out.push(name.clone());
            }
            Origin::Param(k) => out.push(format!("param #{k}")),
        }
    }
    let mut out = Vec::new();
    go(sums, origin, 12, &mut out);
    out
}

/// Analyzes one function body. With `seed_params` the function's named
/// parameters start tainted as [`Origin::Param`] (summary mode); without
/// it only genuine wire reads introduce taint (report mode).
#[must_use]
pub fn analyze(index: &Index, sums: &Summaries, id: usize, seed_params: bool) -> Analysis {
    let entry = &index.fns[id];
    let mut scan = Scan {
        index,
        sums,
        tainted: BTreeMap::new(),
        findings: Vec::new(),
        escapes: Vec::new(),
    };
    if seed_params {
        for (k, (name, _ty)) in entry.item.params.iter().enumerate() {
            if !name.is_empty() && name != "self" {
                scan.tainted.insert(name.clone(), Origin::Param(k));
            }
        }
    }
    if let Some(body) = &entry.item.body {
        scan.stmts(&body.trees);
        let tail = tail_expr(&body.trees);
        if let Some(o) = scan.expr_taint(tail) {
            scan.escapes.push(o);
        }
    }
    let mut findings = scan.findings;
    let mut seen: BTreeSet<(usize, &'static str, String)> = BTreeSet::new();
    findings.retain(|f| seen.insert((f.line, f.what, f.detail.clone())));
    Analysis {
        findings,
        escapes: scan.escapes,
    }
}

/// The per-body scanner: a taint environment plus accumulated results.
struct Scan<'a> {
    index: &'a Index,
    sums: &'a Summaries,
    tainted: BTreeMap<String, Origin>,
    findings: Vec<Finding>,
    escapes: Vec<Origin>,
}

impl Scan<'_> {
    /// Walks a statement sequence, threading the taint environment.
    fn stmts(&mut self, trees: &[Tree]) {
        let mut i = 0;
        while i < trees.len() {
            let t = &trees[i];
            if let Tree::Group(g) = t {
                if g.delim == '{' {
                    self.stmts(&g.trees);
                    i += 1;
                    continue;
                }
            }
            if t.is_ident("let") {
                i = self.stmt_let(trees, i);
            } else if t.is_ident("if") {
                i = self.stmt_if(trees, i);
            } else if t.is_ident("for") {
                i = self.stmt_for(trees, i);
            } else if t.is_ident("while") || t.is_ident("loop") || t.is_ident("match") {
                // Header expression is sink-checked; the block is scanned
                // as statements (match arms are statement-shaped enough
                // for taint purposes — `pat => expr,`).
                if let Some(b) = find_block(trees, i + 1) {
                    self.check_expr(&trees[i + 1..b]);
                    if let Some(g) = trees[b].group() {
                        self.stmts(&g.trees);
                    }
                    i = b + 1;
                } else {
                    i += 1;
                }
            } else if t.is_ident("return") {
                let end = stmt_end(trees, i + 1);
                let expr = &trees[i + 1..end];
                self.check_expr(expr);
                if let Some(o) = self.expr_taint(expr) {
                    self.escapes.push(o);
                }
                i = end + 1;
            } else {
                i = self.stmt_generic(trees, i);
            }
        }
    }

    /// `let pat[: ty] = expr;` — bind the pattern from the initializer's
    /// taint (or clear it when the initializer is clean/sanitized).
    fn stmt_let(&mut self, trees: &[Tree], i: usize) -> usize {
        let end = stmt_end(trees, i + 1);
        let seg = &trees[i + 1..end];
        let Some(eq) = seg.iter().position(|t| t.is_punct("=")) else {
            for name in pattern_names(seg) {
                self.tainted.remove(&name);
            }
            return end + 1;
        };
        let colon = seg[..eq].iter().position(|t| t.is_punct(":"));
        let pat = &seg[..colon.unwrap_or(eq)];
        let expr = &seg[eq + 1..];
        self.check_expr(expr);
        let taint = self.taint_after_sanitizers(expr);
        for name in pattern_names(pat) {
            match &taint {
                Some(o) => {
                    self.tainted.insert(name, o.clone());
                }
                None => {
                    self.tainted.remove(&name);
                }
            }
        }
        end + 1
    }

    /// `if cond { … } [else …]` with guard semantics: tainted values the
    /// condition inspects are treated as checked inside the branch, and
    /// permanently when the branch diverges (the `if x > MAX { return
    /// Err(…) }` idiom). `if let` binds its pattern from the scrutinee.
    fn stmt_if(&mut self, trees: &[Tree], i: usize) -> usize {
        let Some(b) = find_block(trees, i + 1) else {
            return i + 1;
        };
        let cond = &trees[i + 1..b];
        self.check_expr(cond);

        let mut branch = self.tainted.clone();
        let mut guarded: Vec<String> = Vec::new();
        if cond.first().is_some_and(|t| t.is_ident("let")) {
            if let Some(eq) = cond.iter().position(|t| t.is_punct("=")) {
                let taint = self.expr_taint(&cond[eq + 1..]);
                for name in pattern_names(&cond[1..eq]) {
                    match &taint {
                        Some(o) => {
                            branch.insert(name, o.clone());
                        }
                        None => {
                            branch.remove(&name);
                        }
                    }
                }
            }
        } else {
            for name in self.mentioned_tainted(cond) {
                branch.remove(&name);
                guarded.push(name);
            }
        }

        let Some(body) = trees[b].group() else {
            return b + 1;
        };
        let bails = diverges(body);
        let saved = std::mem::replace(&mut self.tainted, branch);
        self.stmts(&body.trees);
        let branch_out = std::mem::replace(&mut self.tainted, saved);
        // Join: additions and re-taints from the branch survive; branch-
        // local sanitization does not (the other path may not sanitize).
        for (k, v) in branch_out {
            self.tainted.insert(k, v);
        }
        if bails {
            for g in &guarded {
                self.tainted.remove(g);
            }
        }

        if trees.get(b + 1).is_some_and(|t| t.is_ident("else")) {
            if trees.get(b + 2).is_some_and(|t| t.is_ident("if")) {
                return self.stmt_if(trees, b + 2);
            }
            if let Some(g) = trees.get(b + 2).and_then(Tree::group) {
                let saved = self.tainted.clone();
                self.stmts(&g.trees);
                let after = std::mem::replace(&mut self.tainted, saved);
                for (k, v) in after {
                    self.tainted.insert(k, v);
                }
                return b + 3;
            }
        }
        b + 1
    }

    /// `for pat in iter { … }` — a tainted range bound is a loop-bound
    /// sink; iterating a tainted sequence taints the bound pattern.
    fn stmt_for(&mut self, trees: &[Tree], i: usize) -> usize {
        let Some(inp) = (i + 1..trees.len()).find(|&j| trees[j].is_ident("in")) else {
            return i + 1;
        };
        let Some(b) = find_block(trees, inp + 1) else {
            return i + 1;
        };
        let pat = &trees[i + 1..inp];
        let iter = &trees[inp + 1..b];
        self.check_expr(iter);
        let mut ranges = Vec::new();
        collect_ranges(iter, &mut ranges);
        if ranges.is_empty() {
            let taint = self
                .taint_after_sanitizers(iter)
                .or_else(|| bare_input(iter));
            if let Some(o) = taint {
                for name in pattern_names(pat) {
                    self.tainted.insert(name, o.clone());
                }
            }
        } else {
            for (lo, hi) in ranges {
                for side in [lo, hi] {
                    self.check_sink(side, "loop bound", iter.first().map_or(0, Tree::line));
                }
            }
        }
        if let Some(g) = trees[b].group() {
            self.stmts(&g.trees);
        }
        b + 1
    }

    /// Assignments, receiver mutations, and plain expression statements.
    fn stmt_generic(&mut self, trees: &[Tree], i: usize) -> usize {
        let end = stmt_end(trees, i + 1);
        let seg = &trees[i..end];
        let mut s = 0;
        while seg
            .get(s)
            .is_some_and(|t| t.is_punct("*") || t.is_punct("&"))
        {
            s += 1;
        }
        let target = seg
            .get(s)
            .and_then(Tree::leaf)
            .filter(|t| t.kind == Kind::Ident);
        const ASSIGN_OPS: &[&str] = &[
            "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "|=", "&=", "^=",
        ];
        let op_is = |p: &str| seg.get(s + 1).is_some_and(|t| t.is_punct(p));
        if let (Some(target), true) = (target, ASSIGN_OPS.iter().any(|p| op_is(p))) {
            let name = target.text.clone();
            let expr = &seg[s + 2..];
            self.check_expr(expr);
            let taint = self.taint_after_sanitizers(expr);
            match taint {
                Some(o) => {
                    self.tainted.insert(name, o);
                }
                // A plain reassignment to a clean value clears the slot;
                // compound ops keep whatever taint was already there.
                None if op_is("=") => {
                    self.tainted.remove(&name);
                }
                None => {}
            }
            return end + 1;
        }
        self.check_expr(seg);
        // `out.push(tainted)` and friends taint the local collection.
        if let (Some(recv), Some(method)) = (
            seg.first().and_then(Tree::leaf),
            seg.get(2).and_then(Tree::leaf),
        ) {
            if recv.kind == Kind::Ident
                && seg.get(1).is_some_and(|t| t.is_punct("."))
                && TAINTING_MUTATORS.contains(&method.text.as_str())
            {
                if let Some(g) = seg.get(3).and_then(Tree::group).filter(|g| g.delim == '(') {
                    if let Some(o) = self.expr_taint(&g.trees) {
                        self.tainted.insert(recv.text.clone(), o);
                    }
                }
            }
        }
        end + 1
    }

    /// Expression taint with sanitizers applied on top.
    fn taint_after_sanitizers(&self, expr: &[Tree]) -> Option<Origin> {
        let taint = self.expr_taint(expr)?;
        if self.is_sanitized(expr) {
            None
        } else {
            Some(taint)
        }
    }

    /// Scans an expression for sinks: allocation sizes, slice indices,
    /// and tainted arguments flowing into callees' recorded sinks.
    fn check_expr(&mut self, trees: &[Tree]) {
        for k in 0..trees.len() {
            match &trees[k] {
                Tree::Group(g) => {
                    if g.delim == '[' && is_index_position(trees, k) {
                        self.check_index_group(g);
                    }
                    self.check_expr(&g.trees);
                }
                Tree::Leaf(tok) if tok.kind == Kind::Ident => {
                    // `vec![elem; count]` — the repeat count allocates.
                    if tok.text == "vec" && trees.get(k + 1).is_some_and(|t| t.is_punct("!")) {
                        if let Some(g) = trees.get(k + 2).and_then(Tree::group) {
                            if let Some(semi) = g.trees.iter().position(|t| t.is_punct(";")) {
                                self.check_sink(&g.trees[semi + 1..], "allocation size", tok.line);
                            }
                        }
                        continue;
                    }
                    let Some(g) = trees
                        .get(k + 1)
                        .and_then(Tree::group)
                        .filter(|g| g.delim == '(')
                    else {
                        continue;
                    };
                    let name = tok.text.as_str();
                    if name == "with_capacity" {
                        self.check_sink(&g.trees, "allocation size", tok.line);
                    } else if matches!(name, "resize" | "resize_with" | "reserve")
                        && k > 0
                        && trees[k - 1].is_punct(".")
                    {
                        self.check_sink(first_arg(&g.trees), "allocation size", tok.line);
                    }
                    self.check_call_args(tok.line, name, g);
                }
                Tree::Leaf(_) => {}
            }
        }
    }

    /// `recv[index]` — each side of a range index (or the whole content)
    /// is a slice-index sink.
    fn check_index_group(&mut self, g: &Group) {
        let line = g.trees.first().map_or(0, Tree::line);
        if let Some(r) = g
            .trees
            .iter()
            .position(|t| t.is_punct("..") || t.is_punct("..="))
        {
            self.check_sink(&g.trees[..r], "slice index", line);
            self.check_sink(&g.trees[r + 1..], "slice index", line);
        } else {
            self.check_sink(&g.trees, "slice index", line);
        }
    }

    /// Records a finding when `trees` carries unsanitized taint.
    fn check_sink(&mut self, trees: &[Tree], what: &'static str, fallback_line: usize) {
        let Some(origin) = self.taint_after_sanitizers(trees) else {
            return;
        };
        let line = trees.first().map_or(fallback_line, Tree::line);
        self.findings.push(Finding {
            line,
            what,
            detail: compact(trees),
            origin,
            sink_hops: Vec::new(),
        });
    }

    /// A tainted argument in a position the callee's summary records as
    /// sink-reaching is a finding at the call site.
    fn check_call_args(&mut self, line: usize, name: &str, g: &Group) {
        if KEYWORDS.contains(&name) {
            return;
        }
        let targets = self.resolve(name);
        if targets.is_empty() {
            return;
        }
        for (ai, arg) in split_args(&g.trees).into_iter().enumerate() {
            let Some(origin) = self.taint_after_sanitizers(arg) else {
                continue;
            };
            for &t in &targets {
                let Some(ps) = self.sums.param_sinks.get(t).and_then(|m| m.get(&ai)) else {
                    continue;
                };
                let mut sink_hops = vec![name.to_string()];
                sink_hops.extend(ps.hops.iter().cloned());
                self.findings.push(Finding {
                    line,
                    what: ps.what,
                    detail: ps.detail.clone(),
                    origin,
                    sink_hops,
                });
                break;
            }
        }
    }

    /// The taint carried by an expression, if any. Resolved calls are
    /// trusted to their summaries (a clean summary launders its
    /// arguments); unresolved calls (std, methods) conservatively pass
    /// argument taint through (`usize::from(n)`, `Ok(n)`, `n.to_vec()`).
    fn expr_taint(&self, trees: &[Tree]) -> Option<Origin> {
        // A reader-method call anywhere wins over every other origin:
        // `r.read_ue()` is wire data even when `r` itself is a seeded
        // parameter, and the concrete source makes the better witness.
        if let Some(m) = find_source_call(trees) {
            return Some(Origin::Source(m));
        }
        self.expr_taint_inner(trees)
    }

    fn expr_taint_inner(&self, trees: &[Tree]) -> Option<Origin> {
        let mut k = 0;
        while k < trees.len() {
            match &trees[k] {
                Tree::Group(g) => {
                    if let Some(o) = self.expr_taint(&g.trees) {
                        return Some(o);
                    }
                    k += 1;
                }
                Tree::Leaf(tok) if tok.kind == Kind::Ident => {
                    let name = tok.text.as_str();
                    // Opaque constructor: `Name { field: … }` struct
                    // literals do not propagate field taint (the tracker
                    // is field-insensitive; tainting the aggregate would
                    // poison every later projection of it).
                    if name.chars().next().is_some_and(char::is_uppercase)
                        && trees
                            .get(k + 1)
                            .and_then(Tree::group)
                            .is_some_and(|g| g.delim == '{')
                    {
                        k += 2;
                        continue;
                    }
                    // Control-flow headers are not value flows: `match x
                    // { arms }` returns its arms, not its scrutinee.
                    if matches!(name, "match" | "if" | "while" | "for") {
                        let Some(b) = find_block(trees, k + 1) else {
                            k += 1;
                            continue;
                        };
                        k = b;
                        continue;
                    }
                    if let Some(g) = trees
                        .get(k + 1)
                        .and_then(Tree::group)
                        .filter(|g| g.delim == '(')
                    {
                        if KEYWORDS.contains(&name) {
                            k += 1;
                            continue;
                        }
                        if SOURCE_METHODS.contains(&name) {
                            return Some(Origin::Source(tok.text.clone()));
                        }
                        let targets = self.resolve(name);
                        for &t in &targets {
                            if self.sums.returns.get(t).is_some_and(Option::is_some) {
                                return Some(Origin::Call(tok.text.clone(), t));
                            }
                        }
                        for (ai, arg) in split_args(&g.trees).into_iter().enumerate() {
                            let resolved_flow = targets.iter().any(|&t| {
                                self.sums
                                    .param_returns
                                    .get(t)
                                    .is_some_and(|s| s.contains(&ai))
                            });
                            // A bare input buffer (`read_le_u32(data, …)`)
                            // carries wire taint into a callee whose summary
                            // says this param reaches its return; unresolved
                            // calls get only explicit-taint flow, else every
                            // `Struct::new(buf)` would poison its result.
                            let o = self.expr_taint(arg).or_else(|| {
                                if resolved_flow {
                                    bare_input(arg)
                                } else {
                                    None
                                }
                            });
                            let Some(o) = o else {
                                continue;
                            };
                            let flows = if targets.is_empty() {
                                true
                            } else {
                                resolved_flow
                            };
                            if flows {
                                return Some(Origin::Through(tok.text.clone(), Box::new(o)));
                            }
                        }
                        // Resolved call with a clean summary: launders.
                        k += 2;
                        continue;
                    }
                    if k > 0 && trees[k - 1].is_punct(".") {
                        // Field access / method name: the receiver was
                        // already inspected at its own token.
                        k += 1;
                        continue;
                    }
                    if INPUT_NAMES.contains(&name) {
                        // Reading *contents* of an input buffer taints;
                        // passing the buffer itself or taking its length
                        // does not.
                        let reads = match trees.get(k + 1) {
                            Some(Tree::Group(g)) if g.delim == '[' => true,
                            Some(t) if t.is_punct(".") => !trees
                                .get(k + 2)
                                .and_then(Tree::leaf)
                                .is_some_and(|p| TRUSTED_PROJECTIONS.contains(&p.text.as_str())),
                            _ => false,
                        };
                        if reads {
                            return Some(Origin::WireRead(tok.text.clone()));
                        }
                        k += 1;
                        continue;
                    }
                    if let Some(o) = self.tainted.get(name) {
                        let projected_clean = trees.get(k + 1).is_some_and(|t| t.is_punct("."))
                            && trees
                                .get(k + 2)
                                .and_then(Tree::leaf)
                                .is_some_and(|p| TRUSTED_PROJECTIONS.contains(&p.text.as_str()));
                        if !projected_clean {
                            return Some(o.clone());
                        }
                    }
                    k += 1;
                }
                Tree::Leaf(_) => {
                    k += 1;
                }
            }
        }
        None
    }

    /// Whether the expression flows through a recognized sanitizer.
    fn is_sanitized(&self, trees: &[Tree]) -> bool {
        let mut k = 0;
        while k < trees.len() {
            match &trees[k] {
                Tree::Group(g) => {
                    if self.is_sanitized(&g.trees) {
                        return true;
                    }
                }
                Tree::Leaf(tok) if tok.kind == Kind::Ident => {
                    let name = tok.text.as_str();
                    let args = trees
                        .get(k + 1)
                        .and_then(Tree::group)
                        .filter(|g| g.delim == '(');
                    if let Some(g) = args {
                        let prev_dot = k > 0 && trees[k - 1].is_punct(".");
                        if prev_dot && (name == "min" || name == "clamp") {
                            // `x.min(CAP)` bounds a tainted x; `CAP.min(x)`
                            // bounds a tainted x too. clamp needs its
                            // bounds clean.
                            let args_clean = self.expr_taint(&g.trees).is_none();
                            let recv_clean = k >= 1 && self.expr_taint(&trees[..k - 1]).is_none();
                            let ok = if name == "min" {
                                args_clean || recv_clean
                            } else {
                                args_clean
                            };
                            if ok {
                                return true;
                            }
                        }
                        if name == "try_from"
                            && k >= 2
                            && trees[k - 1].is_punct("::")
                            && trees[k - 2]
                                .leaf()
                                .is_some_and(|t| NARROW_TYPES.contains(&t.text.as_str()))
                        {
                            return true;
                        }
                    }
                }
                Tree::Leaf(_) => {}
            }
            k += 1;
        }
        false
    }

    /// Tainted names mentioned anywhere in `trees` (for guard clearing).
    fn mentioned_tainted(&self, trees: &[Tree]) -> Vec<String> {
        let mut out = Vec::new();
        let mut leaves = Vec::new();
        for t in trees {
            match t {
                Tree::Leaf(tok) => leaves.push(tok),
                Tree::Group(g) => g.leaves(&mut leaves),
            }
        }
        for tok in leaves {
            if tok.kind == Kind::Ident
                && self.tainted.contains_key(&tok.text)
                && !out.contains(&tok.text)
            {
                out.push(tok.text.clone());
            }
        }
        out
    }

    /// Bodied definitions for a call name, within the ambiguity cap.
    fn resolve(&self, name: &str) -> Vec<usize> {
        let targets = self.index.resolve_defined(name);
        if targets.len() > MAX_CANDIDATES {
            Vec::new()
        } else {
            targets
        }
    }
}

/// First statement-terminator (`;` or a match-arm `,`) at this level.
pub(crate) fn stmt_end(trees: &[Tree], from: usize) -> usize {
    (from..trees.len())
        .find(|&j| trees[j].is_punct(";") || trees[j].is_punct(","))
        .unwrap_or(trees.len())
}

/// Index of the next `{ … }` group at this level.
pub(crate) fn find_block(trees: &[Tree], from: usize) -> Option<usize> {
    (from..trees.len()).find(|&j| matches!(&trees[j], Tree::Group(g) if g.delim == '{'))
}

/// The body's tail expression: everything after the last top-level `;`.
pub(crate) fn tail_expr(trees: &[Tree]) -> &[Tree] {
    match trees.iter().rposition(|t| t.is_punct(";")) {
        Some(k) => &trees[k + 1..],
        None => trees,
    }
}

/// Whether a `[ … ]` group at `k` is an index (follows a value) rather
/// than an array literal, attribute, or pattern.
pub(crate) fn is_index_position(trees: &[Tree], k: usize) -> bool {
    let Some(prev) = k.checked_sub(1).map(|p| &trees[p]) else {
        return false;
    };
    match prev {
        Tree::Group(g) => g.delim == '(' || g.delim == '[',
        Tree::Leaf(tok) => {
            (tok.kind == Kind::Ident && !KEYWORDS.contains(&tok.text.as_str())) || tok.text == "?"
        }
    }
}

/// All `lo..hi` / `lo..=hi` splits in `trees`, one per nesting level.
fn collect_ranges<'t>(trees: &'t [Tree], out: &mut Vec<(&'t [Tree], &'t [Tree])>) {
    if let Some(r) = trees
        .iter()
        .position(|t| t.is_punct("..") || t.is_punct("..="))
    {
        out.push((&trees[..r], &trees[r + 1..]));
    }
    for t in trees {
        if let Tree::Group(g) = t {
            collect_ranges(&g.trees, out);
        }
    }
}

/// Splits a call argument list on top-level commas.
pub(crate) fn split_args(trees: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (k, t) in trees.iter().enumerate() {
        if t.is_punct(",") {
            out.push(&trees[start..k]);
            start = k + 1;
        }
    }
    if start < trees.len() {
        out.push(&trees[start..]);
    }
    out
}

/// The first argument of a call argument list.
pub(crate) fn first_arg(trees: &[Tree]) -> &[Tree] {
    split_args(trees).first().copied().unwrap_or(&[])
}

/// Binding names in a pattern: every lowercase ident that is not a
/// keyword (constructors like `Some` are uppercase by convention).
pub(crate) fn pattern_names(pat: &[Tree]) -> Vec<String> {
    fn go(pat: &[Tree], out: &mut Vec<String>) {
        for t in pat {
            match t {
                Tree::Group(g) => go(&g.trees, out),
                Tree::Leaf(tok) if tok.kind == Kind::Ident => {
                    let s = tok.text.as_str();
                    let skip = matches!(s, "mut" | "ref" | "box" | "_")
                        || s.chars().next().is_some_and(char::is_uppercase);
                    if !skip && !out.contains(&tok.text) {
                        out.push(tok.text.clone());
                    }
                }
                Tree::Leaf(_) => {}
            }
        }
    }
    let mut out = Vec::new();
    go(pat, &mut out);
    out
}

/// Whether a guard body escapes the enclosing flow (`return`, `break`,
/// `continue`, `panic!`); nested-loop `break`s over-approximate, which
/// only makes the guard more lenient.
fn diverges(g: &Group) -> bool {
    let mut leaves = Vec::new();
    g.leaves(&mut leaves);
    leaves.iter().any(|tok| {
        tok.kind == Kind::Ident
            && matches!(tok.text.as_str(), "return" | "break" | "continue" | "panic")
    })
}

/// A `source_method(…)` call anywhere in the trees, at any depth.
fn find_source_call(trees: &[Tree]) -> Option<String> {
    for (k, t) in trees.iter().enumerate() {
        match t {
            Tree::Group(g) => {
                if let Some(m) = find_source_call(&g.trees) {
                    return Some(m);
                }
            }
            Tree::Leaf(tok) if tok.kind == Kind::Ident => {
                if SOURCE_METHODS.contains(&tok.text.as_str())
                    && trees
                        .get(k + 1)
                        .and_then(Tree::group)
                        .is_some_and(|g| g.delim == '(')
                {
                    return Some(tok.text.clone());
                }
            }
            Tree::Leaf(_) => {}
        }
    }
    None
}

/// A bare input-named ident used as an iterable (`for b in data`).
fn bare_input(trees: &[Tree]) -> Option<Origin> {
    for (k, t) in trees.iter().enumerate() {
        if let Some(tok) = t.leaf() {
            if tok.kind == Kind::Ident
                && INPUT_NAMES.contains(&tok.text.as_str())
                && (k == 0 || !trees[k - 1].is_punct("."))
            {
                return Some(Origin::WireRead(tok.text.clone()));
            }
        }
    }
    None
}

/// Compact single-line rendering of an expression for messages.
pub(crate) fn compact(trees: &[Tree]) -> String {
    let text = to_text(trees);
    let mut out: String = text.chars().take(60).collect();
    if text.chars().count() > 60 {
        out.push('…');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile, Workspace};

    fn index_of(src: &str) -> Index {
        let manifest = "[package]\nname = \"llm265-bitstream\"\n\n[lints]\nworkspace = true\n";
        let file = SourceFile::from_contents("crates/bitstream/src/lib.rs", src);
        let ws = Workspace {
            crates: vec![CrateSrc::from_parts(
                "llm265-bitstream",
                manifest,
                vec![file],
            )],
        };
        ws.build_index()
    }

    fn report(src: &str) -> Vec<Finding> {
        let index = index_of(src);
        let sums = summarize(&index);
        let mut out = Vec::new();
        for id in 0..index.fns.len() {
            out.extend(analyze(&index, &sums, id, false).findings);
        }
        out
    }

    #[test]
    fn direct_source_to_allocation_fires() {
        let f = report(
            "fn decode(r: &mut R) -> Vec<u8> {\n    let n = r.read_le_u64() as usize;\n    Vec::with_capacity(n)\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].what, "allocation size");
        assert!(
            matches!(f[0].origin, Origin::Source(_)),
            "{:?}",
            f[0].origin
        );
    }

    #[test]
    fn taint_laundered_through_helper_keeps_the_hop() {
        let src = "fn helper(r: &mut R) -> usize { r.read_ue() as usize }\n\
                   fn decode(r: &mut R) -> Vec<u8> {\n    let n = helper(r);\n    Vec::with_capacity(n)\n}\n";
        let index = index_of(src);
        let sums = summarize(&index);
        let mut all = Vec::new();
        for id in 0..index.fns.len() {
            all.extend(analyze(&index, &sums, id, false).findings);
        }
        assert_eq!(all.len(), 1, "{all:?}");
        let chain = origin_chain(&sums, &all[0].origin);
        assert_eq!(chain, vec!["read_ue()", "helper"], "{chain:?}");
    }

    #[test]
    fn min_against_constant_sanitizes() {
        let f = report(
            "fn decode(r: &mut R) -> Vec<u8> {\n    let n = (r.read_le_u64() as usize).min(MAX_LEN);\n    Vec::with_capacity(n)\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn diverging_guard_sanitizes_permanently() {
        let f = report(
            "fn decode(r: &mut R) -> Result<Vec<u8>, E> {\n    let n = r.read_ue() as usize;\n    if n > MAX_LEN {\n        return Err(E::LimitExceeded);\n    }\n    Ok(Vec::with_capacity(n))\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_diverging_guard_does_not_sanitize() {
        let f = report(
            "fn decode(r: &mut R) -> Vec<u8> {\n    let n = r.read_ue() as usize;\n    if n > MAX_LEN {\n        log(n);\n    }\n    Vec::with_capacity(n)\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn tainted_loop_bound_and_slice_index_fire() {
        let f = report(
            "fn decode(data: &[u8]) -> u8 {\n    let n = usize::from(data[0]);\n    let mut acc = 0;\n    for _ in 0..n {\n        acc += 1;\n    }\n    let j = usize::from(data[1]);\n    acc + data[j]\n}\n",
        );
        let whats: Vec<&str> = f.iter().map(|x| x.what).collect();
        assert!(whats.contains(&"loop bound"), "{f:?}");
        assert!(whats.contains(&"slice index"), "{f:?}");
    }

    #[test]
    fn tainted_argument_reaches_callee_sink() {
        let src = "fn alloc(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n\
                   fn decode(r: &mut R) -> Vec<u8> {\n    let n = r.read_se() as usize;\n    alloc(n)\n}\n";
        let index = index_of(src);
        let sums = summarize(&index);
        let decode = index.by_name["decode"][0];
        let f = analyze(&index, &sums, decode, false).findings;
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].sink_hops, vec!["alloc".to_string()]);
        assert_eq!(f[0].what, "allocation size");
    }

    #[test]
    fn narrow_try_from_sanitizes() {
        let f = report(
            "fn decode(r: &mut R) -> Result<Vec<u8>, E> {\n    let n = u16::try_from(r.read_ue()).map_err(|_| E::Corrupt)?;\n    Ok(Vec::with_capacity(usize::from(n)))\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn input_projection_taints_but_len_does_not() {
        let f = report(
            "fn decode(data: &[u8]) -> Vec<u8> {\n    let a = data.len();\n    let v = Vec::with_capacity(a);\n    let b = usize::from(data[0]);\n    let mut w = Vec::new();\n    w.resize(b, 0);\n    w\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        let index = index_of("");
        let sums = summarize(&index);
        let chain = origin_chain(&sums, &f[0].origin);
        assert!(chain[0].contains("data"), "{chain:?}");
    }

    #[test]
    fn struct_literals_are_opaque() {
        let src = "fn decode(r: &mut R) -> Vec<u8> {\n    let n = r.read_ue() as usize;\n    let cfg = Cfg { size: n };\n    Vec::with_capacity(cfg.size)\n}\n";
        // Field-insensitivity: the aggregate does not carry the field's
        // taint (documented imprecision).
        assert!(report(src).is_empty());
    }

    #[test]
    fn summaries_record_param_sinks_transitively() {
        let src = "fn leaf(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n\
                   fn mid(m: usize) -> Vec<u8> { leaf(m + 1) }\n";
        let index = index_of(src);
        let sums = summarize(&index);
        let mid = index.by_name["mid"][0];
        let sink = sums.param_sinks[mid].get(&0).expect("mid param sink");
        assert_eq!(sink.hops, vec!["leaf".to_string()]);
    }
}
