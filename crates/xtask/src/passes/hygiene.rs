//! Crate-hygiene pass.
//!
//! Every workspace member must (a) carry `#![forbid(unsafe_code)]` at the
//! crate root — the codec is pure safe Rust and should prove it locally,
//! not just via the workspace lint table; (b) open with crate-level docs
//! (`//!`), so `cargo doc` renders a front page per crate; and (c) opt in
//! to the shared `[workspace.lints]` table with `[lints] workspace = true`
//! in its manifest, so clippy levels cannot drift per crate.

use crate::report::Violation;
use crate::source::CrateSrc;

/// Runs the hygiene checks over one crate.
pub fn check_crate(krate: &CrateSrc) -> Vec<Violation> {
    let mut out = Vec::new();
    let manifest_path = format!("{} (Cargo.toml)", krate.name);

    if !manifest_opts_into_workspace_lints(&krate.manifest) {
        out.push(Violation::new(
            "hygiene",
            &manifest_path,
            0,
            "missing `[lints] workspace = true`: crate must opt into the workspace lint table",
        ));
    }

    let Some(root) = krate.root_file() else {
        out.push(Violation::new(
            "hygiene",
            &manifest_path,
            0,
            "crate has no lib.rs/main.rs root file",
        ));
        return out;
    };

    if !root.raw.contains("#![forbid(unsafe_code)]") {
        out.push(Violation::new(
            "hygiene",
            &root.path,
            1,
            "missing `#![forbid(unsafe_code)]` at the crate root",
        ));
    }

    let first_meaningful = root.raw.lines().find(|l| !l.trim().is_empty());
    if !first_meaningful.is_some_and(|l| l.trim_start().starts_with("//!")) {
        out.push(Violation::new(
            "hygiene",
            &root.path,
            1,
            "crate root must open with `//!` crate-level documentation",
        ));
    }
    out
}

fn manifest_opts_into_workspace_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
        } else if in_lints && line.replace(' ', "") == "workspace=true" {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile};

    const GOOD_MANIFEST: &str = "[package]\nname = \"demo\"\n\n[lints]\nworkspace = true\n";
    const GOOD_LIB: &str = "//! Demo crate.\n\n#![forbid(unsafe_code)]\n\npub fn f() {}\n";

    fn krate(manifest: &str, lib: &str) -> CrateSrc {
        CrateSrc::from_parts(
            "demo",
            manifest,
            vec![SourceFile::from_contents("crates/demo/src/lib.rs", lib)],
        )
    }

    #[test]
    fn clean_crate_is_quiet() {
        assert!(check_crate(&krate(GOOD_MANIFEST, GOOD_LIB)).is_empty());
    }

    #[test]
    fn missing_forbid_unsafe_fires() {
        let v = check_crate(&krate(GOOD_MANIFEST, "//! Docs.\npub fn f() {}\n"));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("forbid(unsafe_code)"));
    }

    #[test]
    fn missing_crate_docs_fires() {
        let v = check_crate(&krate(
            GOOD_MANIFEST,
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        ));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("//!"));
    }

    #[test]
    fn missing_lints_table_fires() {
        let v = check_crate(&krate("[package]\nname = \"demo\"\n", GOOD_LIB));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("[lints]"));
    }

    #[test]
    fn lints_table_must_be_the_right_section() {
        // `workspace = true` under [dependencies.foo] must not count.
        let bad = "[package]\nname = \"demo\"\n[dependencies.foo]\nworkspace = true\n";
        let v = check_crate(&krate(bad, GOOD_LIB));
        assert_eq!(v.len(), 1, "{v:?}");
    }
}
