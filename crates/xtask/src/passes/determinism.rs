//! Determinism pass: cross-rank bit-exactness hazards in codec paths.
//!
//! The paper's pipeline (and VcLLM's training-loop usage) requires the
//! encoder and decoder to be bit-exact across machines and across the
//! ranks of `distrib`'s data-parallel simulator: every rank re-encodes
//! the same tensor and must produce the same bytes. Three std features
//! silently break that:
//!
//! - `HashMap`/`HashSet` (and `RandomState`/`DefaultHasher`) — iteration
//!   order is randomized per process, so any encode decision derived from
//!   it differs between ranks;
//! - `SystemTime`/`Instant` — wall-clock-derived values differ per run;
//! - thread-count-dependent parallelism (`available_parallelism`,
//!   `spawn`-based reductions) — float accumulation order, and therefore
//!   rounding, depends on the machine.
//!
//! The pass computes the call-graph closure of every `encode*`/`decode*`/
//! `quantize*`-family function in the workspace (via the AST engine's
//! index) and denies those tokens anywhere inside it. Sites that are
//! provably order-independent carry `// lint:allow(determinism): <why>`.
//! Use `BTreeMap`/`BTreeSet`, a sorted `Vec`, seeded `rng::Pcg32`, and
//! fixed-order reductions instead.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::index::Index;
use crate::ast::lex::Kind;
use crate::ast::tree::Tree;
use crate::report::Violation;
use crate::source::{SourceFile, Workspace};

/// Function-name prefixes whose call graphs must be deterministic.
pub const ROOT_PREFIXES: &[&str] = &[
    "encode",
    "decode",
    "quantize",
    "dequantize",
    "compress",
    "decompress",
];

/// Crates exempt from root collection (tooling, not codec paths).
const EXEMPT_CRATES: &[&str] = &["xtask", "llm265-bench"];

/// Identifiers that introduce nondeterminism.
const BANNED: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized per process"),
    ("HashSet", "iteration order is randomized per process"),
    ("RandomState", "hash seeds differ per process"),
    ("DefaultHasher", "hash seeds differ per process"),
    ("SystemTime", "wall-clock values differ per run"),
    ("Instant", "wall-clock values differ per run"),
    (
        "available_parallelism",
        "thread count changes reduction order",
    ),
    ("spawn", "thread scheduling changes reduction order"),
];

/// How many same-name candidates a call may resolve to before the edge is
/// considered unresolvable (guards against `new`-style fan-out).
const MAX_CANDIDATES: usize = 3;

/// Runs the determinism audit over the whole workspace.
pub fn check_workspace(ws: &Workspace, index: &Index) -> Vec<Violation> {
    // Roots: every fn in a non-exempt crate whose name starts with a codec
    // prefix.
    let roots: Vec<usize> = index
        .fns
        .iter()
        .enumerate()
        .filter(|(_, e)| !EXEMPT_CRATES.contains(&e.krate.as_str()))
        .filter(|(_, e)| ROOT_PREFIXES.iter().any(|p| e.item.name.starts_with(p)))
        .map(|(i, _)| i)
        .collect();

    // BFS with first-discovery predecessors so findings can explain *why*
    // a function is on a codec path.
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
    let mut frontier = roots.clone();
    while let Some(id) = frontier.pop() {
        for call in &index.fns[id].calls {
            let targets = index.resolve(call);
            if targets.is_empty() || targets.len() > MAX_CANDIDATES {
                continue;
            }
            for &t in targets {
                if seen.insert(t) {
                    prev.insert(t, id);
                    frontier.push(t);
                }
            }
        }
    }

    let by_path: BTreeMap<&str, &SourceFile> = ws.files().map(|f| (f.path.as_str(), f)).collect();

    let mut out = Vec::new();
    let mut reported: BTreeSet<(String, usize, &str)> = BTreeSet::new();
    for &id in &seen {
        let entry = &index.fns[id];
        if EXEMPT_CRATES.contains(&entry.krate.as_str()) {
            continue;
        }
        let Some(file) = by_path.get(entry.path.as_str()) else {
            continue;
        };
        let Some(body) = &entry.item.body else {
            continue;
        };
        let chain = chain_text(index, &prev, id);
        scan_banned(
            &body.trees,
            file,
            &entry.item.name,
            &chain,
            &mut reported,
            &mut out,
        );
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Root→fn breadcrumb like `encode_frame → rd_search → pick_mode`.
fn chain_text(index: &Index, prev: &BTreeMap<usize, usize>, mut id: usize) -> String {
    let mut names = vec![index.fns[id].item.name.clone()];
    while let Some(&p) = prev.get(&id) {
        names.push(index.fns[p].item.name.clone());
        id = p;
        if names.len() > 8 {
            names.push("…".to_string());
            break;
        }
    }
    names.reverse();
    names.join(" → ")
}

fn scan_banned<'t>(
    trees: &'t [Tree],
    file: &SourceFile,
    fn_name: &str,
    chain: &str,
    reported: &mut BTreeSet<(String, usize, &'t str)>,
    out: &mut Vec<Violation>,
) {
    for t in trees {
        if let Tree::Group(g) = t {
            scan_banned(&g.trees, file, fn_name, chain, reported, out);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != Kind::Ident {
            continue;
        }
        let Some((name, why)) = BANNED.iter().find(|(b, _)| tok.text == *b) else {
            continue;
        };
        if file.is_allowed(tok.line, "determinism") {
            continue;
        }
        if !reported.insert((file.path.clone(), tok.line, name)) {
            continue;
        }
        out.push(Violation::new(
            "determinism",
            &file.path,
            tok.line + 1,
            format!(
                "`{name}` in `{fn_name}` (codec path: {chain}): {why}; use BTreeMap/BTreeSet, sorted Vec, or fixed-order reduction, or justify with lint:allow(determinism)"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile};

    fn ws(files: &[(&str, &str)]) -> (Workspace, Index) {
        let srcs: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::from_contents(p, s))
            .collect();
        let ws = Workspace {
            crates: vec![CrateSrc::from_parts(
                "demo",
                "[package]\nname = \"demo\"\n",
                srcs,
            )],
        };
        let index = ws.build_index();
        (ws, index)
    }

    #[test]
    fn hashmap_on_encode_path_is_flagged_transitively() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "use std::collections::HashMap;\n\
             pub fn encode_frame() { helper() }\n\
             fn helper() { let m: HashMap<u8, u8> = HashMap::new(); m.len(); }\n\
             fn unrelated() { let m: HashMap<u8, u8> = HashMap::new(); m.len(); }\n",
        )]);
        let v = check_workspace(&ws, &idx);
        // Two HashMap mentions on one line in `helper` dedupe to one per
        // line; `unrelated` and the `use` line never fire.
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("encode_frame → helper"));
    }

    #[test]
    fn wall_clock_and_threads_are_flagged() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn quantize_block() {\n    let t = Instant::now();\n    let n = available_parallelism();\n}\n",
        )]);
        let v = check_workspace(&ws, &idx);
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn off_path_and_allowed_sites_are_quiet() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn bench_harness() { let t = Instant::now(); }\n\
             pub fn decode_x() {\n    // lint:allow(determinism): scratch map, drained in sorted order\n    let m = HashMap::new();\n}\n",
        )]);
        assert!(check_workspace(&ws, &idx).is_empty());
    }

    #[test]
    fn btreemap_is_fine() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_x() { let m: std::collections::BTreeMap<u8,u8> = Default::default(); m.len(); }\n",
        )]);
        assert!(check_workspace(&ws, &idx).is_empty());
    }
}
