//! Determinism pass: cross-rank bit-exactness hazards in codec paths.
//!
//! The paper's pipeline (and VcLLM's training-loop usage) requires the
//! encoder and decoder to be bit-exact across machines and across the
//! ranks of `distrib`'s data-parallel simulator: every rank re-encodes
//! the same tensor and must produce the same bytes. Three std features
//! silently break that:
//!
//! - `HashMap`/`HashSet` (and `RandomState`/`DefaultHasher`) — iteration
//!   order is randomized per process, so any encode decision derived from
//!   it differs between ranks;
//! - `SystemTime`/`Instant` — wall-clock-derived values differ per run;
//! - thread-count-dependent parallelism (`available_parallelism`,
//!   `spawn`-based reductions) — float accumulation order, and therefore
//!   rounding, depends on the machine.
//!
//! The pass computes the call-graph closure of every `encode*`/`decode*`/
//! `quantize*`-family function in the workspace (via the AST engine's
//! index) and denies those tokens anywhere inside it. Sites that are
//! provably order-independent carry `// lint:allow(determinism): <why>`.
//! Use `BTreeMap`/`BTreeSet`, a sorted `Vec`, seeded `rng::Pcg32`, and
//! fixed-order reductions instead.
//!
//! One structural exemption exists: the **ordered-collection pool idiom**
//! (`llm265-core::pool`). A function that (1) claims task indices from an
//! atomic counter (`fetch_add`), (2) spawns scoped workers (`scope` +
//! `spawn`), (3) joins every handle (`join`), and (4) places results into
//! slots addressed by task index (`slots[i] = …`) produces output that is
//! a pure function of the task list — scheduling can only change *when* a
//! task runs, never *where* its result lands. `spawn` is exempt inside
//! such a body because the shape itself is the proof; a blanket
//! `lint:allow` is not needed and not used there.
//!
//! A fourth hazard is **runtime CPU feature detection**
//! (`is_x86_feature_detected!`): deterministic on one machine, different
//! across machines. It is legitimate in exactly one shape — a *pure
//! backend selector* like `transform::detect_lane_backend`, a function
//! that inspects features and returns an enum variant, steering *which*
//! lane kernel runs while every kernel produces identical bytes. The pass
//! recognizes that shape structurally: the body must contain no numeric
//! literals and no arithmetic operators (recursively), so it provably
//! computes nothing that could reach the bitstream. Detection mixed with
//! arithmetic on a codec path is flagged.
//!
//! Call resolution filters out bodiless trait-method *declarations*
//! before applying the candidate cap: a trait with one declaration plus
//! `MAX_CANDIDATES` impls would otherwise make the method name silently
//! unresolvable and drop every impl (e.g. the `Lanes::axpy` kernels) from
//! the closure.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::index::Index;
use crate::ast::lex::Kind;
use crate::ast::tree::Tree;
use crate::report::Violation;
use crate::source::{SourceFile, Workspace};

/// Function-name prefixes whose call graphs must be deterministic.
pub const ROOT_PREFIXES: &[&str] = &[
    "encode",
    "decode",
    "quantize",
    "dequantize",
    "compress",
    "decompress",
];

/// Crates exempt from root collection (tooling, not codec paths).
const EXEMPT_CRATES: &[&str] = &["xtask", "llm265-bench"];

/// Identifiers that introduce nondeterminism.
const BANNED: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized per process"),
    ("HashSet", "iteration order is randomized per process"),
    ("RandomState", "hash seeds differ per process"),
    ("DefaultHasher", "hash seeds differ per process"),
    ("SystemTime", "wall-clock values differ per run"),
    ("Instant", "wall-clock values differ per run"),
    (
        "available_parallelism",
        "thread count changes reduction order",
    ),
    ("spawn", "thread scheduling changes reduction order"),
];

/// How many same-name candidates a call may resolve to before the edge is
/// considered unresolvable (guards against `new`-style fan-out).
const MAX_CANDIDATES: usize = 3;

/// Runs the determinism audit over the whole workspace.
pub fn check_workspace(ws: &Workspace, index: &Index) -> Vec<Violation> {
    // Roots: every fn in a non-exempt crate whose name starts with a codec
    // prefix.
    let roots: Vec<usize> = index
        .fns
        .iter()
        .enumerate()
        .filter(|(_, e)| !EXEMPT_CRATES.contains(&e.krate.as_str()))
        .filter(|(_, e)| ROOT_PREFIXES.iter().any(|p| e.item.name.starts_with(p)))
        .map(|(i, _)| i)
        .collect();

    // BFS with first-discovery predecessors so findings can explain *why*
    // a function is on a codec path.
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
    let mut frontier = roots.clone();
    while let Some(id) = frontier.pop() {
        for call in &index.fns[id].calls {
            // Bodiless trait declarations are not call targets and must
            // not count toward the cap (see module docs).
            let targets = index.resolve_defined(call);
            if targets.is_empty() || targets.len() > MAX_CANDIDATES {
                continue;
            }
            for t in targets {
                if seen.insert(t) {
                    prev.insert(t, id);
                    frontier.push(t);
                }
            }
        }
    }

    let by_path: BTreeMap<&str, &SourceFile> = ws.files().map(|f| (f.path.as_str(), f)).collect();

    let mut out = Vec::new();
    let mut reported: BTreeSet<(String, usize, &str)> = BTreeSet::new();
    for &id in &seen {
        let entry = &index.fns[id];
        if EXEMPT_CRATES.contains(&entry.krate.as_str()) {
            continue;
        }
        let Some(file) = by_path.get(entry.path.as_str()) else {
            continue;
        };
        let Some(body) = &entry.item.body else {
            continue;
        };
        let chain = chain_text(index, &prev, id);
        let pool_idiom = exhibits_ordered_join(&body.trees);
        scan_banned(
            &body.trees,
            file,
            &entry.item.name,
            &chain,
            pool_idiom,
            &mut reported,
            &mut out,
        );
        let selector = is_pure_selector(&body.trees);
        scan_feature_detect(
            &body.trees,
            file,
            &entry.item.name,
            &chain,
            selector,
            &mut reported,
            &mut out,
        );
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Root→fn breadcrumb like `encode_frame → rd_search → pick_mode`.
fn chain_text(index: &Index, prev: &BTreeMap<usize, usize>, mut id: usize) -> String {
    let mut names = vec![index.fns[id].item.name.clone()];
    while let Some(&p) = prev.get(&id) {
        names.push(index.fns[p].item.name.clone());
        id = p;
        if names.len() > 8 {
            names.push("…".to_string());
            break;
        }
    }
    names.reverse();
    names.join(" → ")
}

/// Detects the ordered-collection pool idiom in a function body: an
/// atomic index claim (`fetch_add`), scoped workers (`scope` + `spawn`),
/// a join of the handles (`join`), and an index-addressed result store
/// (`ident[…] = …`). All five must be present — `spawn` without the
/// ordered collection around it stays banned.
fn exhibits_ordered_join(trees: &[Tree]) -> bool {
    let mut f = IdiomFlags::default();
    scan_idiom(trees, &mut f);
    f.scope && f.spawn && f.join && f.fetch_add && f.indexed_store
}

#[derive(Default)]
struct IdiomFlags {
    scope: bool,
    spawn: bool,
    join: bool,
    fetch_add: bool,
    indexed_store: bool,
}

fn scan_idiom(trees: &[Tree], flags: &mut IdiomFlags) {
    for (i, t) in trees.iter().enumerate() {
        match t {
            Tree::Group(g) => scan_idiom(&g.trees, flags),
            Tree::Leaf(tok) if tok.kind == Kind::Ident => {
                match tok.text.as_str() {
                    "scope" => flags.scope = true,
                    "spawn" => flags.spawn = true,
                    "join" => flags.join = true,
                    "fetch_add" => flags.fetch_add = true,
                    _ => {}
                }
                // `ident [ … ] =` — a slot store addressed by index. The
                // lexer folds `==` into one token, so a bare `=` here is
                // an assignment.
                if let (Some(Tree::Group(g)), Some(nx)) = (trees.get(i + 1), trees.get(i + 2)) {
                    if g.delim == '[' && nx.is_punct("=") {
                        flags.indexed_store = true;
                    }
                }
            }
            Tree::Leaf(_) => {}
        }
    }
}

/// Puncts that count as arithmetic for the pure-backend-selector check.
/// The lexer joins multi-char operators, so compound assignments and
/// shifts appear as single tokens here.
const ARITH_PUNCTS: &[&str] = &[
    "+", "-", "*", "/", "%", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=",
];

/// A *pure backend selector* inspects CPU features and returns a variant:
/// structurally, its body contains no numeric literals and no arithmetic
/// operators anywhere (recursing through every group). Such a function
/// provably computes nothing that could reach the bitstream, so runtime
/// feature detection inside it can only steer which (bit-identical by
/// contract) kernel runs.
fn is_pure_selector(trees: &[Tree]) -> bool {
    trees.iter().all(|t| match t {
        Tree::Group(g) => is_pure_selector(&g.trees),
        Tree::Leaf(tok) => match tok.kind {
            Kind::Int | Kind::Float => false,
            Kind::Punct => !ARITH_PUNCTS.contains(&tok.text.as_str()),
            _ => true,
        },
    })
}

/// Flags `is_x86_feature_detected` on a codec path unless the containing
/// function is a pure backend selector (see [`is_pure_selector`]).
#[allow(clippy::too_many_arguments)]
fn scan_feature_detect<'t>(
    trees: &'t [Tree],
    file: &SourceFile,
    fn_name: &str,
    chain: &str,
    selector: bool,
    reported: &mut BTreeSet<(String, usize, &'t str)>,
    out: &mut Vec<Violation>,
) {
    for t in trees {
        if let Tree::Group(g) = t {
            scan_feature_detect(&g.trees, file, fn_name, chain, selector, reported, out);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != Kind::Ident || tok.text != "is_x86_feature_detected" {
            continue;
        }
        if selector {
            // Proven by shape: a selector that computes nothing cannot
            // leak machine-dependent bits into the stream.
            continue;
        }
        if file.is_allowed(tok.line, "determinism") {
            continue;
        }
        if !reported.insert((file.path.clone(), tok.line, "is_x86_feature_detected")) {
            continue;
        }
        out.push(Violation::new(
            "determinism",
            &file.path,
            tok.line + 1,
            format!(
                "`is_x86_feature_detected` in `{fn_name}` (codec path: {chain}): CPU features differ across machines; keep detection in a pure backend selector (no numeric literals or arithmetic — it may only pick among bit-identical kernels) or justify with lint:allow(determinism)"
            ),
        ));
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_banned<'t>(
    trees: &'t [Tree],
    file: &SourceFile,
    fn_name: &str,
    chain: &str,
    pool_idiom: bool,
    reported: &mut BTreeSet<(String, usize, &'t str)>,
    out: &mut Vec<Violation>,
) {
    for t in trees {
        if let Tree::Group(g) = t {
            scan_banned(&g.trees, file, fn_name, chain, pool_idiom, reported, out);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != Kind::Ident {
            continue;
        }
        let Some((name, why)) = BANNED.iter().find(|(b, _)| tok.text == *b) else {
            continue;
        };
        if pool_idiom && tok.text == "spawn" {
            // Proven by shape: ordered-collection pool idiom (see module
            // docs) — scheduling cannot reach the output bytes.
            continue;
        }
        if file.is_allowed(tok.line, "determinism") {
            continue;
        }
        if !reported.insert((file.path.clone(), tok.line, name)) {
            continue;
        }
        out.push(Violation::new(
            "determinism",
            &file.path,
            tok.line + 1,
            format!(
                "`{name}` in `{fn_name}` (codec path: {chain}): {why}; use BTreeMap/BTreeSet, sorted Vec, or fixed-order reduction, structure parallelism as the ordered-collection pool idiom (fetch_add claim + scoped spawn + join all + store by task index), or justify with lint:allow(determinism)"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile};

    fn ws(files: &[(&str, &str)]) -> (Workspace, Index) {
        let srcs: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::from_contents(p, s))
            .collect();
        let ws = Workspace {
            crates: vec![CrateSrc::from_parts(
                "demo",
                "[package]\nname = \"demo\"\n",
                srcs,
            )],
        };
        let index = ws.build_index();
        (ws, index)
    }

    #[test]
    fn hashmap_on_encode_path_is_flagged_transitively() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "use std::collections::HashMap;\n\
             pub fn encode_frame() { helper() }\n\
             fn helper() { let m: HashMap<u8, u8> = HashMap::new(); m.len(); }\n\
             fn unrelated() { let m: HashMap<u8, u8> = HashMap::new(); m.len(); }\n",
        )]);
        let v = check_workspace(&ws, &idx);
        // Two HashMap mentions on one line in `helper` dedupe to one per
        // line; `unrelated` and the `use` line never fire.
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("encode_frame → helper"));
    }

    #[test]
    fn wall_clock_and_threads_are_flagged() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn quantize_block() {\n    let t = Instant::now();\n    let n = available_parallelism();\n}\n",
        )]);
        let v = check_workspace(&ws, &idx);
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn off_path_and_allowed_sites_are_quiet() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn bench_harness() { let t = Instant::now(); }\n\
             pub fn decode_x() {\n    // lint:allow(determinism): scratch map, drained in sorted order\n    let m = HashMap::new();\n}\n",
        )]);
        assert!(check_workspace(&ws, &idx).is_empty());
    }

    /// The exact shape of `llm265-core::pool::run_ordered`, reduced: the
    /// spawn is exempt because the body proves the ordered-collection
    /// idiom, with no `lint:allow` anywhere.
    #[test]
    fn ordered_join_pool_idiom_exempts_spawn() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_pool() {\n\
                 let next = AtomicUsize::new(0);\n\
                 let joined = std::thread::scope(|s| {\n\
                     let handles: Vec<_> = (0..4)\n\
                         .map(|_| s.spawn(|| {\n\
                             let mut mine = Vec::new();\n\
                             loop {\n\
                                 let i = next.fetch_add(1, Ordering::Relaxed);\n\
                                 if i >= 8 { break; }\n\
                                 mine.push((i, i * 2));\n\
                             }\n\
                             mine\n\
                         }))\n\
                         .collect();\n\
                     handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()\n\
                 });\n\
                 let mut slots = vec![None; 8];\n\
                 for worker in joined {\n\
                     for (i, v) in worker.unwrap() {\n\
                         slots[i] = Some(v);\n\
                     }\n\
                 }\n\
             }\n",
        )]);
        assert!(check_workspace(&ws, &idx).is_empty());
    }

    /// `spawn` without the full idiom (no ordered join, no slot store)
    /// stays banned: fire-and-forget parallelism can reorder reductions.
    #[test]
    fn spawn_without_the_full_idiom_is_still_flagged() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_racy() {\n\
                 std::thread::scope(|s| {\n\
                     let i = next.fetch_add(1, Ordering::Relaxed);\n\
                     s.spawn(move || do_work(i));\n\
                 });\n\
             }\n",
        )]);
        let v = check_workspace(&ws, &idx);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("spawn"));
    }

    /// The idiom only launders `spawn` — other hazards in the same body
    /// (wall clock, hash maps) are still flagged.
    #[test]
    fn idiom_does_not_exempt_other_banned_tokens() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_pool_with_clock() {\n\
                 let t0 = Instant::now();\n\
                 let next = AtomicUsize::new(0);\n\
                 let joined = std::thread::scope(|s| {\n\
                     let handles: Vec<_> = (0..4).map(|_| s.spawn(|| {\n\
                         let i = next.fetch_add(1, Ordering::Relaxed);\n\
                         vec![(i, i)]\n\
                     })).collect();\n\
                     handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()\n\
                 });\n\
                 let mut slots = vec![None; 8];\n\
                 for worker in joined {\n\
                     for (i, v) in worker.unwrap() { slots[i] = Some(v); }\n\
                 }\n\
             }\n",
        )]);
        let v = check_workspace(&ws, &idx);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Instant"));
    }

    #[test]
    fn btreemap_is_fine() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_x() { let m: std::collections::BTreeMap<u8,u8> = Default::default(); m.len(); }\n",
        )]);
        assert!(check_workspace(&ws, &idx).is_empty());
    }

    /// The `transform::detect_lane_backend` shape: cfg-gated feature
    /// probes that only return enum variants. No numeric literals, no
    /// arithmetic — recognized structurally, no `lint:allow` needed.
    #[test]
    fn pure_backend_selector_may_detect_features() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_block() { let b = detect_backend(); }\n\
             fn detect_backend() -> Backend {\n\
                 #[cfg(target_arch = \"x86_64\")]\n\
                 {\n\
                     if std::arch::is_x86_feature_detected!(\"avx2\") {\n\
                         return Backend::Avx2;\n\
                     }\n\
                 }\n\
                 Backend::Scalar\n\
             }\n",
        )]);
        assert!(check_workspace(&ws, &idx).is_empty());
    }

    /// Detection mixed with arithmetic is not a selector: the branch
    /// could compute different bytes per machine.
    #[test]
    fn feature_detection_with_arithmetic_is_flagged() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_block() {\n\
                 let wide = std::arch::is_x86_feature_detected!(\"avx2\");\n\
                 let lanes = if wide { 4 + 0 } else { 1 };\n\
             }\n",
        )]);
        let v = check_workspace(&ws, &idx);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("is_x86_feature_detected"));
        assert!(v[0].message.contains("pure backend selector"));
    }

    /// A numeric literal alone (even without operators) disqualifies the
    /// selector shape — constants can reach the bitstream too.
    #[test]
    fn feature_detection_with_numeric_literal_is_flagged() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn decode_block() {\n\
                 if is_x86_feature_detected!(\"sse2\") { scale(2.0); }\n\
             }\n",
        )]);
        let v = check_workspace(&ws, &idx);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    /// Off codec paths (and allowed sites) detection is not our business.
    #[test]
    fn feature_detection_off_codec_path_is_quiet() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn report_cpu() { let n = 1 + is_x86_feature_detected!(\"avx2\") as u32; }\n\
             pub fn encode_y() {\n    // lint:allow(determinism): logging only, result unused\n    let _ = is_x86_feature_detected!(\"avx2\") && 1 + 1 == 2;\n}\n",
        )]);
        assert!(check_workspace(&ws, &idx).is_empty());
    }

    /// Trait-method declarations must not clog call resolution: one
    /// bodiless declaration plus three impls still resolves, so hazards
    /// inside an impl are found through the trait call.
    #[test]
    fn trait_impls_stay_in_the_closure_despite_declaration() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "trait Lanes { fn axpy(&self); }\n\
             impl Lanes for A { fn axpy(&self) { let m = HashMap::new(); } }\n\
             impl Lanes for B { fn axpy(&self) {} }\n\
             impl Lanes for C { fn axpy(&self) {} }\n\
             pub fn encode_rows() { l.axpy() }\n",
        )]);
        let v = check_workspace(&ws, &idx);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("HashMap"));
        assert!(v[0].message.contains("encode_rows → axpy"));
    }
}
