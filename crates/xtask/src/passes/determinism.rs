//! Determinism pass: cross-rank bit-exactness hazards in codec paths.
//!
//! The paper's pipeline (and VcLLM's training-loop usage) requires the
//! encoder and decoder to be bit-exact across machines and across the
//! ranks of `distrib`'s data-parallel simulator: every rank re-encodes
//! the same tensor and must produce the same bytes. Three std features
//! silently break that:
//!
//! - `HashMap`/`HashSet` (and `RandomState`/`DefaultHasher`) — iteration
//!   order is randomized per process, so any encode decision derived from
//!   it differs between ranks;
//! - `SystemTime`/`Instant` — wall-clock-derived values differ per run;
//! - thread-count-dependent parallelism (`available_parallelism`,
//!   `spawn`-based reductions) — float accumulation order, and therefore
//!   rounding, depends on the machine.
//!
//! The pass computes the call-graph closure of every `encode*`/`decode*`/
//! `quantize*`-family function in the workspace (via the AST engine's
//! index) and denies those tokens anywhere inside it. Sites that are
//! provably order-independent carry `// lint:allow(determinism): <why>`.
//! Use `BTreeMap`/`BTreeSet`, a sorted `Vec`, seeded `rng::Pcg32`, and
//! fixed-order reductions instead.
//!
//! One structural exemption exists: the **ordered-collection pool idiom**
//! (`llm265-core::pool`). A function that (1) claims task indices from an
//! atomic counter (`fetch_add`), (2) spawns scoped workers (`scope` +
//! `spawn`), (3) joins every handle (`join`), and (4) places results into
//! slots addressed by task index (`slots[i] = …`) produces output that is
//! a pure function of the task list — scheduling can only change *when* a
//! task runs, never *where* its result lands. `spawn` is exempt inside
//! such a body because the shape itself is the proof; a blanket
//! `lint:allow` is not needed and not used there.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::index::Index;
use crate::ast::lex::Kind;
use crate::ast::tree::Tree;
use crate::report::Violation;
use crate::source::{SourceFile, Workspace};

/// Function-name prefixes whose call graphs must be deterministic.
pub const ROOT_PREFIXES: &[&str] = &[
    "encode",
    "decode",
    "quantize",
    "dequantize",
    "compress",
    "decompress",
];

/// Crates exempt from root collection (tooling, not codec paths).
const EXEMPT_CRATES: &[&str] = &["xtask", "llm265-bench"];

/// Identifiers that introduce nondeterminism.
const BANNED: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized per process"),
    ("HashSet", "iteration order is randomized per process"),
    ("RandomState", "hash seeds differ per process"),
    ("DefaultHasher", "hash seeds differ per process"),
    ("SystemTime", "wall-clock values differ per run"),
    ("Instant", "wall-clock values differ per run"),
    (
        "available_parallelism",
        "thread count changes reduction order",
    ),
    ("spawn", "thread scheduling changes reduction order"),
];

/// How many same-name candidates a call may resolve to before the edge is
/// considered unresolvable (guards against `new`-style fan-out).
const MAX_CANDIDATES: usize = 3;

/// Runs the determinism audit over the whole workspace.
pub fn check_workspace(ws: &Workspace, index: &Index) -> Vec<Violation> {
    // Roots: every fn in a non-exempt crate whose name starts with a codec
    // prefix.
    let roots: Vec<usize> = index
        .fns
        .iter()
        .enumerate()
        .filter(|(_, e)| !EXEMPT_CRATES.contains(&e.krate.as_str()))
        .filter(|(_, e)| ROOT_PREFIXES.iter().any(|p| e.item.name.starts_with(p)))
        .map(|(i, _)| i)
        .collect();

    // BFS with first-discovery predecessors so findings can explain *why*
    // a function is on a codec path.
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
    let mut frontier = roots.clone();
    while let Some(id) = frontier.pop() {
        for call in &index.fns[id].calls {
            let targets = index.resolve(call);
            if targets.is_empty() || targets.len() > MAX_CANDIDATES {
                continue;
            }
            for &t in targets {
                if seen.insert(t) {
                    prev.insert(t, id);
                    frontier.push(t);
                }
            }
        }
    }

    let by_path: BTreeMap<&str, &SourceFile> = ws.files().map(|f| (f.path.as_str(), f)).collect();

    let mut out = Vec::new();
    let mut reported: BTreeSet<(String, usize, &str)> = BTreeSet::new();
    for &id in &seen {
        let entry = &index.fns[id];
        if EXEMPT_CRATES.contains(&entry.krate.as_str()) {
            continue;
        }
        let Some(file) = by_path.get(entry.path.as_str()) else {
            continue;
        };
        let Some(body) = &entry.item.body else {
            continue;
        };
        let chain = chain_text(index, &prev, id);
        let pool_idiom = exhibits_ordered_join(&body.trees);
        scan_banned(
            &body.trees,
            file,
            &entry.item.name,
            &chain,
            pool_idiom,
            &mut reported,
            &mut out,
        );
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Root→fn breadcrumb like `encode_frame → rd_search → pick_mode`.
fn chain_text(index: &Index, prev: &BTreeMap<usize, usize>, mut id: usize) -> String {
    let mut names = vec![index.fns[id].item.name.clone()];
    while let Some(&p) = prev.get(&id) {
        names.push(index.fns[p].item.name.clone());
        id = p;
        if names.len() > 8 {
            names.push("…".to_string());
            break;
        }
    }
    names.reverse();
    names.join(" → ")
}

/// Detects the ordered-collection pool idiom in a function body: an
/// atomic index claim (`fetch_add`), scoped workers (`scope` + `spawn`),
/// a join of the handles (`join`), and an index-addressed result store
/// (`ident[…] = …`). All five must be present — `spawn` without the
/// ordered collection around it stays banned.
fn exhibits_ordered_join(trees: &[Tree]) -> bool {
    let mut f = IdiomFlags::default();
    scan_idiom(trees, &mut f);
    f.scope && f.spawn && f.join && f.fetch_add && f.indexed_store
}

#[derive(Default)]
struct IdiomFlags {
    scope: bool,
    spawn: bool,
    join: bool,
    fetch_add: bool,
    indexed_store: bool,
}

fn scan_idiom(trees: &[Tree], flags: &mut IdiomFlags) {
    for (i, t) in trees.iter().enumerate() {
        match t {
            Tree::Group(g) => scan_idiom(&g.trees, flags),
            Tree::Leaf(tok) if tok.kind == Kind::Ident => {
                match tok.text.as_str() {
                    "scope" => flags.scope = true,
                    "spawn" => flags.spawn = true,
                    "join" => flags.join = true,
                    "fetch_add" => flags.fetch_add = true,
                    _ => {}
                }
                // `ident [ … ] =` — a slot store addressed by index. The
                // lexer folds `==` into one token, so a bare `=` here is
                // an assignment.
                if let (Some(Tree::Group(g)), Some(nx)) = (trees.get(i + 1), trees.get(i + 2)) {
                    if g.delim == '[' && nx.is_punct("=") {
                        flags.indexed_store = true;
                    }
                }
            }
            Tree::Leaf(_) => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_banned<'t>(
    trees: &'t [Tree],
    file: &SourceFile,
    fn_name: &str,
    chain: &str,
    pool_idiom: bool,
    reported: &mut BTreeSet<(String, usize, &'t str)>,
    out: &mut Vec<Violation>,
) {
    for t in trees {
        if let Tree::Group(g) = t {
            scan_banned(&g.trees, file, fn_name, chain, pool_idiom, reported, out);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != Kind::Ident {
            continue;
        }
        let Some((name, why)) = BANNED.iter().find(|(b, _)| tok.text == *b) else {
            continue;
        };
        if pool_idiom && tok.text == "spawn" {
            // Proven by shape: ordered-collection pool idiom (see module
            // docs) — scheduling cannot reach the output bytes.
            continue;
        }
        if file.is_allowed(tok.line, "determinism") {
            continue;
        }
        if !reported.insert((file.path.clone(), tok.line, name)) {
            continue;
        }
        out.push(Violation::new(
            "determinism",
            &file.path,
            tok.line + 1,
            format!(
                "`{name}` in `{fn_name}` (codec path: {chain}): {why}; use BTreeMap/BTreeSet, sorted Vec, or fixed-order reduction, structure parallelism as the ordered-collection pool idiom (fetch_add claim + scoped spawn + join all + store by task index), or justify with lint:allow(determinism)"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile};

    fn ws(files: &[(&str, &str)]) -> (Workspace, Index) {
        let srcs: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::from_contents(p, s))
            .collect();
        let ws = Workspace {
            crates: vec![CrateSrc::from_parts(
                "demo",
                "[package]\nname = \"demo\"\n",
                srcs,
            )],
        };
        let index = ws.build_index();
        (ws, index)
    }

    #[test]
    fn hashmap_on_encode_path_is_flagged_transitively() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "use std::collections::HashMap;\n\
             pub fn encode_frame() { helper() }\n\
             fn helper() { let m: HashMap<u8, u8> = HashMap::new(); m.len(); }\n\
             fn unrelated() { let m: HashMap<u8, u8> = HashMap::new(); m.len(); }\n",
        )]);
        let v = check_workspace(&ws, &idx);
        // Two HashMap mentions on one line in `helper` dedupe to one per
        // line; `unrelated` and the `use` line never fire.
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("encode_frame → helper"));
    }

    #[test]
    fn wall_clock_and_threads_are_flagged() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn quantize_block() {\n    let t = Instant::now();\n    let n = available_parallelism();\n}\n",
        )]);
        let v = check_workspace(&ws, &idx);
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn off_path_and_allowed_sites_are_quiet() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn bench_harness() { let t = Instant::now(); }\n\
             pub fn decode_x() {\n    // lint:allow(determinism): scratch map, drained in sorted order\n    let m = HashMap::new();\n}\n",
        )]);
        assert!(check_workspace(&ws, &idx).is_empty());
    }

    /// The exact shape of `llm265-core::pool::run_ordered`, reduced: the
    /// spawn is exempt because the body proves the ordered-collection
    /// idiom, with no `lint:allow` anywhere.
    #[test]
    fn ordered_join_pool_idiom_exempts_spawn() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_pool() {\n\
                 let next = AtomicUsize::new(0);\n\
                 let joined = std::thread::scope(|s| {\n\
                     let handles: Vec<_> = (0..4)\n\
                         .map(|_| s.spawn(|| {\n\
                             let mut mine = Vec::new();\n\
                             loop {\n\
                                 let i = next.fetch_add(1, Ordering::Relaxed);\n\
                                 if i >= 8 { break; }\n\
                                 mine.push((i, i * 2));\n\
                             }\n\
                             mine\n\
                         }))\n\
                         .collect();\n\
                     handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()\n\
                 });\n\
                 let mut slots = vec![None; 8];\n\
                 for worker in joined {\n\
                     for (i, v) in worker.unwrap() {\n\
                         slots[i] = Some(v);\n\
                     }\n\
                 }\n\
             }\n",
        )]);
        assert!(check_workspace(&ws, &idx).is_empty());
    }

    /// `spawn` without the full idiom (no ordered join, no slot store)
    /// stays banned: fire-and-forget parallelism can reorder reductions.
    #[test]
    fn spawn_without_the_full_idiom_is_still_flagged() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_racy() {\n\
                 std::thread::scope(|s| {\n\
                     let i = next.fetch_add(1, Ordering::Relaxed);\n\
                     s.spawn(move || do_work(i));\n\
                 });\n\
             }\n",
        )]);
        let v = check_workspace(&ws, &idx);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("spawn"));
    }

    /// The idiom only launders `spawn` — other hazards in the same body
    /// (wall clock, hash maps) are still flagged.
    #[test]
    fn idiom_does_not_exempt_other_banned_tokens() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_pool_with_clock() {\n\
                 let t0 = Instant::now();\n\
                 let next = AtomicUsize::new(0);\n\
                 let joined = std::thread::scope(|s| {\n\
                     let handles: Vec<_> = (0..4).map(|_| s.spawn(|| {\n\
                         let i = next.fetch_add(1, Ordering::Relaxed);\n\
                         vec![(i, i)]\n\
                     })).collect();\n\
                     handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()\n\
                 });\n\
                 let mut slots = vec![None; 8];\n\
                 for worker in joined {\n\
                     for (i, v) in worker.unwrap() { slots[i] = Some(v); }\n\
                 }\n\
             }\n",
        )]);
        let v = check_workspace(&ws, &idx);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Instant"));
    }

    #[test]
    fn btreemap_is_fine() {
        let (ws, idx) = ws(&[(
            "a.rs",
            "pub fn encode_x() { let m: std::collections::BTreeMap<u8,u8> = Default::default(); m.len(); }\n",
        )]);
        assert!(check_workspace(&ws, &idx).is_empty());
    }
}
