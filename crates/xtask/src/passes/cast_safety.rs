//! Cast-safety pass: narrowing and sign-changing `as` casts in codec math.
//!
//! A silent `as` truncation is the classic codec corruption bug: a
//! coefficient magnitude or length field wraps, the bitstream still
//! parses, and the tensor comes back wrong — bit-exactness (PAPER.md §4)
//! dies without an error. This pass flags integer `as` casts whose
//! operand cannot be *locally proven* to fit the target type. Proof
//! sources, in order:
//!
//! - **literals** — `255 as u8` fits, `300 as u8` does not;
//! - **bool evidence** — `true as usize`, `(p == 0) as usize`;
//! - **bounding** — a parenthesized `% lit` / `& lit`, or a final
//!   `.min(lit)` / `.clamp(lo, hi)` whose bounds fit the target
//!   (`lit` may be `T::MAX`/`T::MIN`);
//! - **cast chains** — `x as u8 as u32` (the inner cast fixes the width);
//! - **the workspace index** — a call `recon.get(x, y) as i32` is safe
//!   when every workspace `fn get` returns `u8`; a field `mv.dx as i32`
//!   is safe when every struct field `dx` is `i8`; params, typed `let`
//!   bindings and consts resolve the same way;
//! - **float sources** — float→int `as` saturates deterministically in
//!   Rust, so a provably-float operand (e.g. `….round()`) is exempt: the
//!   hazard this pass hunts is silent *wrapping*, which floats never do.
//!
//! Everything else must use `T::from` (proves widening at compile time),
//! `T::try_from` + `CodecError::Corrupt`/`LimitExceeded` (turns hostile
//! values into errors), an explicit mask/clamp (states the truncation),
//! or carry a `// lint:allow(cast): <reason>` marker.

use crate::ast::lex::Kind;
use crate::ast::tree::{to_text, Tree};
use crate::ast::{index::Index, int_width, is_float_ty};
use crate::report::Violation;
use crate::source::SourceFile;

use std::collections::BTreeMap;

/// What the operand analysis concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    /// Integer of known width/signedness.
    Int(u32, bool),
    /// Known float (saturating cast — exempt).
    Float,
    /// Known bool (always fits).
    Bool,
    /// Known to fit the target via literal/bounding evidence.
    Bounded,
    /// No local proof available.
    Unknown,
}

/// Per-function name→type environment (params + ascribed `let`s).
type TypeEnv = BTreeMap<String, String>;

/// Runs the cast audit over one file, using the workspace index for
/// cross-file return/field type resolution.
pub fn check_file(file: &SourceFile, index: &Index) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &file.items.fns {
        let Some(body) = &f.body else { continue };
        let mut env: TypeEnv = f
            .params
            .iter()
            .filter(|(n, _)| !n.is_empty())
            .cloned()
            .collect();
        if let Some(self_ty) = &f.self_ty {
            env.insert("self".to_string(), self_ty.clone());
        }
        collect_let_types(&body.trees, &mut env);
        scan(&body.trees, file, index, &env, &mut out);
    }
    out.sort_by_key(|v| v.line);
    out.dedup();
    out
}

/// Records `let [mut] name: Type = …` ascriptions, recursively.
fn collect_let_types(trees: &[Tree], env: &mut TypeEnv) {
    for (k, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            collect_let_types(&g.trees, env);
            continue;
        }
        if !t.is_ident("let") {
            continue;
        }
        let mut j = k + 1;
        if trees.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = trees
            .get(j)
            .and_then(Tree::leaf)
            .filter(|t| t.kind == Kind::Ident)
        else {
            continue;
        };
        if !trees.get(j + 1).is_some_and(|t| t.is_punct(":")) {
            // No ascription — a suffixed literal initializer still names
            // its type (`let mut pos = 0usize;`).
            if trees.get(j + 1).is_some_and(|t| t.is_punct("=")) {
                if let Some(lit) = trees
                    .get(j + 2)
                    .and_then(Tree::leaf)
                    .filter(|t| t.kind == Kind::Int)
                {
                    if trees.get(j + 3).is_some_and(|t| t.is_punct(";")) {
                        const SUFFIXES: &[&str] = &[
                            "usize", "isize", "u128", "i128", "u16", "u32", "u64", "i16", "i32",
                            "i64", "u8", "i8",
                        ];
                        if let Some(s) = SUFFIXES.iter().find(|s| lit.text.ends_with(**s)) {
                            env.insert(name.text.clone(), (*s).to_string());
                        }
                    }
                }
            }
            continue;
        }
        // Type runs to `=` or `;` at angle depth 0.
        let mut angle = 0i32;
        let mut end = j + 2;
        while end < trees.len() {
            match trees[end].leaf().map(|t| t.text.as_str()) {
                Some("<") => angle += 1,
                Some("<<") => angle += 2,
                Some(">") => angle -= 1,
                Some(">>") => angle -= 2,
                Some("=" | ";") if angle <= 0 => break,
                _ => {}
            }
            end += 1;
        }
        env.insert(name.text.clone(), to_text(&trees[j + 2..end]));
    }
}

fn scan(trees: &[Tree], file: &SourceFile, index: &Index, env: &TypeEnv, out: &mut Vec<Violation>) {
    // Operands already flagged in this slice: an outer hop of the same
    // cast chain (`y as i32 as usize` after `y as i32` fired) is cascade
    // noise, not a second finding — fixing the inner cast fixes both.
    let mut flagged: Vec<(usize, String)> = Vec::new();
    for (k, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            scan(&g.trees, file, index, env, out);
            continue;
        }
        if !t.is_ident("as") {
            continue;
        }
        // Target type: a single identifier naming an integer type. Casts to
        // floats, or to paths/generic types, are out of scope.
        let Some(target_tok) = trees.get(k + 1).and_then(Tree::leaf) else {
            continue;
        };
        // `foo::bar as usize`-style *paths in the target* would start with
        // an ident too; only a bare int-type ident counts, and it must not
        // be followed by `::` (which would make it `u8::MAX` etc.).
        if trees.get(k + 2).is_some_and(|t| t.is_punct("::")) {
            continue;
        }
        let Some((tbits, tsigned)) = int_width(&target_tok.text) else {
            continue;
        };
        let line = t.leaf().map_or(0, |tok| tok.line);
        let (operand, op_start) = operand_extent(trees, k);
        let verdict = classify(&trees[op_start..k], index, env, tbits, tsigned);
        let ok = match verdict {
            Operand::Bool | Operand::Float | Operand::Bounded => true,
            Operand::Int(bits, signed) => fits(bits, signed, tbits, tsigned),
            Operand::Unknown => false,
        };
        if ok || file.is_allowed(line, "cast") {
            continue;
        }
        if flagged
            .iter()
            .any(|(l, op)| *l == line && operand.starts_with(&format!("{op} as ")))
        {
            continue;
        }
        flagged.push((line, operand.clone()));
        let why = match verdict {
            Operand::Int(bits, signed) => format!(
                "{}{bits}→{}{tbits} {} cast",
                if signed { "i" } else { "u" },
                if tsigned { "i" } else { "u" },
                if bits > tbits {
                    "narrowing"
                } else {
                    "sign-changing"
                }
            ),
            _ => "operand range unprovable".to_string(),
        };
        out.push(Violation::new(
            "cast-safety",
            &file.path,
            line + 1,
            format!(
                "`{} as {}` ({why}): use `{}::from` (widening), `{}::try_from` + CodecError (range check), a mask/clamp (intentional truncation), or lint:allow(cast)",
                operand, target_tok.text, target_tok.text, target_tok.text
            ),
        ));
    }
}

/// Whether a source int of `(bits, signed)` always fits `(tbits, tsigned)`.
fn fits(bits: u32, signed: bool, tbits: u32, tsigned: bool) -> bool {
    if signed == tsigned {
        tbits >= bits
    } else if signed {
        false // signed → unsigned: negative values wrap at any width
    } else {
        tbits > bits // unsigned → signed needs strictly more bits
    }
}

/// Finds the operand extent of the `as` at `k`: the postfix-expression
/// chain immediately to its left. Returns `(display_text, start_index)`.
///
/// Walks right-to-left consuming one *primary* (ident, literal, or group)
/// per step, then continues only through chain links: `.`/`::` connectors,
/// an ident directly before a just-consumed `(`/`[` group (a call or
/// index), or a previous `as` (cast chains like `x as u8 as u32`).
fn operand_extent(trees: &[Tree], k: usize) -> (String, usize) {
    const STOP: &[&str] = &[
        "let", "return", "in", "if", "else", "match", "while", "mut", "move", "break", "continue",
        "ref",
    ];
    let mut start = k;
    loop {
        // Postfix `?` belongs to the chain (`f()? as u64`).
        while start.checked_sub(1).is_some_and(|i| trees[i].is_punct("?")) {
            start -= 1;
        }
        // Consume one primary.
        let Some(prev) = start.checked_sub(1).map(|i| &trees[i]) else {
            break;
        };
        let consumed_group = prev.group().is_some();
        match prev {
            Tree::Group(_) => start -= 1,
            Tree::Leaf(tok) => match tok.kind {
                Kind::Ident if !STOP.contains(&tok.text.as_str()) && tok.text != "as" => {
                    start -= 1;
                }
                Kind::Int | Kind::Float | Kind::Char | Kind::Str => start -= 1,
                _ => break,
            },
        }
        // Continue only through a chain link.
        let Some(left) = start.checked_sub(1).map(|i| &trees[i]) else {
            break;
        };
        let link = match left {
            Tree::Leaf(t) if t.text == "." || t.text == "::" => {
                start -= 1; // consume the connector, loop for next primary
                true
            }
            Tree::Leaf(t) if t.is_ident("as") => {
                start -= 1; // cast chain: include `as` and its left arm
                true
            }
            Tree::Leaf(t) if t.kind == Kind::Ident && consumed_group => {
                // call name before `(…)` — consumed on next iteration as a
                // primary; signal continuation without consuming here.
                !STOP.contains(&t.text.as_str())
            }
            _ => false,
        };
        if !link {
            break;
        }
    }
    (to_text(&trees[start..k]), start)
}

/// Classifies the operand trees against the target `(tbits, tsigned)`.
fn classify(operand: &[Tree], index: &Index, env: &TypeEnv, tbits: u32, tsigned: bool) -> Operand {
    // Trailing `?` unwraps a Result; the chain's value is the Ok type,
    // which `ty_to_operand` extracts from the callee's return.
    let mut operand = operand;
    while operand.last().is_some_and(|t| t.is_punct("?")) {
        operand = &operand[..operand.len() - 1];
    }
    if operand.is_empty() {
        return Operand::Unknown;
    }
    let target_range = int_range(tbits, tsigned);

    // Cast chain: `… as ty2`. If the inner operand provably fits `ty2`,
    // the hop preserves the value and the chain is judged by the inner
    // operand directly (`c as u64` of a `u32` still holds a u32 value);
    // otherwise the hop may wrap and the chain is a full-range `ty2`.
    if operand.len() >= 2 {
        if let (Some(prev), Some(tytok)) = (
            operand[operand.len() - 2].leaf(),
            operand[operand.len() - 1].leaf(),
        ) {
            if prev.is_ident("as") {
                if is_float_ty(&tytok.text) {
                    return Operand::Float;
                }
                if let Some((b, s)) = int_width(&tytok.text) {
                    let inner = &operand[..operand.len() - 2];
                    let hop = classify(inner, index, env, b, s);
                    let preserved = match hop {
                        Operand::Bool | Operand::Bounded | Operand::Float => true,
                        Operand::Int(ib, is) => fits(ib, is, b, s),
                        Operand::Unknown => false,
                    };
                    if preserved {
                        return classify(inner, index, env, tbits, tsigned);
                    }
                    return Operand::Int(b, s);
                }
            }
        }
    }

    // Single-token operands.
    if operand.len() == 1 {
        match &operand[0] {
            Tree::Leaf(tok) => match tok.kind {
                Kind::Int => {
                    return literal_value(&tok.text).map_or(Operand::Unknown, |v| {
                        if target_range.contains(&v) {
                            Operand::Bounded
                        } else {
                            Operand::Unknown
                        }
                    });
                }
                Kind::Float => return Operand::Float,
                Kind::Ident if tok.text == "true" || tok.text == "false" => {
                    return Operand::Bool;
                }
                Kind::Ident => {
                    if let Some(ty) = env.get(&tok.text) {
                        return ty_to_operand(ty);
                    }
                    if let Some(ty) = index.const_types.get(&tok.text) {
                        return ty_to_operand(ty);
                    }
                    return Operand::Unknown;
                }
                _ => return Operand::Unknown,
            },
            Tree::Group(g) => {
                // Parenthesized expression: bool comparisons, bounding
                // operators, or a plain wrapped operand.
                let inner = &g.trees;
                if has_top_level_bool_op(inner) {
                    return Operand::Bool;
                }
                if let Some(op) = bounded_by_binary(inner, tbits, tsigned) {
                    return op;
                }
                return classify(inner, index, env, tbits, tsigned);
            }
        }
    }

    // Postfix chains: judge by the final element.
    let last = &operand[operand.len() - 1];
    match last {
        // `… .name` field access (no call parens).
        Tree::Leaf(tok) if tok.kind == Kind::Ident => {
            let is_field = operand.len() >= 2 && operand[operand.len() - 2].is_punct(".");
            let is_path = operand.len() >= 2 && operand[operand.len() - 2].is_punct("::");
            if is_path {
                // `Type::CONST` / `Enum::Variant`: `u8::MAX` style resolves
                // via the leading type; consts resolve via the index.
                if let Some(head) = operand.first().and_then(Tree::leaf) {
                    if matches!(tok.text.as_str(), "MAX" | "MIN") {
                        if let Some((b, s)) = int_width(&head.text) {
                            return Operand::Int(b, s);
                        }
                    }
                }
                if let Some(ty) = index.const_types.get(&tok.text) {
                    return ty_to_operand(ty);
                }
                return Operand::Unknown;
            }
            if is_field {
                return field_operand(&tok.text, index);
            }
            Operand::Unknown
        }
        // `… name(…)` / `… .name(…)` call: bounding methods first, then
        // return-type resolution.
        Tree::Group(g) if g.delim == '(' => {
            let Some(name_tok) = operand
                .get(operand.len().wrapping_sub(2))
                .and_then(Tree::leaf)
                .filter(|t| t.kind == Kind::Ident)
            else {
                return Operand::Unknown;
            };
            match name_tok.text.as_str() {
                "min" => {
                    if let Some(v) = bound_value(&g.trees) {
                        // An upper bound inside the target range proves the
                        // top end; the bottom end is the operand's own
                        // floor, which `min` preserves — negative sources
                        // remain the caller's responsibility and are why
                        // `clamp` is the preferred spelling.
                        if v <= *target_range.end() && (tsigned || v >= 0) {
                            return Operand::Bounded;
                        }
                    }
                    Operand::Unknown
                }
                "clamp" => {
                    let bounds = split_args(&g.trees);
                    if bounds.len() == 2 {
                        if let (Some(lo), Some(hi)) =
                            (bound_value(&bounds[0]), bound_value(&bounds[1]))
                        {
                            if target_range.contains(&lo) && target_range.contains(&hi) {
                                return Operand::Bounded;
                            }
                        }
                    }
                    Operand::Unknown
                }
                // Known-width std methods.
                "len" | "count" | "capacity" => Operand::Int(64, false), // usize
                "leading_zeros" | "trailing_zeros" | "count_ones" | "count_zeros" => {
                    Operand::Int(32, false)
                }
                // Known-float std methods (saturating casts).
                "round" | "floor" | "ceil" | "trunc" | "sqrt" | "powf" | "powi" | "exp" | "ln"
                | "log2" | "log10" | "abs_f" | "signum" | "hypot" | "mul_add" => Operand::Float,
                name => {
                    // Resolve through the workspace index: safe only when
                    // every (unambiguous) candidate's return type fits.
                    // `recv.name(…)` with a receiver of known type keeps
                    // only that type's methods, so same-named methods on
                    // other types cannot poison the resolution.
                    let mut ids: Vec<usize> = index.resolve(name).to_vec();
                    if let Some(recv_ty) = receiver_type(operand, env) {
                        let filtered: Vec<usize> = ids
                            .iter()
                            .copied()
                            .filter(|&id| {
                                index.fns[id].item.self_ty.as_deref().is_some_and(|t| {
                                    t.split_whitespace().last() == Some(recv_ty.as_str())
                                })
                            })
                            .collect();
                        if !filtered.is_empty() {
                            ids = filtered;
                        }
                    }
                    let ids = &ids[..];
                    if ids.is_empty() || ids.len() > 3 {
                        return Operand::Unknown;
                    }
                    let mut acc: Option<Operand> = None;
                    for &id in ids {
                        let Some(ret) = index.fns[id].item.ret.as_deref() else {
                            return Operand::Unknown;
                        };
                        let op = ty_to_operand(ret);
                        if op == Operand::Unknown {
                            return Operand::Unknown;
                        }
                        acc = Some(match acc {
                            None => op,
                            Some(prev) if prev == op => op,
                            Some(Operand::Int(b1, s1)) => {
                                if let Operand::Int(b2, s2) = op {
                                    Operand::Int(b1.max(b2), s1 || s2)
                                } else {
                                    return Operand::Unknown;
                                }
                            }
                            Some(_) => return Operand::Unknown,
                        });
                    }
                    acc.unwrap_or(Operand::Unknown)
                }
            }
        }
        // `name[…]` index: resolves when the base is a slice/array/Vec of
        // ints in the environment.
        Tree::Group(g) if g.delim == '[' && operand.len() == 2 => {
            let base = operand[0].leaf().filter(|t| t.kind == Kind::Ident);
            base.and_then(|b| env.get(&b.text))
                .map_or(Operand::Unknown, |ty| element_operand(ty))
        }
        Tree::Group(_) => Operand::Unknown,
        Tree::Leaf(_) => Operand::Unknown,
    }
}

/// The bare receiver type of a `recv.name(…)` operand, when `recv` is a
/// plain identifier (or `self`) with a known non-generic type.
fn receiver_type(operand: &[Tree], env: &TypeEnv) -> Option<String> {
    if operand.len() != 4 || !operand[1].is_punct(".") {
        return None;
    }
    let recv = operand[0].leaf().filter(|t| t.kind == Kind::Ident)?;
    let ty = env.get(&recv.text)?;
    if ty.contains('<') {
        return None;
    }
    let bare = ty.split_whitespace().last()?.trim_start_matches('&');
    if !bare.is_empty() && bare.chars().all(|c| c.is_alphanumeric() || c == '_') {
        Some(bare.to_string())
    } else {
        None
    }
}

/// Maps a compact type string to an operand classification.
///
/// `Result<T, E>` classifies as `T`: a cast on a Result-returning call
/// only compiles after `?` (or an unwrapping method), so by the time the
/// cast sees the value it holds the Ok type.
fn ty_to_operand(ty: &str) -> Operand {
    let ty = ty.trim_start_matches('&').trim();
    if let Some(rest) = ty.strip_prefix("Result") {
        if let Some(inner) = rest.trim_start().strip_prefix('<') {
            let end = inner.find([',', '>']).unwrap_or(inner.len());
            return ty_to_operand(inner[..end].trim());
        }
    }
    if let Some((b, s)) = int_width(ty) {
        return Operand::Int(b, s);
    }
    if is_float_ty(ty) {
        return Operand::Float;
    }
    if ty == "bool" {
        return Operand::Bool;
    }
    Operand::Unknown
}

/// The element classification of an indexable type: `&[u8]`, `[i16; 64]`,
/// and `Vec<u8>` all index to their element.
fn element_operand(ty: &str) -> Operand {
    let t = ty.replace(' ', "");
    let t = t.trim_start_matches('&');
    let inner = if let Some(r) = t.strip_prefix('[') {
        r.split([';', ']']).next()
    } else if let Some(r) = t.strip_prefix("Vec<") {
        r.split('>').next()
    } else {
        None
    };
    inner.map_or(Operand::Unknown, ty_to_operand)
}

/// Field lookup: safe only when every struct field with this name agrees.
fn field_operand(name: &str, index: &Index) -> Operand {
    let Some(tys) = index.field_types.get(name) else {
        return Operand::Unknown;
    };
    let mut acc: Option<Operand> = None;
    for ty in tys {
        let op = ty_to_operand(ty);
        if op == Operand::Unknown {
            return Operand::Unknown;
        }
        acc = Some(match acc {
            None => op,
            Some(prev) if prev == op => op,
            Some(Operand::Int(b1, s1)) => {
                if let Operand::Int(b2, s2) = op {
                    Operand::Int(b1.max(b2), s1 || s2)
                } else {
                    return Operand::Unknown;
                }
            }
            Some(_) => return Operand::Unknown,
        });
    }
    acc.unwrap_or(Operand::Unknown)
}

/// The inclusive value range of an integer type (approximated as i128).
fn int_range(bits: u32, signed: bool) -> std::ops::RangeInclusive<i128> {
    if signed {
        let half = 1i128 << (bits - 1);
        -half..=half - 1
    } else if bits >= 127 {
        0..=i128::MAX
    } else {
        0..=(1i128 << bits) - 1
    }
}

/// Parses an integer literal (decimal/hex/octal/binary, `_` separators,
/// optional type suffix) to its value.
fn literal_value(text: &str) -> Option<i128> {
    let t = text.replace('_', "");
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b, 2)
    } else {
        (t.as_str(), 10)
    };
    let digits: String = digits
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() && (radix == 16 || c.is_ascii_digit()))
        .collect();
    // Strip a type suffix glued onto hex digits (`0xFFu32`).
    let digits = if radix == 16 {
        let stripped = [
            "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
        ]
        .iter()
        .find_map(|s| digits.strip_suffix(s));
        stripped.map_or(digits.clone(), str::to_string)
    } else {
        digits
    };
    i128::from_str_radix(&digits, radix).ok()
}

/// A bound literal: an int/float literal or `Ty::MAX`/`Ty::MIN` (floats
/// round toward the conservative side).
fn bound_value(trees: &[Tree]) -> Option<i128> {
    let trees: &[Tree] = if trees.len() == 1 {
        if let Some(g) = trees[0].group() {
            &g.trees
        } else {
            trees
        }
    } else {
        trees
    };
    match trees {
        [Tree::Leaf(t)] if t.kind == Kind::Int => literal_value(&t.text),
        [Tree::Leaf(t)] if t.kind == Kind::Float => {
            let v: f64 = t
                .text
                .trim_end_matches("f64")
                .trim_end_matches("f32")
                .trim_end_matches('_')
                .parse()
                .ok()?;
            if v.is_finite() && v.abs() < 1e18 {
                #[allow(clippy::cast_possible_truncation)]
                Some(v.ceil() as i128)
            } else {
                None
            }
        }
        [Tree::Leaf(neg), rest @ ..] if neg.is_punct("-") => bound_value(rest).map(|v| -v),
        [Tree::Leaf(ty), Tree::Leaf(colons), Tree::Leaf(bound)] if colons.is_punct("::") => {
            let (bits, signed) = int_width(&ty.text)?;
            let range = int_range(bits, signed);
            match bound.text.as_str() {
                "MAX" => Some(*range.end()),
                "MIN" => Some(*range.start()),
                _ => None,
            }
        }
        // `Ty::MAX as f64` and similar: the cast does not change the bound.
        [head @ .., Tree::Leaf(a), Tree::Leaf(_ty)] if a.is_ident("as") => bound_value(head),
        _ => None,
    }
}

/// Splits a group's trees on top-level commas.
fn split_args(trees: &[Tree]) -> Vec<Vec<Tree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in trees {
        if t.is_punct(",") {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(t.clone());
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Whether the trees contain a top-level boolean-producing operator.
fn has_top_level_bool_op(trees: &[Tree]) -> bool {
    let mut angle_guard = 0i32; // avoid reading generic args as comparisons
    for t in trees {
        let Some(tok) = t.leaf() else { continue };
        match tok.text.as_str() {
            "==" | "!=" | "<=" | ">=" | "&&" | "||" => return true,
            "<" => angle_guard += 1,
            ">" => {
                if angle_guard == 0 {
                    return true;
                }
                angle_guard -= 1;
            }
            _ => {}
        }
    }
    // An unmatched `<` at top level is a comparison, not generics.
    angle_guard > 0
}

/// Binary bounding inside a parenthesized operand: `x % lit`, `x & lit`
/// (value bound) fitting the target.
fn bounded_by_binary(trees: &[Tree], tbits: u32, tsigned: bool) -> Option<Operand> {
    let range = int_range(tbits, tsigned);
    for (k, t) in trees.iter().enumerate() {
        let Some(tok) = t.leaf() else { continue };
        let bound = match tok.text.as_str() {
            // `x % m` yields |result| < m; safe when `m - 1` fits and the
            // left side cannot be negative is unknowable, so require the
            // target to hold `-(m-1)..=m-1` for signed sources.
            "%" => bound_value(&trees[k + 1..]).map(|m| m - 1),
            // `x & m` yields 0..=m for non-negative m.
            "&" => bound_value(&trees[k + 1..]),
            _ => continue,
        };
        if let Some(b) = bound {
            let lo = if tok.text == "%" { -b } else { 0 };
            if range.contains(&b) && (range.contains(&lo) || *range.start() == 0 && lo <= 0) {
                // For unsigned targets a negative remainder would wrap; `%`
                // on usize-typed math (the common case: index math) cannot
                // go negative. Accept, documented as trust in masking.
                return Some(Operand::Bounded);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile, Workspace};

    fn check(src: &str) -> Vec<Violation> {
        check_with(&[("crates/demo/src/lib.rs", src)])
    }

    fn check_with(files: &[(&str, &str)]) -> Vec<Violation> {
        let srcs: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::from_contents(p, s))
            .collect();
        let ws = Workspace {
            crates: vec![CrateSrc::from_parts(
                "demo",
                "[package]\nname = \"demo\"\n",
                srcs,
            )],
        };
        let index = ws.build_index();
        let mut out = Vec::new();
        for f in ws.files() {
            out.extend(check_file(f, &index));
        }
        out
    }

    #[test]
    fn unprovable_narrowing_is_flagged() {
        let v = check("fn f(x: u32) -> u8 { x as u8 }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("u32"), "{}", v[0].message);
        assert!(v[0].message.contains("narrowing"), "{}", v[0].message);
    }

    #[test]
    fn sign_changes_are_flagged() {
        let v = check("fn f(x: i32, y: u32) -> usize { (x as usize) + (x as u32 as usize) + (y as i32 as usize) }\n");
        // `x as usize` (i32→u64-equivalent) and `x as u32` change sign;
        // `y as i32` (u32→i32) is same-width sign-changing.
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn widening_and_same_type_are_quiet() {
        let v = check(
            "fn f(a: u8, b: i16, c: u32) -> i64 {\n    (a as u32 as i64) + (b as i64) + (c as u64 as i64) + (a as usize as i64)\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn literal_bool_and_bounded_operands_are_quiet() {
        let v = check(
            "fn f(x: usize, v: i32, s: f64) -> u8 {\n    let a = 255 as u8;\n    let b = (x % 256) as u8;\n    let c = (x & 0xFF) as u8;\n    let d = (v == 0) as u8;\n    let e = true as u8;\n    let g = v.clamp(-100, 100) as i8;\n    let h = s.round() as u8;\n    a + b + c + d + e + g + h\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn oversized_literal_and_bad_clamp_are_flagged() {
        let v = check(
            "fn f(v: i32) -> u8 {\n    let a = 300 as u8;\n    let b = v.clamp(-1, 255) as u8;\n    a + b\n}\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn index_resolves_return_types_across_files() {
        let v = check_with(&[
            (
                "crates/demo/src/frame.rs",
                "pub struct Frame { w: usize }\nimpl Frame {\n    pub fn get(&self, x: usize) -> u8 { 0 }\n    pub fn wide(&self) -> u64 { 0 }\n}\n",
            ),
            (
                "crates/demo/src/user.rs",
                "fn f(fr: &super::Frame) -> i32 {\n    let ok = fr.get(0) as i32;\n    let bad = fr.wide() as i32;\n    ok + bad\n}\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("wide"), "{}", v[0].message);
    }

    #[test]
    fn struct_fields_and_consts_resolve() {
        let v = check(
            "pub struct Mv { pub dx: i8 }\npub const LIMIT: u16 = 9;\nfn f(m: &Mv) -> i32 { (m.dx as i32) + (LIMIT as i32) }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn len_is_usize_and_flagged_when_narrowed() {
        let v = check("fn f(v: &[u8]) -> u32 { v.len() as u32 }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        let v = check("fn f(v: &[u8]) -> u64 { v.len() as u64 }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn min_with_fitting_bound_is_quiet_for_signed_targets() {
        let v = check(
            "fn f(mag: f64) -> i32 { mag.min(i32::MAX as f64) as i32 }\nfn g(x: usize) -> u16 { x.min(1000) as u16 }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_marker_suppresses() {
        let v = check(
            "fn f(x: u32) -> u8 {\n    // lint:allow(cast): mode index is < 35 by construction\n    x as u8\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn typed_lets_resolve() {
        let v = check(
            "fn f() -> u32 {\n    let idx: u8 = 3;\n    let big: u64 = 4;\n    (idx as u32) + (big as u32)\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("big"), "{}", v[0].message);
    }
}
