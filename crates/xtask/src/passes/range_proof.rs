//! Range-proof pass: interval-domain arithmetic checks over the
//! bit-exact hot-path crates.
//!
//! Built on [`crate::dataflow::interval`], the pass evaluates every
//! function body in the audited crates under the interval abstract
//! domain (per-variable `[lo, hi]` over `i128`, widening at loop heads,
//! narrowing on guard edges) and reports:
//!
//! * `+ - *` operations whose result interval escapes the operation's
//!   integer type (a silent two's-complement wrap in release builds);
//! * `<< >>` shifts whose amount interval is not provably below the
//!   shifted type's bit width (overflow UB-adjacent, panics in debug);
//! * fixed-array indexing whose index interval provably escapes the
//!   array length;
//! * call edges whose argument interval escapes a contract declared in
//!   `crates/xtask/ranges.toml`.
//!
//! Entry ranges are seeded from parameter types and the checked
//! `ranges.toml` contract table, and call results flow through
//! param→return interval transfer functions, so the DCT/quant/CABAC hot
//! paths are *proven* in range rather than flagged wholesale. Findings
//! carry an interval-annotated witness chain (`--explain` renders the
//! interval at each hop). Suppress a site with
//! `// lint:allow(range): <reason>`.

use std::collections::BTreeSet;
use std::path::Path;

use crate::ast::index::Index;
use crate::ast::int_width;
use crate::dataflow::interval::{check_fn, Contract, RangeCtx};
use crate::report::Violation;
use crate::source::Workspace;

/// Runs the pass over every function defined in `crates`.
///
/// One finding per function (the first flagged site by line): a single
/// unproven value typically taints several downstream expressions, and
/// the fix is at the first escape.
pub fn check_workspace(
    ws: &Workspace,
    index: &Index,
    crates: &[&str],
    contracts: &[Contract],
) -> Vec<Violation> {
    let ctx = RangeCtx::new(index, contracts);
    let files: std::collections::BTreeMap<&str, &crate::source::SourceFile> =
        ws.files().map(|f| (f.path.as_str(), f)).collect();
    let mut out = Vec::new();
    for (id, entry) in index.fns.iter().enumerate() {
        if !crates.contains(&entry.krate.as_str()) {
            continue;
        }
        let mut sites = check_fn(&ctx, id);
        sites.sort_by_key(|s| s.line);
        let Some(site) = sites.into_iter().find(|s| {
            !files
                .get(entry.path.as_str())
                .is_some_and(|sf| sf.is_allowed(s.line, "range"))
        }) else {
            continue;
        };
        let mut chain = vec![format!("fn {}", entry.item.name)];
        chain.extend(site.chain);
        out.push(
            Violation::new(
                "range-proof",
                &entry.path,
                site.line + 1,
                format!(
                    "{}; widen the intermediate type, guard the operand, or declare \
                     the entry range in crates/xtask/ranges.toml",
                    site.msg
                ),
            )
            .with_chain(chain),
        );
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Loads `crates/xtask/ranges.toml` from the workspace root. A missing
/// file is an empty table; a malformed one is an error.
///
/// # Errors
///
/// Returns a message naming the offending line on parse failure.
pub fn load_contracts(root: &Path) -> Result<Vec<Contract>, String> {
    let path = root.join("crates").join("xtask").join("ranges.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => parse_contracts(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(Vec::new()),
    }
}

/// Parses the strict `[[range]]` table format (see `ranges.toml`).
///
/// # Errors
///
/// Returns a message naming the offending line: unknown keys, missing
/// fields, duplicate fields and non-literal values are all rejected so
/// a typo cannot silently drop a contract.
pub fn parse_contracts(text: &str) -> Result<Vec<Contract>, String> {
    /// One `[[range]]` entry mid-parse: `fn`, `param`, `min`, `max`.
    type Partial = (Option<String>, Option<String>, Option<i128>, Option<i128>);
    let mut out: Vec<Contract> = Vec::new();
    let mut cur: Option<Partial> = None;
    let mut finish = |cur: &mut Option<Partial>| -> Result<(), String> {
        if let Some((f, p, lo, hi)) = cur.take() {
            let (Some(func), Some(param), Some(lo), Some(hi)) = (f, p, lo, hi) else {
                return Err("incomplete [[range]] entry: needs fn, param, min, max".into());
            };
            if lo > hi {
                return Err(format!("contract {func}.{param}: min {lo} > max {hi}"));
            }
            out.push(Contract {
                func,
                param,
                lo,
                hi,
            });
        }
        Ok(())
    };
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[range]]" {
            finish(&mut cur).map_err(|e| format!("line {}: {e}", n + 1))?;
            cur = Some((None, None, None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {}: expected `key = value`, got `{line}`",
                n + 1
            ));
        };
        let (key, value) = (key.trim(), value.trim());
        let Some(entry) = cur.as_mut() else {
            return Err(format!("line {}: `{key}` outside a [[range]] entry", n + 1));
        };
        let dup = |name: &str| format!("line {}: duplicate `{name}`", n + 1);
        match key {
            "fn" | "param" => {
                let v = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {}: `{key}` must be a quoted string", n + 1))?;
                let slot = if key == "fn" {
                    &mut entry.0
                } else {
                    &mut entry.1
                };
                if slot.replace(v.to_string()).is_some() {
                    return Err(dup(key));
                }
            }
            "min" | "max" => {
                let v: i128 = value
                    .parse()
                    .map_err(|_| format!("line {}: `{key}` must be an integer", n + 1))?;
                let slot = if key == "min" {
                    &mut entry.2
                } else {
                    &mut entry.3
                };
                if slot.replace(v).is_some() {
                    return Err(dup(key));
                }
            }
            other => return Err(format!("line {}: unknown key `{other}`", n + 1)),
        }
    }
    finish(&mut cur).map_err(|e| format!("at end of file: {e}"))?;
    Ok(out)
}

/// Checks every contract against the workspace index: the function must
/// exist and expose an integer-typed parameter of that name.
///
/// # Errors
///
/// Returns a message naming the first stale contract.
pub fn validate_contracts(index: &Index, contracts: &[Contract]) -> Result<(), String> {
    let mut seen: BTreeSet<(&str, &str)> = BTreeSet::new();
    for c in contracts {
        if !seen.insert((c.func.as_str(), c.param.as_str())) {
            return Err(format!(
                "ranges.toml: duplicate contract for {}.{}",
                c.func, c.param
            ));
        }
        let ids = index.resolve_defined(&c.func);
        if ids.is_empty() {
            return Err(format!(
                "ranges.toml: contract names unknown function `{}`",
                c.func
            ));
        }
        let ok = ids.iter().any(|&id| {
            index.fns[id].item.params.iter().any(|(n, t)| {
                n == &c.param && int_width(crate::dataflow::interval::strip_refs(t)).is_some()
            })
        });
        if !ok {
            return Err(format!(
                "ranges.toml: `{}` has no integer parameter `{}`",
                c.func, c.param
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile};

    fn ws_of(src: &str) -> Workspace {
        let manifest = "[package]\nname = \"llm265-bitstream\"\n\n[lints]\nworkspace = true\n";
        let file = SourceFile::from_contents("crates/bitstream/src/lib.rs", src);
        Workspace {
            crates: vec![CrateSrc::from_parts(
                "llm265-bitstream",
                manifest,
                vec![file],
            )],
        }
    }

    fn run(src: &str, contracts: &[Contract]) -> Vec<Violation> {
        let ws = ws_of(src);
        let index = ws.build_index();
        check_workspace(&ws, &index, &["llm265-bitstream"], contracts)
    }

    #[test]
    fn one_finding_per_function_first_site_wins() {
        let v = run(
            "pub fn two(a: u8, b: u8) -> u16 {\n    let x = u16::from(a) * 300;\n    let y = u16::from(b) * 400;\n    x + y\n}\n",
            &[],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].pass, "range-proof");
        assert!(v[0].chain[0].contains("fn two"), "{:?}", v[0].chain);
    }

    #[test]
    fn under_guarded_shift_is_a_finding_and_allow_suppresses() {
        let src = "pub fn f(v: u32, n: u32) -> u32 {\n    v << (n & 63)\n}\n";
        let v = run(src, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("not provably < 32"),
            "{}",
            v[0].message
        );
        let allowed = src.replace(
            "v << (n & 63)",
            "// lint:allow(range): demo\n    v << (n & 63)",
        );
        assert!(run(&allowed, &[]).is_empty());
    }

    #[test]
    fn widened_then_truncated_index_is_a_finding() {
        let v = run(
            "pub fn lut(i: u8) -> u8 {\n    let t: [u8; 16] = [0; 16];\n    let wide = u32::from(i) + 16;\n    t[(wide & 31) as usize]\n}\n",
            &[],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("length 16"), "{}", v[0].message);
    }

    #[test]
    fn contract_table_round_trips_and_validates() {
        let text = "# c\n[[range]]\nfn = \"f\"\nparam = \"k\"\nmin = 0\nmax = 8\n";
        let cs = parse_contracts(text).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!((cs[0].lo, cs[0].hi), (0, 8));
        let ws = ws_of("pub fn f(v: u32, k: u32) -> u32 { v >> k }\n");
        let index = ws.build_index();
        assert!(validate_contracts(&index, &cs).is_ok());
        // Unknown param: stale contracts are hard errors.
        let bad =
            parse_contracts("[[range]]\nfn = \"f\"\nparam = \"zz\"\nmin = 0\nmax = 8\n").unwrap();
        assert!(validate_contracts(&index, &bad).is_err());
        let missing =
            parse_contracts("[[range]]\nfn = \"g\"\nparam = \"k\"\nmin = 0\nmax = 8\n").unwrap();
        assert!(validate_contracts(&index, &missing).is_err());
    }

    #[test]
    fn malformed_tables_are_rejected() {
        assert!(parse_contracts("[[range]]\nfn = \"f\"\n").is_err());
        assert!(
            parse_contracts("[[range]]\nfn = \"f\"\nparam = \"k\"\nmin = 9\nmax = 1\n").is_err()
        );
        assert!(parse_contracts("fn = \"f\"\n").is_err());
        assert!(parse_contracts("[[range]]\nbogus = 1\n").is_err());
        assert!(parse_contracts("[[range]]\nfn = unquoted\n").is_err());
        assert!(parse_contracts("[[range]]\nfn = \"f\"\nfn = \"g\"\n").is_err());
    }

    #[test]
    fn contract_seeds_prove_the_body() {
        let src = "pub fn code_rem(r: u32, k: u32) -> u32 {\n    r >> k\n}\n";
        assert_eq!(run(src, &[]).len(), 1);
        let c = [Contract {
            func: "code_rem".into(),
            param: "k".into(),
            lo: 0,
            hi: 8,
        }];
        assert!(run(src, &c).is_empty());
    }
}
