//! Panic-freedom audit for decode/encode hot paths.
//!
//! Codec decode paths consume untrusted bytes; a panic there is a
//! denial-of-service bug, so hot-path crates must return `CodecError`
//! instead. This pass denies the panicking constructs outright and
//! additionally flags direct indexing of input-named buffers inside
//! decode-shaped functions, where a hostile length field turns `data[i]`
//! into a crash. `assert!` is deliberately *not* denied: programmer-error
//! contracts on internal invariants are fine. Justified exceptions carry a
//! `// lint:allow(panic): <reason>` marker.

use crate::report::Violation;
use crate::source::{functions, line_of, SourceFile};

/// Tokens that abort the process. `.expect(` also matches `expect_err`-free
/// uses; `unwrap_or*` does not match because the search requires `()`.
const DENIED: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "unwrap() can panic; return a CodecError instead",
    ),
    (
        ".expect(",
        "expect() can panic; return a CodecError instead",
    ),
    (
        "panic!",
        "panic! in a codec path; return a CodecError instead",
    ),
    (
        "unreachable!",
        "unreachable! in a codec path; prove it or return an error",
    ),
    ("todo!", "todo! must not ship in codec paths"),
    (
        "unimplemented!",
        "unimplemented! must not ship in codec paths",
    ),
];

/// Buffer names that conventionally hold untrusted input.
const INPUT_NAMES: &[&str] = &["data", "bytes", "input", "payload", "buf", "src", "stream"];

/// Function-name prefixes that mark untrusted-input parsing code.
const DECODE_PREFIXES: &[&str] = &["decode", "parse", "decompress", "read"];

/// Runs the audit over one file's sanitized code.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (token, why) in DENIED {
        let mut from = 0usize;
        while let Some(rel) = file.code[from..].find(token) {
            let at = from + rel;
            from = at + token.len();
            // `!` tokens must not match inside longer identifiers
            // (e.g. `core_panic!` or `debug_unreachable!`).
            if !token.starts_with('.') && at > 0 {
                let prev = file.code.as_bytes()[at - 1] as char;
                if prev.is_alphanumeric() || prev == '_' {
                    continue;
                }
            }
            let line = line_of(&file.code, at);
            if file.is_allowed(line, "panic") {
                continue;
            }
            out.push(Violation::new(
                "panic-freedom",
                &file.path,
                line + 1,
                format!("`{token}`: {why}"),
            ));
        }
    }
    out.extend(check_indexing(file));
    out.sort_by_key(|v| v.line);
    out
}

/// Flags `name[...]` indexing of input-named buffers inside decode-shaped
/// functions, where the index is attacker-influenced unless checked.
fn check_indexing(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in functions(&file.code) {
        if !DECODE_PREFIXES.iter().any(|p| f.name.starts_with(p)) || f.body.is_empty() {
            continue;
        }
        let body = &file.code[f.body.clone()];
        for name in INPUT_NAMES {
            let needle = format!("{name}[");
            let mut from = 0usize;
            while let Some(rel) = body[from..].find(&needle) {
                let at = from + rel;
                from = at + needle.len();
                if at > 0 {
                    let prev = body.as_bytes()[at - 1] as char;
                    if prev.is_alphanumeric() || prev == '_' || prev == '.' {
                        continue; // part of a longer name or a field access
                    }
                }
                let line = line_of(&file.code, f.body.start + at);
                if file.is_allowed(line, "panic") {
                    continue;
                }
                out.push(Violation::new(
                    "panic-freedom",
                    &file.path,
                    line + 1,
                    format!(
                        "indexing `{name}[..]` in `{}`: use `.get(..)` and return Truncated/Corrupt",
                        f.name
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_contents("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn flags_each_denied_token() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap();\n    x.expect(\"boom\");\n    panic!(\"no\");\n    unreachable!();\n    todo!();\n    unimplemented!();\n}\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 6, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("unwrap"));
        assert!(v[2].message.contains("panic!"));
    }

    #[test]
    fn quiet_on_clean_code_and_non_denied_tokens() {
        let src = "fn decode(data: &[u8]) -> Option<u8> {\n    assert!(!data.is_empty());\n    let v = data.get(0).copied().unwrap_or(0);\n    debug_assert!(v < 10);\n    data.get(1).copied()\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_on_same_or_preceding_line() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap(); // lint:allow(panic): infallible here\n    // lint:allow(panic): also fine\n    x.unwrap();\n    x.unwrap();\n}\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn tokens_in_tests_comments_and_strings_are_ignored() {
        let src = "// this unwrap() is prose\nfn f() { let s = \"panic!\"; let _ = s; }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }

    #[test]
    fn flags_input_indexing_only_in_decode_functions() {
        let src = "fn decode_header(data: &[u8]) -> u8 {\n    data[0]\n}\nfn shuffle(data: &mut [u8]) {\n    data[0] = 1;\n}\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("decode_header"));
    }

    #[test]
    fn non_input_names_and_locals_do_not_fire() {
        let src = "fn parse_block(data: &[u8]) -> u8 {\n    let table = [0u8; 4];\n    let out = vec![0u8; 4];\n    table[0] + out[1] + self.data.len() as u8 + data.get(0).copied().unwrap_or(0)\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }
}
