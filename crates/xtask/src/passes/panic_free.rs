//! Panic-freedom audit for decode/encode hot paths (AST-engine visitor).
//!
//! Codec decode paths consume untrusted bytes; a panic there is a
//! denial-of-service bug, so hot-path crates must return `CodecError`
//! instead. This pass denies panicking constructs outright — as method
//! calls (`.unwrap()` / `.expect(..)`) and macro invocations (`panic!`,
//! `unreachable!`, `todo!`, `unimplemented!`) recognized in the token
//! trees — and additionally flags direct indexing of input-named buffers
//! inside decode-shaped functions, where a hostile length field turns
//! `data[i]` into a crash. `assert!` is deliberately *not* denied:
//! programmer-error contracts on internal invariants are fine. Justified
//! exceptions carry a `// lint:allow(panic): <reason>` marker.
//!
//! See also the error-discipline pass, which extends this audit
//! transitively through the call graph.

use crate::ast::lex::Kind;
use crate::ast::tree::Tree;
use crate::report::Violation;
use crate::source::SourceFile;

/// Method names that abort the process when the receiver is `None`/`Err`.
const DENIED_METHODS: &[(&str, &str)] = &[
    ("unwrap", "unwrap() can panic; return a CodecError instead"),
    ("expect", "expect() can panic; return a CodecError instead"),
];

/// Macros that abort the process.
pub const DENIED_MACROS: &[(&str, &str)] = &[
    (
        "panic",
        "panic! in a codec path; return a CodecError instead",
    ),
    (
        "unreachable",
        "unreachable! in a codec path; prove it or return an error",
    ),
    ("todo", "todo! must not ship in codec paths"),
    (
        "unimplemented",
        "unimplemented! must not ship in codec paths",
    ),
];

/// Buffer names that conventionally hold untrusted input.
pub const INPUT_NAMES: &[&str] = &["data", "bytes", "input", "payload", "buf", "src", "stream"];

/// Function-name prefixes that mark untrusted-input parsing code.
pub const DECODE_PREFIXES: &[&str] = &["decode", "parse", "decompress", "read"];

/// Runs the audit over one file.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    scan_denied(&file.trees, file, &mut out);
    for f in &file.items.fns {
        if !DECODE_PREFIXES.iter().any(|p| f.name.starts_with(p)) {
            continue;
        }
        if let Some(body) = &f.body {
            scan_indexing(&body.trees, &f.name, file, &mut out);
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Flags denied method calls and macro invocations anywhere in the trees.
fn scan_denied(trees: &[Tree], file: &SourceFile, out: &mut Vec<Violation>) {
    for (k, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            scan_denied(&g.trees, file, out);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != Kind::Ident {
            continue;
        }
        // `.name(…)` — denied method call.
        if let Some((_, why)) = DENIED_METHODS.iter().find(|(m, _)| tok.text == *m) {
            let is_method = k > 0
                && trees[k - 1].is_punct(".")
                && trees
                    .get(k + 1)
                    .and_then(Tree::group)
                    .is_some_and(|g| g.delim == '(');
            if is_method && !file.is_allowed(tok.line, "panic") {
                out.push(Violation::new(
                    "panic-freedom",
                    &file.path,
                    tok.line + 1,
                    format!("`.{}(…)`: {why}", tok.text),
                ));
            }
            continue;
        }
        // `name!(…)` — denied macro.
        if let Some((_, why)) = DENIED_MACROS.iter().find(|(m, _)| tok.text == *m) {
            let is_macro =
                trees.get(k + 1).is_some_and(|t| t.is_punct("!")) && trees.get(k + 2).is_some();
            if is_macro && !file.is_allowed(tok.line, "panic") {
                out.push(Violation::new(
                    "panic-freedom",
                    &file.path,
                    tok.line + 1,
                    format!("`{}!`: {why}", tok.text),
                ));
            }
        }
    }
}

/// Flags `name[...]` indexing of input-named buffers inside decode-shaped
/// functions, where the index is attacker-influenced unless checked.
fn scan_indexing(trees: &[Tree], fn_name: &str, file: &SourceFile, out: &mut Vec<Violation>) {
    for (k, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            scan_indexing(&g.trees, fn_name, file, out);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != Kind::Ident || !INPUT_NAMES.contains(&tok.text.as_str()) {
            continue;
        }
        // Field accesses (`self.data[…]`) are the owner's own storage, not
        // the untrusted argument; a leading `.` excuses them.
        if k > 0 && trees[k - 1].is_punct(".") {
            continue;
        }
        let indexes = trees
            .get(k + 1)
            .and_then(Tree::group)
            .is_some_and(|g| g.delim == '[');
        if indexes && !file.is_allowed(tok.line, "panic") {
            out.push(Violation::new(
                "panic-freedom",
                &file.path,
                tok.line + 1,
                format!(
                    "indexing `{}[..]` in `{fn_name}`: use `.get(..)` and return Truncated/Corrupt",
                    tok.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_contents("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn flags_each_denied_token() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap();\n    x.expect(\"boom\");\n    panic!(\"no\");\n    unreachable!();\n    todo!();\n    unimplemented!();\n}\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 6, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("unwrap"));
        assert!(v[2].message.contains("panic!"));
    }

    #[test]
    fn quiet_on_clean_code_and_non_denied_tokens() {
        let src = "fn decode(data: &[u8]) -> Option<u8> {\n    assert!(!data.is_empty());\n    let v = data.get(0).copied().unwrap_or(0);\n    debug_assert!(v < 10);\n    data.get(1).copied()\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }

    #[test]
    fn unwrap_as_plain_ident_or_longer_name_is_quiet() {
        // `unwrap_or` is a different method; a fn named `unwrap` defined
        // here is a definition, not a call; `core_panic!` is not `panic!`.
        let src = "fn unwrap(x: u8) -> u8 { x }\nfn f(x: Option<u8>) -> u8 { x.unwrap_or(0) + core_panic!(x) }\n";
        assert!(check_file(&file(src)).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_on_same_or_preceding_line() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap(); // lint:allow(panic): infallible here\n    // lint:allow(panic): also fine\n    x.unwrap();\n    x.unwrap();\n}\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn tokens_in_tests_comments_and_strings_are_ignored() {
        let src = "// this unwrap() is prose\nfn f() -> usize { let s = \"panic!\"; s.len() }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }

    #[test]
    fn flags_input_indexing_only_in_decode_functions() {
        let src = "fn decode_header(data: &[u8]) -> u8 {\n    data[0]\n}\nfn shuffle(data: &mut [u8]) {\n    data[0] = 1;\n}\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("decode_header"));
    }

    #[test]
    fn non_input_names_and_locals_do_not_fire() {
        let src = "fn parse_block(data: &[u8]) -> u8 {\n    let table = [0u8; 4];\n    let out = [0u8; 4];\n    table[0] + out[1] + self.data.len() as u8 + data.get(0).copied().unwrap_or(0)\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }
}
