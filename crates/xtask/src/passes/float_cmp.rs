//! Float-discipline pass (AST-engine visitor).
//!
//! Codec math is full of `f64` rate/distortion quantities where `==`
//! against a literal is almost always a bug (accumulated rounding makes
//! exact equality flaky across platforms and optimization levels). This
//! pass walks the token trees for `==`/`!=` whose left or right operand is
//! a floating-point literal; code should use the tolerance helpers
//! (`llm265_tensor::stats::approx_eq`) instead. Exact-zero guards that are
//! genuinely exact (e.g. a scale that was *assigned* zero) carry a
//! `// lint:allow(float-cmp): <reason>` marker.
//!
//! Because the operands come from lexed tokens, literals inside strings,
//! comments, and `#[cfg(test)]` items can never fire — that guarantee
//! lives in the engine, not in this pass.

use crate::ast::lex::Kind;
use crate::ast::tree::Tree;
use crate::report::Violation;
use crate::source::SourceFile;

/// Runs the float-comparison scan over one file's token trees.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    scan(&file.trees, file, &mut out);
    out.sort_by_key(|v| v.line);
    out
}

fn scan(trees: &[Tree], file: &SourceFile, out: &mut Vec<Violation>) {
    for (k, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            scan(&g.trees, file, out);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };
        if !(tok.is_punct("==") || tok.is_punct("!=")) {
            continue;
        }
        let left = k.checked_sub(1).and_then(|i| trees.get(i));
        // A unary minus before the right literal (`x == -1.0`) sits between
        // the operator and the literal token.
        let mut ri = k + 1;
        if trees.get(ri).is_some_and(|t| t.is_punct("-")) {
            ri += 1;
        }
        let right = trees.get(ri);
        let float_side = [left, right]
            .into_iter()
            .flatten()
            .filter_map(Tree::leaf)
            .find(|t| t.kind == Kind::Float);
        let Some(lit) = float_side else { continue };
        if file.is_allowed(tok.line, "float-cmp") {
            continue;
        }
        let other = if left.and_then(Tree::leaf).map(|t| t.kind) == Some(Kind::Float) {
            right
        } else {
            left
        };
        let other_text = other
            .and_then(Tree::leaf)
            .map_or_else(|| "…".to_string(), |t| t.text.clone());
        out.push(Violation::new(
            "float-cmp",
            &file.path,
            tok.line + 1,
            format!(
                "exact float comparison against `{}` (other operand `{other_text}`): use a tolerance helper (stats::approx_eq) or justify with lint:allow(float-cmp)",
                lit.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_contents("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn flags_eq_and_ne_against_float_literals() {
        let src = "fn f(x: f64) -> bool {\n    if x == 0.0 { return true; }\n    x != 1.5\n}\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("0.0"));
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn literal_on_the_left_scientific_and_negated_fire() {
        let src = "fn f(x: f64) -> bool { 0.0 == x || x == 1e-9 || x == -2.5 }\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn integer_comparisons_and_other_operators_are_quiet() {
        let src = "fn f(x: i32, y: f64) -> bool {\n    x == 0 && x != 10 && y <= 0.5 && y >= 1.5 && y < 2.0\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }

    #[test]
    fn parenthesized_and_nested_comparisons_fire() {
        let src = "fn f(x: f64) -> bool { g((x == 0.5), [x != 3.0]) }\nfn g(a: bool, b: [bool; 1]) -> bool { a }\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f(s: f32) -> bool {\n    // lint:allow(float-cmp): scale was assigned exactly 0.0\n    s == 0.0\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }

    #[test]
    fn comments_strings_and_tests_are_ignored() {
        let src = "// x == 0.0 in prose\nfn f() -> bool { let s = \"v == 1.0\"; s.is_empty() }\n#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 0.25 }\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }
}
