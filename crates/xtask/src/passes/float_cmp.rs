//! Float-discipline pass.
//!
//! Codec math is full of `f64` rate/distortion quantities where `==`
//! against a literal is almost always a bug (accumulated rounding makes
//! exact equality flaky across platforms and optimization levels). This
//! pass flags `==`/`!=` comparisons whose left or right operand is a
//! floating-point literal; code should use the tolerance helpers
//! (`llm265_tensor::stats::approx_eq`) instead. Exact-zero guards that are
//! genuinely exact (e.g. a scale that was *assigned* zero) carry a
//! `// lint:allow(float-cmp): <reason>` marker.

use crate::report::Violation;
use crate::source::SourceFile;

/// Runs the float-comparison scan over one file's sanitized code.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (line_idx, line) in file.code.lines().enumerate() {
        let bytes = line.as_bytes();
        for op in ["==", "!="] {
            let mut from = 0usize;
            while let Some(rel) = line[from..].find(op) {
                let at = from + rel;
                from = at + op.len();
                // Reject `<=`, `>=`, `+=`… on the left and `==` chains.
                if at > 0
                    && matches!(
                        bytes[at - 1],
                        b'<' | b'>'
                            | b'='
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                            | b'!'
                    )
                {
                    continue;
                }
                if bytes.get(at + op.len()) == Some(&b'=') {
                    continue;
                }
                let left = token_left(line, at);
                let right = token_right(line, at + op.len());
                if is_float_literal(&left) || is_float_literal(&right) {
                    if file.is_allowed(line_idx, "float-cmp") {
                        continue;
                    }
                    out.push(Violation::new(
                        "float-cmp",
                        &file.path,
                        line_idx + 1,
                        format!(
                            "exact float comparison `{} {op} {}`: use a tolerance helper (stats::approx_eq) or justify with lint:allow(float-cmp)",
                            if left.is_empty() { "…" } else { &left },
                            if right.is_empty() { "…" } else { &right },
                        ),
                    ));
                }
            }
        }
    }
    out
}

fn is_token_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '.'
}

fn token_left(line: &str, op_at: usize) -> String {
    let head = line[..op_at].trim_end();
    let start = head
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_token_char(c))
        .last()
        .map_or(head.len(), |(i, _)| i);
    head[start..].to_string()
}

fn token_right(line: &str, after_op: usize) -> String {
    let tail = line[after_op..].trim_start();
    let tail = tail.strip_prefix('-').unwrap_or(tail); // negated literal
    let end = tail
        .char_indices()
        .find(|&(_, c)| !is_token_char(c))
        .map_or(tail.len(), |(i, _)| i);
    tail[..end].to_string()
}

/// `1.0`, `0.`, `1e-9`, `2.5f64`, `1f32`, with optional `_` separators.
fn is_float_literal(tok: &str) -> bool {
    let tok = tok
        .strip_suffix("f32")
        .or_else(|| tok.strip_suffix("f64"))
        .map_or(tok, |t| t.strip_suffix('_').unwrap_or(t));
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    // A dotted number (`1.0`, `0.`) or scientific notation is a float; a
    // bare integer only counts if it carried an f32/f64 suffix (stripped
    // above — detect by re-checking the original).
    let dotted = tok.contains('.')
        && tok
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '_');
    let scientific = tok.contains(['e', 'E'])
        && tok
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, 'e' | 'E' | '.' | '_' | '+' | '-'));
    dotted || scientific
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_contents("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn flags_eq_and_ne_against_float_literals() {
        let src = "fn f(x: f64) -> bool {\n    if x == 0.0 { return true; }\n    x != 1.5\n}\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("x == 0.0"));
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn literal_on_the_left_and_scientific_notation_fire() {
        let src = "fn f(x: f64) -> bool { 0.0 == x || x == 1e-9 }\n";
        let v = check_file(&file(src));
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn integer_comparisons_and_other_operators_are_quiet() {
        let src = "fn f(x: i32, y: f64) -> bool {\n    x == 0 && x != 10 && y <= 0.5 && y >= 1.5 && y < 2.0\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f(s: f32) -> bool {\n    // lint:allow(float-cmp): scale was assigned exactly 0.0\n    s == 0.0\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }

    #[test]
    fn comments_strings_and_tests_are_ignored() {
        let src = "// x == 0.0 in prose\nfn f() { let s = \"v == 1.0\"; let _ = s; }\n#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 0.25 }\n}\n";
        assert!(check_file(&file(src)).is_empty());
    }

    #[test]
    fn float_literal_detection() {
        for yes in ["0.0", "1.", "2.5f64", "1e-9", "3.25_f32", "1_000.5"] {
            assert!(is_float_literal(yes), "{yes}");
        }
        for no in ["0", "10", "x", "len", "0x1f", "1usize", "f64"] {
            assert!(!is_float_literal(no), "{no}");
        }
    }
}
