//! Error-discipline pass: dropped `Result`s and transitive panic reach.
//!
//! The panic-freedom pass checks what a decode path does *locally*; this
//! pass checks what it does with its errors and what its callees do. Three
//! checks, all driven by the workspace index:
//!
//! 1. **Dropped results** — `let _ = f(…)` where every definition of `f`
//!    in the workspace returns `Result`. A codec that throws away an
//!    `Err(Truncated)` keeps parsing garbage; bind and propagate it.
//! 2. **Ignored statement calls** — `f(…);` in statement position where
//!    every definition of `f` returns `Result` or is `#[must_use]`.
//!    rustc only warns here (and only for `#[must_use]`); the gate fails.
//! 3. **Transitive panic reach** — a `decode*`/`parse*`/`read*`/
//!    `decompress*` function in a panic-free crate calls (possibly through
//!    several hops) a function in an *unaudited* crate that can panic.
//!    The finding carries the call chain so the report explains how
//!    untrusted bytes reach the panic.
//!
//! Justified sites carry `// lint:allow(error): <reason>` (checks 1–2) or
//! `// lint:allow(panic): <reason>` at the panicking site (check 3).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::index::Index;
use crate::ast::lex::Kind;
use crate::ast::tree::Tree;
use crate::passes::panic_free::{DECODE_PREFIXES, DENIED_MACROS};
use crate::report::Violation;
use crate::source::{SourceFile, Workspace};

/// Same ambiguity cap as the other index-driven passes.
const MAX_CANDIDATES: usize = 3;

/// Runs all three checks over the workspace. `panic_free_crates` are the
/// crates the panic-freedom pass already audits directly; check 3 looks at
/// their callees *outside* that set.
pub fn check_workspace(
    ws: &Workspace,
    index: &Index,
    panic_free_crates: &[&str],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for krate in &ws.crates {
        // The gate does not lint itself for dropped values: report
        // rendering deliberately ignores `fmt::Write` results.
        if krate.name == "xtask" {
            continue;
        }
        for file in &krate.files {
            check_dropped(file, index, &mut out);
        }
    }
    check_panic_reach(ws, index, panic_free_crates, &mut out);
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Whether every workspace definition of `name` returns `Result` — the
/// resolution must be unambiguous (1..=MAX candidates, all agreeing).
fn all_return_result(index: &Index, name: &str) -> bool {
    let targets = index.resolve(name);
    if targets.is_empty() || targets.len() > MAX_CANDIDATES {
        return false;
    }
    targets.iter().all(|&t| {
        index.fns[t]
            .item
            .ret
            .as_deref()
            .is_some_and(|r| r.contains("Result"))
    })
}

/// Whether every workspace definition of `name` is `#[must_use]`.
fn all_must_use(index: &Index, name: &str) -> bool {
    let targets = index.resolve(name);
    if targets.is_empty() || targets.len() > MAX_CANDIDATES {
        return false;
    }
    targets.iter().all(|&t| {
        index.fns[t]
            .item
            .attrs
            .iter()
            .any(|a| a.contains("must_use"))
    })
}

/// Checks 1 and 2: scans every block for `let _ = …;` discards and
/// statement-position calls whose value vanishes.
fn check_dropped(file: &SourceFile, index: &Index, out: &mut Vec<Violation>) {
    scan_block(&file.trees, file, index, out);
}

fn scan_block(trees: &[Tree], file: &SourceFile, index: &Index, out: &mut Vec<Violation>) {
    for (k, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            scan_block(&g.trees, file, index, out);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };

        // Check 1: `let _ = <expr> ;` — find the last call name in the
        // discarded expression.
        if tok.kind == Kind::Ident
            && tok.text == "let"
            && trees.get(k + 1).is_some_and(|t| t.is_ident("_"))
            && trees.get(k + 2).is_some_and(|t| t.is_punct("="))
        {
            let stmt_end = trees[k + 3..]
                .iter()
                .position(|t| t.is_punct(";"))
                .map_or(trees.len(), |p| k + 3 + p);
            if let Some((name, line)) = last_call_in(&trees[k + 3..stmt_end]) {
                if all_return_result(index, &name) && !file.is_allowed(line, "error") {
                    out.push(Violation::new(
                        "error-discipline",
                        &file.path,
                        line + 1,
                        format!(
                            "`let _ = {name}(…)` drops a Result: propagate with `?`, handle the Err, or justify with lint:allow(error)"
                        ),
                    ));
                }
            }
            continue;
        }

        // Check 2: statement-position `…name(…) ;` with the value unused.
        if tok.kind == Kind::Ident
            && trees
                .get(k + 1)
                .and_then(Tree::group)
                .is_some_and(|g| g.delim == '(')
            && trees.get(k + 2).is_some_and(|t| t.is_punct(";"))
            && at_statement_start(trees, k)
        {
            let name = tok.text.clone();
            let is_result = all_return_result(index, &name);
            let is_must_use = !is_result && all_must_use(index, &name);
            if (is_result || is_must_use) && !file.is_allowed(tok.line, "error") {
                let what = if is_result {
                    "returns Result"
                } else {
                    "is #[must_use]"
                };
                out.push(Violation::new(
                    "error-discipline",
                    &file.path,
                    tok.line + 1,
                    format!(
                        "call `{name}(…);` discards a value that {what}: use it, propagate with `?`, or justify with lint:allow(error)"
                    ),
                ));
            }
        }
    }
}

/// The last `name(` call in a statement's trees, with its 0-based line.
fn last_call_in(trees: &[Tree]) -> Option<(String, usize)> {
    let mut found = None;
    for (k, t) in trees.iter().enumerate() {
        let Some(tok) = t.leaf() else { continue };
        if tok.kind == Kind::Ident
            && trees
                .get(k + 1)
                .and_then(Tree::group)
                .is_some_and(|g| g.delim == '(')
        {
            found = Some((tok.text.clone(), tok.line));
        }
    }
    found
}

/// Whether the call chain ending at `trees[k]` starts a statement: walking
/// left over `.`/`::` links, idents, and groups must reach the block start
/// or a `;`/`{…}`-statement boundary. `let x = f();` and `return f();`
/// fail this (the `=`/`return` uses the value).
fn at_statement_start(trees: &[Tree], k: usize) -> bool {
    let mut i = k;
    while i > 0 {
        let prev = &trees[i - 1];
        let links = prev.is_punct(".")
            || prev.is_punct("::")
            || prev.leaf().is_some_and(|t| {
                t.kind == Kind::Ident && !matches!(t.text.as_str(), "return" | "let" | "in")
            })
            || matches!(prev, Tree::Group(g) if g.delim != '{');
        if !links {
            break;
        }
        i -= 1;
    }
    if i == 0 {
        return true;
    }
    let before = &trees[i - 1];
    before.is_punct(";") || matches!(before, Tree::Group(g) if g.delim == '{')
}

/// Check 3: decode-shaped roots in audited crates must not reach panics in
/// unaudited crates.
fn check_panic_reach(
    ws: &Workspace,
    index: &Index,
    panic_free_crates: &[&str],
    out: &mut Vec<Violation>,
) {
    let roots: Vec<usize> = index
        .fns
        .iter()
        .enumerate()
        .filter(|(_, e)| panic_free_crates.contains(&e.krate.as_str()))
        .filter(|(_, e)| DECODE_PREFIXES.iter().any(|p| e.item.name.starts_with(p)))
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }
    let by_path: BTreeMap<&str, &SourceFile> = ws.files().map(|f| (f.path.as_str(), f)).collect();

    let closure = index.reachable(&roots, MAX_CANDIDATES);
    let mut reported: BTreeSet<(String, usize)> = BTreeSet::new();
    for &id in &closure {
        let entry = &index.fns[id];
        if panic_free_crates.contains(&entry.krate.as_str()) || entry.krate == "xtask" {
            continue;
        }
        let Some(file) = by_path.get(entry.path.as_str()) else {
            continue;
        };
        let Some(body) = &entry.item.body else {
            continue;
        };
        for (line, what) in panic_sites(&body.trees) {
            if file.is_allowed(line, "panic") {
                continue;
            }
            if !reported.insert((file.path.clone(), line)) {
                continue;
            }
            let chain = roots
                .iter()
                .find_map(|&r| index.call_chain(r, id, MAX_CANDIDATES))
                .map_or_else(|| entry.item.name.clone(), |c| c.join(" → "));
            out.push(Violation::new(
                "error-discipline",
                &file.path,
                line + 1,
                format!(
                    "{what} in `{}` is reachable from a decode path ({chain}): return an error, or justify at this site with lint:allow(panic)",
                    entry.item.name
                ),
            ));
        }
    }
}

/// Panicking constructs inside a body: `(0-based line, description)`.
fn panic_sites(trees: &[Tree]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    walk_panics(trees, &mut out);
    out
}

fn walk_panics(trees: &[Tree], out: &mut Vec<(usize, String)>) {
    for (k, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            walk_panics(&g.trees, out);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != Kind::Ident {
            continue;
        }
        let is_method = |name: &str| {
            tok.text == name
                && k > 0
                && trees[k - 1].is_punct(".")
                && trees
                    .get(k + 1)
                    .and_then(Tree::group)
                    .is_some_and(|g| g.delim == '(')
        };
        if is_method("unwrap") || is_method("expect") {
            out.push((tok.line, format!("`.{}(…)`", tok.text)));
            continue;
        }
        if DENIED_MACROS.iter().any(|(m, _)| tok.text == *m)
            && trees.get(k + 1).is_some_and(|t| t.is_punct("!"))
            && trees.get(k + 2).is_some()
        {
            out.push((tok.line, format!("`{}!`", tok.text)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile};

    fn ws(crates: &[(&str, &[(&str, &str)])]) -> (Workspace, Index) {
        let crates = crates
            .iter()
            .map(|(name, files)| {
                let srcs = files
                    .iter()
                    .map(|(p, s)| SourceFile::from_contents(p, s))
                    .collect();
                CrateSrc::from_parts(name, &format!("[package]\nname = \"{name}\"\n"), srcs)
            })
            .collect();
        let ws = Workspace { crates };
        let index = ws.build_index();
        (ws, index)
    }

    #[test]
    fn dropped_result_is_flagged() {
        let (ws, idx) = ws(&[(
            "demo",
            &[(
                "a.rs",
                "fn fallible() -> Result<u8, ()> { Ok(0) }\n\
                 fn caller() {\n    let _ = fallible();\n}\n\
                 fn fine() -> Result<u8, ()> { let v = fallible()?; Ok(v) }\n",
            )],
        )]);
        let v = check_workspace(&ws, &idx, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("fallible"));
    }

    #[test]
    fn statement_call_discarding_result_or_must_use_is_flagged() {
        let (ws, idx) = ws(&[(
            "demo",
            &[(
                "a.rs",
                "fn fallible() -> Result<u8, ()> { Ok(0) }\n\
                 #[must_use]\nfn important() -> u8 { 1 }\n\
                 fn plain() {}\n\
                 fn caller() {\n    fallible();\n    important();\n    plain();\n}\n",
            )],
        )]);
        let v = check_workspace(&ws, &idx, &[]);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("returns Result"));
        assert!(v[1].message.contains("must_use"));
    }

    #[test]
    fn used_values_and_allowed_sites_are_quiet() {
        let (ws, idx) = ws(&[(
            "demo",
            &[(
                "a.rs",
                "fn fallible() -> Result<u8, ()> { Ok(0) }\n\
                 fn caller() -> Result<u8, ()> {\n\
                     let x = fallible()?;\n\
                     // lint:allow(error): best-effort flush\n\
                     let _ = fallible();\n\
                     if fallible().is_ok() { return fallible(); }\n\
                     Ok(x)\n\
                 }\n",
            )],
        )]);
        let v = check_workspace(&ws, &idx, &[]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn panic_in_unaudited_callee_is_reported_with_chain() {
        let (ws, idx) = ws(&[
            (
                "hot",
                &[(
                    "crates/hot/src/lib.rs",
                    "pub fn decode_block(x: u8) -> u8 { helper_math(x) }\n",
                )],
            ),
            (
                "mathlib",
                &[(
                    "crates/mathlib/src/lib.rs",
                    "pub fn helper_math(x: u8) -> u8 { inner(x) }\n\
                     fn inner(x: u8) -> u8 { checked(x).unwrap() }\n\
                     fn checked(x: u8) -> Option<u8> { x.checked_add(1) }\n\
                     pub fn off_path() -> u8 { None::<u8>.unwrap() }\n",
                )],
            ),
        ]);
        let v = check_workspace(&ws, &idx, &["hot"]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].path.contains("mathlib"));
        assert!(v[0].message.contains("decode_block → helper_math → inner"));
    }

    #[test]
    fn allowed_panic_site_in_callee_is_quiet() {
        let (ws, idx) = ws(&[
            (
                "hot",
                &[(
                    "crates/hot/src/lib.rs",
                    "pub fn parse_x(x: u8) -> u8 { helper_math(x) }\n",
                )],
            ),
            (
                "mathlib",
                &[(
                    "crates/mathlib/src/lib.rs",
                    "pub fn helper_math(x: u8) -> u8 {\n\
                         // lint:allow(panic): x < 16 by construction\n\
                         TABLE.get(x as usize).copied().unwrap()\n\
                     }\nconst TABLE: [u8; 16] = [0; 16];\n",
                )],
            ),
        ]);
        let v = check_workspace(&ws, &idx, &["hot"]);
        assert!(v.is_empty(), "{v:?}");
    }
}
