//! Wire-taint pass: untrusted lengths must be sanitized before they
//! size, bound, or index anything (interprocedural dataflow visitor).
//!
//! Every length, count, and offset in an LLM.265 stream is
//! attacker-controlled. The per-file passes catch `data[i]` in a decode
//! body; this pass catches the laundered variants — a wire-read length
//! returned through a helper, or a tainted argument handed to a callee
//! that allocates with it. The [`crate::dataflow`] engine computes
//! per-function summaries across the whole workspace, then this pass
//! replays each function in the audited crates unseeded and reports
//! tainted values reaching `Vec::with_capacity`/`vec![..; n]`/
//! `resize`/`reserve`, `for _ in 0..n` bounds, and slice indices, with a
//! source→sink witness chain. Sanitizers (diverging `LimitExceeded`
//! guards, `min`/`clamp` against a trusted bound, narrowing `try_from`)
//! clear the taint; justified exceptions carry
//! `// lint:allow(taint): <reason>`.

use std::collections::BTreeMap;

use crate::ast::index::Index;
use crate::dataflow::{self, Summaries};
use crate::passes::panic_free::DECODE_PREFIXES;
use crate::report::Violation;
use crate::source::Workspace;

/// Runs the pass over the audited crates using a prebuilt index and
/// prebuilt dataflow summaries (shared across passes by the gate).
pub fn check_workspace(
    ws: &Workspace,
    index: &Index,
    sums: &Summaries,
    crates: &[&str],
) -> Vec<Violation> {
    let files: BTreeMap<&str, &crate::source::SourceFile> =
        ws.files().map(|f| (f.path.as_str(), f)).collect();
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for (id, entry) in index.fns.iter().enumerate() {
        if !crates.contains(&entry.krate.as_str()) {
            continue;
        }
        // Same threat-model scoping as panic-freedom's indexing scan:
        // decode-shaped functions consume untrusted bytes; encode paths
        // hashing their own input are not wire-facing. Laundering helpers
        // are still followed — summaries cover the whole workspace.
        if !DECODE_PREFIXES
            .iter()
            .any(|p| entry.item.name.starts_with(p))
        {
            continue;
        }
        let analysis = dataflow::analyze(index, sums, id, false);
        for f in analysis.findings {
            if f.origin.root_param().is_some() {
                continue;
            }
            if files
                .get(entry.path.as_str())
                .is_some_and(|sf| sf.is_allowed(f.line, "taint"))
            {
                continue;
            }
            if !seen.insert((entry.path.clone(), f.line, f.what)) {
                continue;
            }
            let chain = witness_chain(sums, &entry.item.name, &f);
            out.push(
                Violation::new(
                    "wire-taint",
                    &entry.path,
                    f.line + 1,
                    format!(
                        "tainted value reaches {} `{}` without a sanitizer (source → sink: {}); \
                         guard with a diverging LimitExceeded check, `.min`/`.clamp` against a \
                         trusted bound, or a narrowing try_from",
                        f.what,
                        f.detail,
                        chain.join(" → "),
                    ),
                )
                .with_chain(chain),
            );
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Full source→sink chain: provenance hops (deepest read first), the
/// reporting function, then any callee hops down to the sink.
fn witness_chain(sums: &Summaries, fn_name: &str, f: &dataflow::Finding) -> Vec<String> {
    let mut chain = dataflow::origin_chain(sums, &f.origin);
    chain.push(fn_name.to_string());
    chain.extend(f.sink_hops.iter().cloned());
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile};

    fn ws(src: &str) -> Workspace {
        let manifest = "[package]\nname = \"llm265-bitstream\"\n\n[lints]\nworkspace = true\n";
        let file = SourceFile::from_contents("crates/bitstream/src/lib.rs", src);
        Workspace {
            crates: vec![CrateSrc::from_parts(
                "llm265-bitstream",
                manifest,
                vec![file],
            )],
        }
    }

    fn check(src: &str) -> Vec<Violation> {
        let w = ws(src);
        let index = w.build_index();
        check_workspace(
            &w,
            &index,
            &dataflow::summarize(&index),
            &["llm265-bitstream"],
        )
    }

    #[test]
    fn laundered_length_reports_chain_with_hop() {
        let v = check(
            "fn wire_len(data: &[u8]) -> usize { usize::from(data[0]) }\n\
             pub fn decode_block(data: &[u8]) -> Vec<u8> {\n    let n = wire_len(data);\n    Vec::with_capacity(n)\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("allocation size"), "{}", v[0].message);
        assert!(
            v[0].chain.iter().any(|h| h == "wire_len"),
            "{:?}",
            v[0].chain
        );
        assert!(
            v[0].chain.iter().any(|h| h == "decode_block"),
            "{:?}",
            v[0].chain
        );
    }

    #[test]
    fn allow_marker_suppresses() {
        let v = check(
            "pub fn decode_block(data: &[u8]) -> Vec<u8> {\n    let n = usize::from(data[0]);\n    // lint:allow(taint): capacity is a hint, not a hard allocation\n    Vec::with_capacity(n)\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn out_of_scope_crate_is_quiet() {
        let manifest = "[package]\nname = \"llm265-bench\"\n\n[lints]\nworkspace = true\n";
        let file = SourceFile::from_contents(
            "crates/bench/src/lib.rs",
            "pub fn decode_block(data: &[u8]) -> Vec<u8> {\n    Vec::with_capacity(usize::from(data[0]))\n}\n",
        );
        let w = Workspace {
            crates: vec![CrateSrc::from_parts("llm265-bench", manifest, vec![file])],
        };
        let index = w.build_index();
        let v = check_workspace(
            &w,
            &index,
            &dataflow::summarize(&index),
            &["llm265-bitstream"],
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
