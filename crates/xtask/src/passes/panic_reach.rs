//! Panic-reachability pass: the transitive closure of panicking
//! constructs from every public decode-side API, with witness chains.
//!
//! The panic-freedom pass scans each file locally; the error-discipline
//! pass follows decode calls into *unaudited* crates. This pass closes
//! the remaining gap: starting from every externally reachable
//! decode-shaped function (`decode*`/`parse*`/`decompress*`/`read*`,
//! `pub` or a method) in the root crates, it walks the whole-workspace
//! call graph and reports panicking constructs in the reachable helpers
//! — `panic!`-family macros, `.unwrap()`/`.expect(…)`, and unguarded
//! (or arithmetic) indexing of input-named buffers — each with the full
//! root→site call chain, not just the leaf.
//!
//! Double-jeopardy rule: sites inside a root's own body belong to the
//! local passes, and in the audited crates the macro/unwrap families are
//! already denied file-wide by panic-freedom, so there this pass only
//! adds the indexing family (which panic-freedom restricts to
//! decode-named functions). In unaudited crates everything reachable is
//! reported. `// lint:allow(panic): <reason>` applies as usual.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::ast::index::Index;
use crate::ast::lex::Kind;
use crate::ast::tree::Tree;
use crate::dataflow::MAX_CANDIDATES;
use crate::passes::panic_free::{DECODE_PREFIXES, DENIED_MACROS, INPUT_NAMES};
use crate::report::Violation;
use crate::source::Workspace;

/// Which functions seed the reachability walk.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum RootPolicy {
    /// Gate mode: externally reachable decode-shaped functions.
    DecodeApis,
    /// Sweep mode: every public function and method — the model/bench
    /// crates expose no decode-shaped APIs, so the debt inventory walks
    /// from everything callers can reach.
    AllPublicApis,
}

/// Gate mode: roots in `root_crates`, macro/unwrap findings suppressed
/// inside `audited` crates (panic-freedom already denies them there).
pub fn check_workspace(
    ws: &Workspace,
    index: &Index,
    root_crates: &[&str],
    audited: &[&str],
) -> Vec<Violation> {
    check_workspace_with_policy(ws, index, root_crates, audited, RootPolicy::DecodeApis)
}

/// [`check_workspace`] with an explicit root-selection policy.
pub fn check_workspace_with_policy(
    ws: &Workspace,
    index: &Index,
    root_crates: &[&str],
    audited: &[&str],
    policy: RootPolicy,
) -> Vec<Violation> {
    let roots: Vec<usize> = index
        .fns
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            root_crates.contains(&e.krate.as_str())
                && (e.item.is_pub || e.item.self_ty.is_some())
                && (policy == RootPolicy::AllPublicApis
                    || DECODE_PREFIXES.iter().any(|p| e.item.name.starts_with(p)))
        })
        .map(|(id, _)| id)
        .collect();
    let root_set: BTreeSet<usize> = roots.iter().copied().collect();
    let closure = index.reachable(&roots, MAX_CANDIDATES);
    let files: BTreeMap<&str, &crate::source::SourceFile> =
        ws.files().map(|f| (f.path.as_str(), f)).collect();
    let root_kind = match policy {
        RootPolicy::DecodeApis => "public decode API",
        RootPolicy::AllPublicApis => "public API",
    };

    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for &id in &closure {
        let entry = &index.fns[id];
        // A root's own body is the local passes' jurisdiction — but only
        // in the audited crates; in a sweep over unaudited crates no
        // other pass covers the root body, so it is scanned too.
        if root_set.contains(&id) && audited.contains(&entry.krate.as_str()) {
            continue;
        }
        let Some(body) = &entry.item.body else {
            continue;
        };
        let indexing_only = audited.contains(&entry.krate.as_str());
        let mut sites = Vec::new();
        panic_sites(&body.trees, indexing_only, &mut sites);
        if sites.is_empty() {
            continue;
        }
        let chain = roots
            .iter()
            .find_map(|&r| index.call_chain(r, id, MAX_CANDIDATES))
            .unwrap_or_else(|| vec![entry.item.name.clone()]);
        for (line, what) in sites {
            if files
                .get(entry.path.as_str())
                .is_some_and(|sf| sf.is_allowed(line, "panic"))
            {
                continue;
            }
            if !seen.insert((entry.path.clone(), line)) {
                continue;
            }
            out.push(
                Violation::new(
                    "panic-reach",
                    &entry.path,
                    line + 1,
                    format!(
                        "{what} in `{}` is reachable from {root_kind} `{}` \
                         (call chain: {}); return a CodecError instead",
                        entry.item.name,
                        chain.first().map_or("?", String::as_str),
                        chain.join(" → "),
                    ),
                )
                .with_chain(chain.clone()),
            );
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Panicking constructs in one body: `(0-based line, description)`.
fn panic_sites(trees: &[Tree], indexing_only: bool, out: &mut Vec<(usize, String)>) {
    for (k, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            panic_sites(&g.trees, indexing_only, out);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != Kind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        if !indexing_only {
            if DENIED_MACROS.iter().any(|(m, _)| name == *m)
                && trees.get(k + 1).is_some_and(|t| t.is_punct("!"))
                && trees.get(k + 2).and_then(Tree::group).is_some()
            {
                out.push((tok.line, format!("`{name}!`")));
                continue;
            }
            if matches!(name, "unwrap" | "expect")
                && k > 0
                && trees[k - 1].is_punct(".")
                && trees
                    .get(k + 1)
                    .and_then(Tree::group)
                    .is_some_and(|g| g.delim == '(')
            {
                out.push((tok.line, format!("`.{name}()`")));
                continue;
            }
        }
        // Unguarded indexing of an input-named buffer (field accesses
        // like `self.data[..]` are the owner's storage, not input).
        if INPUT_NAMES.contains(&name)
            && (k == 0 || !trees[k - 1].is_punct("."))
            && trees
                .get(k + 1)
                .and_then(Tree::group)
                .is_some_and(|g| g.delim == '[')
        {
            let idx = trees.get(k + 1).and_then(Tree::group).expect("checked");
            let arithmetic = idx
                .trees
                .iter()
                .any(|t| t.is_punct("+") || t.is_punct("-") || t.is_punct("*"));
            let what = if arithmetic {
                format!("unchecked arithmetic in index of `{name}[..]`")
            } else {
                format!("unguarded indexing of `{name}[..]`")
            };
            out.push((tok.line, what));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile};

    const AUDITED: &[&str] = &["llm265-bitstream"];

    fn ws(src: &str) -> Workspace {
        let manifest = "[package]\nname = \"llm265-bitstream\"\n\n[lints]\nworkspace = true\n";
        let file = SourceFile::from_contents("crates/bitstream/src/lib.rs", src);
        Workspace {
            crates: vec![CrateSrc::from_parts(
                "llm265-bitstream",
                manifest,
                vec![file],
            )],
        }
    }

    fn check(src: &str) -> Vec<Violation> {
        let w = ws(src);
        let index = w.build_index();
        check_workspace(&w, &index, AUDITED, AUDITED)
    }

    #[test]
    fn cross_function_indexing_reports_the_chain() {
        let v = check(
            "pub fn decode_entry(data: &[u8]) -> u8 { entry_at(data, 1) }\n\
             fn entry_at(data: &[u8], i: usize) -> u8 { data[i + 1] }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("entry_at"), "{}", v[0].message);
        assert!(v[0].message.contains("decode_entry"), "{}", v[0].message);
        assert!(v[0].message.contains("arithmetic"), "{}", v[0].message);
        assert_eq!(v[0].chain, vec!["decode_entry", "entry_at"]);
    }

    #[test]
    fn checked_helper_and_non_reachable_code_stay_quiet() {
        let v = check(
            "pub fn decode_entry(data: &[u8]) -> u8 { entry_at(data, 1) }\n\
             fn entry_at(data: &[u8], i: usize) -> u8 { data.get(i + 1).copied().unwrap_or(0) }\n\
             fn orphan(data: &[u8]) -> u8 { data[0] }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn root_body_sites_are_left_to_local_passes() {
        // Indexing directly in the pub decode fn is panic-freedom's
        // finding, not this pass's.
        let v = check("pub fn decode_direct(data: &[u8]) -> u8 { data[0] }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unaudited_crates_report_unwrap_with_chain() {
        let bs_manifest = "[package]\nname = \"llm265-bitstream\"\n\n[lints]\nworkspace = true\n";
        let model_manifest = "[package]\nname = \"llm265-model\"\n\n[lints]\nworkspace = true\n";
        let bs = SourceFile::from_contents(
            "crates/bitstream/src/lib.rs",
            "pub fn decode_x(data: &[u8]) -> u8 { helper_x(data) }\n",
        );
        let model = SourceFile::from_contents(
            "crates/model/src/lib.rs",
            "pub fn helper_x(data: &[u8]) -> u8 { data.first().copied().unwrap() }\n",
        );
        let w = Workspace {
            crates: vec![
                CrateSrc::from_parts("llm265-bitstream", bs_manifest, vec![bs]),
                CrateSrc::from_parts("llm265-model", model_manifest, vec![model]),
            ],
        };
        let index = w.build_index();
        let v = check_workspace(&w, &index, AUDITED, AUDITED);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("unwrap"), "{}", v[0].message);
        assert_eq!(v[0].chain, vec!["decode_x", "helper_x"]);
    }
}
