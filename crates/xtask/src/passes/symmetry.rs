//! Encoder/decoder symmetry check (AST-engine visitor).
//!
//! A bitstream format is a contract between its writer and its reader:
//! every syntax element that is written must be read, and vice versa, or
//! the streams silently desynchronize. This pass extracts syntax-op
//! function names from the encode and decode sides of a domain, strips the
//! directional prefix (`write_`/`encode_`/`code_` vs
//! `read_`/`decode_`/`parse_`) and requires the remaining *stems* to match
//! one-to-one: a written-never-read stem (or the reverse) fails the lint.

use crate::report::Violation;
use crate::source::SourceFile;

/// One writer/reader pairing domain.
pub struct Domain {
    /// Display name used in messages.
    pub name: &'static str,
    /// Path suffixes of the files in the domain (e.g. `videocodec/src/encoder.rs`).
    pub files: &'static [&'static str],
    /// Prefixes marking the writing side.
    pub writer_prefixes: &'static [&'static str],
    /// Prefixes marking the reading side.
    pub reader_prefixes: &'static [&'static str],
    /// Stems excused from pairing (asymmetric by design, with a reason).
    pub exempt: &'static [&'static str],
}

/// The workspace's pairing domains.
pub const DOMAINS: &[Domain] = &[
    Domain {
        name: "video bitstream syntax",
        files: &[
            "bitstream/src/bits.rs",
            "bitstream/src/bytes.rs",
            "bitstream/src/cabac.rs",
            "videocodec/src/encoder.rs",
            "videocodec/src/decoder.rs",
            "videocodec/src/syntax.rs",
        ],
        writer_prefixes: &["write_", "encode_", "code_"],
        reader_prefixes: &["read_", "decode_", "parse_"],
        exempt: &[],
    },
    Domain {
        name: "tensor stream framing",
        files: &["core/src/codec.rs", "core/src/archive.rs"],
        writer_prefixes: &["write_", "encode_", "code_"],
        reader_prefixes: &["read_", "decode_", "parse_"],
        // `encode_at_qp` wraps the whole per-QP encode (read side is the
        // bare `decode_tensor`); `decode_tensor`'s write side is the
        // `TensorCodec::encode` trait method, which carries no prefix.
        exempt: &["at_qp", "tensor"],
    },
];

/// A stem occurrence: which file/line defined it.
#[derive(Debug, Clone)]
struct Occurrence {
    path: String,
    line: usize,
    full_name: String,
}

/// Checks one domain against the files present in `files`.
pub fn check_domain(domain: &Domain, files: &[&SourceFile]) -> Vec<Violation> {
    let mut writers: Vec<(String, Occurrence)> = Vec::new();
    let mut readers: Vec<(String, Occurrence)> = Vec::new();
    for file in files {
        if !domain
            .files
            .iter()
            .any(|suffix| file.path.ends_with(suffix))
        {
            continue;
        }
        for f in &file.items.fns {
            let occ = Occurrence {
                path: file.path.clone(),
                line: f.line + 1,
                full_name: f.name.clone(),
            };
            // Reader prefixes first: `decode_x` must not be read as the
            // writer `code_x` with stem `x`... it cannot be ("decode_"
            // does not start with "code_"), but longest-match keeps this
            // robust if prefixes ever overlap.
            if let Some(stem) = strip_any(&f.name, domain.reader_prefixes) {
                readers.push((stem, occ));
            } else if let Some(stem) = strip_any(&f.name, domain.writer_prefixes) {
                writers.push((stem, occ));
            }
        }
    }

    let mut out = Vec::new();
    for (stem, occ) in &writers {
        if domain.exempt.contains(&stem.as_str()) {
            continue;
        }
        if !readers.iter().any(|(r, _)| r == stem) {
            out.push(Violation::new(
                "symmetry",
                &occ.path,
                occ.line,
                format!(
                    "`{}` writes syntax element `{stem}` but no reader ({}*) exists in domain '{}'",
                    occ.full_name,
                    domain.reader_prefixes.join("*/"),
                    domain.name
                ),
            ));
        }
    }
    for (stem, occ) in &readers {
        if domain.exempt.contains(&stem.as_str()) {
            continue;
        }
        if !writers.iter().any(|(w, _)| w == stem) {
            out.push(Violation::new(
                "symmetry",
                &occ.path,
                occ.line,
                format!(
                    "`{}` reads syntax element `{stem}` but no writer ({}*) exists in domain '{}'",
                    occ.full_name,
                    domain.writer_prefixes.join("*/"),
                    domain.name
                ),
            ));
        }
    }
    out
}

fn strip_any(name: &str, prefixes: &[&str]) -> Option<String> {
    let mut best: Option<&str> = None;
    for p in prefixes {
        if let Some(stem) = name.strip_prefix(p) {
            if !stem.is_empty() && best.is_none_or(|b| stem.len() < b.len()) {
                best = Some(stem);
            }
        }
    }
    best.map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    const TEST_DOMAIN: Domain = Domain {
        name: "test",
        files: &["enc.rs", "dec.rs"],
        writer_prefixes: &["write_", "encode_", "code_"],
        reader_prefixes: &["read_", "decode_", "parse_"],
        exempt: &["excused"],
    };

    fn enc(src: &str) -> SourceFile {
        SourceFile::from_contents("crates/x/src/enc.rs", src)
    }
    fn dec(src: &str) -> SourceFile {
        SourceFile::from_contents("crates/x/src/dec.rs", src)
    }

    #[test]
    fn matched_pairs_are_quiet() {
        let e = enc("fn write_header() {}\nfn code_block() {}\nfn encode_frame() {}\n");
        let d = dec("fn read_header() {}\nfn parse_block() {}\nfn decode_frame() {}\n");
        assert!(check_domain(&TEST_DOMAIN, &[&e, &d]).is_empty());
    }

    #[test]
    fn written_never_read_fails() {
        let e = enc("fn write_header() {}\nfn write_footer() {}\n");
        let d = dec("fn read_header() {}\n");
        let v = check_domain(&TEST_DOMAIN, &[&e, &d]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("footer"));
        assert!(v[0].message.contains("no reader"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn read_never_written_fails() {
        let e = enc("fn write_header() {}\n");
        let d = dec("fn read_header() {}\nfn parse_ghost() {}\n");
        let v = check_domain(&TEST_DOMAIN, &[&e, &d]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("ghost"));
        assert!(v[0].message.contains("no writer"));
    }

    #[test]
    fn exempt_stems_and_unprefixed_functions_are_ignored() {
        let e = enc("fn encode_excused() {}\nfn quantize_block() {}\nfn helper() {}\n");
        let d = dec("fn parse_excused() {}\nfn validate() {}\n");
        // `encode_excused` alone would fail both directions without the
        // exemption; unprefixed helpers never participate.
        let v = check_domain(&TEST_DOMAIN, &[&e]);
        assert!(v.is_empty(), "{v:?}");
        let v = check_domain(&TEST_DOMAIN, &[&e, &d]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn files_outside_the_domain_are_ignored() {
        let other = SourceFile::from_contents("crates/x/src/other.rs", "fn write_orphan() {}\n");
        assert!(check_domain(&TEST_DOMAIN, &[&other]).is_empty());
    }

    #[test]
    fn test_code_does_not_participate() {
        let e = enc("fn write_real() {}\n#[cfg(test)]\nmod tests {\n    fn write_fake() {}\n}\n");
        let d = dec("fn read_real() {}\n");
        assert!(check_domain(&TEST_DOMAIN, &[&e, &d]).is_empty());
    }
}
