//! In-repo static-analysis gate for the LLM.265 workspace.
//!
//! Run as `cargo run -p xtask -- lint` (add `--format json` for a
//! machine-readable report, `--write-baseline` to regenerate the ratchet
//! file). The gate is an AST analysis engine, not a line-regex scanner:
//! every file is lexed into token trees and parsed into items exactly once
//! ([`source::SourceFile`]), the items are merged into a workspace-wide
//! call-graph index ([`ast::index::Index`]), and ten passes run as
//! visitors over that shared result:
//!
//! 1. **panic-freedom** ([`passes::panic_free`]) — denies
//!    `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
//!    and unguarded input indexing in the decode/encode hot-path crates;
//! 2. **symmetry** ([`passes::symmetry`]) — pairs bitstream syntax writers
//!    (`write_*`/`encode_*`/`code_*`) with readers
//!    (`read_*`/`decode_*`/`parse_*`) and fails on unpaired elements;
//! 3. **float-cmp** ([`passes::float_cmp`]) — bans exact `==`/`!=` against
//!    float literals in codec math (use `stats::approx_eq`);
//! 4. **hygiene** ([`passes::hygiene`]) — every crate forbids unsafe code,
//!    carries crate docs, and opts into `[workspace.lints]`;
//! 5. **cast-safety** ([`passes::cast_safety`]) — flags narrowing or
//!    sign-changing `as` casts in bitstream-adjacent crates unless the
//!    operand provably fits (literals, masks, clamps, index-resolved
//!    types);
//! 6. **determinism** ([`passes::determinism`]) — bans randomized-order
//!    collections, wall clocks, and thread-count-dependent reductions in
//!    the call graphs of `encode*`/`decode*`/`quantize*` functions;
//! 7. **error-discipline** ([`passes::error_discipline`]) — dropped
//!    `Result`s, discarded `#[must_use]` values, and panics in unaudited
//!    crates reachable from decode paths (with the call chain);
//! 8. **wire-taint** ([`passes::wire_taint`]) — interprocedural dataflow
//!    over the [`dataflow`] engine: values read from the wire must pass a
//!    sanitizer before sizing an allocation, bounding a loop, or indexing
//!    a slice, with a source → sink witness chain in every finding;
//! 9. **panic-reach** ([`passes::panic_reach`]) — the transitive closure
//!    of panicking constructs reachable from public decode APIs, with the
//!    full root → site call chain;
//! 10. **range-proof** ([`passes::range_proof`]) — an interval abstract
//!     domain over the [`dataflow`] engine: per-variable `[lo, hi]`
//!     bounds with widening at loop heads and narrowing on guards, flags
//!     arithmetic whose proven result interval escapes the destination
//!     type, seeded by the contract table `crates/xtask/ranges.toml`.
//!
//! Escape hatches are per-site comments with a reason:
//! `// lint:allow(panic|float-cmp|cast|determinism|error|taint|range): <why>`.
//! Comments, strings, and `#[cfg(test)]` items are stripped by the engine
//! before any pass runs, so findings can never fire on prose or test code.
//! Pre-existing findings live in `crates/xtask/baseline.toml`
//! ([`baseline::Baseline`]); the counts there may only decrease.

#![forbid(unsafe_code)]

pub mod ast;
pub mod baseline;
pub mod dataflow;
pub mod passes {
    pub mod cast_safety;
    pub mod determinism;
    pub mod error_discipline;
    pub mod float_cmp;
    pub mod hygiene;
    pub mod panic_free;
    pub mod panic_reach;
    pub mod range_proof;
    pub mod symmetry;
    pub mod wire_taint;
}
pub mod report;
pub mod source;

use std::path::Path;

use report::Report;
use source::Workspace;

/// Crates whose decode/encode paths must be panic-free.
pub const PANIC_FREE_CRATES: &[&str] = &["llm265-bitstream", "llm265-videocodec", "llm265-core"];

/// Crates whose math is subject to the float-comparison ban.
pub const FLOAT_CMP_CRATES: &[&str] = &[
    "llm265-videocodec",
    "llm265-core",
    "llm265-quant",
    "llm265-tensor",
];

/// Crates whose `as` casts must be proven or converted.
pub const CAST_SAFETY_CRATES: &[&str] = &[
    "llm265-videocodec",
    "llm265-bitstream",
    "llm265-quant",
    "llm265-core",
];

/// Every pass the gate runs, in report order.
pub const PASSES: &[&str] = &[
    "panic-freedom",
    "symmetry",
    "float-cmp",
    "hygiene",
    "cast-safety",
    "determinism",
    "error-discipline",
    "wire-taint",
    "panic-reach",
    "range-proof",
];

/// Runs every pass over the workspace at `root`, then filters the findings
/// through `baseline` when one is given.
///
/// # Errors
///
/// Returns a message when the workspace cannot be loaded.
pub fn run_lint(root: &Path, baseline: Option<&baseline::Baseline>) -> Result<Report, String> {
    let ws = Workspace::load(root)?;
    let contracts = passes::range_proof::load_contracts(root)?;
    let index = ws.build_index();
    passes::range_proof::validate_contracts(&index, &contracts)?;
    let mut report = lint_workspace_indexed(&ws, &index, &contracts);
    if let Some(b) = baseline {
        report.apply_baseline(b);
    }
    Ok(report)
}

/// Runs every pass over an in-memory workspace (fixture-testable) with
/// an empty contract table.
pub fn lint_workspace(ws: &Workspace) -> Report {
    lint_workspace_with(ws, &[])
}

/// [`lint_workspace`] with an explicit `ranges.toml` contract table.
///
/// The workspace is lexed, parsed, and indexed exactly once here; the
/// shared artifacts — the call-graph [`ast::index::Index`], the taint
/// summaries ([`dataflow::summarize`]), and the interval context built
/// inside the range-proof pass — are handed to every pass instead of
/// being recomputed per pass.
pub fn lint_workspace_with(ws: &Workspace, contracts: &[dataflow::interval::Contract]) -> Report {
    let index = ws.build_index();
    lint_workspace_indexed(ws, &index, contracts)
}

/// [`lint_workspace_with`] over a prebuilt index (the CLI validates the
/// contract table against the same index before running the gate).
pub fn lint_workspace_indexed(
    ws: &Workspace,
    index: &ast::index::Index,
    contracts: &[dataflow::interval::Contract],
) -> Report {
    let sums = dataflow::summarize(index);
    let mut report = Report {
        passes_run: PASSES.to_vec(),
        files_scanned: ws.files().count(),
        ..Report::default()
    };

    for name in PANIC_FREE_CRATES {
        if let Some(krate) = ws.get(name) {
            for file in &krate.files {
                report
                    .violations
                    .extend(passes::panic_free::check_file(file));
            }
        }
    }

    let all_files: Vec<&source::SourceFile> = ws.files().collect();
    for domain in passes::symmetry::DOMAINS {
        report
            .violations
            .extend(passes::symmetry::check_domain(domain, &all_files));
    }

    for name in FLOAT_CMP_CRATES {
        if let Some(krate) = ws.get(name) {
            for file in &krate.files {
                report
                    .violations
                    .extend(passes::float_cmp::check_file(file));
            }
        }
    }

    for krate in &ws.crates {
        report
            .violations
            .extend(passes::hygiene::check_crate(krate));
    }

    for name in CAST_SAFETY_CRATES {
        if let Some(krate) = ws.get(name) {
            for file in &krate.files {
                report
                    .violations
                    .extend(passes::cast_safety::check_file(file, index));
            }
        }
    }

    report
        .violations
        .extend(passes::determinism::check_workspace(ws, index));

    report
        .violations
        .extend(passes::error_discipline::check_workspace(
            ws,
            index,
            PANIC_FREE_CRATES,
        ));

    report
        .violations
        .extend(passes::wire_taint::check_workspace(
            ws,
            index,
            &sums,
            PANIC_FREE_CRATES,
        ));

    report
        .violations
        .extend(passes::panic_reach::check_workspace(
            ws,
            index,
            PANIC_FREE_CRATES,
            PANIC_FREE_CRATES,
        ));

    report
        .violations
        .extend(passes::range_proof::check_workspace(
            ws,
            index,
            PANIC_FREE_CRATES,
            contracts,
        ));

    report
        .violations
        .sort_by(|a, b| (a.pass, &a.path, a.line).cmp(&(b.pass, &b.path, b.line)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use source::{CrateSrc, SourceFile};

    fn ws_with(name: &str, path: &str, src: &str) -> Workspace {
        let manifest = format!("[package]\nname = \"{name}\"\n\n[lints]\nworkspace = true\n");
        let lib = SourceFile::from_contents(
            &format!("crates/{name}/src/lib.rs"),
            "//! Docs.\n#![forbid(unsafe_code)]\n",
        );
        let file = SourceFile::from_contents(path, src);
        Workspace {
            crates: vec![CrateSrc::from_parts(name, &manifest, vec![lib, file])],
        }
    }

    #[test]
    fn panic_pass_scoped_to_hot_path_crates() {
        let hot = ws_with(
            "llm265-bitstream",
            "crates/bitstream/src/x.rs",
            "fn f(v: Option<u8>) { v.unwrap(); }\n",
        );
        assert_eq!(lint_workspace(&hot).violations.len(), 1);
        // The same code in a non-hot-path crate does not fire.
        let cold = ws_with(
            "llm265-bench",
            "crates/bench/src/x.rs",
            "fn f(v: Option<u8>) { v.unwrap(); }\n",
        );
        assert!(
            lint_workspace(&cold).is_clean(),
            "{:?}",
            lint_workspace(&cold).violations
        );
    }

    #[test]
    fn symmetry_pass_fires_through_the_full_pipeline() {
        let ws = ws_with(
            "llm265-videocodec",
            "crates/videocodec/src/encoder.rs",
            "pub fn encode_orphan() {}\n",
        );
        let report = lint_workspace(&ws);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].pass, "symmetry");
    }

    #[test]
    fn violations_are_sorted_and_reported() {
        let ws = ws_with(
            "llm265-core",
            "crates/core/src/z.rs",
            "fn f(v: Option<f64>) { v.unwrap(); let x = v.unwrap_or(0.0); let _ = x == 0.5; }\n",
        );
        let report = lint_workspace(&ws);
        let passes: Vec<&str> = report.violations.iter().map(|v| v.pass).collect();
        assert_eq!(passes, vec!["float-cmp", "panic-freedom"]);
        assert!(report.to_json().contains("\"count\": 2"));
    }

    #[test]
    fn cast_and_determinism_passes_fire_through_the_pipeline() {
        let ws = ws_with(
            "llm265-quant",
            "crates/quant/src/q.rs",
            "fn quantize_x(v: i64) -> u8 {\n    let m = HashMap::new();\n    m.len();\n    v as u8\n}\n",
        );
        let report = lint_workspace(&ws);
        let passes: Vec<&str> = report.violations.iter().map(|v| v.pass).collect();
        assert_eq!(
            passes,
            vec!["cast-safety", "determinism"],
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn baseline_filters_known_findings() {
        let ws = ws_with(
            "llm265-quant",
            "crates/quant/src/q.rs",
            "fn f(v: i64) -> u8 { v as u8 }\n",
        );
        let mut report = lint_workspace(&ws);
        assert_eq!(report.violations.len(), 1);
        let b = baseline::Baseline::from_violations(&report.violations);
        report.apply_baseline(&b);
        assert!(report.is_clean());
        assert_eq!(report.baselined.len(), 1);
    }
}
