//! `cargo run -p xtask -- lint [--format text|json] [--root PATH]
//! [--baseline PATH] [--no-baseline] [--write-baseline]`

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::baseline::Baseline;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut format = "text".to_string();
    let mut root = default_root();
    let mut baseline_path: Option<PathBuf> = None;
    let mut use_baseline = true;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "lint" => cmd = Some("lint"),
            "--format" => {
                let Some(v) = it.next() else {
                    eprintln!("--format needs a value (text|json)");
                    return ExitCode::from(2);
                };
                format = v.clone();
            }
            "--root" => {
                let Some(v) = it.next() else {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--baseline" => {
                let Some(v) = it.next() else {
                    eprintln!("--baseline needs a path");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(v));
            }
            "--no-baseline" => use_baseline = false,
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                print_help();
                return ExitCode::from(2);
            }
        }
    }
    if cmd != Some("lint") {
        print_help();
        return ExitCode::from(2);
    }

    let baseline_path =
        baseline_path.unwrap_or_else(|| root.join("crates").join("xtask").join("baseline.toml"));

    // Regeneration mode: run all passes raw and overwrite the ratchet file.
    if write_baseline {
        return match xtask::run_lint(&root, None) {
            Ok(report) => {
                let b = Baseline::from_violations(&report.violations);
                match std::fs::write(&baseline_path, b.to_toml()) {
                    Ok(()) => {
                        println!(
                            "wrote {} ({} finding(s) across {} pass(es))",
                            baseline_path.display(),
                            report.violations.len(),
                            b.counts.len()
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("write {}: {e}", baseline_path.display());
                        ExitCode::from(2)
                    }
                }
            }
            Err(e) => {
                eprintln!("xtask lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    // Gate mode: a missing baseline file is an empty baseline (everything
    // is new); an unparsable one is a hard error.
    let baseline = if use_baseline {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("xtask lint: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) => None,
        }
    } else {
        None
    };

    match xtask::run_lint(&root, baseline.as_ref()) {
        Ok(report) => {
            match format.as_str() {
                "json" => println!("{}", report.to_json()),
                _ => print!("{}", report.to_text()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory.
fn default_root() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .ok()
        .and_then(|d| PathBuf::from(d).parent()?.parent().map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn print_help() {
    println!(
        "xtask — workspace static-analysis gate\n\n\
         USAGE: cargo run -p xtask -- lint [OPTIONS]\n\n\
         OPTIONS:\n\
         \x20 --format text|json   report format (default text)\n\
         \x20 --root PATH          workspace root (default: auto-detected)\n\
         \x20 --baseline PATH      ratchet file (default: crates/xtask/baseline.toml)\n\
         \x20 --no-baseline        report every finding as failing\n\
         \x20 --write-baseline     regenerate the ratchet file from current findings\n\n\
         Passes: panic-freedom, symmetry, float-cmp, hygiene, cast-safety,\n\
         determinism, error-discipline (see crates/xtask/src/lib.rs)"
    );
}
