//! `cargo run -p xtask -- lint [--format text|json] [--root PATH]`

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut format = "text".to_string();
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "lint" => cmd = Some("lint"),
            "--format" => {
                let Some(v) = it.next() else {
                    eprintln!("--format needs a value (text|json)");
                    return ExitCode::from(2);
                };
                format = v.clone();
            }
            "--root" => {
                let Some(v) = it.next() else {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                print_help();
                return ExitCode::from(2);
            }
        }
    }
    if cmd != Some("lint") {
        print_help();
        return ExitCode::from(2);
    }

    match xtask::run_lint(&root) {
        Ok(report) => {
            match format.as_str() {
                "json" => println!("{}", report.to_json()),
                _ => print!("{}", report.to_text()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory.
fn default_root() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .ok()
        .and_then(|d| PathBuf::from(d).parent()?.parent().map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn print_help() {
    println!(
        "xtask — workspace static-analysis gate\n\n\
         USAGE: cargo run -p xtask -- lint [--format text|json] [--root PATH]\n\n\
         Passes: panic-freedom, symmetry, float-cmp, hygiene (see crates/xtask/src/lib.rs)"
    );
}
