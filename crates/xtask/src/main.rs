//! `cargo run -p xtask -- lint [--format text|json] [--root PATH]
//! [--baseline PATH] [--no-baseline] [--write-baseline] [--pass NAME]
//! [--explain FINDING-ID] [--sweep] [--sarif PATH]`

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::baseline::Baseline;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut format = "text".to_string();
    let mut root = default_root();
    let mut baseline_path: Option<PathBuf> = None;
    let mut use_baseline = true;
    let mut write_baseline = false;
    let mut only_pass: Option<String> = None;
    let mut explain: Option<String> = None;
    let mut sweep = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "lint" => cmd = Some("lint"),
            "--format" => {
                let Some(v) = it.next() else {
                    eprintln!("--format needs a value (text|json)");
                    return ExitCode::from(2);
                };
                format = v.clone();
            }
            "--root" => {
                let Some(v) = it.next() else {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--baseline" => {
                let Some(v) = it.next() else {
                    eprintln!("--baseline needs a path");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(v));
            }
            "--no-baseline" => use_baseline = false,
            "--write-baseline" => write_baseline = true,
            "--pass" => {
                let Some(v) = it.next() else {
                    eprintln!("--pass needs a pass name ({})", xtask::PASSES.join(", "));
                    return ExitCode::from(2);
                };
                if !xtask::PASSES.contains(&v.as_str()) {
                    eprintln!(
                        "unknown pass `{v}`; available: {}",
                        xtask::PASSES.join(", ")
                    );
                    return ExitCode::from(2);
                }
                only_pass = Some(v.clone());
            }
            "--explain" => {
                let Some(v) = it.next() else {
                    eprintln!("--explain needs a finding id (pass@path:line)");
                    return ExitCode::from(2);
                };
                explain = Some(v.clone());
            }
            "--sweep" => sweep = true,
            "--sarif" => {
                let Some(v) = it.next() else {
                    eprintln!("--sarif needs an output path");
                    return ExitCode::from(2);
                };
                sarif_path = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                print_help();
                return ExitCode::from(2);
            }
        }
    }
    if cmd != Some("lint") {
        print_help();
        return ExitCode::from(2);
    }

    // Report-only panic-reach sweep over the non-hot-path crates: debt
    // inventory, never a gate failure.
    if sweep {
        return run_sweep(&root);
    }

    if let Some(id) = explain {
        return run_explain(&root, &id);
    }

    let baseline_path =
        baseline_path.unwrap_or_else(|| root.join("crates").join("xtask").join("baseline.toml"));

    // Regeneration mode: run all passes raw and overwrite the ratchet file.
    if write_baseline {
        return match xtask::run_lint(&root, None) {
            Ok(report) => {
                let b = Baseline::from_violations(&report.violations);
                match std::fs::write(&baseline_path, b.to_toml()) {
                    Ok(()) => {
                        println!(
                            "wrote {} ({} finding(s) across {} pass(es))",
                            baseline_path.display(),
                            report.violations.len(),
                            b.counts.len()
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("write {}: {e}", baseline_path.display());
                        ExitCode::from(2)
                    }
                }
            }
            Err(e) => {
                eprintln!("xtask lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    // Gate mode: a missing baseline file is an empty baseline (everything
    // is new); an unparsable one is a hard error.
    let baseline = if use_baseline {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("xtask lint: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) => None,
        }
    } else {
        None
    };

    match xtask::run_lint(&root, baseline.as_ref()) {
        Ok(mut report) => {
            if let Some(pass) = &only_pass {
                report.violations.retain(|v| v.pass == pass.as_str());
                report.baselined.retain(|v| v.pass == pass.as_str());
                report.passes_run.retain(|p| *p == pass.as_str());
            }
            if let Some(path) = &sarif_path {
                if let Err(e) = std::fs::write(path, report.to_sarif()) {
                    eprintln!("write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            match format.as_str() {
                "json" => println!("{}", report.to_json()),
                _ => print!("{}", report.to_text()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// `--explain pass@path:line`: re-runs the gate without a baseline and
/// prints the matching finding in full, witness chain included.
fn run_explain(root: &std::path::Path, id: &str) -> ExitCode {
    let report = match xtask::run_lint(root, None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(v) = report.violations.iter().find(|v| v.id() == id) else {
        eprintln!(
            "no finding with id `{id}` (ids look like `wire-taint@crates/bitstream/src/lz4.rs:42`; \
             run `lint --no-baseline --format json` to list current ids)"
        );
        return ExitCode::from(2);
    };
    println!("finding {id}");
    println!("  pass:     {}", v.pass);
    println!("  location: {}:{}", v.path, v.line);
    println!("  message:  {}", v.message);
    if !v.chain.is_empty() {
        println!("  witness chain:");
        for (i, hop) in v.chain.iter().enumerate() {
            println!("    {}{hop}", "  ".repeat(i));
        }
    }
    let allow = match v.pass {
        "wire-taint" => "taint",
        "panic-reach" | "panic-freedom" => "panic",
        "float-cmp" => "float-cmp",
        "cast-safety" => "cast",
        "determinism" => "determinism",
        "error-discipline" => "error",
        "range-proof" => "range",
        _ => "",
    };
    if !allow.is_empty() {
        println!("  suppress (with a reason): // lint:allow({allow}): <why>");
    }
    ExitCode::SUCCESS
}

/// `--sweep`: report-only panic-reachability over the crates outside the
/// panic-free audit (model, bench). Always exits 0; the output is a debt
/// inventory for ROADMAP.md, not a gate.
fn run_sweep(root: &std::path::Path) -> ExitCode {
    const SWEEP_CRATES: &[&str] = &["llm265-model", "llm265-bench"];
    let ws = match xtask::source::Workspace::load(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xtask lint --sweep: {e}");
            return ExitCode::from(2);
        }
    };
    let index = ws.build_index();
    // The sweep walks from *every* public API: model/bench expose no
    // decode-shaped functions, so the gate's root policy would make the
    // inventory vacuously empty.
    let findings = xtask::passes::panic_reach::check_workspace_with_policy(
        &ws,
        &index,
        SWEEP_CRATES,
        xtask::PANIC_FREE_CRATES,
        xtask::passes::panic_reach::RootPolicy::AllPublicApis,
    );
    for v in &findings {
        println!("{}:{}: [sweep] {}", v.path, v.line, v.message);
    }
    println!(
        "sweep: {} panic-reach finding(s) across {} (report-only)",
        findings.len(),
        SWEEP_CRATES.join(", ")
    );
    ExitCode::SUCCESS
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory.
fn default_root() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .ok()
        .and_then(|d| PathBuf::from(d).parent()?.parent().map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn print_help() {
    println!(
        "xtask — workspace static-analysis gate\n\n\
         USAGE: cargo run -p xtask -- lint [OPTIONS]\n\n\
         OPTIONS:\n\
         \x20 --format text|json   report format (default text)\n\
         \x20 --root PATH          workspace root (default: auto-detected)\n\
         \x20 --baseline PATH      ratchet file (default: crates/xtask/baseline.toml)\n\
         \x20 --no-baseline        report every finding as failing\n\
         \x20 --write-baseline     regenerate the ratchet file from current findings\n\
         \x20 --pass NAME          run the gate but report one pass only\n\
         \x20 --explain ID         explain one finding (ID = pass@path:line)\n\
         \x20 --sweep              report-only panic-reach sweep of model/bench\n\
         \x20 --sarif PATH         also write the gate report as SARIF 2.1.0\n\n\
         Passes: panic-freedom, symmetry, float-cmp, hygiene, cast-safety,\n\
         determinism, error-discipline, wire-taint, panic-reach, range-proof\n\
         (see crates/xtask/src/lib.rs)"
    );
}
