//! Interval abstract domain for the `range-proof` pass.
//!
//! Every tracked value is a `[lo, hi]` pair over `i128` (wide enough to
//! hold any 64-bit intermediate exactly). The evaluator walks function
//! bodies statement by statement, narrows on guard edges (comparisons,
//! `assert!`, `.min`/`.clamp`, `try_from`, masks), widens at loop heads
//! against a threshold set harvested from the loop's own literals, and
//! memoizes per-function param→return transfer functions so call chains
//! carry intervals across crate boundaries. Entry ranges come from the
//! checked contract table `crates/xtask/ranges.toml`.
//!
//! `add`/`sub`/`mul`/… are interval transfer functions, not operator
//! overloads — implementing `std::ops` would promise algebraic laws
//! (associativity with `Top`, etc.) the domain deliberately does not
//! honor.
#![allow(clippy::should_implement_trait)]

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use super::{find_block, pattern_names, split_args, stmt_end, MAX_CANDIDATES, SOURCE_METHODS};
use crate::ast::index::Index;
use crate::ast::int_width;
use crate::ast::lex::{lex, Kind};
use crate::ast::tree::{build, Group, Tree};

/// An interval over `i128`: either unknown or a closed `[lo, hi]` range.
///
/// `Top` means "no information"; there is no explicit bottom — dead paths
/// simply keep whatever range they had.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ival {
    /// Unknown value.
    Top,
    /// All values in `lo..=hi`.
    Range(i128, i128),
}

impl Ival {
    /// A single known value.
    #[must_use]
    pub fn lit(v: i128) -> Self {
        Ival::Range(v, v)
    }

    /// A range, degraded to `Top` if the bounds are inverted.
    #[must_use]
    pub fn new(lo: i128, hi: i128) -> Self {
        if lo <= hi {
            Ival::Range(lo, hi)
        } else {
            Ival::Top
        }
    }

    /// The bounds, when known.
    #[must_use]
    pub fn bounds(self) -> Option<(i128, i128)> {
        match self {
            Ival::Top => None,
            Ival::Range(lo, hi) => Some((lo, hi)),
        }
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(self, other: Ival) -> Ival {
        match (self, other) {
            (Ival::Range(a, b), Ival::Range(c, d)) => Ival::Range(a.min(c), b.max(d)),
            _ => Ival::Top,
        }
    }

    /// Greatest lower bound; an empty intersection (dead path) keeps `self`.
    #[must_use]
    pub fn meet(self, other: Ival) -> Ival {
        match (self, other) {
            (Ival::Range(a, b), Ival::Range(c, d)) => {
                let (lo, hi) = (a.max(c), b.min(d));
                if lo <= hi {
                    Ival::Range(lo, hi)
                } else {
                    self
                }
            }
            (Ival::Top, o) => o,
            (s, Ival::Top) => s,
        }
    }

    /// Whether this range lies within `[lo, hi]`.
    #[must_use]
    pub fn within(self, lo: i128, hi: i128) -> bool {
        matches!(self, Ival::Range(a, b) if a >= lo && b <= hi)
    }

    /// Whether this range covers all of `[lo, hi]` (the "no knowledge"
    /// marker: a value spanning its whole type carries no information).
    #[must_use]
    pub fn covers(self, lo: i128, hi: i128) -> bool {
        match self {
            Ival::Top => true,
            Ival::Range(a, b) => a <= lo && b >= hi,
        }
    }

    fn lift2(self, other: Ival, f: impl Fn(i128, i128) -> Option<i128>) -> Ival {
        let (Some((a, b)), Some((c, d))) = (self.bounds(), other.bounds()) else {
            return Ival::Top;
        };
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for &x in &[a, b] {
            for &y in &[c, d] {
                let Some(v) = f(x, y) else { return Ival::Top };
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        Ival::Range(lo, hi)
    }

    /// Endpoint-exact addition (overflow of the i128 bound itself → Top).
    #[must_use]
    pub fn add(self, o: Ival) -> Ival {
        self.lift2(o, i128::checked_add)
    }

    /// Endpoint-exact subtraction.
    #[must_use]
    pub fn sub(self, o: Ival) -> Ival {
        self.lift2(o, i128::checked_sub)
    }

    /// Endpoint-product multiplication.
    #[must_use]
    pub fn mul(self, o: Ival) -> Ival {
        self.lift2(o, i128::checked_mul)
    }

    /// Negation.
    #[must_use]
    pub fn neg(self) -> Ival {
        match self {
            Ival::Top => Ival::Top,
            Ival::Range(a, b) => match (a.checked_neg(), b.checked_neg()) {
                (Some(na), Some(nb)) => Ival::Range(nb, na),
                _ => Ival::Top,
            },
        }
    }

    /// Left shift; `Top` unless the amount is known and in `0..=126`.
    #[must_use]
    pub fn shl(self, amt: Ival) -> Ival {
        let Some((c, d)) = amt.bounds() else {
            return Ival::Top;
        };
        if c < 0 || d > 126 {
            return Ival::Top;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        self.lift2(amt, |x, y| x.checked_shl(y as u32))
    }

    /// Arithmetic right shift; `Top` unless the amount is known in range.
    #[must_use]
    pub fn shr(self, amt: Ival) -> Ival {
        let Some((c, d)) = amt.bounds() else {
            return Ival::Top;
        };
        if c < 0 || d > 126 {
            return Ival::Top;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        self.lift2(amt, |x, y| x.checked_shr(y as u32))
    }

    /// Bitwise AND: bounded by the smaller non-negative operand.
    #[must_use]
    pub fn and(self, o: Ival) -> Ival {
        match (self.bounds(), o.bounds()) {
            (Some((a, _)), Some((c, d))) if a >= 0 && c >= 0 => {
                let hi = match self.bounds() {
                    Some((_, b)) => b.min(d),
                    None => d,
                };
                Ival::Range(0, hi)
            }
            // A non-negative mask bounds the result even if the value side
            // may be negative (two's-complement AND with 0..=m stays 0..=m).
            (_, Some((c, d))) if c >= 0 => Ival::Range(0, d),
            (Some((a, b)), _) if a >= 0 => Ival::Range(0, b),
            _ => Ival::Top,
        }
    }

    /// Bitwise OR: for non-negative operands, bounded by the next
    /// all-ones value at or above both highs.
    #[must_use]
    pub fn or(self, o: Ival) -> Ival {
        match (self.bounds(), o.bounds()) {
            (Some((a, b)), Some((c, d))) if a >= 0 && c >= 0 => {
                Ival::Range(a.max(c), ones_above(b | d))
            }
            _ => Ival::Top,
        }
    }

    /// Bitwise XOR: same all-ones bound as OR, but the low drops to 0.
    #[must_use]
    pub fn xor(self, o: Ival) -> Ival {
        match (self.bounds(), o.bounds()) {
            (Some((a, b)), Some((c, d))) if a >= 0 && c >= 0 => Ival::Range(0, ones_above(b | d)),
            _ => Ival::Top,
        }
    }

    /// Remainder: bounded by the divisor when the divisor is positive.
    #[must_use]
    pub fn rem(self, o: Ival) -> Ival {
        let Some((c, d)) = o.bounds() else {
            return Ival::Top;
        };
        if c <= 0 {
            return Ival::Top;
        }
        match self.bounds() {
            Some((a, b)) if a >= 0 => Ival::Range(0, b.min(d - 1)),
            _ => Ival::Range(1 - d, d - 1),
        }
    }

    /// Division: endpoint combinations when the divisor excludes zero.
    #[must_use]
    pub fn div(self, o: Ival) -> Ival {
        let Some((c, _)) = o.bounds() else {
            return Ival::Top;
        };
        if c <= 0 {
            return Ival::Top;
        }
        self.lift2(o, i128::checked_div)
    }

    /// Elementwise minimum (used for `.min(..)` modeling).
    #[must_use]
    pub fn min_iv(self, o: Ival) -> Ival {
        match (self.bounds(), o.bounds()) {
            (Some((a, b)), Some((c, d))) => Ival::Range(a.min(c), b.min(d)),
            (None, Some((_, d))) => Ival::Range(i128::MIN, d),
            (Some((_, b)), None) => Ival::Range(i128::MIN, b),
            (None, None) => Ival::Top,
        }
    }

    /// Elementwise maximum (used for `.max(..)` modeling).
    #[must_use]
    pub fn max_iv(self, o: Ival) -> Ival {
        match (self.bounds(), o.bounds()) {
            (Some((a, b)), Some((c, d))) => Ival::Range(a.max(c), b.max(d)),
            (None, Some((c, _))) => Ival::Range(c, i128::MAX),
            (Some((a, _)), None) => Ival::Range(a, i128::MAX),
            (None, None) => Ival::Top,
        }
    }
}

/// The smallest all-ones value (2^k − 1) at or above `v` (`v >= 0`).
fn ones_above(v: i128) -> i128 {
    let mut m: i128 = 0;
    while m < v && m < i128::MAX / 2 {
        m = m * 2 + 1;
    }
    m
}

impl fmt::Display for Ival {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ival::Top => write!(f, "unbounded"),
            Ival::Range(lo, hi) => write!(f, "[{}, {}]", fmt_bound(*lo), fmt_bound(*hi)),
        }
    }
}

/// Whether an operand interval carries real knowledge relative to a
/// type: it must not cover the type's full range, and must span less
/// than half of it. A "bound" that still admits most of the type (a
/// `usize` known only to be below `len`, an `i32` known only to be
/// non-negative) is noise, not knowledge — flagging arithmetic on such
/// operands would report nearly every `+ 1` in the workspace.
fn informative(iv: Ival, own_ty: Option<&str>, fallback: &str) -> bool {
    let Some((lo, hi)) = iv.bounds() else {
        return false;
    };
    let ty = own_ty.filter(|t| *t != "!err").unwrap_or(fallback);
    let Some((tl, th)) = type_range(ty) else {
        return true;
    };
    if lo <= tl && hi >= th {
        return false;
    }
    hi.saturating_sub(lo) < th.saturating_sub(tl) / 2
}

/// Renders a bound, switching to hex for large magnitudes.
fn fmt_bound(v: i128) -> String {
    if v > 0xFFFF {
        format!("{v:#x}")
    } else if v < -0xFFFF {
        format!("-{:#x}", v.unsigned_abs())
    } else {
        format!("{v}")
    }
}

/// The representable range of an integer type (128-bit types excluded:
/// their bounds do not fit the `i128` domain, so they are never flagged).
#[must_use]
pub fn type_range(ty: &str) -> Option<(i128, i128)> {
    let (bits, signed) = int_width(strip_refs(ty))?;
    if bits >= 128 {
        return None;
    }
    Some(if signed {
        (-(1i128 << (bits - 1)), (1i128 << (bits - 1)) - 1)
    } else {
        (0, (1i128 << bits) - 1)
    })
}

/// Strips reference sigils and `mut` from a compact type string.
#[must_use]
pub fn strip_refs(ty: &str) -> &str {
    let mut t = ty.trim();
    loop {
        let next = t
            .strip_prefix('&')
            .or_else(|| t.strip_prefix("mut "))
            .or_else(|| t.strip_prefix("mut"))
            .map(str::trim_start);
        match next {
            Some(n) if n != t => t = n,
            _ => return t,
        }
    }
}

/// Parses an integer literal token (`300`, `0xFF`, `1_000u64`) into its
/// value and optional type-suffix.
#[must_use]
pub fn parse_int(text: &str) -> Option<(i128, Option<&'static str>)> {
    const SUFFIXES: &[&str] = &[
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ];
    let mut body = text;
    let mut suffix = None;
    for &s in SUFFIXES {
        if let Some(rest) = body.strip_suffix(s) {
            if !rest.is_empty() {
                body = rest;
                suffix = Some(s);
                break;
            }
        }
    }
    let clean: String = body.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(h) = clean.strip_prefix("0x").or(clean.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(o) = clean.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = clean.strip_prefix("0b") {
        (b, 2)
    } else {
        (clean.as_str(), 10)
    };
    i128::from_str_radix(digits, radix)
        .ok()
        .map(|v| (v, suffix))
}

/// Lexes and tree-builds a detached snippet (used for type-string parsing).
fn trees_of(s: &str) -> Vec<Tree> {
    build(&lex(s))
}

/// Array length and element type from a type string like `[i32;3*32+1]`.
fn array_ty_parts(ty: &str, consts: &BTreeMap<String, i128>) -> Option<(i128, Option<String>)> {
    let t = strip_refs(ty);
    let inner = t.strip_prefix('[')?.strip_suffix(']')?;
    let semi = inner.rfind(';')?;
    let elem = inner[..semi].trim().to_string();
    let n = fold_const(&trees_of(&inner[semi + 1..]), consts)?;
    Some((n, Some(elem)))
}

/// Constant-folds a literal/const expression (used for `const` initializers
/// and array lengths). Supports ints, named consts, `Ty::MAX/MIN`, parens,
/// unary minus, `as`, and the binary arithmetic/bit operators.
#[must_use]
pub fn fold_const(trees: &[Tree], consts: &BTreeMap<String, i128>) -> Option<i128> {
    let trees = strip_parens(trees);
    if trees.is_empty() {
        return None;
    }
    // `expr as ty` (lowest precedence here; fails closed if it truncates).
    if let Some(k) = top_positions(trees, &["as"]).last().copied() {
        let v = fold_const(&trees[..k], consts)?;
        let ty = crate::ast::tree::to_text(&trees[k + 1..]);
        if let Some((lo, hi)) = type_range(&ty) {
            return (v >= lo && v <= hi).then_some(v);
        }
        // 128-bit targets have no i128-representable range but any
        // (non-negative, for u128) domain value fits without truncation.
        return match int_width(&ty) {
            Some((128, true)) => Some(v),
            Some((128, false)) => (v >= 0).then_some(v),
            _ => None,
        };
    }
    for ops in [
        &["|"][..],
        &["^"][..],
        &["&"][..],
        &["<<", ">>"][..],
        &["+", "-"][..],
        &["*", "/", "%"][..],
    ] {
        for k in top_positions(trees, ops).into_iter().rev() {
            // Skip unary minus: an operator in position 0 or after another
            // operator is a prefix, not a split point.
            if k == 0 || trees[k - 1].leaf().is_some_and(|t| t.kind == Kind::Punct) {
                continue;
            }
            let (l, r) = (
                fold_const(&trees[..k], consts)?,
                fold_const(&trees[k + 1..], consts)?,
            );
            let op = trees[k].leaf()?.text.as_str();
            return match op {
                "|" => Some(l | r),
                "^" => Some(l ^ r),
                "&" => Some(l & r),
                "<<" => u32::try_from(r).ok().and_then(|s| l.checked_shl(s)),
                ">>" => u32::try_from(r).ok().and_then(|s| l.checked_shr(s)),
                "+" => l.checked_add(r),
                "-" => l.checked_sub(r),
                "*" => l.checked_mul(r),
                "/" => (r != 0).then(|| l / r),
                "%" => (r != 0).then(|| l % r),
                _ => None,
            };
        }
    }
    match trees {
        [t] => match t {
            Tree::Leaf(tok) if tok.kind == Kind::Int => parse_int(&tok.text).map(|(v, _)| v),
            Tree::Leaf(tok) if tok.kind == Kind::Ident => consts.get(&tok.text).copied(),
            Tree::Group(g) if g.delim == '(' => fold_const(&g.trees, consts),
            _ => None,
        },
        [neg, rest @ ..] if neg.is_punct("-") => fold_const(rest, consts)?.checked_neg(),
        [ty, sep, bound] if sep.is_punct("::") => {
            let t = ty.leaf()?.text.as_str();
            let (lo, hi) = type_range(t)?;
            match bound.leaf()?.text.as_str() {
                "MAX" => Some(hi),
                "MIN" => Some(lo),
                other => consts.get(other).copied(),
            }
        }
        _ => None,
    }
}

/// Positions of top-level operator tokens matching `ops`.
fn top_positions(trees: &[Tree], ops: &[&str]) -> Vec<usize> {
    trees
        .iter()
        .enumerate()
        .filter(|(_, t)| t.leaf().is_some_and(|tok| ops.contains(&tok.text.as_str())))
        .map(|(k, _)| k)
        .collect()
}

/// Strips redundant outer parens: `((x))` → `x`.
fn strip_parens(trees: &[Tree]) -> &[Tree] {
    match trees {
        [Tree::Group(g)] if g.delim == '(' && !g.trees.iter().any(|t| t.is_punct(",")) => {
            strip_parens(&g.trees)
        }
        _ => trees,
    }
}

/// One entry of the `ranges.toml` contract table: "param `param` of
/// function `func` is always within `[lo, hi]`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contract {
    /// Function name (bare, as resolved by the index).
    pub func: String,
    /// Parameter name.
    pub param: String,
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

/// An abstract value: interval, best-known integer type, provenance hops
/// for the witness chain, and a compact source rendering.
#[derive(Debug, Clone)]
pub struct Val {
    /// The interval.
    pub iv: Ival,
    /// The value's integer type, when known (also carries the internal
    /// `"!err"` marker for `Err`/`None` constructor results).
    pub ty: Option<String>,
    /// Witness-chain hops that explain where the interval came from.
    pub hops: Vec<String>,
    /// Compact source text of the producing expression.
    pub src: String,
}

impl Val {
    fn top() -> Self {
        Val {
            iv: Ival::Top,
            ty: None,
            hops: Vec::new(),
            src: String::new(),
        }
    }

    fn of(iv: Ival) -> Self {
        Val { iv, ..Val::top() }
    }

    fn push_hop(&mut self, hop: String) {
        if self.hops.len() < 6 && !self.hops.contains(&hop) {
            self.hops.push(hop);
        }
    }

    fn is_err_marker(&self) -> bool {
        self.ty.as_deref() == Some("!err")
    }
}

/// One range-proof finding inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// 0-based source line of the flagged operation.
    pub line: usize,
    /// Human-readable description of the violation.
    pub msg: String,
    /// Interval-annotated witness hops leading to the operation.
    pub chain: Vec<String>,
}

/// The shared analysis context: folded constants, the contract table,
/// fixpoint return defaults, and the memoized transfer-function cache.
pub struct RangeCtx<'a> {
    /// The workspace index the analysis runs over.
    pub index: &'a Index,
    /// Folded `const` values by name.
    pub consts: BTreeMap<String, i128>,
    contracts: BTreeMap<(String, String), (i128, i128)>,
    defaults: RefCell<BTreeMap<usize, Ival>>,
    memo: RefCell<BTreeMap<(usize, Vec<Ival>), Ival>>,
    active: RefCell<Vec<usize>>,
}

/// Maximum simultaneous on-demand transfer evaluations (recursion and
/// depth guard; deeper chains fall back to the fixpoint defaults).
const MAX_TRANSFER_DEPTH: usize = 3;

/// Fixpoint rounds for const folding and return-interval defaults. Each
/// round is independently sound (missing entries read as `Top`), so any
/// small constant converges the common cases.
const FIXPOINT_ROUNDS: usize = 3;

impl<'a> RangeCtx<'a> {
    /// Builds the context: folds constants, then computes per-function
    /// return-interval defaults by running the evaluator to a short
    /// fixpoint over the whole index.
    #[must_use]
    pub fn new(index: &'a Index, contracts: &[Contract]) -> Self {
        let mut consts = BTreeMap::new();
        for _ in 0..FIXPOINT_ROUNDS {
            for (name, init) in &index.const_inits {
                if let Some(v) = fold_const(init, &consts) {
                    consts.insert(name.clone(), v);
                }
            }
        }
        let ctx = RangeCtx {
            index,
            consts,
            contracts: contracts
                .iter()
                .map(|c| ((c.func.clone(), c.param.clone()), (c.lo, c.hi)))
                .collect(),
            defaults: RefCell::new(BTreeMap::new()),
            memo: RefCell::new(BTreeMap::new()),
            active: RefCell::new(Vec::new()),
        };
        for _ in 0..FIXPOINT_ROUNDS {
            let mut fresh = BTreeMap::new();
            for id in 0..index.fns.len() {
                if index.fns[id].item.body.is_some() {
                    let (iv, _) = eval_fn(&ctx, id, None, false);
                    if iv != Ival::Top {
                        fresh.insert(id, iv);
                    }
                }
            }
            *ctx.defaults.borrow_mut() = fresh;
        }
        ctx
    }

    /// The contract range for `(func, param)`, if declared.
    #[must_use]
    pub fn contract(&self, func: &str, param: &str) -> Option<(i128, i128)> {
        self.contracts
            .get(&(func.to_string(), param.to_string()))
            .copied()
    }

    /// All declared contracts for a function, as `(param, lo, hi)`.
    #[must_use]
    pub fn contracts_of(&self, func: &str) -> Vec<(String, i128, i128)> {
        self.contracts
            .iter()
            .filter(|((f, _), _)| f == func)
            .map(|((_, p), (lo, hi))| (p.clone(), *lo, *hi))
            .collect()
    }

    /// The fixpoint return default for a function.
    #[must_use]
    pub fn default_of(&self, id: usize) -> Ival {
        self.defaults
            .borrow()
            .get(&id)
            .copied()
            .unwrap_or(Ival::Top)
    }

    /// The param→return transfer function: evaluates `id`'s body with the
    /// given argument intervals (aligned with its *named* params), memoized.
    /// Recursive or too-deep chains fall back to the fixpoint default.
    #[must_use]
    pub fn transfer(&self, id: usize, args: &[Ival]) -> Ival {
        let key = (id, args.to_vec());
        if let Some(&iv) = self.memo.borrow().get(&key) {
            return iv;
        }
        {
            let active = self.active.borrow();
            if active.contains(&id) || active.len() >= MAX_TRANSFER_DEPTH {
                return self.default_of(id);
            }
        }
        self.active.borrow_mut().push(id);
        let (iv, _) = eval_fn(self, id, Some(args), false);
        self.active.borrow_mut().pop();
        self.memo.borrow_mut().insert(key, iv);
        iv
    }
}

/// The scalar (integer) type a function's return carries, unwrapping one
/// `Result<…>`/`Option<…>` layer.
fn ret_scalar_ty(ret: Option<&str>) -> Option<String> {
    let r = ret?;
    let inner = wrapper_inner(r).unwrap_or(r);
    let t = strip_refs(inner);
    int_width(t).map(|_| t.to_string())
}

/// The success payload of a `Result<…>`/`Option<…>` type string.
fn wrapper_inner(r: &str) -> Option<&str> {
    let body = r
        .strip_prefix("Result<")
        .or_else(|| r.strip_prefix("Option<"))?;
    let mut depth = 0u32;
    for (i, c) in body.char_indices() {
        match c {
            '<' => depth += 1,
            '>' if depth == 0 => return Some(&body[..i]),
            '>' => depth -= 1,
            ',' if depth == 0 => return Some(&body[..i]),
            _ => {}
        }
    }
    None
}

/// Evaluates one function body: seeds params from types, contracts and
/// (for transfer calls) argument intervals, walks the body, and returns
/// the joined return interval plus any collected findings.
pub(crate) fn eval_fn(
    ctx: &RangeCtx,
    id: usize,
    args: Option<&[Ival]>,
    collect: bool,
) -> (Ival, Vec<Site>) {
    let entry = &ctx.index.fns[id];
    let Some(body) = &entry.item.body else {
        return (Ival::Top, Vec::new());
    };
    let mut ev = Eval::new(ctx, collect);
    ev.ret_wrapped = entry
        .item
        .ret
        .as_deref()
        .is_some_and(|r| r.starts_with("Result<") || r.starts_with("Option<"));
    let mut slot = 0usize;
    for (name, ty) in &entry.item.params {
        if name.is_empty() {
            continue;
        }
        let tystr = strip_refs(ty);
        let mut v = Val::top();
        if let Some((lo, hi)) = type_range(tystr) {
            v.iv = Ival::Range(lo, hi);
            v.ty = Some(tystr.to_string());
            ev.tys.insert(name.clone(), tystr.to_string());
        }
        if let Some((lo, hi)) = ctx.contract(&entry.item.name, name) {
            v.iv = v.iv.meet(Ival::Range(lo, hi));
            v.push_hop(format!(
                "{name} ∈ [{}, {}] (ranges.toml)",
                fmt_bound(lo),
                fmt_bound(hi)
            ));
        }
        if let Some(a) = args {
            if let Some(&iv) = a.get(slot) {
                v.iv = v.iv.meet(iv);
            }
        }
        if let Some((n, elem)) = array_ty_parts(ty, &ctx.consts) {
            ev.arrays.insert(name.clone(), (n, elem));
        }
        v.src.clone_from(name);
        ev.env.insert(name.clone(), v);
        slot += 1;
    }
    let (exit, tail) = ev.run_block(&body.trees);
    if exit.falls {
        if let Some(v) = tail {
            ev.push_ret(&v);
        }
    }
    let mut iv = ev.ret_iv.unwrap_or(Ival::Top);
    if let Some(ty) = ret_scalar_ty(entry.item.ret.as_deref()) {
        if let Some((lo, hi)) = type_range(&ty) {
            iv = iv.meet(Ival::Range(lo, hi));
        }
    }
    (iv, ev.sites)
}

/// Runs the collector over one function and returns its findings.
#[must_use]
pub fn check_fn(ctx: &RangeCtx, id: usize) -> Vec<Site> {
    eval_fn(ctx, id, None, true).1
}

/// Per-variable abstract state.
type Env = BTreeMap<String, Val>;

/// How a block finished: `falls` is false after a top-level `return`,
/// `break`, `continue`, `panic!` or an `if`/`match` with no falling arm.
struct Exit {
    falls: bool,
}

/// Compound-assignment and assignment operators (single tokens).
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^=",
];

/// The abstract evaluator for one function body.
pub(crate) struct Eval<'c, 'a> {
    ctx: &'c RangeCtx<'a>,
    env: Env,
    /// Known integer types of variables.
    tys: BTreeMap<String, String>,
    /// Known fixed-size arrays: name → (length, element type).
    arrays: BTreeMap<String, (i128, Option<String>)>,
    collect: bool,
    sites: Vec<Site>,
    ret_iv: Option<Ival>,
    ret_wrapped: bool,
    break_envs: Vec<Vec<Env>>,
    cont_envs: Vec<Vec<Env>>,
    diverged: bool,
}

impl<'c, 'a> Eval<'c, 'a> {
    fn new(ctx: &'c RangeCtx<'a>, collect: bool) -> Self {
        Eval {
            ctx,
            env: Env::new(),
            tys: BTreeMap::new(),
            arrays: BTreeMap::new(),
            collect,
            sites: Vec::new(),
            ret_iv: None,
            ret_wrapped: false,
            break_envs: Vec::new(),
            cont_envs: Vec::new(),
            diverged: false,
        }
    }

    /// Records a return value (joined over all return sites); `Err`/`None`
    /// constructor results contribute nothing.
    fn push_ret(&mut self, v: &Val) {
        if v.is_err_marker() {
            return;
        }
        self.ret_iv = Some(match self.ret_iv {
            Some(prev) => prev.join(v.iv),
            None => v.iv,
        });
    }

    /// Runs a closure with finding collection suppressed.
    fn quiet<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        let saved = self.collect;
        self.collect = false;
        let r = f(self);
        self.collect = saved;
        r
    }

    /// Records a finding (when collecting).
    fn flag(&mut self, line: usize, msg: String, chain: Vec<String>) {
        if self.collect {
            self.sites.push(Site { line, msg, chain });
        }
    }

    /// Walks the statements of a block; returns how it exited and the
    /// value of a trailing (unterminated) tail expression.
    fn run_block(&mut self, trees: &[Tree]) -> (Exit, Option<Val>) {
        let mut i = 0usize;
        let mut last: Option<Val> = None;
        while i < trees.len() {
            if trees[i].is_punct("#") {
                i += 1;
                if matches!(trees.get(i), Some(Tree::Group(_))) {
                    i += 1;
                }
                continue;
            }
            if trees[i].leaf().is_some_and(|t| t.kind == Kind::Lifetime) {
                i += 1;
                if trees.get(i).is_some_and(|t| t.is_punct(":")) {
                    i += 1;
                }
                continue;
            }
            let word = trees[i]
                .leaf()
                .filter(|t| t.kind == Kind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            match word.as_str() {
                "let" => {
                    i = self.stmt_let(trees, i);
                    last = None;
                }
                "while" => {
                    i = self.stmt_while(trees, i);
                    last = None;
                }
                "for" => {
                    i = self.stmt_for(trees, i);
                    last = None;
                }
                "loop" => {
                    i = self.stmt_loop(trees, i);
                    last = None;
                }
                "return" => {
                    let end = stmt_end(trees, i);
                    if end > i + 1 {
                        let v = self.eval_expr(&trees[i + 1..end], None);
                        self.push_ret(&v);
                    }
                    return (Exit { falls: false }, None);
                }
                "break" => {
                    let env = self.env.clone();
                    if let Some(f) = self.break_envs.last_mut() {
                        f.push(env);
                    }
                    return (Exit { falls: false }, None);
                }
                "continue" => {
                    let env = self.env.clone();
                    if let Some(f) = self.cont_envs.last_mut() {
                        f.push(env);
                    }
                    return (Exit { falls: false }, None);
                }
                "use" | "const" | "static" | "type" | "mod" | "extern" => {
                    i = stmt_end(trees, i) + 1;
                    last = None;
                }
                "fn" | "impl" | "struct" | "enum" | "trait" => {
                    i = find_block(trees, i).map_or(trees.len(), |b| b + 1);
                    last = None;
                }
                _ => {
                    // Macro statement: `name!(…);`
                    if !word.is_empty() && trees.get(i + 1).is_some_and(|t| t.is_punct("!")) {
                        i = self.stmt_macro(trees, i, &word);
                        last = None;
                    } else if word == "if" || word == "match" || word == "unsafe" {
                        let e = construct_end(trees, i);
                        let v = self.eval_expr(&trees[i..e], None);
                        if trees.get(e).is_some_and(|t| t.is_punct(";")) {
                            i = e + 1;
                            last = None;
                        } else {
                            i = e;
                            last = if i >= trees.len() { Some(v) } else { None };
                        }
                    } else if let Tree::Group(g) = &trees[i] {
                        if g.delim == '{' {
                            let (ex, v) = self.run_block(&g.trees);
                            if !ex.falls {
                                return (Exit { falls: false }, None);
                            }
                            i += 1;
                            if trees.get(i).is_some_and(|t| t.is_punct(";")) {
                                i += 1;
                                last = None;
                            } else {
                                last = if i >= trees.len() { v } else { None };
                            }
                        } else {
                            i += 1;
                            last = None;
                        }
                    } else {
                        let end = stmt_end(trees, i);
                        let assign = (i..end).find(|&j| {
                            trees[j]
                                .leaf()
                                .is_some_and(|t| ASSIGN_OPS.contains(&t.text.as_str()))
                        });
                        if let Some(j) = assign {
                            self.stmt_assign(trees, i, j, end);
                            i = end + 1;
                            last = None;
                        } else {
                            let v = self.eval_expr(&trees[i..end], None);
                            last = if end >= trees.len() { Some(v) } else { None };
                            i = end + 1;
                        }
                    }
                }
            }
            if self.diverged {
                self.diverged = false;
                return (Exit { falls: false }, None);
            }
        }
        (Exit { falls: true }, last)
    }

    /// `assert!`/`debug_assert!` narrow; panicking macros diverge; all
    /// other macros are skipped.
    fn stmt_macro(&mut self, trees: &[Tree], i: usize, name: &str) -> usize {
        let end = stmt_end(trees, i);
        let args = trees[i..end].iter().find_map(Tree::group);
        match name {
            "assert" | "debug_assert" => {
                if let Some(g) = args {
                    let cut = g
                        .trees
                        .iter()
                        .position(|t| t.is_punct(","))
                        .unwrap_or(g.trees.len());
                    let cond = g.trees[..cut].to_vec();
                    let cur = std::mem::take(&mut self.env);
                    self.env = self.narrowed(cur, &cond, true);
                }
            }
            "assert_eq" | "debug_assert_eq" => {
                if let Some(g) = args {
                    let parts: Vec<Vec<Tree>> = split_args(&g.trees)
                        .into_iter()
                        .map(<[Tree]>::to_vec)
                        .collect();
                    if parts.len() >= 2 {
                        if let Some(p) = path_of(&parts[0]) {
                            let rhs = self.quiet(|s| s.eval_expr(&parts[1], None));
                            let base = self.read_path(&p);
                            self.set_path(&p, base.iv.meet(rhs.iv));
                        }
                    }
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                self.diverged = true;
            }
            _ => {}
        }
        end + 1
    }

    /// `let` statement: binds single identifiers to evaluated values,
    /// tracks array lengths, and threads type ascriptions.
    fn stmt_let(&mut self, trees: &[Tree], i: usize) -> usize {
        let end = stmt_end(trees, i);
        let stmt = &trees[i..end];
        let Some(eq) = stmt.iter().position(|t| t.is_punct("=")) else {
            for n in pattern_names(&stmt[1..]) {
                self.env.remove(&n);
                self.tys.remove(&n);
            }
            return end + 1;
        };
        let mut pat = &stmt[1..eq];
        let mut init = &stmt[eq + 1..];
        // `let PAT = expr else { … };` — the else block must diverge, so
        // evaluate it for findings on a scratch env and drop the result.
        if let Some(ep) = init.iter().position(|t| t.is_ident("else")) {
            if let Some(Tree::Group(g)) = init.get(ep + 1) {
                let saved = self.env.clone();
                let saved_d = self.diverged;
                let _ = self.run_block(&g.trees);
                self.env = saved;
                self.diverged = saved_d;
            }
            init = &init[..ep];
        }
        let mut asc: Option<String> = None;
        if let Some(c) = pat.iter().position(|t| t.is_punct(":")) {
            asc = Some(crate::ast::tree::to_text(&pat[c + 1..]));
            pat = &pat[..c];
        }
        let single = match pat {
            [a] if a
                .leaf()
                .is_some_and(|t| t.kind == Kind::Ident && t.text != "_") =>
            {
                Some(a.leaf().map(|t| t.text.clone()).unwrap_or_default())
            }
            [m, a] if m.is_ident("mut") && a.leaf().is_some_and(|t| t.kind == Kind::Ident) => {
                Some(a.leaf().map(|t| t.text.clone()).unwrap_or_default())
            }
            _ => None,
        };
        if let Some(name) = single {
            if let [Tree::Group(g)] = init {
                if g.delim == '[' {
                    self.bind_array_literal(&name, g, asc.as_deref());
                    return end + 1;
                }
            }
            let expected = asc
                .as_deref()
                .map(strip_refs)
                .filter(|t| int_width(t).is_some())
                .map(str::to_string);
            let mut v = self.eval_expr(init, expected.as_deref());
            if let Some(t) = expected {
                if let Some((lo, hi)) = type_range(&t) {
                    v.iv = v.iv.meet(Ival::Range(lo, hi));
                }
                v.ty = Some(t.clone());
                self.tys.insert(name.clone(), t);
            } else if let Some(t) = v.ty.clone().filter(|t| t != "!err") {
                self.tys.insert(name.clone(), t);
            } else {
                self.tys.remove(&name);
            }
            if let Some(a) = asc.as_deref() {
                if let Some(parts) = array_ty_parts(a, &self.ctx.consts) {
                    self.arrays.insert(name.clone(), parts);
                }
            }
            v.src = name.clone();
            self.env.insert(name, v);
        } else {
            let _ = self.eval_expr(init, None);
            for n in pattern_names(pat) {
                self.env.remove(&n);
                self.tys.remove(&n);
            }
        }
        end + 1
    }

    /// Tracks `[x; N]` / `[a, b, c]` initializers for index proofs.
    fn bind_array_literal(&mut self, name: &str, g: &Group, asc: Option<&str>) {
        if let Some(semi) = g.trees.iter().position(|t| t.is_punct(";")) {
            let _ = self.eval_expr(&g.trees[..semi], None);
            let elem = g.trees[..semi]
                .iter()
                .find_map(Tree::leaf)
                .filter(|t| t.kind == Kind::Int)
                .and_then(|t| parse_int(&t.text))
                .and_then(|(_, s)| s.map(str::to_string))
                .or_else(|| {
                    asc.and_then(|a| array_ty_parts(a, &self.ctx.consts))
                        .and_then(|(_, e)| e)
                });
            if let Some(n) = fold_const(&g.trees[semi + 1..], &self.ctx.consts) {
                self.arrays.insert(name.to_string(), (n, elem));
            }
        } else {
            let parts = split_args(&g.trees);
            for p in &parts {
                let _ = self.eval_expr(p, None);
            }
            self.arrays
                .insert(name.to_string(), (parts.len() as i128, None));
        }
        self.env.insert(name.to_string(), Val::top());
        self.tys.remove(name);
    }

    /// `path = expr` / `path op= expr`; compound assignments run the same
    /// overflow check as the bare operator.
    fn stmt_assign(&mut self, trees: &[Tree], i: usize, j: usize, end: usize) {
        let lhs = &trees[i..j];
        let rhs = &trees[j + 1..end];
        let (op, line) = trees[j]
            .leaf()
            .map(|t| (t.text.clone(), t.line))
            .unwrap_or_default();
        let target = path_of(lhs);
        let expected_ty = target.as_ref().and_then(|p| self.path_ty(p));
        let rv = self.eval_expr(rhs, expected_ty.as_deref());
        if target.is_none() {
            // Index or deref target: evaluate the left side for its own
            // findings (e.g. an out-of-range index), no binding to update.
            let _ = self.eval_expr(lhs, None);
            return;
        }
        let Some(p) = target else { return };
        if op == "=" {
            let mut v = rv;
            if let Some(t) = &expected_ty {
                if let Some((lo, hi)) = type_range(t) {
                    v.iv = v.iv.meet(Ival::Range(lo, hi));
                }
                v.ty = Some(t.clone());
            }
            v.src.clone_from(&p);
            self.env.insert(p, v);
        } else {
            let cur = self.read_path(&p);
            let bin = op.trim_end_matches('=').to_string();
            let mut v = self.combine(cur, &bin, rv, line, expected_ty.as_deref());
            v.src.clone_from(&p);
            self.env.insert(p, v);
        }
    }

    /// Current value of a dotted path: environment hit, folded const,
    /// or the full range of its declared type.
    fn read_path(&self, p: &str) -> Val {
        if let Some(v) = self.env.get(p) {
            return v.clone();
        }
        let mut v = Val::top();
        v.src = p.to_string();
        if !p.contains('.') {
            if let Some(&c) = self.ctx.consts.get(p) {
                v.iv = Ival::lit(c);
                v.ty = self
                    .ctx
                    .index
                    .const_types
                    .get(p)
                    .map(|t| strip_refs(t).to_string())
                    .filter(|t| int_width(t).is_some());
                return v;
            }
        }
        if let Some(t) = self.path_ty(p) {
            if let Some((lo, hi)) = type_range(&t) {
                v.iv = Ival::Range(lo, hi);
            }
            v.ty = Some(t);
        }
        v
    }

    /// The integer type of a path, from locals, unique struct fields, or
    /// const declarations.
    fn path_ty(&self, p: &str) -> Option<String> {
        if let Some(t) = self.tys.get(p) {
            return Some(t.clone());
        }
        if p.contains('.') {
            let f = p.rsplit('.').next()?;
            let set = self.ctx.index.field_types.get(f)?;
            if set.len() == 1 {
                let t = strip_refs(set.iter().next()?);
                if int_width(t).is_some() {
                    return Some(t.to_string());
                }
            }
            return None;
        }
        let t = strip_refs(self.ctx.index.const_types.get(p)?);
        int_width(t).is_some().then(|| t.to_string())
    }

    /// Overwrites the interval of a path, keeping its type.
    fn set_path(&mut self, p: &str, iv: Ival) {
        let mut v = self.read_path(p);
        v.iv = iv;
        self.env.insert(p.to_string(), v);
    }

    /// Removes all knowledge rooted at a path (`x` and `x.*`).
    fn invalidate_path(&mut self, p: &str) {
        let prefix = format!("{p}.");
        self.env
            .retain(|k, _| k != p && !k.starts_with(prefix.as_str()));
    }
}

/// A dotted identifier path (`self.range`, `k`), or `None`.
fn path_of(trees: &[Tree]) -> Option<String> {
    let mut s = String::new();
    let mut want_ident = true;
    for t in trees {
        let tok = t.leaf()?;
        if want_ident {
            if tok.kind != Kind::Ident {
                return None;
            }
            s.push_str(&tok.text);
        } else if tok.is_punct(".") {
            s.push('.');
        } else {
            return None;
        }
        want_ident = !want_ident;
    }
    (!s.is_empty() && !want_ident).then_some(s)
}

/// End index (exclusive) of an `if`/`match`/`unsafe`/loop construct
/// starting at `i`, spanning any `else if`/`else` chain.
fn construct_end(trees: &[Tree], i: usize) -> usize {
    let Some(b) = find_block(trees, i) else {
        return stmt_end(trees, i);
    };
    let mut j = b + 1;
    while trees.get(j).is_some_and(|t| t.is_ident("else")) {
        if trees.get(j + 1).is_some_and(|t| t.is_ident("if")) {
            match find_block(trees, j + 1) {
                Some(nb) => j = nb + 1,
                None => return trees.len(),
            }
        } else {
            j += 2;
        }
    }
    j
}

/// Pointwise join of two environments; keys present on only one side are
/// dropped (unknown on the other path).
fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, va) in a {
        if let Some(vb) = b.get(k) {
            let mut v = va.clone();
            v.iv = va.iv.join(vb.iv);
            if v.ty != vb.ty {
                v.ty = None;
            }
            for h in &vb.hops {
                if v.hops.len() < 6 && !v.hops.contains(h) {
                    v.hops.push(h.clone());
                }
            }
            out.insert(k.clone(), v);
        }
    }
    out
}

/// Whether two environments agree on keys and intervals.
fn env_iv_eq(a: &Env, b: &Env) -> bool {
    a.len() == b.len()
        && a.iter()
            .all(|(k, v)| b.get(k).is_some_and(|w| w.iv == v.iv))
}

/// Threshold widening of `old` by `new`: violated bounds jump to the
/// nearest harvested threshold instead of straight to infinity.
fn widen(old: Ival, new: Ival, thr: &[i128]) -> Ival {
    match (old, new) {
        (Ival::Range(ol, oh), Ival::Range(nl, nh)) => {
            let lo = if nl >= ol {
                ol
            } else {
                thr.iter()
                    .rev()
                    .find(|&&t| t <= nl)
                    .copied()
                    .unwrap_or(i128::MIN)
            };
            let hi = if nh <= oh {
                oh
            } else {
                thr.iter().find(|&&t| t >= nh).copied().unwrap_or(i128::MAX)
            };
            Ival::Range(lo, hi)
        }
        _ => Ival::Top,
    }
}

/// Environment-wide widening (keys follow `join_env` semantics).
fn widen_env(old: &Env, new: &Env, thr: &[i128]) -> Env {
    let mut out = Env::new();
    for (k, vo) in old {
        if let Some(vn) = new.get(k) {
            let mut v = vo.clone();
            v.iv = widen(vo.iv, vo.iv.join(vn.iv), thr);
            out.insert(k.clone(), v);
        }
    }
    out
}

/// Last-resort widening: any still-changing variable goes straight to Top.
fn widen_force(old: &Env, new: &Env) -> Env {
    let mut out = Env::new();
    for (k, vo) in old {
        if let Some(vn) = new.get(k) {
            let mut v = vo.clone();
            if vn.iv != vo.iv {
                v.iv = Ival::Top;
            }
            out.insert(k.clone(), v);
        }
    }
    out
}

impl Eval<'_, '_> {
    /// Thresholds for loop widening: every integer literal (and resolvable
    /// const) in the condition/body contributes `{v-1, v, v+1}`, plus 0.
    fn thresholds(&self, cond: &[Tree], body: &Group) -> Vec<i128> {
        fn walk(trees: &[Tree], out: &mut BTreeSet<i128>, consts: &BTreeMap<String, i128>) {
            for t in trees {
                match t {
                    Tree::Group(g) => walk(&g.trees, out, consts),
                    Tree::Leaf(tok) => {
                        let v = match tok.kind {
                            Kind::Int => parse_int(&tok.text).map(|(v, _)| v),
                            Kind::Ident => consts.get(&tok.text).copied(),
                            _ => None,
                        };
                        if let Some(v) = v {
                            out.insert(v.saturating_sub(1));
                            out.insert(v);
                            out.insert(v.saturating_add(1));
                        }
                    }
                }
            }
        }
        let mut out = BTreeSet::new();
        out.insert(0);
        walk(cond, &mut out, &self.ctx.consts);
        walk(&body.trees, &mut out, &self.ctx.consts);
        out.into_iter().collect()
    }

    /// One fixpoint iteration of a loop body from `entry`; returns the
    /// state feeding the back edge (fall-through joined with `continue`s).
    fn loop_body_pass(&mut self, body: &Group, entry: Env) -> Option<Env> {
        self.env = entry;
        self.break_envs.push(Vec::new());
        self.cont_envs.push(Vec::new());
        let (exit, _) = self.run_block(&body.trees);
        self.break_envs.pop();
        let conts = self.cont_envs.pop().unwrap_or_default();
        let mut after: Option<Env> = if exit.falls {
            Some(self.env.clone())
        } else {
            None
        };
        for c in conts {
            after = Some(match after {
                Some(a) => join_env(&a, &c),
                None => c,
            });
        }
        after
    }

    /// Final (collecting) pass over a loop body; returns the break-edge
    /// environments.
    fn loop_final_pass(&mut self, body: &Group, entry: Env) -> Vec<Env> {
        self.env = entry;
        self.break_envs.push(Vec::new());
        self.cont_envs.push(Vec::new());
        let _ = self.run_block(&body.trees);
        self.cont_envs.pop();
        self.break_envs.pop().unwrap_or_default()
    }

    /// `while cond { … }` with threshold widening at the head; the exit
    /// state joins the negated-condition edge with every `break` edge.
    fn stmt_while(&mut self, trees: &[Tree], i: usize) -> usize {
        let Some(b) = find_block(trees, i + 1) else {
            return stmt_end(trees, i) + 1;
        };
        let cond: Vec<Tree> = trees[i + 1..b].to_vec();
        let Some(body) = trees[b].group().cloned() else {
            return b + 1;
        };
        let is_while_let = cond.first().is_some_and(|t| t.is_ident("let"));
        let wl_names: Vec<String> = if is_while_let {
            cond.iter()
                .position(|t| t.is_punct("="))
                .map(|e| pattern_names(&cond[1..e]))
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        let thr = self.thresholds(&cond, &body);
        let init = self.env.clone();
        let mut head = init.clone();
        let entry_of = |s: &mut Self, h: &Env| -> Env {
            if is_while_let {
                let mut e = h.clone();
                for n in &wl_names {
                    e.remove(n);
                }
                e
            } else {
                s.narrowed(h.clone(), &cond, true)
            }
        };
        self.quiet(|s| {
            for round in 0..9 {
                let entry = entry_of(s, &head);
                let after = s.loop_body_pass(&body, entry);
                let joined = match after {
                    Some(a) => join_env(&init, &a),
                    None => init.clone(),
                };
                let next = if round >= 7 {
                    widen_force(&head, &joined)
                } else {
                    widen_env(&head, &joined, &thr)
                };
                if env_iv_eq(&next, &head) {
                    break;
                }
                head = next;
            }
        });
        // Collecting pass: evaluate the condition once for its own
        // findings, then the body from the stable head.
        if !is_while_let {
            self.env = head.clone();
            let _ = self.eval_expr(&cond, None);
        }
        let entry = entry_of(self, &head);
        let brks = self.loop_final_pass(&body, entry);
        let mut exit_env = if is_while_let {
            head
        } else {
            self.narrowed(head, &cond, false)
        };
        for e in brks {
            exit_env = join_env(&exit_env, &e);
        }
        self.env = exit_env;
        b + 1
    }

    /// `for pat in iter { … }`: range iterables bind the loop variable to
    /// the range's interval; everything else binds Top.
    fn stmt_for(&mut self, trees: &[Tree], i: usize) -> usize {
        let Some(b) = find_block(trees, i + 1) else {
            return stmt_end(trees, i) + 1;
        };
        let Some(inpos) = (i + 1..b).find(|&k| trees[k].is_ident("in")) else {
            return b + 1;
        };
        let pat = &trees[i + 1..inpos];
        let iter: Vec<Tree> = trees[inpos + 1..b].to_vec();
        let Some(body) = trees[b].group().cloned() else {
            return b + 1;
        };
        let names = pattern_names(pat);
        let single = (names.len() == 1).then(|| names[0].clone());
        let iter_iv = self.range_of_iter(&iter);
        let thr = self.thresholds(&iter, &body);
        let init = self.env.clone();
        let mut head = init.clone();
        let entry_of = |h: &Env| -> Env {
            let mut e = h.clone();
            for n in &names {
                e.remove(n);
            }
            if let Some(n) = &single {
                let mut v = Val::of(iter_iv);
                v.src.clone_from(n);
                e.insert(n.clone(), v);
            }
            e
        };
        self.quiet(|s| {
            for round in 0..9 {
                let after = s.loop_body_pass(&body, entry_of(&head));
                let joined = match after {
                    Some(a) => join_env(&init, &a),
                    None => init.clone(),
                };
                let next = if round >= 7 {
                    widen_force(&head, &joined)
                } else {
                    widen_env(&head, &joined, &thr)
                };
                if env_iv_eq(&next, &head) {
                    break;
                }
                head = next;
            }
        });
        let brks = self.loop_final_pass(&body, entry_of(&head));
        let mut exit_env = head;
        for e in brks {
            exit_env = join_env(&exit_env, &e);
        }
        for n in &names {
            exit_env.remove(n);
        }
        self.env = exit_env;
        b + 1
    }

    /// `loop { … }`: the only exits are `break` edges; a loop with none
    /// diverges.
    fn stmt_loop(&mut self, trees: &[Tree], i: usize) -> usize {
        let Some(b) = find_block(trees, i + 1) else {
            return stmt_end(trees, i) + 1;
        };
        let Some(body) = trees[b].group().cloned() else {
            return b + 1;
        };
        let thr = self.thresholds(&[], &body);
        let init = self.env.clone();
        let mut head = init.clone();
        self.quiet(|s| {
            for round in 0..9 {
                let after = s.loop_body_pass(&body, head.clone());
                let joined = match after {
                    Some(a) => join_env(&init, &a),
                    None => init.clone(),
                };
                let next = if round >= 7 {
                    widen_force(&head, &joined)
                } else {
                    widen_env(&head, &joined, &thr)
                };
                if env_iv_eq(&next, &head) {
                    break;
                }
                head = next;
            }
        });
        let brks = self.loop_final_pass(&body, head.clone());
        if brks.is_empty() {
            self.env = head;
            self.diverged = true;
        } else {
            let mut exit_env: Option<Env> = None;
            for e in brks {
                exit_env = Some(match exit_env {
                    Some(a) => join_env(&a, &e),
                    None => e,
                });
            }
            self.env = exit_env.unwrap_or(head);
        }
        b + 1
    }

    /// The interval of a range iterable (`a..b`, `(a..=b).rev()`), and the
    /// evaluation of its bound expressions for their own findings.
    fn range_of_iter(&mut self, iter: &[Tree]) -> Ival {
        let slice: &[Tree] = match iter.first() {
            Some(Tree::Group(g))
                if g.delim == '('
                    && g.trees
                        .iter()
                        .any(|t| t.is_punct("..") || t.is_punct("..=")) =>
            {
                &g.trees
            }
            _ => iter,
        };
        let Some(r) = slice
            .iter()
            .position(|t| t.is_punct("..") || t.is_punct("..="))
        else {
            let _ = self.eval_expr(iter, None);
            return Ival::Top;
        };
        let inclusive = slice[r].is_punct("..=");
        let lo = self.eval_expr(&slice[..r], None);
        let hi = self.eval_expr(&slice[r + 1..], None);
        match (lo.iv.bounds(), hi.iv.bounds()) {
            (Some((l, _)), Some((_, h))) => Ival::new(l, if inclusive { h } else { h - 1 }),
            _ => Ival::Top,
        }
    }

    /// Narrows `base` along the `branch` edge of `cond`: comparisons
    /// against known intervals, `&&` conjunction on the true edge,
    /// `||` disjunction (De Morgan) on the false edge, `!` recursion,
    /// and `(lo..=hi).contains(&x)`.
    fn narrowed(&mut self, base: Env, cond: &[Tree], branch: bool) -> Env {
        let cond = strip_parens(cond);
        let saved = std::mem::replace(&mut self.env, base);
        self.apply_cond(cond, branch);
        std::mem::replace(&mut self.env, saved)
    }

    fn apply_cond(&mut self, cond: &[Tree], branch: bool) {
        let cond = strip_parens(cond);
        if cond.is_empty() {
            return;
        }
        if cond[0].is_punct("!") {
            let inner: Vec<Tree> = cond[1..].to_vec();
            self.apply_cond(&inner, !branch);
            return;
        }
        let ands = top_positions(cond, &["&&"]);
        if !ands.is_empty() {
            if branch {
                let mut start = 0;
                for k in ands.iter().copied().chain([cond.len()]) {
                    let part: Vec<Tree> = cond[start..k].to_vec();
                    self.apply_cond(&part, true);
                    start = k + 1;
                }
            }
            return;
        }
        let ors = top_positions(cond, &["||"]);
        if !ors.is_empty() {
            if !branch {
                let mut start = 0;
                for k in ors.iter().copied().chain([cond.len()]) {
                    let part: Vec<Tree> = cond[start..k].to_vec();
                    self.apply_cond(&part, false);
                    start = k + 1;
                }
            }
            return;
        }
        // `(lo..=hi).contains(&x)`
        if let [Tree::Group(rg), dot, m, Tree::Group(ag)] = cond {
            if rg.delim == '(' && dot.is_punct(".") && m.is_ident("contains") && ag.delim == '(' {
                if let Some(r) = rg
                    .trees
                    .iter()
                    .position(|t| t.is_punct("..") || t.is_punct("..="))
                {
                    let inclusive = rg.trees[r].is_punct("..=");
                    let lo = self.quiet(|s| s.eval_expr(&rg.trees[..r], None));
                    let hi = self.quiet(|s| s.eval_expr(&rg.trees[r + 1..], None));
                    let arg: Vec<Tree> = ag
                        .trees
                        .iter()
                        .filter(|t| !t.is_punct("&"))
                        .cloned()
                        .collect();
                    if let (Some(p), Some((l, _)), Some((_, h))) =
                        (path_of(&arg), lo.iv.bounds(), hi.iv.bounds())
                    {
                        let hi_b = if inclusive { h } else { h - 1 };
                        if branch {
                            let base = self.read_path(&p);
                            self.set_path(&p, base.iv.meet(Ival::new(l, hi_b)));
                        }
                        return;
                    }
                }
            }
        }
        // Comparison: narrow a dotted path against the other side.
        let Some(k) = top_positions(cond, &["<", "<=", ">", ">=", "==", "!="])
            .first()
            .copied()
        else {
            return;
        };
        let Some(op) = cond[k].leaf().map(|t| t.text.clone()) else {
            return;
        };
        let eff = if branch {
            op
        } else {
            match op.as_str() {
                "<" => ">=".to_string(),
                "<=" => ">".to_string(),
                ">" => "<=".to_string(),
                ">=" => "<".to_string(),
                "==" => "!=".to_string(),
                _ => "==".to_string(),
            }
        };
        let lhs = &cond[..k];
        let rhs = &cond[k + 1..];
        let lv = self.quiet(|s| s.eval_expr(lhs, None));
        let rv = self.quiet(|s| s.eval_expr(rhs, None));
        if let Some(p) = path_of(lhs) {
            self.narrow_path(&p, &eff, rv.iv);
        }
        if let Some(p) = path_of(rhs) {
            let flipped = match eff.as_str() {
                "<" => ">",
                "<=" => ">=",
                ">" => "<",
                ">=" => "<=",
                other => other,
            };
            self.narrow_path(&p, flipped, lv.iv);
        }
    }

    /// Applies `p OP bound` to the environment (`p` on the left).
    fn narrow_path(&mut self, p: &str, op: &str, bound: Ival) {
        let Some((blo, bhi)) = bound.bounds() else {
            return;
        };
        let constraint = match op {
            "<" => Ival::new(i128::MIN, bhi.saturating_sub(1)),
            "<=" => Ival::new(i128::MIN, bhi),
            ">" => Ival::new(blo.saturating_add(1), i128::MAX),
            ">=" => Ival::new(blo, i128::MAX),
            "==" => bound,
            _ => return,
        };
        let base = self.read_path(p);
        if base.iv == Ival::Top && self.path_ty(p).is_none() {
            // No type anchor: a one-sided constraint on a fully unknown
            // value is rarely useful and invites noise.
            return;
        }
        self.set_path(p, base.iv.meet(constraint));
    }
}

/// Cursor over a tree slice for the Pratt expression evaluator.
struct P<'t> {
    t: &'t [Tree],
    k: usize,
}

impl<'t> P<'t> {
    fn peek(&self) -> Option<&'t Tree> {
        self.t.get(self.k)
    }

    fn peek_tok(&self) -> Option<&'t crate::ast::lex::Token> {
        self.peek().and_then(Tree::leaf)
    }
}

/// Binding powers of the binary operators (left, right).
fn bin_bp(op: &str) -> Option<(u8, u8)> {
    Some(match op {
        "*" | "/" | "%" => (70, 71),
        "+" | "-" => (60, 61),
        "<<" | ">>" => (50, 51),
        "&" => (40, 41),
        "^" => (35, 36),
        "|" => (30, 31),
        "==" | "!=" | "<" | "<=" | ">" | ">=" => (20, 21),
        "&&" => (12, 13),
        "||" => (10, 11),
        _ => return None,
    })
}

/// Truncates expression text for messages.
fn compact_str(s: &str) -> String {
    let mut out: String = s.chars().take(40).collect();
    if s.chars().count() > 40 {
        out.push('…');
    }
    if out.is_empty() {
        out.push('…');
    }
    out
}

/// Skips a balanced `<…>` generic-argument run starting at `k`.
fn skip_angles(trees: &[Tree], mut k: usize) -> usize {
    let mut depth = 0i32;
    while k < trees.len() {
        if let Some(t) = trees[k].leaf() {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        return k + 1;
                    }
                }
                ">>" => {
                    depth -= 2;
                    if depth <= 0 {
                        return k + 1;
                    }
                }
                _ if depth == 0 => return k,
                _ => {}
            }
        } else if depth == 0 {
            return k;
        }
        k += 1;
    }
    k
}

/// Applies an `as` cast: in-range intervals survive, everything else
/// degrades to the target's full range (cast-safety's domain, not ours).
fn cast_val(mut v: Val, ty: &str) -> Val {
    match type_range(ty) {
        Some((lo, hi)) => {
            if !v.iv.within(lo, hi) {
                v.iv = Ival::Range(lo, hi);
            }
            v.ty = Some(ty.to_string());
        }
        None => {
            v.iv = Ival::Top;
            v.ty = None;
        }
    }
    v.src = format!("{} as {ty}", v.src);
    v
}

impl Eval<'_, '_> {
    /// Evaluates an expression slice.
    fn eval_expr(&mut self, trees: &[Tree], expected: Option<&str>) -> Val {
        if trees.is_empty() {
            return Val::top();
        }
        let mut p = P { t: trees, k: 0 };
        self.expr_bp(&mut p, 0, expected)
    }

    /// Pratt loop over binary operators.
    fn expr_bp(&mut self, p: &mut P, min_bp: u8, expected: Option<&str>) -> Val {
        let mut lhs = self.primary(p, expected);
        while let Some(tok) = p.peek_tok() {
            if matches!(tok.text.as_str(), "=" | ".." | "..=" | "=>" | ",") {
                break;
            }
            let Some((lbp, rbp)) = bin_bp(&tok.text) else {
                break;
            };
            if lbp < min_bp {
                break;
            }
            let op = tok.text.clone();
            let line = tok.line;
            p.k += 1;
            let rhs_expected: Option<String> = match op.as_str() {
                "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" => lhs
                    .ty
                    .clone()
                    .filter(|t| t != "!err")
                    .or_else(|| expected.map(str::to_string)),
                _ => None,
            };
            let rhs = self.expr_bp(p, rbp, rhs_expected.as_deref());
            lhs = self.combine(lhs, &op, rhs, line, expected);
        }
        lhs
    }

    /// Applies one binary operator, running the overflow / shift-proof
    /// checks on the way.
    fn combine(
        &mut self,
        lhs: Val,
        op: &str,
        rhs: Val,
        line: usize,
        expected: Option<&str>,
    ) -> Val {
        let mut out = Val::top();
        out.src = format!("{} {op} {}", lhs.src, rhs.src);
        for h in lhs.hops.iter().chain(rhs.hops.iter()) {
            out.push_hop(h.clone());
        }
        let clean = |t: &Option<String>| t.clone().filter(|t| t != "!err");
        match op {
            "+" | "-" | "*" => {
                let op_ty = clean(&lhs.ty)
                    .or_else(|| clean(&rhs.ty))
                    .or_else(|| expected.map(str::to_string));
                let raw = match op {
                    "+" => lhs.iv.add(rhs.iv),
                    "-" => lhs.iv.sub(rhs.iv),
                    _ => lhs.iv.mul(rhs.iv),
                };
                out.iv = raw;
                out.ty = op_ty.clone();
                if let Some(ty) = op_ty {
                    if let Some((tlo, thi)) = type_range(&ty) {
                        if let Some((rlo, rhi)) = raw.bounds() {
                            if (rlo < tlo || rhi > thi)
                                && informative(lhs.iv, lhs.ty.as_deref(), &ty)
                                && informative(rhs.iv, rhs.ty.as_deref(), &ty)
                            {
                                let mut chain = out.hops.clone();
                                chain.push(format!("{} ∈ {}", compact_str(&lhs.src), lhs.iv));
                                chain.push(format!("{} ∈ {}", compact_str(&rhs.src), rhs.iv));
                                self.flag(
                                    line,
                                    format!(
                                        "`{}`: {ty} result may reach {raw} (escapes [{}, {}])",
                                        compact_str(&out.src),
                                        fmt_bound(tlo),
                                        fmt_bound(thi)
                                    ),
                                    chain,
                                );
                            }
                        }
                        if !raw.within(tlo, thi) {
                            out.iv = Ival::Range(tlo, thi);
                        }
                    }
                }
            }
            "<<" | ">>" => {
                let ty = clean(&lhs.ty).or_else(|| expected.map(str::to_string));
                out.iv = if op == "<<" {
                    lhs.iv.shl(rhs.iv)
                } else {
                    lhs.iv.shr(rhs.iv)
                };
                out.ty = ty.clone();
                if let Some(t) = ty {
                    if let Some((bits, _)) = int_width(&t) {
                        let proven = matches!(
                            rhs.iv.bounds(),
                            Some((lo, hi)) if lo >= 0 && hi < i128::from(bits)
                        );
                        if !proven {
                            let mut chain = out.hops.clone();
                            chain.push(format!(
                                "shift amount {} ∈ {}",
                                compact_str(&rhs.src),
                                rhs.iv
                            ));
                            self.flag(
                                line,
                                format!(
                                    "`{}`: shift amount {} not provably < {bits} ({t})",
                                    compact_str(&out.src),
                                    rhs.iv
                                ),
                                chain,
                            );
                        }
                        if let Some((tlo, thi)) = type_range(&t) {
                            if !out.iv.within(tlo, thi) {
                                out.iv = Ival::Range(tlo, thi);
                            }
                        }
                    }
                }
            }
            "/" => {
                out.iv = lhs.iv.div(rhs.iv);
                out.ty = clean(&lhs.ty)
                    .or_else(|| clean(&rhs.ty))
                    .or_else(|| expected.map(str::to_string));
            }
            "%" => {
                out.iv = lhs.iv.rem(rhs.iv);
                out.ty = clean(&lhs.ty)
                    .or_else(|| clean(&rhs.ty))
                    .or_else(|| expected.map(str::to_string));
            }
            "&" => {
                out.iv = lhs.iv.and(rhs.iv);
                out.ty = clean(&lhs.ty).or_else(|| clean(&rhs.ty));
            }
            "|" => {
                out.iv = lhs.iv.or(rhs.iv);
                out.ty = clean(&lhs.ty).or_else(|| clean(&rhs.ty));
            }
            "^" => {
                out.iv = lhs.iv.xor(rhs.iv);
                out.ty = clean(&lhs.ty).or_else(|| clean(&rhs.ty));
            }
            "==" | "!=" | "<" | "<=" | ">" | ">=" | "&&" | "||" => {
                out.iv = Ival::Range(0, 1);
            }
            _ => {}
        }
        out
    }
}

impl Eval<'_, '_> {
    /// Evaluates a prefix expression plus its postfix chain.
    fn primary(&mut self, p: &mut P, expected: Option<&str>) -> Val {
        let Some(t) = p.peek() else { return Val::top() };
        match t {
            Tree::Group(g) if g.delim == '(' => {
                p.k += 1;
                let v = if g.trees.iter().any(|t| t.is_punct(",")) {
                    for part in split_args(&g.trees) {
                        let _ = self.eval_expr(part, None);
                    }
                    Val::top()
                } else {
                    let mut inner = self.eval_expr(&g.trees, expected);
                    inner.src = format!("({})", inner.src);
                    inner
                };
                self.postfix(p, v, None)
            }
            Tree::Group(g) if g.delim == '[' => {
                p.k += 1;
                for part in split_args(&g.trees) {
                    let _ = self.eval_expr(part, None);
                }
                self.postfix(p, Val::top(), None)
            }
            Tree::Group(g) => {
                let g = g.clone();
                p.k += 1;
                let (ex, tail) = self.run_block(&g.trees);
                if !ex.falls {
                    self.diverged = true;
                }
                let v = tail.unwrap_or_else(Val::top);
                self.postfix(p, v, None)
            }
            Tree::Leaf(tok) => match tok.kind {
                Kind::Int => {
                    p.k += 1;
                    let v = match parse_int(&tok.text) {
                        Some((n, suf)) => {
                            let mut v = Val::of(Ival::lit(n));
                            v.ty = suf
                                .map(str::to_string)
                                .or_else(|| expected.map(str::to_string));
                            v.src = tok.text.clone();
                            v
                        }
                        None => Val::top(),
                    };
                    self.postfix(p, v, None)
                }
                Kind::Ident => self.primary_ident(p, expected),
                Kind::Punct => match tok.text.as_str() {
                    "-" => {
                        let line = tok.line;
                        p.k += 1;
                        let o = self.expr_bp(p, 72, expected);
                        let mut v = Val::of(o.iv.neg());
                        v.ty = o.ty.clone().filter(|t| t != "!err");
                        v.hops = o.hops;
                        v.src = format!("-{}", o.src);
                        // A negated value can escape an unsigned or
                        // asymmetric signed type just like `0 - x`.
                        if let Some(ty) = v.ty.clone() {
                            if let Some((tlo, thi)) = type_range(&ty) {
                                if let Some((rlo, rhi)) = v.iv.bounds() {
                                    if (rlo < tlo || rhi > thi)
                                        && informative(o.iv, o.ty.as_deref(), &ty)
                                    {
                                        let mut chain = v.hops.clone();
                                        chain.push(format!("{} ∈ {}", compact_str(&o.src), o.iv));
                                        self.flag(
                                            line,
                                            format!(
                                                "`{}`: {ty} result may reach {} (escapes [{}, {}])",
                                                compact_str(&v.src),
                                                v.iv,
                                                fmt_bound(tlo),
                                                fmt_bound(thi)
                                            ),
                                            chain,
                                        );
                                    }
                                    if !v.iv.within(tlo, thi) {
                                        v.iv = Ival::Range(tlo, thi);
                                    }
                                }
                            }
                        }
                        v
                    }
                    "!" => {
                        p.k += 1;
                        let _ = self.expr_bp(p, 72, None);
                        Val::top()
                    }
                    "&" => {
                        p.k += 1;
                        if p.peek().is_some_and(|t| t.is_ident("mut")) {
                            p.k += 1;
                        }
                        self.expr_bp(p, 72, expected)
                    }
                    "&&" => {
                        p.k += 1;
                        self.expr_bp(p, 72, expected)
                    }
                    "*" => {
                        p.k += 1;
                        self.expr_bp(p, 72, expected)
                    }
                    "|" | "||" => {
                        // Closure: treat the remainder as opaque.
                        p.k = p.t.len();
                        Val::top()
                    }
                    _ => {
                        p.k += 1;
                        Val::top()
                    }
                },
                _ => {
                    p.k += 1;
                    Val::top()
                }
            },
        }
    }

    /// Identifier-led primaries: keywords, macros, struct literals, paths,
    /// calls, and plain variable reads.
    fn primary_ident(&mut self, p: &mut P, expected: Option<&str>) -> Val {
        let Some(tok) = p.peek_tok() else {
            return Val::top();
        };
        let word = tok.text.clone();
        let line = tok.line;
        match word.as_str() {
            "if" => return self.eval_if(p),
            "match" => return self.eval_match(p),
            "while" => {
                p.k = self.stmt_while(p.t, p.k);
                return Val::top();
            }
            "for" => {
                p.k = self.stmt_for(p.t, p.k);
                return Val::top();
            }
            "loop" => {
                p.k = self.stmt_loop(p.t, p.k);
                return Val::top();
            }
            "unsafe" => {
                p.k += 1;
                return self.primary(p, expected);
            }
            "move" => {
                p.k = p.t.len();
                return Val::top();
            }
            "return" => {
                p.k += 1;
                let rest: Vec<Tree> = p.t[p.k..].to_vec();
                p.k = p.t.len();
                if rest.is_empty() {
                    self.push_ret(&Val::of(Ival::Top));
                } else {
                    let v = self.eval_expr(&rest, None);
                    self.push_ret(&v);
                }
                self.diverged = true;
                return Val::top();
            }
            "break" => {
                p.k = p.t.len();
                let env = self.env.clone();
                if let Some(f) = self.break_envs.last_mut() {
                    f.push(env);
                }
                self.diverged = true;
                return Val::top();
            }
            "continue" => {
                p.k = p.t.len();
                let env = self.env.clone();
                if let Some(f) = self.cont_envs.last_mut() {
                    f.push(env);
                }
                self.diverged = true;
                return Val::top();
            }
            "true" => {
                p.k += 1;
                return self.postfix(p, Val::of(Ival::lit(1)), None);
            }
            "false" => {
                p.k += 1;
                return self.postfix(p, Val::of(Ival::lit(0)), None);
            }
            "None" => {
                p.k += 1;
                let mut v = Val::top();
                v.ty = Some("!err".into());
                return self.postfix(p, v, None);
            }
            _ => {}
        }
        // Macro invocation in expression position.
        if p.t.get(p.k + 1).is_some_and(|t| t.is_punct("!")) {
            p.k += 2;
            if matches!(p.peek(), Some(Tree::Group(_))) {
                p.k += 1;
            }
            if matches!(
                word.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) {
                self.diverged = true;
            }
            return self.postfix(p, Val::top(), None);
        }
        // Struct literal: `Name { field: expr, .. }` — evaluate the field
        // initializers for findings, value itself is opaque.
        if word.chars().next().is_some_and(char::is_uppercase) {
            if let Some(Tree::Group(g)) = p.t.get(p.k + 1) {
                if g.delim == '{' {
                    let g = g.clone();
                    p.k += 2;
                    for part in split_args(&g.trees) {
                        if let Some(c) = part.iter().position(|t| t.is_punct(":")) {
                            let _ = self.eval_expr(&part[c + 1..], None);
                        }
                    }
                    return Val::top();
                }
            }
        }
        // Collect the `::`-separated path.
        let mut segs: Vec<String> = vec![word];
        p.k += 1;
        while p.peek().is_some_and(|t| t.is_punct("::")) {
            let after = p.k + 1;
            match p.t.get(after) {
                Some(Tree::Leaf(nt)) if nt.kind == Kind::Ident => {
                    segs.push(nt.text.clone());
                    p.k = after + 1;
                }
                Some(Tree::Leaf(nt)) if nt.text == "<" || nt.text == "<<" => {
                    p.k = skip_angles(p.t, after);
                }
                _ => {
                    p.k = after;
                    break;
                }
            }
        }
        // Call?
        if let Some(Tree::Group(g)) = p.peek() {
            if g.delim == '(' {
                let g = g.clone();
                p.k += 1;
                let name = segs.last().cloned().unwrap_or_default();
                if segs.len() == 1 && (name == "Ok" || name == "Some") {
                    let inner = split_args(&g.trees)
                        .first()
                        .map(|a| self.eval_expr(a, None))
                        .unwrap_or_else(Val::top);
                    return self.postfix(p, inner, None);
                }
                if segs.len() == 1 && name == "Err" {
                    for part in split_args(&g.trees) {
                        let _ = self.eval_expr(part, None);
                    }
                    let mut v = Val::top();
                    v.ty = Some("!err".into());
                    return self.postfix(p, v, None);
                }
                if segs.len() == 2 && int_width(&segs[0]).is_some() {
                    let argv = split_args(&g.trees)
                        .first()
                        .map(|a| self.eval_expr(a, None));
                    match (segs[1].as_str(), argv) {
                        ("from", Some(a)) => {
                            let mut v = a;
                            v.src = format!("{}::from({})", segs[0], compact_str(&v.src));
                            v.ty = Some(segs[0].clone());
                            if let Some((lo, hi)) = type_range(&segs[0]) {
                                if !v.iv.within(lo, hi) {
                                    v.iv = Ival::Range(lo, hi);
                                }
                            }
                            return self.postfix(p, v, None);
                        }
                        ("try_from", Some(a)) => {
                            let mut v = a;
                            v.src = format!("{}::try_from({})", segs[0], compact_str(&v.src));
                            v.ty = Some(segs[0].clone());
                            if let Some((lo, hi)) = type_range(&segs[0]) {
                                v.iv = v.iv.meet(Ival::Range(lo, hi));
                            }
                            return self.postfix(p, v, None);
                        }
                        _ => return self.postfix(p, Val::top(), None),
                    }
                }
                let v = self.call_named(&name, &g.trees, line);
                return self.postfix(p, v, None);
            }
        }
        // Non-call path.
        if segs.len() >= 2 {
            let last = segs.last().cloned().unwrap_or_default();
            if let Some((lo, hi)) = type_range(&segs[0]) {
                let b = match last.as_str() {
                    "MAX" => Some(hi),
                    "MIN" => Some(lo),
                    _ => None,
                };
                if let Some(b) = b {
                    let mut v = Val::of(Ival::lit(b));
                    v.ty = Some(segs[0].clone());
                    v.src = format!("{}::{last}", segs[0]);
                    return self.postfix(p, v, None);
                }
            }
            if let Some(&c) = self.ctx.consts.get(&last) {
                let mut v = Val::of(Ival::lit(c));
                v.ty = self
                    .ctx
                    .index
                    .const_types
                    .get(&last)
                    .filter(|t| int_width(t).is_some())
                    .cloned();
                v.src = last;
                return self.postfix(p, v, None);
            }
            return self.postfix(p, Val::top(), None);
        }
        let name = segs.pop().unwrap_or_default();
        let v = self.read_path(&name);
        self.postfix(p, v, Some(name))
    }
}

impl Eval<'_, '_> {
    /// Postfix chain: field access, method calls, indexing, `?`, `as`.
    fn postfix(&mut self, p: &mut P, mut v: Val, mut path: Option<String>) -> Val {
        loop {
            match p.peek() {
                Some(Tree::Leaf(tok)) if tok.text == "." => match p.t.get(p.k + 1) {
                    Some(Tree::Leaf(nt)) if nt.kind == Kind::Ident => {
                        let name = nt.text.clone();
                        let line = nt.line;
                        let mut ahead = p.k + 2;
                        if p.t.get(ahead).is_some_and(|t| t.is_punct("::")) {
                            ahead = skip_angles(p.t, ahead + 1);
                        }
                        if let Some(Tree::Group(g)) = p.t.get(ahead) {
                            if g.delim == '(' {
                                let g = g.clone();
                                p.k = ahead + 1;
                                v = self.method_call(v, path.take(), &name, &g.trees, line);
                                continue;
                            }
                        }
                        p.k += 2;
                        path = path.map(|pp| format!("{pp}.{name}"));
                        v = match &path {
                            Some(pp) => self.read_path(pp),
                            None => Val::top(),
                        };
                        continue;
                    }
                    Some(Tree::Leaf(nt)) if nt.kind == Kind::Int => {
                        p.k += 2;
                        v = Val::top();
                        path = None;
                        continue;
                    }
                    _ => {
                        p.k += 1;
                        continue;
                    }
                },
                Some(Tree::Leaf(tok)) if tok.text == "?" => {
                    p.k += 1;
                    continue;
                }
                Some(Tree::Leaf(tok)) if tok.kind == Kind::Ident && tok.text == "as" => {
                    p.k += 1;
                    let ty = p.peek_tok().map(|t| t.text.clone());
                    if let Some(t) = ty {
                        p.k += 1;
                        v = cast_val(v, &t);
                    }
                    path = None;
                    continue;
                }
                Some(Tree::Group(g)) if g.delim == '[' => {
                    let g = g.clone();
                    let line = g.line;
                    p.k += 1;
                    // Range-index slices (`a[..n]`) are not element reads.
                    if g.trees
                        .iter()
                        .any(|t| t.is_punct("..") || t.is_punct("..="))
                    {
                        let _ = self.eval_expr(&g.trees, None);
                        v = Val::top();
                        path = None;
                        continue;
                    }
                    let idx = self.eval_expr(&g.trees, None);
                    self.check_index(path.as_deref(), &idx, line);
                    let elem = path
                        .as_ref()
                        .and_then(|pp| self.array_info(pp))
                        .and_then(|(_, e)| e);
                    v = Val::top();
                    if let Some(e) = elem {
                        let e = strip_refs(&e).to_string();
                        if let Some((lo, hi)) = type_range(&e) {
                            v.iv = Ival::Range(lo, hi);
                            v.ty = Some(e);
                        }
                    }
                    path = None;
                    continue;
                }
                _ => break,
            }
        }
        if v.src.is_empty() {
            if let Some(pp) = &path {
                v.src = pp.clone();
            }
        }
        v
    }

    /// Flags an element read whose index interval provably escapes a known
    /// fixed array length.
    fn check_index(&mut self, path: Option<&str>, idx: &Val, line: usize) {
        let Some(p) = path else { return };
        let Some((n, _)) = self.array_info(p) else {
            return;
        };
        let Some((lo, hi)) = idx.iv.bounds() else {
            return;
        };
        if !informative(idx.iv, idx.ty.as_deref(), "usize") {
            return; // no knowledge about the index, stay quiet
        }
        if lo < 0 || hi >= n {
            let mut chain = idx.hops.clone();
            chain.push(format!("index {} ∈ {}", compact_str(&idx.src), idx.iv));
            self.flag(
                line,
                format!(
                    "`{p}[{}]`: index {} may escape length {n}",
                    compact_str(&idx.src),
                    idx.iv
                ),
                chain,
            );
        }
    }

    /// The (length, element type) of a known fixed-size array path.
    fn array_info(&self, p: &str) -> Option<(i128, Option<String>)> {
        if let Some(x) = self.arrays.get(p) {
            return Some(x.clone());
        }
        if !p.contains('.') {
            if let Some(t) = self.ctx.index.const_types.get(p) {
                return array_ty_parts(t, &self.ctx.consts);
            }
        }
        if p.contains('.') {
            let f = p.rsplit('.').next()?;
            let set = self.ctx.index.field_types.get(f)?;
            if set.len() == 1 {
                return array_ty_parts(set.iter().next()?, &self.ctx.consts);
            }
        }
        None
    }

    /// Workspace candidates for a call target, or empty when ambiguous.
    fn targets_of(&self, name: &str) -> Vec<usize> {
        let t = self.ctx.index.resolve_defined(name);
        if t.len() > MAX_CANDIDATES {
            Vec::new()
        } else {
            t
        }
    }

    /// Evaluates call arguments; `&mut x` arguments invalidate `x`.
    fn eval_args(&mut self, args: &[Tree]) -> Vec<Val> {
        let mut argv = Vec::new();
        for part in split_args(args) {
            if part.first().is_some_and(|t| t.is_punct("&"))
                && part.get(1).is_some_and(|t| t.is_ident("mut"))
            {
                if let Some(pp) = path_of(&part[2..]) {
                    self.invalidate_path(&pp);
                }
            }
            argv.push(self.eval_expr(part, None));
        }
        argv
    }

    /// Resolves a call through the interval transfer functions, checking
    /// declared contracts at the call edge. `None` when unresolved.
    fn transfer_call(&mut self, name: &str, argv: &[Val], line: usize) -> Option<Val> {
        let ids = self.targets_of(name);
        if ids.is_empty() {
            return None;
        }
        let mut iv: Option<Ival> = None;
        let mut ret_ty: Option<String> = None;
        for &id in &ids {
            let item = &self.ctx.index.fns[id].item;
            let named: Vec<&(String, String)> =
                item.params.iter().filter(|(n, _)| !n.is_empty()).collect();
            let mut call_ivs: Vec<Ival> = Vec::new();
            for (k, (pn, _)) in named.iter().enumerate() {
                let av = argv.get(k);
                let mut aiv = av.map_or(Ival::Top, |v| v.iv);
                if let Some((clo, chi)) = self.ctx.contract(&item.name, pn) {
                    if let Some(av) = av {
                        if let Some((alo, ahi)) = av.iv.bounds() {
                            if informative(av.iv, av.ty.as_deref(), "i128")
                                && (alo < clo || ahi > chi)
                            {
                                let mut chain = av.hops.clone();
                                chain.push(format!(
                                    "argument {} ∈ {}",
                                    compact_str(&av.src),
                                    av.iv
                                ));
                                self.flag(
                                    line,
                                    format!(
                                        "`{name}({pn})`: argument {} escapes declared contract [{}, {}] (ranges.toml)",
                                        av.iv,
                                        fmt_bound(clo),
                                        fmt_bound(chi)
                                    ),
                                    chain,
                                );
                            }
                        }
                    }
                    aiv = aiv.meet(Ival::Range(clo, chi));
                }
                call_ivs.push(aiv);
            }
            let r = self.ctx.transfer(id, &call_ivs);
            iv = Some(match iv {
                Some(x) => x.join(r),
                None => r,
            });
            if ids.len() == 1 {
                ret_ty = ret_scalar_ty(item.ret.as_deref());
            }
        }
        let mut out = Val::of(iv.unwrap_or(Ival::Top));
        out.ty = ret_ty;
        out.src = format!("{name}(…)");
        for a in argv {
            for h in &a.hops {
                out.push_hop(h.clone());
            }
        }
        if out.iv.bounds().is_some() {
            out.push_hop(format!("{name}(…) ∈ {}", out.iv));
        }
        Some(out)
    }

    /// Fallback models for the wire-source reader methods, keyed off the
    /// bit-count argument when it is known.
    fn source_model(&mut self, name: &str, argv: &[Val]) -> Val {
        let full = |t: &str| type_range(t).map_or(Ival::Top, |(lo, hi)| Ival::Range(lo, hi));
        let (iv, ty): (Ival, &str) = match name {
            "read_bit" | "decode_bit" | "decode_bypass" => (Ival::Range(0, 1), "u64"),
            "read_bits" | "decode_bypass_bits" => match argv.first().and_then(|a| a.iv.bounds()) {
                Some((lo, hi)) if lo >= 0 && hi <= 63 => (Ival::Range(0, (1i128 << hi) - 1), "u64"),
                _ => (full("u64"), "u64"),
            },
            "read_ue" | "decode_ue_bypass" => (full("u32"), "u32"),
            "read_se" => (full("i32"), "i32"),
            "read_le_u16" => (full("u16"), "u16"),
            "read_le_u32" => (full("u32"), "u32"),
            "read_le_u64" => (full("u64"), "u64"),
            "decode_truncated_unary" => match argv.first().and_then(|a| a.iv.bounds()) {
                Some((lo, hi)) if lo >= 0 => (Ival::Range(0, hi), "u32"),
                _ => (full("u32"), "u32"),
            },
            _ => (Ival::Top, ""),
        };
        let mut v = Val::of(iv);
        if !ty.is_empty() {
            v.ty = Some(ty.to_string());
        }
        v.src = format!("{name}(…)");
        if let Some(t) = v.ty.as_deref() {
            if let Some((lo, hi)) = type_range(t) {
                if !v.iv.covers(lo, hi) {
                    v.push_hop(format!("{name}(…) ∈ {}", v.iv));
                }
            }
        }
        v
    }

    /// A free-function call.
    fn call_named(&mut self, name: &str, args: &[Tree], line: usize) -> Val {
        let argv = self.eval_args(args);
        if let Some(v) = self.transfer_call(name, &argv, line) {
            if v.iv.bounds().is_some() || !SOURCE_METHODS.contains(&name) {
                return v;
            }
        }
        if SOURCE_METHODS.contains(&name) {
            return self.source_model(name, &argv);
        }
        Val::top()
    }
}

impl Eval<'_, '_> {
    /// A method call: modeled sanitizers first, then workspace transfer
    /// resolution, then the wire-source fallback models. Unmodeled calls
    /// invalidate knowledge rooted at the receiver path.
    fn method_call(
        &mut self,
        recv: Val,
        recv_path: Option<String>,
        name: &str,
        args: &[Tree],
        line: usize,
    ) -> Val {
        let argv = self.eval_args(args);
        let a0 = argv.first();
        let recv_tr = recv.ty.as_deref().map(strip_refs).and_then(type_range);
        // Substitute the receiver's full type range for Top so `.min` on an
        // unknown-but-typed value still yields a bound.
        let recv_eff = match (recv.iv, recv_tr) {
            (Ival::Top, Some((lo, hi))) => Ival::Range(lo, hi),
            (iv, _) => iv,
        };
        let bits = recv
            .ty
            .as_deref()
            .map(strip_refs)
            .and_then(int_width)
            .map(|(b, _)| i128::from(b));
        let mk = |iv: Ival, ty: Option<String>| -> Val {
            let mut v = Val::of(iv);
            v.ty = ty;
            v.hops = recv.hops.clone();
            v.src = format!("{}.{name}(…)", compact_str(&recv.src));
            v
        };
        match name {
            "min" => {
                let o = a0.map_or(Ival::Top, |a| a.iv);
                let mut v = mk(recv_eff.min_iv(o), recv.ty.clone());
                if v.iv.bounds().is_some() {
                    v.push_hop(format!("min(…) ∈ {}", v.iv));
                }
                return v;
            }
            "max" => {
                let o = a0.map_or(Ival::Top, |a| a.iv);
                return mk(recv_eff.max_iv(o), recv.ty.clone());
            }
            "clamp" if argv.len() == 2 => {
                if let (Some((l, _)), Some((_, h))) = (argv[0].iv.bounds(), argv[1].iv.bounds()) {
                    let mut v = mk(Ival::new(l, h), recv.ty.clone());
                    v.push_hop(format!("clamp(…) ∈ {}", v.iv));
                    return v;
                }
                return mk(Ival::Top, recv.ty.clone());
            }
            "leading_zeros" => {
                let b = bits.unwrap_or(128);
                let bitlen = |v: i128| i128::from(128 - v.leading_zeros());
                let iv = match recv_eff.bounds() {
                    Some((lo, hi)) if lo >= 0 => {
                        // monotone decreasing: lz(hi) ..= lz(lo)
                        Ival::new((b - bitlen(hi)).max(0), b - bitlen(lo))
                    }
                    _ => Ival::Range(0, b),
                };
                return mk(iv, Some("u32".into()));
            }
            "trailing_zeros" | "count_ones" | "count_zeros" => {
                let b = bits.unwrap_or(128);
                return mk(Ival::Range(0, b), Some("u32".into()));
            }
            "saturating_add" | "saturating_sub" | "saturating_mul" => {
                let o = a0.map_or(Ival::Top, |a| a.iv);
                let raw = match name {
                    "saturating_add" => recv_eff.add(o),
                    "saturating_sub" => recv_eff.sub(o),
                    _ => recv_eff.mul(o),
                };
                let iv = match recv_tr {
                    Some((lo, hi)) => match raw.bounds() {
                        Some((rl, rh)) => Ival::new(rl.clamp(lo, hi), rh.clamp(lo, hi)),
                        None => Ival::Range(lo, hi),
                    },
                    None => raw,
                };
                return mk(iv, recv.ty.clone());
            }
            "wrapping_add" | "wrapping_sub" | "wrapping_mul" | "wrapping_shl" | "wrapping_shr"
            | "wrapping_neg" | "checked_add" | "checked_sub" | "checked_mul" | "checked_shl"
            | "checked_shr" | "checked_div" | "overflowing_add" | "overflowing_sub"
            | "overflowing_mul" => {
                // Explicitly wrap-aware arithmetic: never flag, no knowledge.
                return mk(Ival::Top, recv.ty.clone());
            }
            "pow" => {
                if let (Some((rl, rh)), Some((el, eh))) =
                    (recv_eff.bounds(), a0.and_then(|a| a.iv.bounds()))
                {
                    if rl >= 0 && el >= 0 && eh <= 32 {
                        let hi = (0..eh).try_fold(1i128, |acc, _| acc.checked_mul(rh));
                        if let Some(hi) = hi {
                            let lo = (0..el).fold(1i128, |acc, _| acc.saturating_mul(rl));
                            return mk(Ival::new(lo.min(hi), hi), recv.ty.clone());
                        }
                    }
                }
                return mk(Ival::Top, recv.ty.clone());
            }
            "rem_euclid" => {
                if let Some((dl, dh)) = a0.and_then(|a| a.iv.bounds()) {
                    if dl > 0 {
                        return mk(Ival::Range(0, dh - 1), recv.ty.clone());
                    }
                }
                return mk(Ival::Top, recv.ty.clone());
            }
            "len" => {
                // Rust allocations cap at isize::MAX bytes, so any length
                // is below 2^63 — this keeps `i < buf.len()` narrowings
                // from poisoning later `+ small` arithmetic.
                return mk(Ival::Range(0, i64::MAX as i128), Some("usize".into()));
            }
            "unwrap" | "expect" | "ok" | "unwrap_unchecked" | "map_err" | "cloned" | "copied"
            | "clone" | "borrow" | "to_owned" => {
                let mut v = recv.clone();
                if v.is_err_marker() {
                    v.ty = None;
                }
                return v;
            }
            "unwrap_or" => {
                let mut v = recv.clone();
                if v.is_err_marker() {
                    v.ty = None;
                    v.iv = Ival::Top;
                }
                if let Some(a) = a0 {
                    v.iv = v.iv.join(a.iv);
                    if v.ty.is_none() {
                        v.ty = a.ty.clone().filter(|t| t != "!err");
                    }
                }
                return v;
            }
            "unwrap_or_default" => {
                let mut v = recv.clone();
                if v.is_err_marker() {
                    v.ty = None;
                    v.iv = Ival::Top;
                }
                v.iv = v.iv.join(Ival::lit(0));
                return v;
            }
            "into" | "try_into" => {
                // Target type unknown here; keep the interval, drop the type.
                let mut v = recv.clone();
                v.ty = None;
                return v;
            }
            "abs" | "unsigned_abs" | "isqrt" | "ilog2" | "signum" => {
                // Deliberately unmodeled numerics: no knowledge, no flag.
                return mk(Ival::Top, None);
            }
            _ => {}
        }
        // Workspace transfer resolution.
        let resolved = self.transfer_call(name, &argv, line);
        if resolved.is_some() || SOURCE_METHODS.contains(&name) {
            if let Some(pp) = &recv_path {
                self.invalidate_path(pp);
            }
        }
        if let Some(v) = &resolved {
            if v.iv.bounds().is_some() || !SOURCE_METHODS.contains(&name) {
                return resolved.unwrap_or_else(Val::top);
            }
        }
        if SOURCE_METHODS.contains(&name) {
            return self.source_model(name, &argv);
        }
        // Unknown method: the receiver may have been mutated.
        if let Some(pp) = &recv_path {
            self.invalidate_path(pp);
        }
        Val::top()
    }
}

impl Eval<'_, '_> {
    /// `if` in expression position.
    fn eval_if(&mut self, p: &mut P) -> Val {
        let (v, falls) = self.if_chain(p);
        if !falls {
            self.diverged = true;
        }
        v
    }

    /// One `if … {…} else if … {…} else {…}` chain; returns the joined
    /// value and whether any branch falls through.
    fn if_chain(&mut self, p: &mut P) -> (Val, bool) {
        let i = p.k;
        let Some(b) = find_block(p.t, i + 1) else {
            p.k = p.t.len();
            return (Val::top(), true);
        };
        let cond: Vec<Tree> = p.t[i + 1..b].to_vec();
        let Some(Tree::Group(body)) = p.t.get(b) else {
            p.k = b + 1;
            return (Val::top(), true);
        };
        let body = body.clone();
        p.k = b + 1;
        let is_let = cond.first().is_some_and(|t| t.is_ident("let"));
        let (then_env, else_base) = if is_let {
            let eqpos = cond.iter().position(|t| t.is_punct("="));
            let scrut_v = eqpos.map(|e| self.eval_expr(&cond[e + 1..], None));
            let mut te = self.env.clone();
            if let Some(e) = eqpos {
                let pat = &cond[1..e];
                let mut bound = false;
                if let [c, Tree::Group(g)] = pat {
                    if (c.is_ident("Some") || c.is_ident("Ok")) && !g.trees.is_empty() {
                        if let Some(n) = path_of(&g.trees) {
                            if let Some(sv) = &scrut_v {
                                if !sv.is_err_marker() {
                                    let mut vv = sv.clone();
                                    vv.src = n.clone();
                                    te.insert(n, vv);
                                    bound = true;
                                }
                            }
                        }
                    }
                }
                if !bound {
                    for n in pattern_names(&cond[1..e]) {
                        te.remove(&n);
                        self.tys.remove(&n);
                    }
                }
            }
            (te, self.env.clone())
        } else {
            let _ = self.eval_expr(&cond, None);
            (
                self.narrowed(self.env.clone(), &cond, true),
                self.narrowed(self.env.clone(), &cond, false),
            )
        };
        self.env = then_env;
        let (t_exit, t_val) = self.run_block(&body.trees);
        let t_env = std::mem::take(&mut self.env);
        let (e_env, e_val, e_falls) = if p.peek().is_some_and(|t| t.is_ident("else")) {
            p.k += 1;
            if p.peek().is_some_and(|t| t.is_ident("if")) {
                self.env = else_base;
                let (v, f) = self.if_chain(p);
                (std::mem::take(&mut self.env), Some(v), f)
            } else if let Some(Tree::Group(g)) = p.peek() {
                let g = g.clone();
                p.k += 1;
                self.env = else_base;
                let (ex, v) = self.run_block(&g.trees);
                (std::mem::take(&mut self.env), v, ex.falls)
            } else {
                (else_base, None, true)
            }
        } else {
            (else_base, None, true)
        };
        match (t_exit.falls, e_falls) {
            (true, true) => {
                self.env = join_env(&t_env, &e_env);
                let val = match (t_val, e_val) {
                    (Some(a), Some(b)) => {
                        let mut v = a.clone();
                        v.iv = a.iv.join(b.iv);
                        if v.ty != b.ty {
                            v.ty = None;
                        }
                        for h in &b.hops {
                            v.push_hop(h.clone());
                        }
                        Some(v)
                    }
                    _ => None,
                };
                (val.unwrap_or_else(Val::top), true)
            }
            (true, false) => {
                self.env = t_env;
                (t_val.unwrap_or_else(Val::top), true)
            }
            (false, true) => {
                self.env = e_env;
                (e_val.unwrap_or_else(Val::top), true)
            }
            (false, false) => {
                self.env = t_env;
                (Val::top(), false)
            }
        }
    }

    /// `match` in expression position: every arm runs from the entry env;
    /// the exit env and value are joined over the falling arms.
    fn eval_match(&mut self, p: &mut P) -> Val {
        let i = p.k;
        let Some(b) = find_block(p.t, i + 1) else {
            p.k = p.t.len();
            return Val::top();
        };
        let scrut: Vec<Tree> = p.t[i + 1..b].to_vec();
        let Some(Tree::Group(body)) = p.t.get(b) else {
            p.k = b + 1;
            return Val::top();
        };
        let body = body.clone();
        p.k = b + 1;
        let sv = self.eval_expr(&scrut, None);
        let scrut_path = path_of(&scrut);
        let base_env = self.env.clone();
        let base_tys = self.tys.clone();
        let base_arrays = self.arrays.clone();
        let ts = &body.trees;
        let mut a = 0usize;
        let mut out_env: Option<Env> = None;
        let mut out_val: Option<Val> = None;
        let mut saw_arm = false;
        while a < ts.len() {
            if ts[a].is_punct(",") || ts[a].is_punct("|") {
                a += 1;
                continue;
            }
            if ts[a].is_punct("#") {
                a += 1;
                if matches!(ts.get(a), Some(Tree::Group(_))) {
                    a += 1;
                }
                continue;
            }
            let Some(arrow) = (a..ts.len()).find(|&j| ts[j].is_punct("=>")) else {
                break;
            };
            let pat: Vec<Tree> = ts[a..arrow].to_vec();
            saw_arm = true;
            self.env = base_env.clone();
            self.tys = base_tys.clone();
            self.arrays = base_arrays.clone();
            for n in pattern_names(&pat) {
                self.env.remove(&n);
                self.tys.remove(&n);
            }
            if let (Some(sp), [one]) = (&scrut_path, &pat[..]) {
                if let Some(tok) = one.leaf().filter(|t| t.kind == Kind::Int) {
                    if let Some((lit, _)) = parse_int(&tok.text) {
                        self.set_path(sp, Ival::lit(lit));
                    }
                }
            }
            if let [c, Tree::Group(g)] = &pat[..] {
                if (c.is_ident("Some") || c.is_ident("Ok")) && !sv.is_err_marker() {
                    if let Some(n) = path_of(&g.trees) {
                        let mut vv = sv.clone();
                        vv.src = n.clone();
                        self.env.insert(n, vv);
                    }
                }
            }
            let (falls, val, next) = match ts.get(arrow + 1) {
                Some(Tree::Group(g)) if g.delim == '{' => {
                    let g = g.clone();
                    let (ex, v) = self.run_block(&g.trees);
                    (ex.falls, v, arrow + 2)
                }
                _ => {
                    let end = stmt_end(ts, arrow + 1);
                    let v = self.eval_expr(&ts[arrow + 1..end], None);
                    let d = std::mem::take(&mut self.diverged);
                    (!d, Some(v), end + 1)
                }
            };
            if falls {
                let e = self.env.clone();
                out_env = Some(match out_env {
                    Some(o) => join_env(&o, &e),
                    None => e,
                });
                if let Some(v) = val {
                    out_val = Some(match out_val {
                        Some(mut o) => {
                            o.iv = o.iv.join(v.iv);
                            if o.ty != v.ty {
                                o.ty = None;
                            }
                            o
                        }
                        None => v,
                    });
                }
            }
            a = next;
        }
        self.tys = base_tys;
        self.arrays = base_arrays;
        match out_env {
            Some(e) => self.env = e,
            None => {
                self.env = base_env;
                if saw_arm {
                    self.diverged = true;
                }
            }
        }
        out_val.unwrap_or_else(Val::top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateSrc, SourceFile, Workspace};

    fn index_of(src: &str) -> Index {
        let manifest = "[package]\nname = \"llm265-bitstream\"\n\n[lints]\nworkspace = true\n";
        let file = SourceFile::from_contents("crates/bitstream/src/lib.rs", src);
        let ws = Workspace {
            crates: vec![CrateSrc::from_parts(
                "llm265-bitstream",
                manifest,
                vec![file],
            )],
        };
        ws.build_index()
    }

    fn sites(src: &str, contracts: &[Contract]) -> Vec<(String, Site)> {
        let index = index_of(src);
        let ctx = RangeCtx::new(&index, contracts);
        let mut out = Vec::new();
        for id in 0..index.fns.len() {
            let name = index.fns[id].item.name.clone();
            for s in check_fn(&ctx, id) {
                out.push((name.clone(), s));
            }
        }
        out
    }

    fn msgs(src: &str) -> Vec<String> {
        sites(src, &[])
            .into_iter()
            .map(|(f, s)| format!("{f}: {}", s.msg))
            .collect()
    }

    #[test]
    fn const_folding_handles_arith_and_casts() {
        let consts = BTreeMap::from([("K".to_string(), 8i128)]);
        let f = |s: &str| fold_const(&trees_of(s), &consts);
        assert_eq!(f("3 * 32 + 1"), Some(97));
        assert_eq!(f("1 << K"), Some(256));
        assert_eq!(f("(K - 2) as usize"), Some(6));
        assert_eq!(f("u8::MAX as i128"), Some(255));
        assert_eq!(f("missing + 1"), None);
    }

    #[test]
    fn interval_ops_are_sound() {
        let a = Ival::new(2, 5);
        let b = Ival::new(-1, 3);
        assert_eq!(a.add(b), Ival::new(1, 8));
        assert_eq!(a.mul(b), Ival::new(-5, 15));
        assert_eq!(a.sub(b), Ival::new(-1, 6));
        assert_eq!(Ival::new(0, 7).shl(Ival::lit(4)), Ival::new(0, 112));
        assert_eq!(Ival::Top.min_iv(Ival::lit(9)), Ival::new(i128::MIN, 9));
        assert_eq!(a.join(Ival::Top), Ival::Top);
        assert_eq!(a.meet(Ival::new(4, 99)), Ival::new(4, 5));
    }

    #[test]
    fn widening_loop_converges_to_bound() {
        let src = r"
            pub fn acc() -> u32 {
                let mut total: u32 = 0;
                let mut i: u32 = 0;
                while i < 32 {
                    total = total + 2;
                    i = i + 1;
                }
                total
            }
        ";
        let index = index_of(src);
        let ctx = RangeCtx::new(&index, &[]);
        let (iv, s) = eval_fn(&ctx, 0, None, true);
        assert!(s.is_empty(), "unexpected findings: {s:?}");
        // Threshold widening pins i at the guard literal; total still
        // widens to the type bound, which is inside u32 — no flag.
        assert!(iv.within(0, u32::MAX as i128), "ret {iv}");
    }

    #[test]
    fn literal_arithmetic_escape_is_flagged() {
        let found = msgs(
            r"
            pub fn promote(a: u8) -> u16 {
                u16::from(a) * 300
            }
        ",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("u16 result"), "{found:?}");
    }

    #[test]
    fn no_knowledge_multiply_stays_quiet() {
        // Both operands cover their full type range: flagging `a * b`
        // for every u8 pair would drown the report.
        let found = msgs(
            r"
            pub fn scale(a: u8, b: u8) -> u8 {
                a * b
            }
        ",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn guarded_shift_is_quiet_unguarded_is_flagged() {
        let found = msgs(
            r"
            pub fn guarded(v: u32, n: u32) -> u32 {
                if n < 32 { v << n } else { 0 }
            }
            pub fn unguarded(v: u32, n: u32) -> u32 {
                v << n
            }
        ",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].starts_with("unguarded:"), "{found:?}");
        assert!(found[0].contains("not provably < 32"), "{found:?}");
    }

    #[test]
    fn min_and_mask_sanitize() {
        let found = msgs(
            r"
            pub fn capped(v: u64, n: u64) -> u64 {
                v >> n.min(63)
            }
            pub fn masked(v: u32, n: u32) -> u32 {
                v << (n & 31)
            }
        ",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn assert_guard_proves_shift() {
        let found = msgs(
            r"
            pub fn read(acc: u64, n: u32) -> u64 {
                assert!(n <= 57);
                acc >> n
            }
        ",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn contract_seeds_prove_shift() {
        let src = r"
            pub fn code_remainder(rem: u32, k: u32) -> u32 {
                rem << k
            }
        ";
        // Without the contract the shift amount is unbounded.
        assert_eq!(msgs(src).len(), 1);
        // The ranges.toml contract pins k to [0, 8].
        let c = [Contract {
            func: "code_remainder".into(),
            param: "k".into(),
            lo: 0,
            hi: 8,
        }];
        let found = sites(src, &c);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn index_bounds_are_checked() {
        let found = msgs(
            r"
            pub fn lut(i: u8) -> u8 {
                let table: [u8; 16] = [0; 16];
                table[usize::from(i & 15)]
            }
            pub fn oob(i: u8) -> u8 {
                let table: [u8; 16] = [0; 16];
                table[usize::from(i & 31)]
            }
        ",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].starts_with("oob:"), "{found:?}");
        assert!(found[0].contains("length 16"), "{found:?}");
    }

    #[test]
    fn transfer_functions_carry_intervals_across_calls() {
        let found = sites(
            r"
            fn promote(x: u8) -> u16 {
                u16::from(x)
            }
            pub fn decode_gain(a: u8) -> u16 {
                promote(a) * 300
            }
        ",
            &[],
        );
        assert_eq!(found.len(), 1, "{found:?}");
        let (f, s) = &found[0];
        assert_eq!(f, "decode_gain");
        assert!(s.msg.contains("u16 result"), "{}", s.msg);
        assert!(
            s.chain.iter().any(|h| h.contains("promote")),
            "chain lacks transfer hop: {:?}",
            s.chain
        );
    }

    #[test]
    fn try_from_and_unwrap_or_narrow() {
        let found = msgs(
            r"
            pub fn shrink(v: u32) -> u8 {
                let b = u8::try_from(v).unwrap_or(0);
                b + 0
            }
        ",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn return_default_meets_declared_type() {
        let src = r"
            pub fn bit() -> u32 {
                1
            }
            pub fn wide() -> u64 {
                u64::from(u32::MAX) + 1
            }
        ";
        let index = index_of(src);
        let ctx = RangeCtx::new(&index, &[]);
        assert_eq!(ctx.default_of(0), Ival::lit(1));
        assert_eq!(ctx.default_of(1), Ival::lit(1 << 32));
    }

    #[test]
    fn match_arms_join_and_literal_patterns_narrow() {
        let found = msgs(
            r"
            pub fn pick(mode: u8) -> u16 {
                let w: u16 = match mode {
                    0 => 100,
                    1 => 200,
                    _ => 300,
                };
                w * 300
            }
        ",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("u16 result"), "{found:?}");
    }

    #[test]
    fn contract_violation_at_call_edge_is_flagged() {
        let src = r"
            fn code_eg(m: u32) -> u32 {
                1 << m
            }
            pub fn caller() -> u32 {
                code_eg(40)
            }
        ";
        let c = [Contract {
            func: "code_eg".into(),
            param: "m".into(),
            lo: 1,
            hi: 9,
        }];
        let found = sites(src, &c);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].1.msg.contains("contract"), "{}", found[0].1.msg);
    }
}
