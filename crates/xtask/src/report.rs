//! Machine- and human-readable lint reports.

use std::fmt::Write as _;

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Pass identifier (`panic-freedom`, `symmetry`, `float-cmp`, `hygiene`).
    pub pass: &'static str,
    /// Workspace-relative file path (or crate name for manifest findings).
    pub path: String,
    /// 1-based line number; 0 when the finding is file- or crate-level.
    pub line: usize,
    /// What went wrong and how to fix it.
    pub message: String,
    /// Interprocedural witness chain (source → … → sink) for dataflow
    /// passes; empty for per-file findings.
    pub chain: Vec<String>,
}

impl Violation {
    pub fn new(pass: &'static str, path: &str, line: usize, message: impl Into<String>) -> Self {
        Violation {
            pass,
            path: path.to_string(),
            line,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Attaches a witness call chain (builder style).
    #[must_use]
    pub fn with_chain(mut self, chain: Vec<String>) -> Self {
        self.chain = chain;
        self
    }

    /// Stable finding identifier, usable with `--explain`.
    #[must_use]
    pub fn id(&self) -> String {
        format!("{}@{}:{}", self.pass, self.path, self.line)
    }
}

/// The result of a full lint run.
///
/// `violations` holds the findings that fail the gate; when a ratchet
/// baseline was applied, tolerated pre-existing findings move to
/// `baselined` and over-large baseline entries are listed in `stale`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub baselined: Vec<Violation>,
    pub stale_baseline: Vec<String>,
    pub files_scanned: usize,
    pub passes_run: Vec<&'static str>,
}

impl Report {
    /// True when nothing fails the gate (baselined findings don't).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Moves baseline-covered findings out of the failing set.
    pub fn apply_baseline(&mut self, baseline: &crate::baseline::Baseline) {
        let applied = baseline.apply(std::mem::take(&mut self.violations));
        self.violations = applied.new;
        self.baselined = applied.baselined;
        self.stale_baseline = applied.stale;
    }

    /// Human-readable report, one line per violation plus a summary.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            if v.line > 0 {
                let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.pass, v.message);
            } else {
                let _ = writeln!(out, "{}: [{}] {}", v.path, v.pass, v.message);
            }
        }
        for s in &self.stale_baseline {
            let _ = writeln!(out, "warning: stale baseline: {s}");
        }
        let _ = writeln!(
            out,
            "lint: {} violation(s) ({} baselined) across {} file(s); passes: {}",
            self.violations.len(),
            self.baselined.len(),
            self.files_scanned,
            self.passes_run.join(", ")
        );
        out
    }

    /// SARIF 2.1.0 report (hand-rolled; the workspace has no serde).
    ///
    /// One run, one rule per pass, one result per finding. Gate-failing
    /// findings are `error`-level; baseline-tolerated ones are emitted as
    /// `note`-level results carrying an `external` suppression, so SARIF
    /// viewers show the debt without flagging it. A non-empty witness
    /// chain becomes a `codeFlow` with one location per hop.
    #[must_use]
    pub fn to_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [{\n    \"tool\": {\"driver\": {\n      \
             \"name\": \"xtask-lint\",\n      \"rules\": [",
        );
        for (i, pass) in self.passes_run.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n        {{\"id\": \"{p}\", \"shortDescription\": {{\"text\": \"{p} pass\"}}}}",
                p = escape(pass)
            );
        }
        if !self.passes_run.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }},\n    \"results\": [");
        let mut first = true;
        for (v, suppressed) in self
            .violations
            .iter()
            .map(|v| (v, false))
            .chain(self.baselined.iter().map(|v| (v, true)))
        {
            if !first {
                out.push(',');
            }
            first = false;
            let level = if suppressed { "note" } else { "error" };
            let _ = write!(
                out,
                "\n      {{\"ruleId\": \"{}\", \"level\": \"{level}\", \
                 \"message\": {{\"text\": \"{}\"}}, \"locations\": [{}]",
                escape(v.pass),
                escape(&v.message),
                sarif_location(v)
            );
            if suppressed {
                out.push_str(", \"suppressions\": [{\"kind\": \"external\"}]");
            }
            if !v.chain.is_empty() {
                out.push_str(", \"codeFlows\": [{\"threadFlows\": [{\"locations\": [");
                for (j, hop) in v.chain.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "{{\"location\": {{{}, \"message\": {{\"text\": \"{}\"}}}}}}",
                        sarif_physical(v),
                        escape(hop)
                    );
                }
                out.push_str("]}]}]");
            }
            out.push('}');
        }
        if !first {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }]\n}");
        out
    }

    /// JSON report (hand-rolled; the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        write_violations(&mut out, &self.violations);
        out.push_str("],\n  \"baselined\": [");
        write_violations(&mut out, &self.baselined);
        out.push_str("],\n  \"stale_baseline\": [");
        for (i, s) in self.stale_baseline.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", escape(s));
        }
        let _ = write!(
            out,
            "],\n  \"count\": {},\n  \"baselined_count\": {},\n  \"files_scanned\": {}\n}}",
            self.violations.len(),
            self.baselined.len(),
            self.files_scanned
        );
        out
    }
}

/// A SARIF `location` object for a finding; crate-level findings
/// (line 0) omit the region, as SARIF requires `startLine >= 1`.
fn sarif_location(v: &Violation) -> String {
    format!("{{{}}}", sarif_physical(v))
}

/// The `physicalLocation` member shared by locations and code-flow hops.
fn sarif_physical(v: &Violation) -> String {
    let mut out = format!(
        "\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}",
        escape(&v.path)
    );
    if v.line > 0 {
        let _ = write!(out, ", \"region\": {{\"startLine\": {}}}", v.line);
    }
    out.push('}');
    out
}

fn write_violations(out: &mut String, violations: &[Violation]) {
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": \"{}\", \"pass\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \"chain\": [",
            escape(&v.id()),
            escape(v.pass),
            escape(&v.path),
            v.line,
            escape(&v.message)
        );
        for (j, hop) in v.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", escape(hop));
        }
        out.push_str("]}");
    }
    if !violations.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_report_lists_violations_and_summary() {
        let mut r = Report {
            passes_run: vec!["panic-freedom"],
            files_scanned: 3,
            ..Report::default()
        };
        r.violations.push(Violation::new(
            "panic-freedom",
            "a.rs",
            7,
            "unwrap() in decode path",
        ));
        let text = r.to_text();
        assert!(text.contains("a.rs:7: [panic-freedom] unwrap() in decode path"));
        assert!(text.contains("1 violation(s) (0 baselined) across 3 file(s)"));
        assert!(!r.is_clean());
    }

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let mut r = Report::default();
        r.violations
            .push(Violation::new("hygiene", "x\"y.rs", 0, "line1\nline2"));
        let json = r.to_json();
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("x\\\"y.rs"));
        assert!(json.contains("line1\\nline2"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chain_and_id_round_trip_through_json() {
        let mut r = Report::default();
        r.violations.push(
            Violation::new("wire-taint", "a.rs", 7, "tainted").with_chain(vec![
                "read_ue()".to_string(),
                "wire_len".to_string(),
                "decode_block".to_string(),
            ]),
        );
        assert_eq!(r.violations[0].id(), "wire-taint@a.rs:7");
        let json = r.to_json();
        assert!(json.contains("\"id\": \"wire-taint@a.rs:7\""));
        assert!(
            json.contains("\"chain\": [\"read_ue()\", \"wire_len\", \"decode_block\"]"),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn sarif_report_carries_rules_results_and_suppressions() {
        let mut r = Report {
            passes_run: vec!["range-proof", "wire-taint"],
            files_scanned: 2,
            ..Report::default()
        };
        r.violations.push(
            Violation::new("range-proof", "a.rs", 7, "i32 escapes u16").with_chain(vec![
                "fn decode_gain".to_string(),
                "promote(a) ∈ [0, 255]".to_string(),
            ]),
        );
        r.baselined
            .push(Violation::new("wire-taint", "b.rs", 0, "tainted length"));
        let sarif = r.to_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"id\": \"range-proof\""));
        assert!(sarif.contains("\"ruleId\": \"range-proof\", \"level\": \"error\""));
        // The baselined finding is a suppressed note, not an error.
        assert!(sarif.contains("\"ruleId\": \"wire-taint\", \"level\": \"note\""));
        assert!(sarif.contains("\"suppressions\": [{\"kind\": \"external\"}]"));
        // Line 0 must not produce a SARIF region (startLine >= 1).
        assert!(sarif.contains("\"uri\": \"b.rs\"}}"));
        assert!(sarif.contains("\"startLine\": 7"));
        // The witness chain rides along as a code flow.
        assert!(sarif.contains("\"codeFlows\""));
        assert!(sarif.contains("promote(a)"));
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
        assert_eq!(sarif.matches('[').count(), sarif.matches(']').count());
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"count\": 0"));
    }

    #[test]
    fn baselined_findings_do_not_fail_the_gate() {
        let mut r = Report::default();
        r.violations
            .push(Violation::new("cast-safety", "a.rs", 4, "narrowing"));
        r.violations
            .push(Violation::new("cast-safety", "a.rs", 9, "narrowing"));
        let b = crate::baseline::Baseline::parse("[cast-safety]\n\"a.rs\" = 1\n").expect("parse");
        r.apply_baseline(&b);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.baselined.len(), 1);
        assert!(!r.is_clean());
        let text = r.to_text();
        assert!(text.contains("1 violation(s) (1 baselined)"));
        let json = r.to_json();
        assert!(json.contains("\"baselined_count\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
