//! Workspace-wide item index and call graph.
//!
//! Built once per lint run: every crate's files are parsed and their items
//! merged into one queryable structure. Passes use it for cross-file
//! reasoning — resolving a call to its definition(s), looking up a
//! function's return type or a struct field's width, and walking the call
//! graph from a set of root functions to its reachable closure.
//!
//! All maps are `BTreeMap`/`BTreeSet`: the lint gate's own output must be
//! deterministic across runs, for exactly the reasons the determinism pass
//! enforces on the codec.

use std::collections::{BTreeMap, BTreeSet};

use super::items::FnItem;
use super::lex::Kind;
use super::tree::{Group, Tree};

/// One indexed function: where it lives plus its parsed item.
#[derive(Debug, Clone)]
pub struct FnEntry {
    /// Package name of the defining crate.
    pub krate: String,
    /// Workspace-relative file path.
    pub path: String,
    /// The parsed item.
    pub item: FnItem,
    /// Names this function calls (direct calls, method calls and paths).
    pub calls: BTreeSet<String>,
    /// Macro names this function invokes (`panic`, `vec`, `write`, …).
    pub macros: BTreeSet<String>,
}

/// The merged index over every crate in the workspace.
#[derive(Debug, Clone, Default)]
pub struct Index {
    /// All functions, in deterministic (crate, path, line) order.
    pub fns: Vec<FnEntry>,
    /// Function name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Struct field name → every declared type for that field name.
    pub field_types: BTreeMap<String, BTreeSet<String>>,
    /// Const/static name → declared type.
    pub const_types: BTreeMap<String, String>,
    /// Const/static name → initializer trees (for interval evaluation).
    pub const_inits: BTreeMap<String, Vec<Tree>>,
}

impl Index {
    /// Adds one parsed file's items to the index.
    pub fn add_file(&mut self, krate: &str, path: &str, items: &super::items::FileItems) {
        for f in &items.fns {
            let (calls, macros) = f
                .body
                .as_ref()
                .map_or((BTreeSet::new(), BTreeSet::new()), collect_calls);
            let id = self.fns.len();
            self.by_name.entry(f.name.clone()).or_default().push(id);
            self.fns.push(FnEntry {
                krate: krate.to_string(),
                path: path.to_string(),
                item: f.clone(),
                calls,
                macros,
            });
        }
        for s in &items.structs {
            for (field, ty) in &s.fields {
                self.field_types
                    .entry(field.clone())
                    .or_default()
                    .insert(ty.clone());
            }
        }
        for c in &items.consts {
            self.const_types.insert(c.name.clone(), c.ty.clone());
            if !c.init.is_empty() {
                self.const_inits.insert(c.name.clone(), c.init.clone());
            }
        }
    }

    /// Indices of every workspace function with this name.
    #[must_use]
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Like [`Index::resolve`], but keeps only definitions with bodies.
    /// Bodiless trait-method *declarations* are never call targets — the
    /// call dispatches to an impl — and counting them toward a candidate
    /// cap would make a name with one trait declaration plus `cap` impls
    /// silently unresolvable, dropping every impl from the closure.
    #[must_use]
    pub fn resolve_defined(&self, name: &str) -> Vec<usize> {
        self.resolve(name)
            .iter()
            .copied()
            .filter(|&t| self.fns[t].item.body.is_some())
            .collect()
    }

    /// The call-graph closure reachable from the given function indices,
    /// resolving calls by name. A name that maps to more than
    /// `max_candidates` bodied definitions is treated as unresolvable
    /// (common names like `new` would otherwise connect everything to
    /// everything).
    #[must_use]
    pub fn reachable(&self, roots: &[usize], max_candidates: usize) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut frontier: Vec<usize> = roots.to_vec();
        while let Some(id) = frontier.pop() {
            for call in &self.fns[id].calls {
                let targets = self.resolve_defined(call);
                if targets.is_empty() || targets.len() > max_candidates {
                    continue;
                }
                for t in targets {
                    if seen.insert(t) {
                        frontier.push(t);
                    }
                }
            }
        }
        seen
    }

    /// A breadcrumb path of function names from `from` to `to` through the
    /// call graph, if one exists within `max_candidates` resolution.
    #[must_use]
    pub fn call_chain(&self, from: usize, to: usize, max_candidates: usize) -> Option<Vec<String>> {
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier = vec![from];
        let mut seen: BTreeSet<usize> = [from].into();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &id in &frontier {
                for call in &self.fns[id].calls {
                    let targets = self.resolve_defined(call);
                    if targets.is_empty() || targets.len() > max_candidates {
                        continue;
                    }
                    for t in targets {
                        if seen.insert(t) {
                            prev.insert(t, id);
                            next.push(t);
                        }
                    }
                }
            }
            if seen.contains(&to) {
                break;
            }
            frontier = next;
        }
        if !seen.contains(&to) {
            return None;
        }
        let mut chain = vec![self.fns[to].item.name.clone()];
        let mut cur = to;
        while cur != from {
            cur = *prev.get(&cur)?;
            chain.push(self.fns[cur].item.name.clone());
        }
        chain.reverse();
        Some(chain)
    }
}

/// Collects called function names and invoked macro names from a body.
fn collect_calls(body: &Group) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut calls = BTreeSet::new();
    let mut macros = BTreeSet::new();
    walk_calls(&body.trees, &mut calls, &mut macros);
    (calls, macros)
}

fn walk_calls(trees: &[Tree], calls: &mut BTreeSet<String>, macros: &mut BTreeSet<String>) {
    for (k, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            walk_calls(&g.trees, calls, macros);
            continue;
        }
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != Kind::Ident {
            continue;
        }
        match trees.get(k + 1) {
            // `name!(…)` / `name![…]` / `name! {…}` — macro invocation.
            Some(next)
                if next.is_punct("!") && trees.get(k + 2).and_then(Tree::group).is_some() =>
            {
                macros.insert(tok.text.clone());
            }
            // `name(…)` — call (also the tail of `a::b(…)` and `x.m(…)`).
            Some(Tree::Group(g)) if g.delim == '(' => {
                // Exclude definitions (`fn name(…)`) and control keywords.
                let is_def = k > 0 && trees[k - 1].is_ident("fn");
                const KEYWORDS: &[&str] = &[
                    "if", "while", "match", "for", "loop", "return", "in", "as", "let", "else",
                    "move", "mut", "ref", "break", "continue",
                ];
                if !is_def && !KEYWORDS.contains(&tok.text.as_str()) {
                    calls.insert(tok.text.clone());
                }
            }
            _ => {}
        }
    }
}

/// Removes `#[cfg(test)]`-gated items from a forest, recursing into every
/// group, so token-level scans never see test code. The attribute tokens
/// themselves are removed along with the gated item.
#[must_use]
pub fn strip_test_items(forest: &[Tree]) -> Vec<Tree> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < forest.len() {
        // A `#` `[cfg(test)…]` attribute: drop it and the item it gates.
        if forest[i].is_punct("#") {
            if let Some(g) = forest.get(i + 1).and_then(Tree::group) {
                let text = super::tree::to_text(&g.trees).replace(' ', "");
                if g.delim == '[' && (text.starts_with("cfg(test)") || text == "test") {
                    i = skip_gated(forest, i + 2);
                    continue;
                }
            }
        }
        match &forest[i] {
            Tree::Group(g) => out.push(Tree::Group(Group {
                delim: g.delim,
                trees: strip_test_items(&g.trees),
                line: g.line,
            })),
            leaf => out.push(leaf.clone()),
        }
        i += 1;
    }
    out
}

/// Skips past one gated item starting at `from`: consumes any further
/// attributes, then everything through the first top-level `{…}` or `;`.
fn skip_gated(forest: &[Tree], from: usize) -> usize {
    let mut k = from;
    while k < forest.len() {
        if forest[k].is_punct("#") && forest.get(k + 1).and_then(Tree::group).is_some() {
            k += 2;
            continue;
        }
        break;
    }
    while k < forest.len() {
        if let Some(g) = forest[k].group() {
            if g.delim == '{' {
                return k + 1;
            }
        }
        if forest[k].is_punct(";") {
            return k + 1;
        }
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::super::items::parse;
    use super::super::lex::lex;
    use super::super::tree::build;
    use super::*;

    fn index_of(srcs: &[(&str, &str)]) -> Index {
        let mut idx = Index::default();
        for (path, src) in srcs {
            let forest = strip_test_items(&build(&lex(src)));
            idx.add_file("demo", path, &parse(&forest));
        }
        idx
    }

    #[test]
    fn calls_and_macros_are_collected() {
        let idx = index_of(&[(
            "a.rs",
            "fn top() { helper(1); x.method(2); path::tail(3); m!(4); if cond() {} }",
        )]);
        let e = &idx.fns[0];
        assert!(e.calls.contains("helper"));
        assert!(e.calls.contains("method"));
        assert!(e.calls.contains("tail"));
        assert!(e.calls.contains("cond"));
        assert!(!e.calls.contains("if"));
        assert!(e.macros.contains("m"));
        assert!(!e.calls.contains("m"));
    }

    #[test]
    fn reachability_walks_the_graph() {
        let idx = index_of(&[(
            "a.rs",
            "fn decode_x() { mid() }\nfn mid() { deep() }\nfn deep() {}\nfn unrelated() {}",
        )]);
        let root = idx.resolve("decode_x")[0];
        let seen = idx.reachable(&[root], 3);
        let names: Vec<&str> = seen
            .iter()
            .map(|&i| idx.fns[i].item.name.as_str())
            .collect();
        assert_eq!(names, vec!["decode_x", "mid", "deep"]);
        let deep = idx.resolve("deep")[0];
        let chain = idx.call_chain(root, deep, 3).expect("chain");
        assert_eq!(chain, vec!["decode_x", "mid", "deep"]);
    }

    #[test]
    fn ambiguous_names_do_not_connect() {
        let idx = index_of(&[(
            "a.rs",
            "fn root() { new() }\nfn new() {}\nimpl A { fn new() {} }\nimpl B { fn new() {} }",
        )]);
        let root = idx.resolve("root")[0];
        // `new` resolves to 3 candidates; with max 2 it is unresolvable.
        assert_eq!(idx.reachable(&[root], 2).len(), 1);
        assert_eq!(idx.reachable(&[root], 3).len(), 4);
    }

    /// A trait's bodiless declaration must not count toward the candidate
    /// cap: one declaration plus `cap` impls would otherwise make the
    /// name unresolvable and silently drop every impl from the closure.
    #[test]
    fn bodiless_trait_declarations_are_not_candidates() {
        let idx = index_of(&[(
            "a.rs",
            "trait Lanes { fn axpy(&self); }\n\
             impl Lanes for A { fn axpy(&self) { deep() } }\n\
             impl Lanes for B { fn axpy(&self) {} }\n\
             impl Lanes for C { fn axpy(&self) {} }\n\
             fn deep() {}\n\
             fn decode_root() { axpy() }\n",
        )]);
        assert_eq!(idx.resolve("axpy").len(), 4);
        assert_eq!(idx.resolve_defined("axpy").len(), 3);
        let root = idx.resolve("decode_root")[0];
        let seen = idx.reachable(&[root], 3);
        // Root + the three bodied impls + `deep` through the first impl.
        assert_eq!(seen.len(), 5, "closure missed trait impls");
        let deep = idx.resolve("deep")[0];
        let chain = idx.call_chain(root, deep, 3).expect("chain through impl");
        assert_eq!(chain, vec!["decode_root", "axpy", "deep"]);
    }

    #[test]
    fn strip_removes_test_items_from_token_view() {
        let forest = strip_test_items(&build(&lex(
            "fn live() { a == 1.0; }\n#[cfg(test)]\nmod tests { fn t() { b == 2.0; } }",
        )));
        let text = super::super::tree::to_text(&forest);
        assert!(text.contains("1.0"));
        assert!(!text.contains("2.0"));
        assert!(!text.contains("cfg"));
    }

    #[test]
    fn field_and_const_types_are_indexed() {
        let idx = index_of(&[(
            "a.rs",
            "struct Mv { dx: i8 }\nconst MAX: u32 = 9;\nfn f() {}",
        )]);
        assert!(idx.field_types["dx"].contains("i8"));
        assert_eq!(idx.const_types["MAX"], "u32");
    }
}
