//! Token trees: the flat token stream nested by delimiter.
//!
//! Mirrors `proc-macro2`'s `TokenTree` shape: a tree is either a leaf
//! token or a delimited group containing subtrees. Item parsing and every
//! expression-level scan walk these trees, so brace/bracket/paren matching
//! is done exactly once, here.

use super::lex::{Kind, Token};

/// A leaf token or a delimited group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A `(…)`, `[…]` or `{…}` group.
    Group(Group),
}

/// A delimited group of subtrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Opening delimiter character: `(`, `[` or `{`.
    pub delim: char,
    /// The contained trees.
    pub trees: Vec<Tree>,
    /// 0-based line of the opening delimiter.
    pub line: usize,
}

impl Tree {
    /// The leaf token, if this is a leaf.
    #[must_use]
    pub fn leaf(&self) -> Option<&Token> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is a group.
    #[must_use]
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Leaf(_) => None,
            Tree::Group(g) => Some(g),
        }
    }

    /// Whether this is an identifier leaf with this text.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_ident(s))
    }

    /// Whether this is a punctuation leaf with this text.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_punct(s))
    }

    /// 0-based line of this tree's first token.
    #[must_use]
    pub fn line(&self) -> usize {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.line,
        }
    }
}

impl Group {
    /// Depth-first walk over every group in this tree (including self),
    /// invoking `f` with each group.
    pub fn walk_groups<'a>(&'a self, f: &mut impl FnMut(&'a Group)) {
        f(self);
        for t in &self.trees {
            if let Tree::Group(g) = t {
                g.walk_groups(f);
            }
        }
    }

    /// Depth-first iterator over every leaf token in this group, in source
    /// order, descending into subgroups (delimiters themselves excluded).
    pub fn leaves<'a>(&'a self, out: &mut Vec<&'a Token>) {
        for t in &self.trees {
            match t {
                Tree::Leaf(tok) => out.push(tok),
                Tree::Group(g) => g.leaves(out),
            }
        }
    }
}

/// Builds a forest of trees from a token stream. Unbalanced closers are
/// dropped and unclosed groups are closed at end-of-input, so malformed
/// source degrades gracefully instead of failing the lint run.
pub fn build(tokens: &[Token]) -> Vec<Tree> {
    let mut stack: Vec<Group> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for tok in tokens {
        match tok.kind {
            Kind::Open => stack.push(Group {
                delim: tok.text.chars().next().unwrap_or('('),
                trees: Vec::new(),
                line: tok.line,
            }),
            Kind::Close => {
                if let Some(g) = stack.pop() {
                    let tree = Tree::Group(g);
                    match stack.last_mut() {
                        Some(parent) => parent.trees.push(tree),
                        None => top.push(tree),
                    }
                }
            }
            _ => {
                let tree = Tree::Leaf(tok.clone());
                match stack.last_mut() {
                    Some(parent) => parent.trees.push(tree),
                    None => top.push(tree),
                }
            }
        }
    }
    while let Some(g) = stack.pop() {
        let tree = Tree::Group(g);
        match stack.last_mut() {
            Some(parent) => parent.trees.push(tree),
            None => top.push(tree),
        }
    }
    top
}

/// Renders a slice of trees back to compact text (used for type strings in
/// the item index, e.g. `Result<Vec<i32>,CodecError>`).
#[must_use]
pub fn to_text(trees: &[Tree]) -> String {
    let mut out = String::new();
    render(trees, &mut out);
    out
}

fn render(trees: &[Tree], out: &mut String) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => {
                // Separate adjacent word-ish tokens so `mut self` does not
                // fuse into `mutself`.
                if out
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    && tok
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    out.push(' ');
                }
                out.push_str(&tok.text);
            }
            Tree::Group(g) => {
                let (open, close) = match g.delim {
                    '[' => ('[', ']'),
                    '{' => ('{', '}'),
                    _ => ('(', ')'),
                };
                out.push(open);
                render(&g.trees, out);
                out.push(close);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lex::lex;
    use super::*;

    #[test]
    fn nesting_matches_delimiters() {
        let trees = build(&lex("fn f(a: [u8; 4]) { g(1, (2)); }"));
        // fn, f, (…), {…}
        assert_eq!(trees.len(), 4);
        let body = trees[3].group().expect("body group");
        assert_eq!(body.delim, '{');
        let call_args = body.trees[1].group().expect("call args");
        assert_eq!(call_args.delim, '(');
        assert!(call_args.trees.iter().any(|t| t.is_punct(",")));
    }

    #[test]
    fn unbalanced_input_does_not_lose_tokens() {
        let trees = build(&lex("a } b { c"));
        let mut leaves = Vec::new();
        for t in &trees {
            match t {
                Tree::Leaf(tok) => leaves.push(tok.text.clone()),
                Tree::Group(g) => {
                    let mut inner = Vec::new();
                    g.leaves(&mut inner);
                    leaves.extend(inner.iter().map(|t| t.text.clone()));
                }
            }
        }
        assert_eq!(leaves, vec!["a", "b", "c"]);
    }

    #[test]
    fn to_text_round_trips_types() {
        let trees = build(&lex("Result < Vec < i32 > , CodecError >"));
        assert_eq!(to_text(&trees), "Result<Vec<i32>,CodecError>");
    }

    #[test]
    fn walk_groups_visits_nested() {
        let trees = build(&lex("{ a { b } ( c ) }"));
        let mut n = 0;
        trees[0].group().unwrap().walk_groups(&mut |_| n += 1);
        assert_eq!(n, 3);
    }
}
