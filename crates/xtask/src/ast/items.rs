//! Item-level parsing: functions, impl blocks, structs, consts, modules.
//!
//! Walks a token-tree forest and extracts the items the analysis passes
//! care about, with enough signature detail for cross-file reasoning:
//! parameter names and types, return types, attributes, and struct field
//! types. `#[cfg(test)]`-gated items (and everything nested inside them)
//! are dropped at this level, so no pass ever sees test code.

use super::tree::{to_text, Group, Tree};

/// A parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Whether the item carries a `pub` qualifier (`pub`, `pub(crate)`,
    /// `pub(super)` all count — the dataflow passes treat any of them as
    /// externally reachable).
    pub is_pub: bool,
    /// Enclosing `impl`/`trait` type name, if any (generics stripped).
    pub self_ty: Option<String>,
    /// `(name, type)` pairs; receiver params (`self`, `&mut self`) and
    /// destructuring patterns record an empty name.
    pub params: Vec<(String, String)>,
    /// Compact return-type text (`Result<Vec<i32>,CodecError>`), if any.
    pub ret: Option<String>,
    /// Attribute texts (`must_use`, `inline`, `cfg(feature=...)`).
    pub attrs: Vec<String>,
    /// Body group; `None` for bodiless trait-method declarations.
    pub body: Option<Group>,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
}

/// A named-field struct definition.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// `(field, type)` pairs.
    pub fields: Vec<(String, String)>,
}

/// A `const`/`static` item with an explicit type.
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// Item name.
    pub name: String,
    /// Compact type text.
    pub ty: String,
    /// Initializer trees (between `=` and `;`); empty when absent. The
    /// interval domain folds these to values (`const TOP: u32 = 1 << 24`).
    pub init: Vec<Tree>,
}

/// Everything item parsing extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub consts: Vec<ConstItem>,
}

/// Parses a token-tree forest into items, dropping `#[cfg(test)]` subtrees.
#[must_use]
pub fn parse(forest: &[Tree]) -> FileItems {
    let mut out = FileItems::default();
    parse_into(forest, None, &mut out);
    out
}

fn parse_into(forest: &[Tree], self_ty: Option<&str>, out: &mut FileItems) {
    let mut i = 0usize;
    let mut attrs: Vec<String> = Vec::new();
    while i < forest.len() {
        let t = &forest[i];
        // Attribute: `#` `[ ... ]` (outer) or `#` `!` `[ ... ]` (inner).
        if t.is_punct("#") {
            let mut j = i + 1;
            if forest.get(j).is_some_and(|t| t.is_punct("!")) {
                j += 1;
            }
            if let Some(g) = forest.get(j).and_then(Tree::group) {
                if g.delim == '[' {
                    attrs.push(to_text(&g.trees));
                    i = j + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        let Some(tok) = t.leaf() else {
            i += 1;
            attrs.clear();
            continue;
        };
        match tok.text.as_str() {
            _ if is_test_gated(&attrs) => {
                // Skip the whole gated item: advance past its body group or
                // terminating semicolon.
                i = skip_item(forest, i);
                attrs.clear();
            }
            "fn" => {
                let (f, next) = parse_fn(forest, i, self_ty, std::mem::take(&mut attrs));
                if let Some(f) = f {
                    out.fns.push(f);
                }
                i = next;
            }
            "impl" => {
                let (ty, body, next) = parse_impl_header(forest, i);
                if let Some(body) = body {
                    parse_into(&body.trees, ty.as_deref(), out);
                }
                i = next;
                attrs.clear();
            }
            "trait" => {
                let name = ident_after(forest, i);
                let (body, next) = find_body(forest, i + 1);
                if let Some(body) = body {
                    parse_into(&body.trees, name.as_deref(), out);
                }
                i = next;
                attrs.clear();
            }
            "mod" => {
                let (body, next) = find_body(forest, i + 1);
                if let Some(body) = body {
                    parse_into(&body.trees, self_ty, out);
                }
                i = next;
                attrs.clear();
            }
            "struct" => {
                let name = ident_after(forest, i).unwrap_or_default();
                let (body, next) = find_body(forest, i + 1);
                if let Some(body) = body {
                    out.structs.push(StructItem {
                        name,
                        fields: parse_fields(&body.trees),
                    });
                }
                i = next;
                attrs.clear();
            }
            "const" | "static" => {
                // `const NAME: Type = …;` — but `const fn` is a function.
                if forest.get(i + 1).is_some_and(|t| t.is_ident("fn")) {
                    i += 1; // let the `fn` arm handle it, keeping attrs
                    continue;
                }
                if let (Some(name), true) = (
                    ident_after(forest, i),
                    forest.get(i + 2).is_some_and(|t| t.is_punct(":")),
                ) {
                    let ty_end = (i + 3..forest.len())
                        .find(|&k| forest[k].is_punct("=") || forest[k].is_punct(";"))
                        .unwrap_or(forest.len());
                    let ty: Vec<Tree> = forest[i + 3..ty_end].to_vec();
                    let init = if forest.get(ty_end).is_some_and(|t| t.is_punct("=")) {
                        let init_end = (ty_end + 1..forest.len())
                            .find(|&k| forest[k].is_punct(";"))
                            .unwrap_or(forest.len());
                        forest[ty_end + 1..init_end].to_vec()
                    } else {
                        Vec::new()
                    };
                    out.consts.push(ConstItem {
                        name,
                        ty: to_text(&ty),
                        init,
                    });
                }
                i = skip_item(forest, i);
                attrs.clear();
            }
            _ => {
                // Qualifiers before `fn`/`struct` keep their attributes.
                if !matches!(
                    tok.text.as_str(),
                    "pub" | "async" | "unsafe" | "extern" | "default"
                ) {
                    attrs.clear();
                }
                i += 1;
            }
        }
    }
}

fn is_test_gated(attrs: &[String]) -> bool {
    attrs
        .iter()
        .any(|a| a.replace(' ', "").starts_with("cfg(test)") || a == "test")
}

/// Advances past one item starting at `i`: to just after its first `{…}`
/// body group or `;`, whichever comes first.
fn skip_item(forest: &[Tree], i: usize) -> usize {
    let mut k = i;
    while k < forest.len() {
        if let Some(g) = forest[k].group() {
            if g.delim == '{' {
                return k + 1;
            }
        }
        if forest[k].is_punct(";") {
            return k + 1;
        }
        k += 1;
    }
    k
}

fn ident_after(forest: &[Tree], i: usize) -> Option<String> {
    forest
        .get(i + 1)
        .and_then(Tree::leaf)
        .map(|t| t.text.clone())
}

/// Finds the next `{…}` group at angle-depth 0, returning it and the index
/// one past it. Stops at `;` (bodiless item).
fn find_body(forest: &[Tree], from: usize) -> (Option<Group>, usize) {
    let mut angle = 0i32;
    let mut k = from;
    while k < forest.len() {
        match &forest[k] {
            Tree::Leaf(t) if t.is_punct("<") => angle += 1,
            Tree::Leaf(t) if t.is_punct("<<") => angle += 2,
            Tree::Leaf(t) if t.is_punct(">") => angle -= 1,
            Tree::Leaf(t) if t.is_punct(">>") => angle -= 2,
            Tree::Leaf(t) if t.is_punct(";") && angle <= 0 => return (None, k + 1),
            Tree::Group(g) if g.delim == '{' && angle <= 0 => return (Some(g.clone()), k + 1),
            _ => {}
        }
        k += 1;
    }
    (None, k)
}

/// Parses an `impl` header at `i` (`impl<G> Type {…}` or
/// `impl<G> Trait for Type {…}`), returning the self-type name, the body,
/// and the index past the item.
fn parse_impl_header(forest: &[Tree], i: usize) -> (Option<String>, Option<Group>, usize) {
    let (body, next) = find_body(forest, i + 1);
    // Self type: trees after a top-level `for` if present, else after the
    // impl generics; we only need the head identifier.
    let header = &forest[i + 1..next.saturating_sub(1).max(i + 1)];
    let mut angle = 0i32;
    let mut after_for: Option<usize> = None;
    for (k, t) in header.iter().enumerate() {
        match t {
            Tree::Leaf(tok) if tok.is_punct("<") => angle += 1,
            Tree::Leaf(tok) if tok.is_punct("<<") => angle += 2,
            Tree::Leaf(tok) if tok.is_punct(">") => angle -= 1,
            Tree::Leaf(tok) if tok.is_punct(">>") => angle -= 2,
            Tree::Leaf(tok) if tok.is_ident("for") && angle <= 0 => after_for = Some(k + 1),
            _ => {}
        }
    }
    let ty_trees = match after_for {
        Some(k) => &header[k..],
        None => {
            // Skip leading generics `<…>`.
            let mut k = 0usize;
            if header.first().is_some_and(|t| t.is_punct("<")) {
                let mut depth = 0i32;
                while k < header.len() {
                    if let Some(tok) = header[k].leaf() {
                        match tok.text.as_str() {
                            "<" => depth += 1,
                            "<<" => depth += 2,
                            ">" => depth -= 1,
                            ">>" => depth -= 2,
                            _ => {}
                        }
                    }
                    k += 1;
                    if depth <= 0 {
                        break;
                    }
                }
            }
            &header[k..]
        }
    };
    let name = ty_trees
        .iter()
        .find_map(Tree::leaf)
        .filter(|t| t.kind == super::lex::Kind::Ident)
        .map(|t| t.text.clone());
    (name, body, next)
}

/// Parses one `fn` item whose `fn` keyword is at `i`.
fn parse_fn(
    forest: &[Tree],
    i: usize,
    self_ty: Option<&str>,
    attrs: Vec<String>,
) -> (Option<FnItem>, usize) {
    let Some(name_tok) = forest.get(i + 1).and_then(Tree::leaf) else {
        return (None, i + 1);
    };
    let name = name_tok.text.clone();
    let line = forest[i].leaf().map_or(0, |t| t.line);

    // Visibility: walk back over qualifiers (`const`, `async`, `unsafe`,
    // `extern "C"`, `default`, and the `(crate)`/`(super)` group of a
    // restricted `pub`) looking for a `pub` keyword.
    let is_pub = {
        let mut j = i;
        let mut found = false;
        while j > 0 {
            let prev = &forest[j - 1];
            if prev.is_ident("pub") {
                found = true;
                break;
            }
            let qualifier = prev.leaf().is_some_and(|t| {
                matches!(
                    t.text.as_str(),
                    "const" | "async" | "unsafe" | "extern" | "default"
                ) || t.kind == super::lex::Kind::Str
            }) || matches!(prev, Tree::Group(g) if g.delim == '(');
            if !qualifier {
                break;
            }
            j -= 1;
        }
        found
    };

    // Params: first `(…)` group at angle-depth 0 (generic bounds like
    // `T: Fn(u8)` hide parens at depth > 0).
    let mut angle = 0i32;
    let mut k = i + 2;
    let mut params_group: Option<&Group> = None;
    while k < forest.len() {
        match &forest[k] {
            Tree::Leaf(t) if t.is_punct("<") => angle += 1,
            Tree::Leaf(t) if t.is_punct("<<") => angle += 2,
            Tree::Leaf(t) if t.is_punct(">") => angle -= 1,
            Tree::Leaf(t) if t.is_punct(">>") => angle -= 2,
            Tree::Group(g) if g.delim == '(' && angle <= 0 => {
                params_group = Some(g);
                break;
            }
            Tree::Group(g) if g.delim == '{' && angle <= 0 => {
                // Malformed — body before params; bail on this item.
                return (None, k + 1);
            }
            _ => {}
        }
        k += 1;
    }
    let Some(params_group) = params_group else {
        return (None, forest.len());
    };
    let params = parse_params(&params_group.trees);

    // Return type: after `->`, up to `{`/`;`/`where` at angle-depth 0.
    let mut ret = None;
    let mut body = None;
    let mut angle = 0i32;
    let mut ret_start: Option<usize> = None;
    let mut j = k + 1;
    while j < forest.len() {
        match &forest[j] {
            Tree::Leaf(t) if t.is_punct("<") => angle += 1,
            Tree::Leaf(t) if t.is_punct("<<") => angle += 2,
            Tree::Leaf(t) if t.is_punct(">") => angle -= 1,
            Tree::Leaf(t) if t.is_punct(">>") => angle -= 2,
            Tree::Leaf(t) if t.is_punct("->") && angle <= 0 => ret_start = Some(j + 1),
            Tree::Leaf(t) if (t.is_ident("where") || t.is_punct(";")) && angle <= 0 => {
                if let Some(s) = ret_start {
                    ret = Some(to_text(&forest[s..j]));
                    ret_start = None;
                }
                if forest[j].is_punct(";") {
                    j += 1;
                    break;
                }
            }
            Tree::Group(g) if g.delim == '{' && angle <= 0 => {
                if let Some(s) = ret_start {
                    ret = Some(to_text(&forest[s..j]));
                }
                body = Some(g.clone());
                j += 1;
                break;
            }
            _ => {}
        }
        j += 1;
    }

    (
        Some(FnItem {
            name,
            is_pub,
            self_ty: self_ty.map(str::to_string),
            params,
            ret,
            attrs,
            body,
            line,
        }),
        j,
    )
}

/// Splits a params group by top-level commas into `(name, type)` pairs.
fn parse_params(trees: &[Tree]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut angle = 0i32;
    let mut k = 0usize;
    while k <= trees.len() {
        let at_comma =
            k < trees.len() && trees[k].leaf().is_some_and(|t| t.is_punct(",")) && angle <= 0;
        if k == trees.len() || at_comma {
            let part = &trees[start..k];
            if !part.is_empty() {
                out.push(split_param(part));
            }
            start = k + 1;
        } else if let Some(t) = trees[k].leaf() {
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
        }
        k += 1;
    }
    out
}

/// Splits one parameter into `(name, type)`. Receivers and destructuring
/// patterns yield an empty name; missing ascriptions yield an empty type.
fn split_param(part: &[Tree]) -> (String, String) {
    let colon = part.iter().position(|t| t.is_punct(":"));
    let Some(colon) = colon else {
        return (String::new(), String::new()); // `self` / `&mut self`
    };
    let pat = &part[..colon];
    let ty = to_text(&part[colon + 1..]);
    // Simple binding: optional `mut` then a single identifier.
    let mut idents: Vec<&str> = Vec::new();
    for t in pat {
        match t.leaf() {
            Some(tok) if tok.kind == super::lex::Kind::Ident => idents.push(&tok.text),
            Some(_) | None => return (String::new(), ty),
        }
    }
    match idents.as_slice() {
        [name] => ((*name).to_string(), ty),
        ["mut", name] => ((*name).to_string(), ty),
        _ => (String::new(), ty),
    }
}

fn parse_fields(trees: &[Tree]) -> Vec<(String, String)> {
    // Named fields are `vis? name : Type ,` at top level of the brace group.
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut angle = 0i32;
    let mut k = 0usize;
    while k <= trees.len() {
        let at_comma =
            k < trees.len() && trees[k].leaf().is_some_and(|t| t.is_punct(",")) && angle <= 0;
        if k == trees.len() || at_comma {
            let part = &trees[start..k];
            if let Some(colon) = part.iter().position(|t| t.is_punct(":")) {
                // Field name = last ident before the colon (skips `pub` and
                // `pub(crate)` visibility).
                let name = part[..colon]
                    .iter()
                    .rev()
                    .find_map(Tree::leaf)
                    .filter(|t| t.kind == super::lex::Kind::Ident)
                    .map(|t| t.text.clone());
                if let Some(name) = name {
                    out.push((name, to_text(&part[colon + 1..])));
                }
            }
            start = k + 1;
        } else if let Some(t) = trees[k].leaf() {
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::lex::lex;
    use super::super::tree::build;
    use super::*;

    fn items(src: &str) -> FileItems {
        parse(&build(&lex(src)))
    }

    #[test]
    fn free_fn_with_signature() {
        let it = items("pub fn decode_x(data: &[u8], n: usize) -> Result<Vec<i32>, E> { body() }");
        assert_eq!(it.fns.len(), 1);
        let f = &it.fns[0];
        assert_eq!(f.name, "decode_x");
        assert_eq!(f.params[0], ("data".to_string(), "&[u8]".to_string()));
        assert_eq!(f.params[1], ("n".to_string(), "usize".to_string()));
        assert_eq!(f.ret.as_deref(), Some("Result<Vec<i32>,E>"));
        assert!(f.body.is_some());
        assert!(f.self_ty.is_none());
    }

    #[test]
    fn impl_methods_carry_self_type() {
        let it = items(
            "impl<'a> CabacDecoder<'a> { fn bit(&mut self) -> bool { true } }\n\
             impl BinSink for BitCounter { fn bypass(&mut self, b: bool) {} }",
        );
        assert_eq!(it.fns.len(), 2);
        assert_eq!(it.fns[0].self_ty.as_deref(), Some("CabacDecoder"));
        assert_eq!(it.fns[0].ret.as_deref(), Some("bool"));
        assert_eq!(it.fns[1].self_ty.as_deref(), Some("BitCounter"));
        assert_eq!(it.fns[1].params[1], ("b".to_string(), "bool".to_string()));
    }

    #[test]
    fn cfg_test_items_are_dropped() {
        let it = items(
            "fn live() {}\n#[cfg(test)]\nmod tests { fn dead() {} #[test] fn t() {} }\nfn tail() {}",
        );
        let names: Vec<&str> = it.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live", "tail"]);
    }

    #[test]
    fn visibility_is_captured() {
        let it = items(
            "pub fn a() {}\n\
             pub(crate) fn b() {}\n\
             pub(super) const fn c() {}\n\
             fn d() {}\n\
             pub unsafe extern \"C\" fn e() {}\n",
        );
        let vis: Vec<(&str, bool)> = it.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            vis,
            vec![
                ("a", true),
                ("b", true),
                ("c", true),
                ("d", false),
                ("e", true)
            ]
        );
    }

    #[test]
    fn attrs_are_captured() {
        let it = items("#[must_use]\n#[inline]\npub fn f() -> u8 { 0 }");
        assert_eq!(it.fns[0].attrs, vec!["must_use", "inline"]);
    }

    #[test]
    fn struct_fields_and_consts() {
        let it = items(
            "pub struct Motion { pub dx: i8, pub dy: i8 }\n\
             struct Wrapper(u32);\n\
             pub const QP_MAX: f64 = 51.0;\n\
             static NAME: &str = \"x\";",
        );
        assert_eq!(it.structs.len(), 1);
        assert_eq!(
            it.structs[0].fields,
            vec![
                ("dx".to_string(), "i8".to_string()),
                ("dy".to_string(), "i8".to_string())
            ]
        );
        assert_eq!(it.consts.len(), 2);
        assert_eq!(it.consts[0].name, "QP_MAX");
        assert_eq!(it.consts[0].ty, "f64");
    }

    #[test]
    fn generic_bounds_do_not_eat_params() {
        let it = items("fn apply<F: Fn(u8) -> u8>(f: F, x: u8) -> u8 { f(x) }");
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].params.len(), 2);
        assert_eq!(it.fns[0].ret.as_deref(), Some("u8"));
    }

    #[test]
    fn trait_decls_include_bodiless_methods() {
        let it = items(
            "pub trait BinSink { fn bit(&mut self, b: bool); fn bypass(&mut self, b: bool) { self.bit(b) } }",
        );
        assert_eq!(it.fns.len(), 2);
        assert!(it.fns[0].body.is_none());
        assert!(it.fns[1].body.is_some());
        assert_eq!(it.fns[0].self_ty.as_deref(), Some("BinSink"));
    }

    #[test]
    fn where_clauses_and_tuple_patterns() {
        let it = items("fn g<T>(x: T, (a, b): (usize, usize)) -> usize where T: Copy { a + b }");
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].ret.as_deref(), Some("usize"));
        assert_eq!(it.fns[0].params[1].0, "");
        assert_eq!(it.fns[0].params[1].1, "(usize,usize)");
    }
}
