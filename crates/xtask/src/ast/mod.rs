//! The AST analysis engine: lexer → token trees → items → workspace index.
//!
//! The workspace builds offline with zero external dependencies, so this
//! is a hand-rolled, std-only equivalent of the `syn` slice the passes
//! need: full tokenization (comments/strings can never trigger a pass),
//! delimiter-matched token trees, item-level parsing with signatures, and
//! a workspace-wide index with name-resolved call edges. Every file is
//! parsed exactly once; all passes are visitors over the shared result.

pub mod index;
pub mod items;
pub mod lex;
pub mod tree;

/// Integer-type width/signedness table used by type-aware passes.
///
/// Returns `(bits, signed)`; `usize`/`isize` count as 64-bit, the widest
/// they can be on supported targets, so a cast *into* them is judged
/// conservatively on 32-bit hosts and a cast *out of* them is always
/// treated as potentially narrowing.
#[must_use]
pub fn int_width(ty: &str) -> Option<(u32, bool)> {
    Some(match ty {
        "u8" => (8, false),
        "i8" => (8, true),
        "u16" => (16, false),
        "i16" => (16, true),
        "u32" => (32, false),
        "i32" => (32, true),
        "u64" => (64, false),
        "i64" => (64, true),
        "u128" => (128, false),
        "i128" => (128, true),
        "usize" => (64, false),
        "isize" => (64, true),
        _ => return None,
    })
}

/// Whether a compact type string names a float type.
#[must_use]
pub fn is_float_ty(ty: &str) -> bool {
    matches!(ty, "f32" | "f64")
}
